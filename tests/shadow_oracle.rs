//! Workspace-level shadow-oracle tests: for every `chef-apps` kernel,
//! tune a demotion configuration on CHEF-FP estimates, *measure* it with
//! the `chef-shadow` fused shadow pass, and pin the paper's Table I
//! estimated-vs-actual relationship — the measured error is within an
//! order of magnitude of the estimate — plus the oracle's agreement with
//! the classic two-run validation.

use chef_fp::apps::{arclen, blackscholes, hpccg, kmeans, simpsons};
use chef_fp::exec::prelude::*;
use chef_fp::ir::ast::Program;
use chef_fp::shadow::{OracleOptions, ShadowMode};
use chef_fp::tuner::{
    tune, tune_with_oracle, validate, validate_with_oracle, OracleTuneOptions, TunerConfig,
    VariantCache,
};

/// Tunes under `cfg`, measures the chosen config with the oracle, and
/// checks (a) Table I: measurement within an order of magnitude of the
/// estimate, (b) the one-pass oracle equals the two-run validation
/// bit-for-bit (no kernel here demotes across a float-controlled branch
/// divergence), (c) the quality row serializes.
fn oracle_check(label: &str, p: &Program, func: &str, args: &[ArgValue], cfg: TunerConfig) {
    let res = tune(p, func, args, &cfg).expect("tunes");
    let rep = validate_with_oracle(p, func, args, &res.config, &OracleOptions::default())
        .expect("oracle runs");
    let row = rep.against_estimate(cfg.threshold, res.estimated_error);
    assert!(
        row.within_order_of_magnitude(),
        "{label}: estimated {} vs measured {} (ratio {}) — outside the Table I band; demoted {:?}",
        res.estimated_error,
        rep.output_error,
        row.ratio(),
        res.demoted
    );
    let two_run = validate(p, func, args, &res.config).expect("validates");
    assert_eq!(
        rep.output_error.to_bits(),
        two_run.actual_error.to_bits(),
        "{label}: fused oracle disagrees with the two-run ground truth"
    );
    assert_eq!(rep.shadow.to_bits(), two_run.baseline.to_bits(), "{label}");
    assert_eq!(rep.primal.to_bits(), two_run.demoted.to_bits(), "{label}");
    // The row is a serializable artifact (`repro --oracle`).
    let json = chef_fp::core::report::to_json(&row);
    let back: chef_fp::core::report::EstimateQualityRow =
        chef_fp::core::report::from_json(&json).expect("round-trips");
    assert_eq!(back.measured, rep.output_error);
}

#[test]
fn arclen_oracle_confirms_estimate_quality() {
    let p = arclen::program();
    let args = arclen::args(500);
    let cfg = TunerConfig::with_threshold(3e-6);
    oracle_check("arclen", &p, arclen::NAME, &args, cfg.clone());
    // The measured configuration has a non-trivial attribution story.
    let res = tune(&p, arclen::NAME, &args, &cfg).unwrap();
    let rep = validate_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &res.config,
        &OracleOptions::default(),
    )
    .unwrap();
    assert!(rep.output_error > 0.0);
    assert!(!rep.per_instruction.is_empty());
    assert!(!rep.per_variable.is_empty());
    // Attribution charges each local error to the first named variable
    // it reaches: the demoted variables themselves and the variables
    // computed from them — at least one demoted home must be charged.
    assert!(rep.per_variable.iter().all(|(_, e)| *e > 0.0));
    assert!(
        rep.per_variable
            .iter()
            .any(|(name, _)| res.demoted.contains(name)),
        "no demoted variable charged: {:?} vs {:?}",
        rep.per_variable,
        res.demoted
    );
}

#[test]
fn simpsons_oracle_confirms_estimate_quality() {
    oracle_check(
        "simpsons",
        &simpsons::program(),
        simpsons::NAME,
        &simpsons::args(500),
        TunerConfig::with_threshold(1e-7),
    );
}

#[test]
fn kmeans_oracle_confirms_estimate_quality() {
    // Table III row 1: the f32-quantized attributes are free to demote —
    // the estimate says zero and the oracle *measures* zero.
    let w = kmeans::workload(200, 4, 3, 9);
    let p = kmeans::program();
    let args = kmeans::args(&w);
    let cfg = TunerConfig::with_threshold(1e-6)
        .with_array_len("attributes", "npoints * nfeatures")
        .with_array_len("clusters", "nclusters * nfeatures");
    oracle_check("kmeans", &p, kmeans::NAME, &args, cfg.clone());
    let res = tune(&p, kmeans::NAME, &args, &cfg).unwrap();
    assert!(res.demoted.contains(&"attributes".to_string()));
    let rep = validate_with_oracle(
        &p,
        kmeans::NAME,
        &args,
        &res.config,
        &OracleOptions::default(),
    )
    .unwrap();
    assert_eq!(rep.output_error, 0.0);
    assert_eq!(rep.acc_error, 0.0);
}

#[test]
fn hpccg_oracle_confirms_estimate_quality() {
    // At the paper's 1e-10 threshold only the exactly-representable
    // inputs (stencil values, `b = A·1`, tol) are admitted: estimated
    // and measured error are both zero.
    let prob = hpccg::problem(4, 4, 4);
    oracle_check(
        "hpccg",
        &hpccg::program(),
        hpccg::NAME,
        &hpccg::args(&prob),
        TunerConfig::with_threshold(1e-10),
    );
}

#[test]
fn blackscholes_oracle_confirms_estimate_quality() {
    // Demotion restricted to the computed locals (the Table IV
    // configuration surface); input arrays estimate with signed
    // cancellation across options, which is exactly the kind of
    // estimate/measurement gap the oracle exists to expose.
    let w = blackscholes::workload(50, 3);
    let mut cfg = TunerConfig::with_threshold(1e-5);
    cfg.candidates = Some(
        blackscholes::TUNE_CANDIDATES
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    oracle_check(
        "blackscholes",
        &blackscholes::program(),
        blackscholes::NAME,
        &blackscholes::args(&w),
        cfg,
    );
}

#[test]
fn dd_shadow_measures_f64_self_error_on_arclen() {
    // The Reduced-Precision-Checking direction: with no demotion at all
    // the f64 shadow sees nothing, while the double-double shadow
    // measures the f64 program's own accumulated rounding error.
    let p = arclen::program();
    let args = arclen::args(500);
    let f64_rep = validate_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &PrecisionMap::empty(),
        &OracleOptions::default(),
    )
    .unwrap();
    assert_eq!(f64_rep.output_error, 0.0);
    let dd_rep = validate_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &PrecisionMap::empty(),
        &OracleOptions {
            mode: ShadowMode::DD,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(dd_rep.output_error > 0.0, "f64 self-error must be visible");
    assert!(
        dd_rep.output_error < 1e-10,
        "f64 self-error should be tiny: {}",
        dd_rep.output_error
    );
    assert!(!dd_rep.per_instruction.is_empty());
}

#[test]
fn oracle_guided_tuning_beats_estimate_only_admission() {
    // The greedy loop driven by measurement admits at least everything
    // the estimate admits (estimates over-approximate here), and its
    // result is measured under the threshold.
    let p = arclen::program();
    let args = arclen::args(200);
    let cfg = TunerConfig::with_threshold(3e-6);
    let est_only = tune(&p, arclen::NAME, &args, &cfg).unwrap();
    let cache = VariantCache::new();
    let oracle = tune_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &cfg,
        &OracleTuneOptions::reranked(),
        &cache,
    )
    .unwrap();
    let measured = oracle.measured_error.expect("measured");
    assert!(measured <= cfg.threshold, "{measured}");
    assert!(
        oracle.demoted.len() >= est_only.demoted.len(),
        "oracle admitted {:?}, estimate admitted {:?}",
        oracle.demoted,
        est_only.demoted
    );
    // Re-tuning over the shared cache compiles nothing: every greedy
    // step is a cache hit, observable on the result.
    let again = tune_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &cfg,
        &OracleTuneOptions::reranked(),
        &cache,
    )
    .unwrap();
    assert!(again.cache_hits > 0);
    assert_eq!(again.demoted, oracle.demoted);
    // The measured claim re-validates with the classic two-run check.
    let check = validate(&p, arclen::NAME, &args, &oracle.config).unwrap();
    assert!(check.actual_error <= cfg.threshold);
}
