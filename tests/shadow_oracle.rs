//! Workspace-level shadow-oracle tests: for every `chef-apps` kernel,
//! tune a demotion configuration on CHEF-FP estimates, *measure* it with
//! the `chef-shadow` fused shadow pass, and pin the paper's Table I
//! estimated-vs-actual relationship — the measured error is within an
//! order of magnitude of the estimate — plus the oracle's agreement with
//! the classic two-run validation.

use chef_fp::apps::{adversarial, arclen, blackscholes, hpccg, kmeans, simpsons};
use chef_fp::exec::bytecode::Instr;
use chef_fp::exec::compile::{compile, CompileOptions};
use chef_fp::exec::prelude::*;
use chef_fp::exec::shadow::{run_shadow, DivergenceKind};
use chef_fp::ir::ast::Program;
use chef_fp::shadow::{shadow_run, OracleOptions, ShadowMode, ShadowReport};
use chef_fp::tuner::{
    ids_of, tune, tune_with_oracle, validate, validate_with_oracle, DivergencePolicy,
    OracleTuneOptions, TunerConfig, VariantCache,
};

/// Tunes under `cfg`, measures the chosen config with the oracle, and
/// checks (a) Table I: measurement within an order of magnitude of the
/// estimate, (b) the one-pass oracle equals the two-run validation
/// bit-for-bit (no kernel here demotes across a float-controlled branch
/// divergence), (c) the quality row serializes.
fn oracle_check(label: &str, p: &Program, func: &str, args: &[ArgValue], cfg: TunerConfig) {
    let res = tune(p, func, args, &cfg).expect("tunes");
    let rep = validate_with_oracle(p, func, args, &res.config, &OracleOptions::default())
        .expect("oracle runs");
    let row = rep.against_estimate(cfg.threshold, res.estimated_error);
    assert!(
        row.within_order_of_magnitude(),
        "{label}: estimated {} vs measured {} (ratio {}) — outside the Table I band; demoted {:?}",
        res.estimated_error,
        rep.output_error,
        row.ratio(),
        res.demoted
    );
    let two_run = validate(p, func, args, &res.config).expect("validates");
    assert_eq!(
        rep.output_error.to_bits(),
        two_run.actual_error.to_bits(),
        "{label}: fused oracle disagrees with the two-run ground truth"
    );
    assert_eq!(rep.shadow.to_bits(), two_run.baseline.to_bits(), "{label}");
    assert_eq!(rep.primal.to_bits(), two_run.demoted.to_bits(), "{label}");
    // The row is a serializable artifact (`repro --oracle`).
    let json = chef_fp::core::report::to_json(&row);
    let back: chef_fp::core::report::EstimateQualityRow =
        chef_fp::core::report::from_json(&json).expect("round-trips");
    assert_eq!(back.measured, rep.output_error);
}

#[test]
fn arclen_oracle_confirms_estimate_quality() {
    let p = arclen::program();
    let args = arclen::args(500);
    let cfg = TunerConfig::with_threshold(3e-6);
    oracle_check("arclen", &p, arclen::NAME, &args, cfg.clone());
    // The measured configuration has a non-trivial attribution story.
    let res = tune(&p, arclen::NAME, &args, &cfg).unwrap();
    let rep = validate_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &res.config,
        &OracleOptions::default(),
    )
    .unwrap();
    assert!(rep.output_error > 0.0);
    assert!(!rep.per_instruction.is_empty());
    assert!(!rep.per_variable.is_empty());
    // Attribution charges each local error to the first named variable
    // it reaches: the demoted variables themselves and the variables
    // computed from them — at least one demoted home must be charged.
    assert!(rep.per_variable.iter().all(|(_, e)| *e > 0.0));
    assert!(
        rep.per_variable
            .iter()
            .any(|(name, _)| res.demoted.contains(name)),
        "no demoted variable charged: {:?} vs {:?}",
        rep.per_variable,
        res.demoted
    );
}

#[test]
fn simpsons_oracle_confirms_estimate_quality() {
    oracle_check(
        "simpsons",
        &simpsons::program(),
        simpsons::NAME,
        &simpsons::args(500),
        TunerConfig::with_threshold(1e-7),
    );
}

#[test]
fn kmeans_oracle_confirms_estimate_quality() {
    // Table III row 1: the f32-quantized attributes are free to demote —
    // the estimate says zero and the oracle *measures* zero.
    let w = kmeans::workload(200, 4, 3, 9);
    let p = kmeans::program();
    let args = kmeans::args(&w);
    let cfg = TunerConfig::with_threshold(1e-6)
        .with_array_len("attributes", "npoints * nfeatures")
        .with_array_len("clusters", "nclusters * nfeatures");
    oracle_check("kmeans", &p, kmeans::NAME, &args, cfg.clone());
    let res = tune(&p, kmeans::NAME, &args, &cfg).unwrap();
    assert!(res.demoted.contains(&"attributes".to_string()));
    let rep = validate_with_oracle(
        &p,
        kmeans::NAME,
        &args,
        &res.config,
        &OracleOptions::default(),
    )
    .unwrap();
    assert_eq!(rep.output_error, 0.0);
    assert_eq!(rep.acc_error, 0.0);
}

#[test]
fn hpccg_oracle_confirms_estimate_quality() {
    // At the paper's 1e-10 threshold only the exactly-representable
    // inputs (stencil values, `b = A·1`, tol) are admitted: estimated
    // and measured error are both zero.
    let prob = hpccg::problem(4, 4, 4);
    oracle_check(
        "hpccg",
        &hpccg::program(),
        hpccg::NAME,
        &hpccg::args(&prob),
        TunerConfig::with_threshold(1e-10),
    );
}

#[test]
fn blackscholes_oracle_confirms_estimate_quality() {
    // Demotion restricted to the computed locals (the Table IV
    // configuration surface); input arrays estimate with signed
    // cancellation across options, which is exactly the kind of
    // estimate/measurement gap the oracle exists to expose.
    let w = blackscholes::workload(50, 3);
    let mut cfg = TunerConfig::with_threshold(1e-5);
    cfg.candidates = Some(
        blackscholes::TUNE_CANDIDATES
            .iter()
            .map(|s| s.to_string())
            .collect(),
    );
    oracle_check(
        "blackscholes",
        &blackscholes::program(),
        blackscholes::NAME,
        &blackscholes::args(&w),
        cfg,
    );
}

#[test]
fn dd_shadow_measures_f64_self_error_on_arclen() {
    // The Reduced-Precision-Checking direction: with no demotion at all
    // the f64 shadow sees nothing, while the double-double shadow
    // measures the f64 program's own accumulated rounding error.
    let p = arclen::program();
    let args = arclen::args(500);
    let f64_rep = validate_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &PrecisionMap::empty(),
        &OracleOptions::default(),
    )
    .unwrap();
    assert_eq!(f64_rep.output_error, 0.0);
    let dd_rep = validate_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &PrecisionMap::empty(),
        &OracleOptions {
            mode: ShadowMode::DD,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(dd_rep.output_error > 0.0, "f64 self-error must be visible");
    assert!(
        dd_rep.output_error < 1e-10,
        "f64 self-error should be tiny: {}",
        dd_rep.output_error
    );
    assert!(!dd_rep.per_instruction.is_empty());
}

// ---------------------------------------------------------------------
// Divergence detection on the adversarial branching corpus
// ---------------------------------------------------------------------

/// The `f32` demotion of `vars` in the (inlined) kernel.
fn f32_config(p: &Program, func: &str, vars: &[&str]) -> PrecisionMap {
    let ids = ids_of(p, func, vars).expect("vars resolve");
    assert_eq!(ids.len(), vars.len(), "{vars:?}");
    let mut pm = PrecisionMap::empty();
    for id in ids {
        pm.set(id, chef_fp::ir::types::FloatTy::F32);
    }
    pm
}

/// Runs the oracle on `config`, asserting the divergence verdict and —
/// when a flip is expected — that every recorded split sits on a
/// comparison/truncation instruction of the compiled stream, that the
/// flipped variable is attributed, and that enum and packed dispatch
/// report the identical split list.
fn divergence_check(
    label: &str,
    p: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
    expect_divergence: bool,
    attributed_var: &str,
) -> ShadowReport {
    let rep = shadow_run(p, func, args, config, &OracleOptions::default()).expect("oracle runs");
    assert_eq!(
        rep.diverged(),
        expect_divergence,
        "{label}: divergence_count = {} ({:?})",
        rep.divergence_count,
        rep.divergence
    );
    if !expect_divergence {
        assert!(rep.divergence.is_empty(), "{label}");
        assert!(rep.per_variable_divergence.is_empty(), "{label}");
        return rep;
    }
    // Every detailed split names a pc that really is a comparison or a
    // float→int truncation in the compiled stream.
    let inlined = chef_fp::passes::inline_program(p).expect("inlines");
    let primal = inlined.function(func).expect("function");
    let packed = compile(
        primal,
        &CompileOptions {
            precisions: config.clone(),
            pack: true,
            ..Default::default()
        },
    )
    .expect("compiles packed");
    for point in &rep.divergence {
        let ins = &packed.instrs[point.pc];
        match point.kind {
            DivergenceKind::FCmp { .. } => assert!(
                matches!(
                    ins,
                    Instr::FCmp { .. } | Instr::FCmpJmpFalse { .. } | Instr::FCmpJmpTrue { .. }
                ),
                "{label}: pc {} holds {ins:?}, not a float compare",
                point.pc
            ),
            DivergenceKind::F2I { .. } => assert!(
                matches!(ins, Instr::F2I { .. }),
                "{label}: pc {} holds {ins:?}, not F2I",
                point.pc
            ),
        }
    }
    assert!(
        rep.divergence_of(attributed_var) > 0,
        "{label}: split not attributed to `{attributed_var}`: {:?}",
        rep.per_variable_divergence
    );
    // Enum dispatch reports the identical splits.
    let enum_only = compile(
        primal,
        &CompileOptions {
            precisions: config.clone(),
            pack: false,
            ..Default::default()
        },
    )
    .expect("compiles enum");
    let opts = ExecOptions::default();
    let a = run_shadow::<f64>(&packed, args.to_vec(), &opts).expect("packed shadow");
    let b = run_shadow::<f64>(&enum_only, args.to_vec(), &opts).expect("enum shadow");
    assert_eq!(a.divergence_count, b.divergence_count, "{label}");
    assert_eq!(a.divergence, b.divergence, "{label}");
    assert_eq!(a.var_divergence, b.var_divergence, "{label}");
    assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "{label}");
    rep
}

#[test]
fn threshold_kernel_flags_divergence_exactly_when_the_branch_flips() {
    let p = adversarial::threshold::program();
    let flip = f32_config(
        &p,
        adversarial::threshold::NAME,
        adversarial::threshold::FLIP_VARS,
    );
    let rep = divergence_check(
        "threshold/flip",
        &p,
        adversarial::threshold::NAME,
        &adversarial::threshold::flip_args(),
        &flip,
        true,
        "s",
    );
    // The whole point of the flag: along the (wrong) primal trace the
    // one-pass measurement looks harmless — microns — while the true
    // two-run error is O(1) because the baseline takes the other branch.
    assert!(rep.output_error < 1e-5, "{}", rep.output_error);
    let two_run = validate(
        &p,
        adversarial::threshold::NAME,
        &adversarial::threshold::flip_args(),
        &flip,
    )
    .unwrap();
    assert!(
        two_run.actual_error > 1.0,
        "ground truth dwarfs the divergent measurement: {}",
        two_run.actual_error
    );
    assert_eq!(rep.divergence_count, 1, "one split, at the threshold");
    match rep.divergence[0].kind {
        DivergenceKind::FCmp {
            taken, would_take, ..
        } => assert!(taken && !would_take),
        ref other => panic!("expected FCmp, got {other:?}"),
    }
    // Same demotion, stable input: rounds without flipping.
    let rep = divergence_check(
        "threshold/stable",
        &p,
        adversarial::threshold::NAME,
        &adversarial::threshold::stable_args(),
        &flip,
        false,
        "s",
    );
    assert!(rep.acc_error > 0.0, "the demotion still rounds");
    // No demotion: silent and error-free on the flip input too.
    let rep = divergence_check(
        "threshold/undemoted",
        &p,
        adversarial::threshold::NAME,
        &adversarial::threshold::flip_args(),
        &PrecisionMap::empty(),
        false,
        "s",
    );
    assert_eq!(rep.output_error, 0.0);
}

#[test]
fn floatcount_kernel_flags_the_truncated_trip_count() {
    let p = adversarial::floatcount::program();
    let flip = f32_config(
        &p,
        adversarial::floatcount::NAME,
        adversarial::floatcount::FLIP_VARS,
    );
    let rep = divergence_check(
        "floatcount/flip",
        &p,
        adversarial::floatcount::NAME,
        &adversarial::floatcount::flip_args(),
        &flip,
        true,
        "t",
    );
    let f2i = rep
        .divergence
        .iter()
        .find_map(|pt| match pt.kind {
            DivergenceKind::F2I {
                primal_int,
                shadow_int,
                ..
            } => Some((primal_int, shadow_int)),
            _ => None,
        })
        .expect("an F2I split");
    assert_eq!(f2i, (100, 99), "demoted primal runs one extra iteration");
    // Exactly representable step width: both sides truncate to 64.
    divergence_check(
        "floatcount/stable",
        &p,
        adversarial::floatcount::NAME,
        &adversarial::floatcount::stable_args(),
        &flip,
        false,
        "t",
    );
}

#[test]
fn piecewise_kernel_flags_the_knot_crossing() {
    let p = adversarial::piecewise::program();
    let flip = f32_config(
        &p,
        adversarial::piecewise::NAME,
        adversarial::piecewise::FLIP_VARS,
    );
    let rep = divergence_check(
        "piecewise/flip",
        &p,
        adversarial::piecewise::NAME,
        &adversarial::piecewise::flip_args(),
        &flip,
        true,
        "y",
    );
    // Demoted primal sits exactly on the knot (`y <= 0.75` true) and
    // takes the linear piece; the shadow is dragged along that trace
    // (divergence is reported, never followed), so the measurement reads
    // nano-scale while the true piece swap is O(1).
    assert_eq!(rep.primal, 1.75, "linear piece on the rounded knot");
    assert!((rep.shadow - 1.75).abs() < 1e-8, "{}", rep.shadow);
    assert!(rep.output_error < 1e-8, "{}", rep.output_error);
    let two_run = validate(
        &p,
        adversarial::piecewise::NAME,
        &adversarial::piecewise::flip_args(),
        &flip,
    )
    .unwrap();
    assert!(
        two_run.actual_error > 1.0,
        "the baseline squares instead: {}",
        two_run.actual_error
    );
    divergence_check(
        "piecewise/stable",
        &p,
        adversarial::piecewise::NAME,
        &adversarial::piecewise::stable_args(),
        &flip,
        false,
        "y",
    );
}

#[test]
fn divergent_rows_are_flagged_in_the_quality_record() {
    // The artifact path: a divergent measurement's EstimateQualityRow
    // carries the split count, serializes it, and self-identifies as a
    // row whose order-of-magnitude band is meaningless.
    let p = adversarial::threshold::program();
    let flip = f32_config(
        &p,
        adversarial::threshold::NAME,
        adversarial::threshold::FLIP_VARS,
    );
    let rep = validate_with_oracle(
        &p,
        adversarial::threshold::NAME,
        &adversarial::threshold::flip_args(),
        &flip,
        &OracleOptions::default(),
    )
    .unwrap();
    let row = rep.against_estimate(1e-6, 1e-7);
    assert!(row.diverged());
    assert_eq!(row.divergence_count, rep.divergence_count);
    let json = chef_fp::core::report::to_json(&row);
    assert!(json.contains("\"diverged\": true"), "{json}");
    let back: chef_fp::core::report::EstimateQualityRow =
        chef_fp::core::report::from_json(&json).unwrap();
    assert_eq!(back.divergence_count, rep.divergence_count);
}

#[test]
fn oracle_tuner_distrusts_the_branch_flipping_config() {
    // End-to-end: greedy oracle tuning over the threshold kernel with
    // `s` as the only candidate. The divergent trial is decided by
    // two-run validation (default policy) or dropped (Reject).
    let p = adversarial::threshold::program();
    let args = adversarial::threshold::flip_args();
    let mut cfg = TunerConfig::with_threshold(2.0);
    cfg.candidates = Some(vec!["s".into()]);
    let cache = VariantCache::new();
    let res = tune_with_oracle(
        &p,
        adversarial::threshold::NAME,
        &args,
        &cfg,
        &OracleTuneOptions::default(),
        &cache,
    )
    .unwrap();
    assert!(res.divergent_trials >= 1);
    assert_eq!(res.demoted, vec!["s".to_string()]);
    let check = validate(&p, adversarial::threshold::NAME, &args, &res.config).unwrap();
    assert_eq!(
        res.measured_error.unwrap().to_bits(),
        check.actual_error.to_bits(),
        "admission used the two-run ground truth"
    );
    let reject = OracleTuneOptions {
        divergence_policy: DivergencePolicy::Reject,
        ..Default::default()
    };
    let res = tune_with_oracle(
        &p,
        adversarial::threshold::NAME,
        &args,
        &cfg,
        &reject,
        &cache,
    )
    .unwrap();
    assert!(res.demoted.is_empty(), "{:?}", res.demoted);
}

#[test]
fn paper_kernels_stay_divergence_free_under_tuned_configs() {
    // The PR-2/3 era assumption, now checked instead of assumed: every
    // tuned paper-kernel configuration the oracle tests rely on is
    // branch-stable, so their one-pass measurements remain trustworthy.
    let checks: Vec<(&str, Program, &str, Vec<ArgValue>, TunerConfig)> = vec![
        (
            "arclen",
            arclen::program(),
            arclen::NAME,
            arclen::args(500),
            TunerConfig::with_threshold(3e-6),
        ),
        (
            "simpsons",
            simpsons::program(),
            simpsons::NAME,
            simpsons::args(500),
            TunerConfig::with_threshold(1e-7),
        ),
    ];
    for (label, p, func, args, cfg) in checks {
        let res = tune(&p, func, &args, &cfg).expect("tunes");
        let rep =
            validate_with_oracle(&p, func, &args, &res.config, &OracleOptions::default()).unwrap();
        assert!(
            !rep.diverged(),
            "{label}: tuned config unexpectedly diverged: {:?}",
            rep.divergence
        );
    }
}

#[test]
fn oracle_guided_tuning_beats_estimate_only_admission() {
    // The greedy loop driven by measurement admits at least everything
    // the estimate admits (estimates over-approximate here), and its
    // result is measured under the threshold.
    let p = arclen::program();
    let args = arclen::args(200);
    let cfg = TunerConfig::with_threshold(3e-6);
    let est_only = tune(&p, arclen::NAME, &args, &cfg).unwrap();
    let cache = VariantCache::new();
    let oracle = tune_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &cfg,
        &OracleTuneOptions::reranked(),
        &cache,
    )
    .unwrap();
    let measured = oracle.measured_error.expect("measured");
    assert!(measured <= cfg.threshold, "{measured}");
    assert!(
        oracle.demoted.len() >= est_only.demoted.len(),
        "oracle admitted {:?}, estimate admitted {:?}",
        oracle.demoted,
        est_only.demoted
    );
    // Re-tuning over the shared cache compiles nothing: every greedy
    // step is a cache hit, observable on the result.
    let again = tune_with_oracle(
        &p,
        arclen::NAME,
        &args,
        &cfg,
        &OracleTuneOptions::reranked(),
        &cache,
    )
    .unwrap();
    assert!(again.cache_hits > 0);
    assert_eq!(again.demoted, oracle.demoted);
    // The measured claim re-validates with the classic two-run check.
    let check = validate(&p, arclen::NAME, &args, &oracle.config).unwrap();
    assert!(check.actual_error <= cfg.threshold);
}
