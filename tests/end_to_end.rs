//! Workspace-level integration tests: the full CHEF-FP pipeline against
//! the ADAPT baseline on the five paper benchmarks (scaled down for debug
//! builds).

use chef_fp::adapt::{analyze, AdaptOptions};
use chef_fp::apps::{arclen, blackscholes, hpccg, kmeans, simpsons};
use chef_fp::core::prelude::*;
use chef_fp::exec::prelude::*;
use chef_fp::ir::ast::Program;

fn chef_outcome(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    lens: &[(&str, &str)],
) -> (EstimateOutcome, usize) {
    let mut model = AdaptModel::to_f32();
    let mut opts = EstimateOptions::default();
    for (a, l) in lens {
        opts.array_lens.insert((*a).to_string(), (*l).to_string());
    }
    let est = estimate_error_with(program, func, &mut model, &opts).expect("estimator builds");
    let out = est.execute(args).expect("analysis runs");
    let tape = out.stats.tape_peak_bytes;
    (out, tape)
}

fn adapt_outcome(program: &Program, func: &str, args: &[ArgValue]) -> chef_fp::adapt::AdaptOutcome {
    let inlined = chef_fp::passes::inline_program(program).unwrap();
    let primal = inlined.function(func).unwrap();
    analyze(primal, args, &AdaptOptions::default()).expect("baseline runs")
}

/// The paper's headline comparison: same estimates, smaller tape.
fn compare(program: &Program, func: &str, args: &[ArgValue], lens: &[(&str, &str)], label: &str) {
    let (chef, chef_tape) = chef_outcome(program, func, args, lens);
    let adapt = adapt_outcome(program, func, args);
    // Primal values agree exactly (same arithmetic).
    assert_eq!(chef.value, adapt.value, "{label}: primal mismatch");
    // Estimates agree to rounding (same formula, different association).
    let scale = chef.fp_error.abs().max(adapt.fp_error.abs()).max(1e-300);
    assert!(
        (chef.fp_error - adapt.fp_error).abs() <= 1e-6 * scale,
        "{label}: chef {} vs adapt {}",
        chef.fp_error,
        adapt.fp_error
    );
    // CHEF-FP's TBR tape is strictly smaller than the operation tape.
    assert!(
        chef_tape < adapt.tape_peak_bytes,
        "{label}: chef tape {chef_tape} >= adapt tape {}",
        adapt.tape_peak_bytes
    );
}

#[test]
fn arclen_estimates_agree_with_adapt() {
    compare(
        &arclen::program(),
        arclen::NAME,
        &arclen::args(500),
        &[],
        "arclen",
    );
}

#[test]
fn simpsons_estimates_agree_with_adapt() {
    compare(
        &simpsons::program(),
        simpsons::NAME,
        &simpsons::args(500),
        &[],
        "simpsons",
    );
}

#[test]
fn kmeans_estimates_agree_with_adapt() {
    let w = kmeans::workload(200, 4, 3, 9);
    compare(
        &kmeans::program(),
        kmeans::NAME,
        &kmeans::args(&w),
        &[
            ("attributes", "npoints * nfeatures"),
            ("clusters", "nclusters * nfeatures"),
        ],
        "kmeans",
    );
}

#[test]
fn hpccg_estimates_agree_with_adapt() {
    let p = hpccg::problem(4, 4, 4);
    compare(
        &hpccg::program(),
        hpccg::NAME,
        &hpccg::args(&p),
        &[("b", "nrow")],
        "hpccg",
    );
}

#[test]
fn blackscholes_estimates_agree_with_adapt() {
    let w = blackscholes::workload(50, 3);
    compare(
        &blackscholes::program(),
        blackscholes::NAME,
        &blackscholes::args(&w),
        &[
            ("sptprice", "numOptions"),
            ("strike", "numOptions"),
            ("rate", "numOptions"),
            ("volatility", "numOptions"),
            ("otime", "numOptions"),
        ],
        "bs",
    );
}

#[test]
fn kmeans_attributes_error_is_zero() {
    // Table III row 1: f32-quantized inputs carry no demotion error.
    let w = kmeans::workload(300, 4, 3, 11);
    let (out, _) = chef_outcome(
        &kmeans::program(),
        kmeans::NAME,
        &kmeans::args(&w),
        &[
            ("attributes", "npoints * nfeatures"),
            ("clusters", "nclusters * nfeatures"),
        ],
    );
    assert_eq!(out.error_of("attributes"), 0.0);
    assert!(out.error_of("clusters") > 0.0);
    assert!(out.error_of("sum") > 0.0);
}

#[test]
fn estimates_bound_measured_demotion_for_arclen() {
    // Demote everything to f32 and check the combined estimate bounds the
    // measured error (Table I semantics).
    let program = arclen::program();
    let args = arclen::args(400);
    let cfg = chef_fp::tuner::TunerConfig::with_threshold(1e-3);
    let res = chef_fp::tuner::tune(&program, arclen::NAME, &args, &cfg).unwrap();
    let rep = chef_fp::tuner::validate(&program, arclen::NAME, &args, &res.config).unwrap();
    assert!(
        rep.actual_error <= 1e-3,
        "threshold violated: {}",
        rep.actual_error
    );
    assert!(
        rep.actual_error <= res.estimated_error.max(1e-15) * 2.0,
        "estimate {} does not bound actual {}",
        res.estimated_error,
        rep.actual_error
    );
}

#[test]
fn adapt_oom_while_chef_survives() {
    // The Figs. 4/7 crossover: under the same memory budget the taping
    // baseline dies while the transformation-based analysis completes.
    let program = arclen::program();
    let args = arclen::args(20_000);
    let budget = 4 * 1024 * 1024; // 4 MiB

    let mut model = AdaptModel::to_f32();
    let opts = EstimateOptions {
        exec: ExecOptions {
            tape_limit: Some(budget),
            ..Default::default()
        },
        ..Default::default()
    };
    let est = estimate_error_with(&program, arclen::NAME, &mut model, &opts).expect("builds");
    let chef = est.execute(&args);
    assert!(
        chef.is_ok(),
        "CHEF-FP must fit in the budget: {:?}",
        chef.err()
    );

    let inlined = chef_fp::passes::inline_program(&program).unwrap();
    let primal = inlined.function(arclen::NAME).unwrap();
    let adapt = analyze(
        primal,
        &args,
        &AdaptOptions {
            memory_limit: Some(budget),
            ..Default::default()
        },
    );
    assert!(
        matches!(adapt, Err(chef_fp::adapt::AdaptError::OutOfMemory(_))),
        "baseline should exceed the budget: {adapt:?}"
    );
}

#[test]
fn gradients_agree_between_chef_and_adapt() {
    let w = blackscholes::workload(10, 21);
    let program = blackscholes::program();
    let (chef, _) = chef_outcome(&program, blackscholes::NAME, &blackscholes::args(&w), &[]);
    let adapt = adapt_outcome(&program, blackscholes::NAME, &blackscholes::args(&w));
    for ((cn, cv), (an, av)) in chef.gradient.iter().zip(adapt.gradient.iter()) {
        assert_eq!(cn, an);
        match (cv, av) {
            (ArgValue::FArr(c), ArgValue::FArr(a)) => {
                for (x, y) in c.iter().zip(a) {
                    assert!(
                        (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0),
                        "{cn}: {x} vs {y}"
                    );
                }
            }
            (ArgValue::F(x), ArgValue::F(y)) => {
                assert!((x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0));
            }
            other => panic!("unexpected gradient kinds {other:?}"),
        }
    }
}

#[test]
fn sensitivity_profile_collapses_for_hpccg() {
    let p = hpccg::problem(4, 4, 4);
    let cfg = SensitivityConfig {
        tracked: vec!["r".into(), "p".into(), "Ap".into()],
        tick_on: "rtrans".into(),
        max_ticks: 100,
    };
    let profile = profile_sensitivity(
        &hpccg::program(),
        hpccg::NAME,
        &cfg,
        &hpccg::args(&p),
        &ExecOptions::default(),
    )
    .unwrap();
    assert!(profile.ticks > 5, "CG should iterate: {}", profile.ticks);
    let split = profile.split_point(1e-3);
    assert!(split.is_some(), "residual sensitivities must collapse");
    assert!(split.unwrap() < profile.ticks);
}

#[test]
fn approx_estimates_track_measured_substitution_error() {
    // Table IV invariant: the fast-exp configuration is estimated (and
    // measured) markedly worse than the no-fast-exp one.
    use chef_fp::ir::ast::Intrinsic;
    let w = blackscholes::workload(40, 17);
    let program = blackscholes::program();
    let mut est_errs = Vec::new();
    for mapping in [
        vec![
            ("tQ", Intrinsic::Sqrt, Intrinsic::FastSqrt),
            ("ratio", Intrinsic::Log, Intrinsic::FastLog),
        ],
        vec![
            ("tQ", Intrinsic::Sqrt, Intrinsic::FastSqrt),
            ("ratio", Intrinsic::Log, Intrinsic::FastLog),
            ("negrT", Intrinsic::Exp, Intrinsic::FasterExp),
        ],
    ] {
        let mut model = ApproxModel::new();
        for (v, e, a) in mapping {
            model = model.with(v, e, a);
        }
        let est = estimate_error_with(
            &program,
            blackscholes::NAME,
            &mut model,
            &EstimateOptions::default(),
        )
        .unwrap();
        let out = est.execute(&blackscholes::args(&w)).unwrap();
        est_errs.push(out.fp_error);
    }
    assert!(est_errs[1] > est_errs[0] * 10.0, "{est_errs:?}");
}
