//! Cross-engine validation: the bytecode VM (`chef-exec`) and the tracing
//! interpreter (`adapt-baseline`) are two independent implementations of
//! KernelC semantics — on random generated programs they must agree
//! bit-for-bit on primal values, and the three derivative engines
//! (reverse transformation, forward transformation, operation tape) must
//! agree on gradients.

use chef_fp::ad::forward::forward_diff;
use chef_fp::ad::reverse::reverse_diff;
use chef_fp::adapt::{analyze, AdaptOptions};
use chef_fp::exec::prelude::*;
use chef_fp::passes::testgen::{generate, GenConfig};

fn args_of(g: &chef_fp::passes::testgen::GeneratedProgram) -> Vec<ArgValue> {
    vec![
        ArgValue::F(g.float_args[0]),
        ArgValue::F(g.float_args[1]),
        ArgValue::I(g.int_arg),
    ]
}

#[test]
fn vm_and_tracer_agree_on_primal_values() {
    let exec_opts = ExecOptions {
        max_instrs: Some(5_000_000),
        ..Default::default()
    };
    for seed in 500..620 {
        let g = generate(seed, &GenConfig::default());
        let args = args_of(&g);
        let compiled = compile_default(&g.function).unwrap();
        let vm = run_with(&compiled, args.clone(), &exec_opts);
        let traced = analyze(&g.function, &args, &AdaptOptions::default());
        match (vm, traced) {
            (Ok(v), Ok(t)) => {
                let (a, b) = (v.ret_f(), t.value);
                assert!(
                    a == b || (a.is_nan() && b.is_nan()),
                    "seed {seed}: vm {a} vs tracer {b}\n{}",
                    g.source
                );
            }
            (Err(_), Err(_)) => {} // both trapped: acceptable agreement
            (v, t) => panic!(
                "seed {seed}: divergent outcome {v:?} vs {t:?}\n{}",
                g.source
            ),
        }
    }
}

#[test]
fn three_gradient_engines_agree() {
    let exec_opts = ExecOptions {
        max_instrs: Some(5_000_000),
        ..Default::default()
    };
    // Tolerance note: on kernels with `float` intermediates the two AD
    // styles legitimately differ at f32-epsilon scale — the source
    // transformation re-evaluates primal subexpressions at their declared
    // precision during the backward sweep, while the taping tool stores
    // full-precision values. ~1e-7 relative is the expected agreement.
    let close = |a: f64, b: f64| -> bool {
        (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0) || (a.is_nan() && b.is_nan())
    };
    for seed in 700..760 {
        let g = generate(seed, &GenConfig::default());
        let args = args_of(&g);

        // 1. Reverse source transformation.
        let grad = reverse_diff(&g.function).unwrap();
        let mut gargs = args.clone();
        gargs.push(ArgValue::F(0.0));
        gargs.push(ArgValue::F(0.0));
        let rev = run_with(&compile_default(&grad).unwrap(), gargs, &exec_opts).unwrap();
        let (rx, ry) = (rev.args[3].as_f(), rev.args[4].as_f());

        // 2. Runtime taping.
        let tape = analyze(&g.function, &args, &AdaptOptions::default()).unwrap();
        let tx = tape.gradient[0].1.as_f();
        let ty = tape.gradient[1].1.as_f();
        assert!(
            close(rx, tx) && close(ry, ty),
            "seed {seed}: reverse ({rx},{ry}) vs tape ({tx},{ty})\n{}",
            g.source
        );

        // 3. Forward source transformation.
        for (wrt, rev_val) in [("x", rx), ("y", ry)] {
            let fwd = forward_diff(&g.function, wrt).unwrap();
            let f = run_with(&compile_default(&fwd).unwrap(), args.clone(), &exec_opts)
                .unwrap()
                .ret_f();
            assert!(
                close(rev_val, f),
                "seed {seed} wrt {wrt}: reverse {rev_val} vs forward {f}\n{}",
                g.source
            );
        }
    }
}

#[test]
fn chef_taylor_estimates_agree_with_tracer_taylor() {
    // Same Taylor (eq. 1) model on both engines — the estimates must
    // agree to rounding, establishing the "produces the same analysis
    // results" claim on arbitrary programs, not just the benchmarks.
    use chef_fp::core::prelude::*;
    let cfg = GenConfig {
        loops: true,
        branches: true,
        ..Default::default()
    };
    for seed in 900..930 {
        let g = generate(seed, &cfg);
        let args = args_of(&g);
        let program = chef_fp::ir::ast::Program::of(vec![g.function.clone()]);
        let mut model = AdaptModel::to_f32();
        let est = match estimate_error_with(&program, "gen", &mut model, &Default::default()) {
            Ok(e) => e,
            Err(e) => panic!("seed {seed}: {e}"),
        };
        let chef = est.execute(&args).unwrap();
        let adapt = analyze(&g.function, &args, &AdaptOptions::default()).unwrap();
        // On adversarial random programs with `float` intermediates,
        // individual |x̄·gap| terms can differ noticeably between the two
        // adjoint styles when an adjoint nearly cancels (the benchmark
        // kernels agree to 1e-6 — see tests/end_to_end.rs). The bar here
        // is factor-of-2 agreement, i.e. same order of magnitude.
        let (lo, hi) = if chef.fp_error <= adapt.fp_error {
            (chef.fp_error, adapt.fp_error)
        } else {
            (adapt.fp_error, chef.fp_error)
        };
        assert!(
            hi <= lo * 2.0 + 1e-12,
            "seed {seed}: chef {} vs adapt {}\n{}",
            chef.fp_error,
            adapt.fp_error,
            g.source
        );
    }
}
