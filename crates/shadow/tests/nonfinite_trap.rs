//! Non-finite traps through the shadow oracle on the adversarial
//! corpus (`chef_apps::adversarial`): a demoted accumulator that
//! overflows must trap at a *pinned* instruction with the variable
//! named — identically in the enum and packed dispatch loops — and a
//! NaN input must be attributed to the parameter at entry, instead of
//! either flowing silently into the report.

use chef_apps::adversarial::threshold;
use chef_exec::bytecode::CompiledFunction;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_exec::shadow::run_shadow;
use chef_exec::vm::TrapKind;
use chef_ir::types::FloatTy;
use chef_shadow::{shadow_run, OracleOptions};

/// The threshold kernel with its flip set (`s`) demoted to `f32`.
fn demoted(pack: bool) -> CompiledFunction {
    let p = threshold::program();
    let f = p.function(threshold::NAME).expect("kernel exists");
    let mut pm = PrecisionMap::empty();
    for (id, v) in f.vars_iter() {
        if threshold::FLIP_VARS.contains(&v.name.as_str()) {
            pm.set(id, FloatTy::F32);
        }
    }
    compile(
        f,
        &CompileOptions {
            precisions: pm,
            fuse: true,
            pack,
            ..Default::default()
        },
    )
    .expect("kernel compiles")
}

/// 100 × 1e37 overflows the `f32`-rounded accumulator mid-loop
/// (`f32::MAX` ≈ 3.4e38) while the `f64` shadow stays finite — the
/// adversarial overflow input for [`threshold`].
fn overflow_args() -> Vec<ArgValue> {
    threshold::args(1e37, 100)
}

#[test]
fn overflowing_demoted_accumulator_traps_at_a_pinned_site() {
    let opts = ExecOptions {
        trap_on_nonfinite: true,
        ..Default::default()
    };
    let mut pinned: Option<(usize, String)> = None;
    for pack in [true, false] {
        let c = demoted(pack);
        let err = run_shadow::<f64>(&c, overflow_args(), &opts)
            .expect_err("the overflowing accumulator must trap");
        let TrapKind::NonFinite { value, op, var } = &err.kind else {
            panic!("expected a NonFinite trap, got {:?}", err.kind);
        };
        assert!(value.is_infinite(), "overflow produces ±Inf, got {value}");
        assert_eq!(var.as_deref(), Some("s"), "attributed to the accumulator");
        assert!(
            op.contains("Add") || op.contains("Round"),
            "the producing op is the rounded accumulation, got `{op}`"
        );
        // The same site in both dispatch loops, and on a re-run.
        let again = run_shadow::<f64>(&c, overflow_args(), &opts)
            .expect_err("deterministic")
            .pc;
        assert_eq!(again, err.pc);
        match &pinned {
            None => pinned = Some((err.pc, op.clone())),
            Some((pc, op0)) => {
                assert_eq!(*pc, err.pc, "enum and packed loops agree on the pc");
                assert_eq!(op0, op);
            }
        }
    }
}

#[test]
fn nan_input_is_attributed_to_the_parameter_at_entry() {
    let opts = ExecOptions {
        trap_on_nonfinite: true,
        ..Default::default()
    };
    let err = run_shadow::<f64>(&demoted(true), threshold::args(f64::NAN, 3), &opts)
        .expect_err("a NaN argument must trap before the first instruction");
    let TrapKind::NonFinite { value, op, var } = &err.kind else {
        panic!("expected a NonFinite trap, got {:?}", err.kind);
    };
    assert!(value.is_nan());
    assert_eq!(op, "bind_args");
    assert_eq!(var.as_deref(), Some("x"));
    assert_eq!(err.pc, 0);
}

#[test]
fn without_the_flag_the_overflow_flows_into_the_report() {
    // Default options: IEEE semantics. The demoted primal overflows to
    // +Inf, the f64 shadow stays finite, and the report carries an
    // infinite measured error — exactly the silent escape
    // `trap_on_nonfinite` exists to catch at its source.
    let p = threshold::program();
    let f = p.function(threshold::NAME).expect("kernel exists");
    let mut pm = PrecisionMap::empty();
    for (id, v) in f.vars_iter() {
        if threshold::FLIP_VARS.contains(&v.name.as_str()) {
            pm.set(id, FloatTy::F32);
        }
    }
    let rep = shadow_run(
        &p,
        threshold::NAME,
        &overflow_args(),
        &pm,
        &OracleOptions::default(),
    )
    .expect("without the flag the run completes");
    assert!(rep.output_error.is_infinite());

    // The same run through the oracle surface with the flag on traps,
    // wrapped as `ChefError::Trap` with the attribution intact.
    let mut strict = OracleOptions::default();
    strict.exec.trap_on_nonfinite = true;
    let err = shadow_run(&p, threshold::NAME, &overflow_args(), &pm, &strict)
        .expect_err("with the flag the run traps");
    let chef_core::prelude::ChefError::Trap(trap) = err else {
        panic!("expected ChefError::Trap, got {err}");
    };
    assert!(matches!(
        trap.kind,
        TrapKind::NonFinite { var: Some(ref v), .. } if v == "s"
    ));
}
