//! Differential test: the CFG optimizer tier must be unobservable under
//! the double-double shadow oracle too.
//!
//! The f64-shadow leg lives in `chef-exec`'s own `cfg_differential`
//! suite; DD is defined here in `chef-shadow`, so the high-precision leg
//! rides along with the oracle. Same policy: the primal stream (return,
//! args) is bit-identical, and the divergence *report* — split count,
//! decision sequence, per-variable attribution — is preserved. Split
//! coordinates and local-error accounting may move (hoisted instructions
//! live at new pcs and execute once per loop entry).

use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_exec::shadow::run_shadow;
use chef_ir::ast::{Function, Program};
use chef_ir::types::{ElemTy, FloatTy, Type};
use chef_shadow::DD;

fn kernels() -> Vec<(&'static str, Program, &'static str, Vec<ArgValue>)> {
    vec![
        (
            "arclen",
            chef_apps::arclen::program(),
            chef_apps::arclen::NAME,
            chef_apps::arclen::args(300),
        ),
        (
            "simpsons",
            chef_apps::simpsons::program(),
            chef_apps::simpsons::NAME,
            chef_apps::simpsons::args(300),
        ),
        (
            "blackscholes",
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
            chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(30, 42)),
        ),
    ]
}

fn inlined_kernel(program: &Program, func: &str) -> Function {
    chef_passes::inline_program(program)
        .expect("kernel inlines")
        .function(func)
        .expect("kernel exists")
        .clone()
}

fn demote_all(func: &Function) -> PrecisionMap {
    let mut pm = PrecisionMap::empty();
    for (id, v) in func.vars_iter() {
        if let Type::Float(_) | Type::Array(ElemTy::Float(_)) = v.ty {
            pm.set(id, FloatTy::F32);
        }
    }
    pm
}

#[test]
fn demoted_kernels_preserve_the_dd_shadow_report_cfg_on_vs_off() {
    for (label, program, name, args) in kernels() {
        let func = inlined_kernel(&program, name);
        let pm = demote_all(&func);
        for pack in [true, false] {
            let label = format!("{label}/pack={pack}");
            let mk = |cfg_on: bool| {
                compile(
                    &func,
                    &CompileOptions {
                        precisions: pm.clone(),
                        fuse: true,
                        cfg: cfg_on,
                        pack,
                    },
                )
                .expect("kernel compiles")
            };
            let opts = ExecOptions {
                max_instrs: Some(500_000_000),
                ..Default::default()
            };
            let sa = run_shadow::<DD>(&mk(false), args.clone(), &opts)
                .unwrap_or_else(|t| panic!("{label}: cfg-off trapped: {t}"));
            let sb = run_shadow::<DD>(&mk(true), args.clone(), &opts)
                .unwrap_or_else(|t| panic!("{label}: cfg-on trapped: {t}"));

            assert_eq!(
                sa.ret_f().to_bits(),
                sb.ret_f().to_bits(),
                "{label}: primal return differs"
            );
            match (sa.shadow_ret, sb.shadow_ret) {
                (Some(x), Some(y)) => {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{label}: DD shadow return differs"
                    )
                }
                (x, y) => assert_eq!(x, y, "{label}: DD shadow return differs"),
            }
            assert_eq!(
                sa.divergence_count, sb.divergence_count,
                "{label}: split count differs"
            );
            let ka: Vec<_> = sa.divergence.iter().map(|d| d.kind).collect();
            let kb: Vec<_> = sb.divergence.iter().map(|d| d.kind).collect();
            assert_eq!(ka, kb, "{label}: split decision sequence differs");
            assert_eq!(
                sa.var_divergence, sb.var_divergence,
                "{label}: per-variable split attribution differs"
            );
        }
    }
}
