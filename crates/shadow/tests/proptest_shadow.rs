//! Property tests for the shadow oracle on randomly generated
//! straight-line kernels:
//!
//! * the measured ground-truth error is always finite on the generated
//!   (division-free, bounded-magnitude) kernels,
//! * it is exactly zero when no demotion is applied,
//! * the primal stream is bit-identical to a plain run of the demoted
//!   compilation, and the `f64` shadow is bit-identical to a plain run
//!   of the *undemoted* compilation (the differential pin that makes the
//!   one-pass oracle equal to the classic two-run validation), and
//! * on kernels built from **dataflow-disjoint chains**, the accumulated
//!   measured rounding error is monotone non-decreasing as more
//!   variables (whole chains) are demoted — disjointness is what makes
//!   monotonicity exact: demoting one chain cannot perturb another
//!   chain's rounding sites, and the `f64`-mode final sum contributes no
//!   rounding of its own,
//! * and, on randomly generated **branching** kernels (bounded `for` /
//!   `while` loops, float-threshold branches, piecewise tails):
//!   divergence reports are bit-identical between the enum and packed
//!   dispatch loops, the primal stream still equals a plain run of the
//!   demoted compilation even when the trace flips, and an undemoted
//!   `f64`-shadow run never reports a divergence (shadow ≡ primal).

use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_exec::shadow::run_shadow;
use chef_ir::ast::{Program, VarId};
use chef_ir::types::FloatTy;
use chef_shadow::{shadow_run, OracleOptions};
use proptest::prelude::*;
use std::fmt::Write as _;

/// Deterministic generator (SplitMix64) seeded per case.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
    fn unit(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
    /// A full-precision literal in `[0.5, 2.0)` (virtually never exactly
    /// representable in `f32`, so demotion sites genuinely round).
    fn lit(&mut self) -> f64 {
        0.5 + self.unit() * 1.5
    }
}

fn parse(src: &str) -> Program {
    let mut p = chef_ir::parser::parse_program(src).unwrap_or_else(|e| panic!("{e}\n{src}"));
    chef_ir::typeck::check_program(&mut p).unwrap_or_else(|e| panic!("{e:?}\n{src}"));
    p
}

/// Ids of the named variables in `names` for function `f`.
fn ids_of(p: &Program, names: &[String]) -> Vec<VarId> {
    p.function("f")
        .unwrap()
        .vars_iter()
        .filter(|(_, v)| names.contains(&v.name))
        .map(|(id, _)| id)
        .collect()
}

fn config_of(p: &Program, names: &[String]) -> PrecisionMap {
    let mut pm = PrecisionMap::empty();
    for id in ids_of(p, names) {
        pm.set(id, FloatTy::F32);
    }
    pm
}

/// A random straight-line kernel with shared dataflow: `n_vars`
/// variables over `n_inputs` inputs, ops `+ - *` (division-free so every
/// value stays finite), returning the last variable. Returns the source
/// and the variable names.
fn shared_kernel(g: &mut Gen, n_inputs: usize, n_vars: usize) -> (String, Vec<String>) {
    let mut src = String::from("double f(");
    for i in 0..n_inputs {
        let _ = write!(src, "{}double x{i}", if i > 0 { ", " } else { "" });
    }
    src.push_str(") {\n");
    let mut names = Vec::new();
    for k in 0..n_vars {
        // term: input, literal, or an earlier variable.
        let term = |g: &mut Gen, src: &mut String| match g.below(3) {
            0 => {
                let _ = write!(src, "x{}", g.below(n_inputs));
            }
            1 => {
                let _ = write!(src, "{:.17}", g.lit());
            }
            _ if k > 0 => {
                let _ = write!(src, "v{}", g.below(k));
            }
            _ => {
                let _ = write!(src, "x{}", g.below(n_inputs));
            }
        };
        let _ = write!(src, "    double v{k} = ");
        term(g, &mut src);
        for _ in 0..(1 + g.below(2)) {
            src.push_str(match g.below(3) {
                0 => " + ",
                1 => " - ",
                _ => " * ",
            });
            term(g, &mut src);
        }
        src.push_str(";\n");
        names.push(format!("v{k}"));
    }
    let _ = write!(src, "    return v{};\n}}\n", n_vars - 1);
    for i in 0..n_inputs {
        names.push(format!("x{i}"));
    }
    (src, names)
}

/// A kernel made of `n_chains` dataflow-disjoint chains (chain `c` only
/// reads its own input `x{c}` and its own earlier variables), summed in
/// `f64` at the end. Returns the source and the per-chain variable names
/// (input included).
fn chain_kernel(g: &mut Gen, n_chains: usize, chain_len: usize) -> (String, Vec<Vec<String>>) {
    let mut src = String::from("double f(");
    for c in 0..n_chains {
        let _ = write!(src, "{}double x{c}", if c > 0 { ", " } else { "" });
    }
    src.push_str(") {\n");
    let mut chains = Vec::new();
    for c in 0..n_chains {
        let mut vars = vec![format!("x{c}")];
        let _ = writeln!(
            src,
            "    double v{c}_0 = x{c} * {:.17} + {:.17};",
            g.lit(),
            g.lit()
        );
        vars.push(format!("v{c}_0"));
        for k in 1..chain_len {
            let op = if g.below(2) == 0 { "+" } else { "*" };
            let term = match g.below(3) {
                0 => format!("x{c}"),
                1 => format!("{:.17}", g.lit()),
                _ => format!("v{c}_{}", g.below(k)),
            };
            let _ = writeln!(src, "    double v{c}_{k} = v{c}_{} {op} {term};", k - 1);
            vars.push(format!("v{c}_{k}"));
        }
        chains.push(vars);
    }
    src.push_str("    double out = 0.0;\n");
    for c in 0..n_chains {
        let _ = writeln!(src, "    out = out + v{c}_{};", chain_len - 1);
    }
    src.push_str("    return out;\n}\n");
    (src, chains)
}

/// A random *branching* kernel built so demotions genuinely flip
/// decisions on a healthy fraction of seeds: `part` accumulates `K`
/// steps, `acc` continues for `K` more (a `for` or a bounded `while`
/// shape), and the threshold branch compares `acc` against `chk = part +
/// part` — algebraically equal, differently associated. The two sides
/// land within ~1 ulp of each other at full precision and within ~an f32
/// ulp when the accumulators are demoted, so the comparison's sign is
/// decided by exactly the rounding a demotion perturbs. An optional
/// piecewise tail repeats the trick on the branched value. Returns the
/// source and the names of the float variables.
fn branching_kernel(g: &mut Gen, n_inputs: usize) -> (String, Vec<String>) {
    let mut src = String::from("double f(");
    for i in 0..n_inputs {
        let _ = write!(src, "{}double x{i}", if i > 0 { ", " } else { "" });
    }
    src.push_str(") {\n");
    let mut names: Vec<String> = (0..n_inputs).map(|i| format!("x{i}")).collect();
    let step = format!("x{} * {:.17}", g.below(n_inputs), 0.03 + g.unit() * 0.05);
    let iters = 8 + g.below(48);
    src.push_str("    double part = 0.0;\n");
    names.push("part".into());
    let _ = writeln!(
        src,
        "    for (int i = 0; i < {iters}; i++) {{ part = part + {step}; }}"
    );
    src.push_str("    double acc = part;\n");
    names.push("acc".into());
    if g.below(2) == 0 {
        let _ = writeln!(
            src,
            "    for (int i = 0; i < {iters}; i++) {{ acc = acc + {step}; }}"
        );
    } else {
        // The same trip count, as a while shape: inputs are ≥ 0.5, so
        // the step is bounded below and the loop terminates.
        let _ = writeln!(
            src,
            "    while (acc < part * 1.99) {{ acc = acc + {step}; }}"
        );
    }
    src.push_str("    double chk = part + part;\n");
    names.push("chk".into());
    src.push_str("    double r = 0.0;\n");
    names.push("r".into());
    let _ = writeln!(
        src,
        "    if (acc < chk) {{ r = acc * {:.17}; }} else {{ r = acc + {:.17}; }}",
        g.lit(),
        g.lit()
    );
    if g.below(2) == 0 {
        // Piecewise tail: again a near-tie — `acc` against a jittered
        // rescaling of `chk` (the jitter sits at f32-rounding scale, so
        // the knot lands inside the demotion's error band).
        src.push_str("    double w = 0.0;\n");
        names.push("w".into());
        let _ = writeln!(
            src,
            "    if (acc * 0.5 <= chk * {:.17}) {{ w = r + {:.17}; }} else {{ w = r * {:.17}; }}",
            0.5 * (1.0 + (g.unit() - 0.5) * 2e-7),
            g.lit(),
            g.lit()
        );
        src.push_str("    return w;\n}\n");
    } else {
        src.push_str("    return r;\n}\n");
    }
    (src, names)
}

fn inputs(g: &mut Gen, n: usize) -> Vec<ArgValue> {
    (0..n).map(|_| ArgValue::F(g.lit())).collect()
}

fn plain_run(p: &Program, pm: &PrecisionMap, args: &[ArgValue]) -> f64 {
    let c = compile(
        p.function("f").unwrap(),
        &CompileOptions {
            precisions: pm.clone(),
            ..Default::default()
        },
    )
    .unwrap();
    run(&c, args.to_vec()).unwrap().ret_f()
}

/// The branching generator is only a meaningful test bed if a healthy
/// fraction of its seeds *actually* flips a decision under demotion —
/// otherwise the packed-vs-enum divergence equality would hold vacuously.
/// Deterministic (fixed seed range), so this is a generator-coverage pin,
/// not a flaky statistical test.
#[test]
fn branching_generator_produces_divergent_seeds() {
    let mut diverging = 0usize;
    for seed in 1u64..=96 {
        let mut g = Gen(seed);
        let n_inputs = 1 + g.below(3);
        let (src, names) = branching_kernel(&mut g, n_inputs);
        let p = parse(&src);
        let args = inputs(&mut g, n_inputs);
        let demoted: Vec<String> = names.iter().filter(|n| *n != "r").cloned().collect();
        let pm = config_of(&p, &demoted);
        let rep = shadow_run(&p, "f", &args, &pm, &OracleOptions::default())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        if rep.diverged() {
            diverging += 1;
        }
    }
    assert!(
        diverging >= 5,
        "only {diverging}/96 seeds diverge — the generator went vacuous"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn oracle_is_finite_and_differentially_sound(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let n_inputs = 1 + g.below(3);
        let n_vars = 2 + g.below(6);
        let (src, names) = shared_kernel(&mut g, n_inputs, n_vars);
        let p = parse(&src);
        let args = inputs(&mut g, n_inputs);
        // A random non-empty demotion subset.
        let demoted: Vec<String> = names
            .iter()
            .filter(|_| g.below(2) == 0)
            .cloned()
            .collect();
        let pm = config_of(&p, &demoted);
        let rep = shadow_run(&p, "f", &args, &pm, &OracleOptions::default())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert!(rep.output_error.is_finite(), "{src}");
        prop_assert!(rep.acc_error.is_finite(), "{src}");
        prop_assert_eq!(rep.nonfinite_samples, 0);
        // Differential pin: primal == plain demoted run, shadow == plain
        // undemoted run, both bit-exact (straight-line code: no trace
        // divergence is possible).
        let demoted_run = plain_run(&p, &pm, &args);
        let baseline_run = plain_run(&p, &PrecisionMap::empty(), &args);
        prop_assert_eq!(rep.primal.to_bits(), demoted_run.to_bits(), "{}", src);
        prop_assert_eq!(rep.shadow.to_bits(), baseline_run.to_bits(), "{}", src);
    }

    #[test]
    fn no_demotion_measures_exactly_zero(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let n_inputs = 1 + g.below(3);
        let n_vars = 2 + g.below(6);
        let (src, _) = shared_kernel(&mut g, n_inputs, n_vars);
        let p = parse(&src);
        let args = inputs(&mut g, n_inputs);
        let rep = shadow_run(&p, "f", &args, &PrecisionMap::empty(), &OracleOptions::default())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert_eq!(rep.output_error, 0.0, "{}", src);
        prop_assert_eq!(rep.acc_error, 0.0, "{}", src);
        prop_assert!(rep.per_instruction.is_empty(), "{src}");
        prop_assert!(rep.per_variable.is_empty(), "{src}");
    }

    #[test]
    fn branching_kernels_never_diverge_without_demotion(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let n_inputs = 1 + g.below(3);
        let (src, _) = branching_kernel(&mut g, n_inputs);
        let p = parse(&src);
        let args = inputs(&mut g, n_inputs);
        let rep = shadow_run(&p, "f", &args, &PrecisionMap::empty(), &OracleOptions::default())
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert!(!rep.diverged(), "{src}");
        prop_assert!(rep.divergence.is_empty(), "{src}");
        prop_assert!(rep.per_variable_divergence.is_empty(), "{src}");
        prop_assert_eq!(rep.output_error, 0.0, "{}", src);
        prop_assert_eq!(rep.acc_error, 0.0, "{}", src);
    }

    #[test]
    fn branching_divergence_reports_are_identical_packed_vs_enum(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let n_inputs = 1 + g.below(3);
        let (src, names) = branching_kernel(&mut g, n_inputs);
        let p = parse(&src);
        let args = inputs(&mut g, n_inputs);
        // A random non-empty demotion subset (always include `acc` so a
        // healthy fraction of seeds genuinely flips a decision).
        let mut demoted: Vec<String> = names
            .iter()
            .filter(|_| g.below(2) == 0)
            .cloned()
            .collect();
        if !demoted.contains(&"acc".to_string()) {
            demoted.push("acc".into());
        }
        let pm = config_of(&p, &demoted);
        let mk = |pack: bool| {
            compile(
                p.function("f").unwrap(),
                &CompileOptions { precisions: pm.clone(), pack, ..Default::default() },
            )
            .unwrap()
        };
        let (packed, enum_only) = (mk(true), mk(false));
        prop_assert!(packed.packed.is_some() && enum_only.packed.is_none());
        let opts = ExecOptions::default();
        let a = run_shadow::<f64>(&packed, args.clone(), &opts)
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        let b = run_shadow::<f64>(&enum_only, args.clone(), &opts)
            .unwrap_or_else(|e| panic!("{e}\n{src}"));
        prop_assert_eq!(a.divergence_count, b.divergence_count, "{}", src);
        prop_assert_eq!(&a.divergence, &b.divergence, "{}", src);
        prop_assert_eq!(&a.var_divergence, &b.var_divergence, "{}", src);
        prop_assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "{}", src);
        prop_assert_eq!(a.shadow_f().to_bits(), b.shadow_f().to_bits(), "{}", src);
        prop_assert_eq!(a.acc_error.to_bits(), b.acc_error.to_bits(), "{}", src);
        // Even when the trace flips, the primal stream is authoritative:
        // it must equal a plain run of the same demoted compilation.
        let plain = plain_run(&p, &pm, &args);
        prop_assert_eq!(a.ret_f().to_bits(), plain.to_bits(), "{}", src);
    }

    #[test]
    fn accumulated_error_is_monotone_in_nested_demotion_sets(seed in 0u64..(1u64 << 60)) {
        let mut g = Gen(seed | 1);
        let n_chains = 2 + g.below(3);
        let chain_len = 2 + g.below(3);
        let (src, chains) = chain_kernel(&mut g, n_chains, chain_len);
        let p = parse(&src);
        let args = inputs(&mut g, n_chains);
        // Nested sets: demote whole chains, one more per step.
        let mut demoted: Vec<String> = Vec::new();
        let mut prev_acc = 0.0f64;
        for (step, chain) in chains.iter().enumerate() {
            demoted.extend(chain.iter().cloned());
            let pm = config_of(&p, &demoted);
            let rep = shadow_run(&p, "f", &args, &pm, &OracleOptions::default())
                .unwrap_or_else(|e| panic!("{e}\n{src}"));
            prop_assert!(rep.output_error.is_finite(), "{src}");
            prop_assert!(
                rep.acc_error >= prev_acc,
                "step {step}: acc dropped {prev_acc} -> {} on\n{src}",
                rep.acc_error
            );
            prev_acc = rep.acc_error;
        }
        // Demoting everything produced measurable rounding somewhere.
        prop_assert!(prev_acc > 0.0, "{src}");
    }
}
