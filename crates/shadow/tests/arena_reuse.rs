//! Dedicated tests for the machine arenas (`chef_exec::arena`): a pooled
//! machine checked out, used, returned and checked out again — across
//! **different** compiled functions, including a branch-flipping one —
//! must be observationally identical to a fresh machine, for the plain
//! VM and for both shadow modes (`f64` and double-double). The pool
//! itself must recycle instead of growing.

use chef_apps::adversarial;
use chef_exec::arena::{MachineArena, ShadowMachineArena};
use chef_exec::bytecode::CompiledFunction;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_exec::shadow::{ShadowMachine, ShadowNum, ShadowOutcome};
use chef_exec::vm::Machine;
use chef_ir::types::FloatTy;
use chef_shadow::DD;

/// Compiles `func` of `program` under an `f32` demotion of `vars`.
fn compiled(p: &chef_ir::ast::Program, func: &str, vars: &[&str]) -> CompiledFunction {
    let f = p.function(func).expect("function exists");
    let mut pm = PrecisionMap::empty();
    for (id, v) in f.vars_iter() {
        if vars.contains(&v.name.as_str()) {
            pm.set(id, FloatTy::F32);
        }
    }
    compile(
        f,
        &CompileOptions {
            precisions: pm,
            ..Default::default()
        },
    )
    .expect("compiles")
}

/// The workload: three *different* functions — one diverging under its
/// demotion, one branch-stable, one straight-line — each with its
/// arguments. Exercises re-sizing of every buffer class across reuse.
fn workload() -> Vec<(CompiledFunction, Vec<ArgValue>)> {
    let threshold = adversarial::threshold::program();
    let piecewise = adversarial::piecewise::program();
    let straight = {
        let mut p = chef_ir::parser::parse_program(
            "double g(double x) { double t = x * 0.1234567890123; double u = sqrt(t * t + 1.0); return u; }",
        )
        .unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        p
    };
    vec![
        (
            compiled(&threshold, adversarial::threshold::NAME, &["s"]),
            adversarial::threshold::flip_args(),
        ),
        (
            compiled(&piecewise, adversarial::piecewise::NAME, &["y"]),
            adversarial::piecewise::stable_args(),
        ),
        (compiled(&straight, "g", &["t"]), vec![ArgValue::F(1.7)]),
    ]
}

fn assert_outcomes_bit_equal(label: &str, a: &ShadowOutcome, b: &ShadowOutcome) {
    assert_eq!(a.ret_f().to_bits(), b.ret_f().to_bits(), "{label}: primal");
    assert_eq!(
        a.shadow_f().to_bits(),
        b.shadow_f().to_bits(),
        "{label}: shadow"
    );
    assert_eq!(
        a.acc_error.to_bits(),
        b.acc_error.to_bits(),
        "{label}: acc_error"
    );
    assert_eq!(a.stats, b.stats, "{label}: stats");
    assert_eq!(a.samples, b.samples, "{label}: samples");
    assert_eq!(a.divergence_count, b.divergence_count, "{label}: div count");
    assert_eq!(a.divergence, b.divergence, "{label}: div points");
    assert_eq!(
        a.var_divergence, b.var_divergence,
        "{label}: div attribution"
    );
    assert_eq!(a.var_error.len(), b.var_error.len(), "{label}: var table");
    for ((xn, xe), (yn, ye)) in a.var_error.iter().zip(&b.var_error) {
        assert_eq!(xn, yn, "{label}: var name");
        assert_eq!(xe.to_bits(), ye.to_bits(), "{label}: var error {xn}");
    }
}

fn shadow_arena_roundtrip<S: ShadowNum>(label: &str) {
    let arena = ShadowMachineArena::<S>::new();
    let opts = ExecOptions::default();
    // Two passes over the whole workload: the second pass reuses the
    // machine the first one parked, with buffers sized by whichever
    // function ran last — exactly the cross-function hazard.
    for pass in 0..2 {
        for (k, (func, args)) in workload().iter().enumerate() {
            let pooled = {
                let mut m = arena.checkout();
                m.run_reused(func, args.clone(), &opts)
                    .unwrap_or_else(|t| panic!("{label}: {t}"))
            };
            let fresh = ShadowMachine::<S>::new()
                .run_reused(func, args.clone(), &opts)
                .unwrap();
            assert_outcomes_bit_equal(&format!("{label}/pass{pass}/fn{k}"), &pooled, &fresh);
        }
        // One machine serves the whole serial pass.
        assert_eq!(arena.idle(), 1, "{label}: pool must recycle, not grow");
    }
}

#[test]
fn f64_shadow_arena_reuse_is_bit_identical_across_functions() {
    shadow_arena_roundtrip::<f64>("f64");
}

#[test]
fn dd_shadow_arena_reuse_is_bit_identical_across_functions() {
    shadow_arena_roundtrip::<DD>("dd");
}

#[test]
fn plain_arena_reuse_is_bit_identical_across_functions() {
    let arena = MachineArena::new();
    let opts = ExecOptions::default();
    for pass in 0..2 {
        for (k, (func, args)) in workload().iter().enumerate() {
            let pooled = {
                let mut m = arena.checkout();
                m.run_reused(func, args.clone(), &opts).unwrap()
            };
            let fresh = Machine::new()
                .run_reused(func, args.clone(), &opts)
                .unwrap();
            assert_eq!(
                pooled.ret_f().to_bits(),
                fresh.ret_f().to_bits(),
                "pass{pass}/fn{k}"
            );
            assert_eq!(pooled.stats, fresh.stats, "pass{pass}/fn{k}");
        }
        assert_eq!(arena.idle(), 1);
    }
}

#[test]
fn concurrent_shadow_checkouts_stay_distinct_then_pool() {
    let arena = ShadowMachineArena::<f64>::new();
    let w = workload();
    let opts = ExecOptions::default();
    // Hold two machines at once (the batch-worker shape): each runs a
    // different function; outcomes still match fresh machines.
    let mut a = arena.checkout();
    let mut b = arena.checkout();
    let ra = a.run_reused(&w[0].0, w[0].1.clone(), &opts).unwrap();
    let rb = b.run_reused(&w[2].0, w[2].1.clone(), &opts).unwrap();
    let fa = ShadowMachine::<f64>::new()
        .run_reused(&w[0].0, w[0].1.clone(), &opts)
        .unwrap();
    let fb = ShadowMachine::<f64>::new()
        .run_reused(&w[2].0, w[2].1.clone(), &opts)
        .unwrap();
    assert_outcomes_bit_equal("concurrent/a", &ra, &fa);
    assert_outcomes_bit_equal("concurrent/b", &rb, &fb);
    assert!(ra.diverged(), "the threshold flip survives pooling");
    assert!(!rb.diverged());
    drop(a);
    drop(b);
    assert_eq!(arena.idle(), 2);
    // Further checkouts drain the pool instead of growing it.
    let _c = arena.checkout();
    assert_eq!(arena.idle(), 1);
}
