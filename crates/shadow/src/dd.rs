//! Double-double ("DD") arithmetic: an unevaluated sum `hi + lo` of two
//! `f64`s carrying ~106 significand bits.
//!
//! This is the classic Dekker/Knuth error-free-transformation kit
//! (`two_sum`, `two_prod` via FMA) as used by QD/Herbgrind-style shadow
//! values. The representation is kept *normalized*: `|lo| ≤ ulp(hi)/2`,
//! so `hi` alone is the correctly rounded `f64` of the full value.
//!
//! DD is the shadow type for measuring an **f64 program's own rounding
//! error**: with `S = DD` every `f64` add/sub/mul/div in the primal
//! stream shows its ~`ulp/2` local error, which the plain `f64` shadow
//! (exact for those ops) cannot see.
//!
//! Intrinsics (`sin`, `exp`, …) evaluate through `f64` — a documented
//! precision floor: their local error reads as zero in DD mode. `sqrt`
//! is refined to full DD precision with one Newton step (gated on the
//! intrinsic not being relinked to an approximate implementation), and
//! `fabs`/`fmin`/`fmax` are exact.

use chef_exec::intrinsics::ApproxConfig;
use chef_exec::shadow::ShadowNum;
use chef_ir::ast::Intrinsic;

/// A double-double value (`hi + lo`, normalized).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct DD {
    /// Leading component: the value rounded to `f64`.
    pub hi: f64,
    /// Trailing error term, `|lo| ≤ ulp(hi)/2`.
    pub lo: f64,
}

/// Knuth two-sum: `a + b = s + err` exactly, no magnitude precondition.
#[inline]
fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let bb = s - a;
    let err = (a - (s - bb)) + (b - bb);
    (s, err)
}

/// Dekker fast two-sum: requires `|a| ≥ |b|` (or a == 0).
#[inline]
fn quick_two_sum(a: f64, b: f64) -> (f64, f64) {
    let s = a + b;
    let err = b - (s - a);
    (s, err)
}

/// `a · b = p + err` exactly, via FMA.
#[inline]
fn two_prod(a: f64, b: f64) -> (f64, f64) {
    let p = a * b;
    let err = a.mul_add(b, -p);
    (p, err)
}

impl DD {
    /// The exact DD for an `f64`.
    #[inline]
    pub fn new(hi: f64) -> Self {
        DD { hi, lo: 0.0 }
    }

    /// Builds a normalized DD from an unevaluated pair.
    #[inline]
    fn norm(hi: f64, lo: f64) -> Self {
        if !hi.is_finite() {
            // ±∞ / NaN absorb the tail (keeps comparisons and to_f64 sane).
            return DD { hi, lo: 0.0 };
        }
        let (hi, lo) = quick_two_sum(hi, lo);
        DD { hi, lo }
    }

    /// DD addition (accurate to ~106 bits).
    #[inline]
    pub fn add(a: DD, b: DD) -> DD {
        let (s, e) = two_sum(a.hi, b.hi);
        DD::norm(s, e + a.lo + b.lo)
    }

    /// DD subtraction.
    #[inline]
    pub fn sub(a: DD, b: DD) -> DD {
        DD::add(
            a,
            DD {
                hi: -b.hi,
                lo: -b.lo,
            },
        )
    }

    /// DD multiplication.
    #[inline]
    pub fn mul(a: DD, b: DD) -> DD {
        let (p, e) = two_prod(a.hi, b.hi);
        DD::norm(p, e + a.hi * b.lo + a.lo * b.hi)
    }

    /// DD division (one refinement step: ~full DD accuracy).
    #[inline]
    pub fn div(a: DD, b: DD) -> DD {
        let q1 = a.hi / b.hi;
        if !q1.is_finite() || b.hi == 0.0 {
            return DD { hi: q1, lo: 0.0 };
        }
        let r = DD::sub(a, DD::mul(b, DD::new(q1)));
        let q2 = (r.hi + r.lo) / b.hi;
        DD::norm(q1, q2)
    }

    /// DD square root (Newton step on the `f64` seed).
    #[inline]
    pub fn sqrt(a: DD) -> DD {
        let x = a.hi.sqrt();
        if x == 0.0 || !x.is_finite() || a.hi < 0.0 {
            return DD::new(x);
        }
        let r = DD::sub(a, DD::mul(DD::new(x), DD::new(x)));
        DD::norm(x, (r.hi + r.lo) / (2.0 * x))
    }
}

impl ShadowNum for DD {
    #[inline]
    fn from_f64(x: f64) -> Self {
        DD::new(x)
    }

    #[inline]
    fn to_f64(self) -> f64 {
        self.hi
    }

    #[inline]
    fn add(a: Self, b: Self) -> Self {
        DD::add(a, b)
    }

    #[inline]
    fn sub(a: Self, b: Self) -> Self {
        DD::sub(a, b)
    }

    #[inline]
    fn mul(a: Self, b: Self) -> Self {
        DD::mul(a, b)
    }

    #[inline]
    fn div(a: Self, b: Self) -> Self {
        DD::div(a, b)
    }

    #[inline]
    fn neg(a: Self) -> Self {
        DD {
            hi: -a.hi,
            lo: -a.lo,
        }
    }

    fn intr1(i: Intrinsic, a: Self, approx: &ApproxConfig) -> Self {
        match i {
            // Exact at DD precision.
            Intrinsic::Fabs => {
                if a.hi < 0.0 || (a.hi == 0.0 && a.lo < 0.0) {
                    <DD as ShadowNum>::neg(a)
                } else {
                    a
                }
            }
            // Full-DD sqrt, unless relinked to an approximate sqrt (then
            // the shadow must follow the approximation to isolate
            // *precision* error from *approximation* error).
            Intrinsic::Sqrt if approx.grade_of("sqrt").is_none() => DD::sqrt(a),
            // Everything else: f64 evaluation (documented precision floor).
            _ => DD::new(chef_exec::intrinsics::eval1(i, a.hi, approx)),
        }
    }

    fn intr2(i: Intrinsic, a: Self, b: Self, approx: &ApproxConfig) -> Self {
        match i {
            // Selection intrinsics are exact: compare at DD precision.
            // IEEE fmin/fmax semantics like the primal's `f64::min/max`:
            // a NaN operand is discarded, not propagated.
            Intrinsic::Fmin => {
                if a.hi.is_nan() {
                    b
                } else if b.hi.is_nan() || (a.hi, a.lo) < (b.hi, b.lo) {
                    a
                } else {
                    b
                }
            }
            Intrinsic::Fmax => {
                if a.hi.is_nan() {
                    b
                } else if b.hi.is_nan() || (a.hi, a.lo) > (b.hi, b.lo) {
                    a
                } else {
                    b
                }
            }
            _ => DD::new(chef_exec::intrinsics::eval2(i, a.hi, b.hi, approx)),
        }
    }

    fn cmp(op: chef_exec::bytecode::CmpOp, a: Self, b: Self) -> bool {
        use chef_exec::bytecode::CmpOp;
        use std::cmp::Ordering;
        // Exact comparison of normalized DDs: `hi` decides, `lo` breaks
        // ties — this is what lets divergence detection see a branch knot
        // the default `to_f64` rounding would quantize away. NaN follows
        // IEEE semantics (false except `!=`), matching the primal.
        let ord = match a.hi.partial_cmp(&b.hi) {
            Some(Ordering::Equal) => a.lo.partial_cmp(&b.lo),
            o => o,
        };
        match ord {
            None => matches!(op, CmpOp::Ne),
            Some(o) => match op {
                CmpOp::Eq => o == Ordering::Equal,
                CmpOp::Ne => o != Ordering::Equal,
                CmpOp::Lt => o == Ordering::Less,
                CmpOp::Le => o != Ordering::Greater,
                CmpOp::Gt => o == Ordering::Greater,
                CmpOp::Ge => o != Ordering::Less,
            },
        }
    }

    fn trunc_i64(a: Self) -> i64 {
        // Exact trunc-toward-zero of `hi + lo`: the default (`hi as
        // i64`) is wrong when the tail crosses an integer boundary the
        // head sits on — DD {hi: 100.0, lo: -1e-14} is 99.99…, which
        // truncates to 99, not 100. `hi - hi.trunc()` is exact, so
        // `rest` is the true fractional part plus the tail.
        let t = a.hi.trunc();
        let rest = (a.hi - t) + a.lo;
        let mut v = t;
        if rest >= 1.0 {
            v += 1.0;
        } else if rest <= -1.0 {
            v -= 1.0;
        } else if v > 0.0 && rest < 0.0 {
            // Positive head, the true value dips below it: 99.99… .
            v -= 1.0;
        } else if v < 0.0 && rest > 0.0 {
            // Negative mirror: −99.99… truncates toward zero to −99.
            v += 1.0;
        }
        v as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn representation_is_normalized_and_exact_on_f64s() {
        for &x in &[0.0, 1.0, -3.75, 1e300, 1e-300, f64::MIN_POSITIVE] {
            let d = DD::new(x);
            assert_eq!(d.hi, x);
            assert_eq!(d.lo, 0.0);
        }
    }

    #[test]
    fn add_captures_the_f64_rounding_error() {
        // 1 + 2^-60 is inexact in f64 but exact in DD.
        let tiny = 2f64.powi(-60);
        let s = DD::add(DD::new(1.0), DD::new(tiny));
        assert_eq!(s.hi, 1.0);
        assert_eq!(s.lo, tiny);
        // Subtracting 1 recovers the tiny exactly.
        let r = DD::sub(s, DD::new(1.0));
        assert_eq!(r.hi, tiny);
        assert_eq!(r.lo, 0.0);
    }

    #[test]
    fn mul_is_error_free_for_the_leading_product() {
        let (a, b) = (1.0 + 2f64.powi(-30), 1.0 - 2f64.powi(-31));
        let p = DD::mul(DD::new(a), DD::new(b));
        // p.hi + p.lo reproduces the exact product a·b: check against the
        // FMA residual.
        let exact_err = a.mul_add(b, -(a * b));
        assert_eq!(p.hi, a * b);
        assert_eq!(p.lo, exact_err);
    }

    #[test]
    fn div_and_sqrt_refine_past_f64() {
        // 1/3 in DD: hi is the f64 quotient, lo the residual correction.
        let q = DD::div(DD::new(1.0), DD::new(3.0));
        assert_eq!(q.hi, 1.0 / 3.0);
        assert!(q.lo != 0.0 && q.lo.abs() < f64::EPSILON);
        // sqrt(2) in DD squared returns to 2 within DD accuracy.
        let s = DD::sqrt(DD::new(2.0));
        let back = DD::mul(s, s);
        let err = DD::sub(back, DD::new(2.0));
        assert!(err.hi.abs() < 1e-30, "{err:?}");
    }

    #[test]
    fn fmin_fmax_discard_nan_like_the_primal() {
        use chef_exec::intrinsics::ApproxConfig;
        use chef_exec::shadow::ShadowNum;
        use chef_ir::ast::Intrinsic;
        let approx = ApproxConfig::exact();
        let nan = DD::new(f64::NAN);
        let five = DD::new(5.0);
        for i in [Intrinsic::Fmin, Intrinsic::Fmax] {
            assert_eq!(<DD as ShadowNum>::intr2(i, nan, five, &approx).hi, 5.0);
            assert_eq!(<DD as ShadowNum>::intr2(i, five, nan, &approx).hi, 5.0);
        }
        // Ordinary ordering still compares at DD precision.
        let lo = DD::add(DD::new(1.0), DD::new(2f64.powi(-70)));
        let hi = DD::add(DD::new(1.0), DD::new(2f64.powi(-60)));
        assert_eq!(
            <DD as ShadowNum>::intr2(Intrinsic::Fmin, lo, hi, &approx),
            lo
        );
        assert_eq!(
            <DD as ShadowNum>::intr2(Intrinsic::Fmax, lo, hi, &approx),
            hi
        );
    }

    #[test]
    fn special_values_do_not_poison() {
        assert!(DD::div(DD::new(1.0), DD::new(0.0)).hi.is_infinite());
        assert!(DD::sqrt(DD::new(-1.0)).hi.is_nan());
        let inf = DD::add(DD::new(f64::MAX), DD::new(f64::MAX));
        assert!(inf.hi.is_infinite());
        assert_eq!(inf.lo, 0.0);
    }

    #[test]
    fn nonfinite_inputs_propagate_through_the_efts() {
        // The raw EFTs compute garbage residuals on non-finite inputs
        // (∞ − ∞ = NaN inside `two_sum`/`two_prod`); `DD::norm` must
        // absorb that into a canonical {hi, lo: 0} so the shadow value
        // stays comparable and `to_f64` stays the primal's answer.
        let inf = DD::new(f64::INFINITY);
        let nan = DD::new(f64::NAN);
        for op in [DD::add, DD::sub, DD::mul, DD::div] {
            let a = op(inf, DD::new(2.0));
            assert!(!a.hi.is_finite(), "hi must mirror the f64 result");
            assert_eq!(a.lo, 0.0, "tail must be absorbed, not NaN");
            let b = op(nan, DD::new(2.0));
            assert!(b.hi.is_nan());
            assert_eq!(b.lo, 0.0);
        }
        // ∞ − ∞ and 0·∞: NaN head, clean tail — exactly like the primal.
        let knot = DD::sub(inf, inf);
        assert!(knot.hi.is_nan());
        assert_eq!(knot.lo, 0.0);
        let zi = DD::mul(DD::new(0.0), inf);
        assert!(zi.hi.is_nan());
        assert_eq!(zi.lo, 0.0);
        // DD overflow that f64 would also overflow: two_prod's FMA
        // residual is NaN (fma(max, max, -inf)), norm must still give
        // {+inf, 0}.
        let big = DD::mul(DD::new(f64::MAX), DD::new(f64::MAX));
        assert_eq!(big.hi, f64::INFINITY);
        assert_eq!(big.lo, 0.0);
        // sqrt(∞) refines through the Newton-step guard.
        assert_eq!(DD::sqrt(inf).hi, f64::INFINITY);
        assert_eq!(DD::sqrt(inf).lo, 0.0);
        assert!(DD::sqrt(nan).hi.is_nan());
    }

    #[test]
    fn exact_comparison_sees_sub_ulp_gaps() {
        use chef_exec::bytecode::CmpOp;
        let half = DD::new(0.5);
        let above = DD::add(half, DD::new(1e-20)); // hi = 0.5, lo = 1e-20
        assert_eq!(above.hi, 0.5, "gap is below one ulp");
        assert!(<DD as ShadowNum>::cmp(CmpOp::Gt, above, half));
        assert!(!<DD as ShadowNum>::cmp(CmpOp::Le, above, half));
        assert!(<DD as ShadowNum>::cmp(CmpOp::Eq, half, DD::new(0.5)));
    }

    #[test]
    fn trunc_i64_is_exact_across_integer_boundaries() {
        let t = <DD as ShadowNum>::trunc_i64;
        // Sub-ulp below an integer head: 100 − 5e-15 is 99.99…, trunc 99
        // (the f64 default would say 100).
        assert_eq!(
            t(DD {
                hi: 100.0,
                lo: -5e-15
            }),
            99
        );
        // Sub-ulp above: still 100.
        assert_eq!(
            t(DD {
                hi: 100.0,
                lo: 5e-15
            }),
            100
        );
        // Tail carries the fraction across: one-ulp-below-100 head plus
        // a tail that pushes the true value past the boundary.
        let near = 100.0 - 2f64.powi(-46); // previous f64 before 100.0
        assert_eq!(
            t(DD {
                hi: near,
                lo: 2e-14
            }),
            100
        );
        assert_eq!(t(DD::new(near)), 99);
        // The same value normalized (head rounds up, tail goes negative)
        // agrees.
        let norm = DD::add(DD::new(near), DD::new(2e-14));
        assert_eq!(norm.hi, 100.0);
        assert_eq!(t(norm), 100);
        // Negative mirror (trunc toward zero).
        assert_eq!(
            t(DD {
                hi: -100.0,
                lo: 5e-15
            }),
            -99
        );
        assert_eq!(
            t(DD {
                hi: -100.0,
                lo: -5e-15
            }),
            -100
        );
        // Plain cases agree with the f64 cast.
        for x in [0.0, 0.75, -0.75, 42.9, -42.9, 1e9 + 0.5] {
            assert_eq!(t(DD::new(x)), x as i64, "{x}");
        }
    }
}
