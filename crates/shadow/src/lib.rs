//! # chef-shadow — shadow-execution error oracle with per-instruction
//! attribution
//!
//! CHEF-FP (the rest of this workspace) *estimates* mixed-precision error
//! from AD-derived sensitivities. This crate is the **measurement side**:
//! a Herbgrind-style shadow-execution oracle that runs a compiled kernel
//! and its high-precision shadow in one fused VM pass
//! ([`chef_exec::shadow`]) and reports
//!
//! * the **ground-truth output error** of any [`PrecisionMap`]
//!   (`|shadow − primal|`, one run instead of the demoted-vs-baseline
//!   pair),
//! * **per-instruction** and **per-variable** error attribution, ranked
//!   by accumulated local rounding error, and
//! * an **estimate-quality** comparison
//!   ([`chef_core::report::EstimateQualityRow`]) of CHEF-FP's estimate
//!   against the measured error — the paper's Table I
//!   estimated-vs-actual relationship as a measured artifact.
//!
//! Two shadow precisions (see [`ShadowMode`]):
//!
//! * [`ShadowMode::F64`] — the shadow runs the same arithmetic unrounded
//!   in `f64`. This is the oracle for *demoted* configurations: the
//!   shadow reproduces the undemoted program bit-for-bit (shared
//!   operation order), so the output error is exactly what a two-run
//!   validation would measure, and every local sample is demotion
//!   rounding.
//! * [`ShadowMode::DD`] — the shadow runs in double-double
//!   ([`dd::DD`], ~106 bits). This measures an `f64` program's *own*
//!   rounding error (the Reduced-Precision-Checking direction), at the
//!   cost of intrinsics being evaluated at `f64` precision (except
//!   `sqrt`/`fabs`/`fmin`/`fmax`, which are exact or refined).
//!
//! See `ARCHITECTURE.md` in this crate for the value representation, the
//! DD arithmetic, and the attribution (pending/commit) semantics.
//!
//! ```
//! use chef_shadow::{shadow_run, OracleOptions};
//! use chef_exec::prelude::*;
//! use chef_ir::ast::VarId;
//! use chef_ir::types::FloatTy;
//!
//! let mut p = chef_ir::parser::parse_program(
//!     "double f(double x) { double t = x * 0.1; return t + x; }").unwrap();
//! chef_ir::typeck::check_program(&mut p).unwrap();
//! let config = PrecisionMap::empty().with(VarId(1), FloatTy::F32); // t
//! let report = chef_shadow::shadow_run(
//!     &p, "f", &[ArgValue::F(1.0 / 3.0)], &config, &OracleOptions::default()).unwrap();
//! assert!(report.output_error > 0.0);       // measured, not estimated
//! assert_eq!(report.per_variable[0].0, "t"); // the demotion is attributed
//! ```

pub mod dd;

pub use chef_exec::shadow::{DivergenceKind, DivergencePoint, MAX_DIVERGENCE_POINTS};
pub use dd::DD;

use chef_core::api::ChefError;
use chef_core::report::EstimateQualityRow;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::shadow::{run_shadow_batch_parallel, ShadowMachine, ShadowOutcome};
use chef_exec::value::ArgValue;
use chef_exec::vm::{ExecOptions, ExecStats};
use chef_ir::ast::Program;

/// Which number type carries the shadow stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ShadowMode {
    /// Unrounded `f64` shadow — the oracle for demoted configurations.
    #[default]
    F64,
    /// Double-double shadow — the oracle for `f64` programs themselves.
    DD,
}

/// Options for the oracle entry points.
#[derive(Clone, Debug, Default)]
pub struct OracleOptions {
    /// Shadow precision.
    pub mode: ShadowMode,
    /// VM options for the primal stream (approximate intrinsics, tape
    /// limits, instruction budget).
    pub exec: ExecOptions,
}

/// One ranked per-instruction attribution entry.
#[derive(Clone, Debug)]
pub struct InstrAttribution {
    /// Instruction index in the compiled stream.
    pub pc: usize,
    /// Disassembled instruction (for reports).
    pub op: String,
    /// Accumulated `|local error|` over all executions of this pc.
    pub sum: f64,
    /// Largest single sample.
    pub max: f64,
    /// Number of non-zero samples.
    pub count: u64,
}

/// The oracle's measured view of one configuration on one input.
#[derive(Clone, Debug)]
pub struct ShadowReport {
    /// Kernel (function) name.
    pub kernel: String,
    /// Primal return value (the configured program's result).
    pub primal: f64,
    /// Shadow return value (the high-precision result along the primal
    /// trace).
    pub shadow: f64,
    /// Measured ground-truth output error `|shadow − primal|`.
    pub output_error: f64,
    /// Sum of all absolute local rounding errors (entry + instructions +
    /// return).
    pub acc_error: f64,
    /// Per-instruction attribution, ranked by `sum` descending
    /// (zero-error instructions omitted).
    pub per_instruction: Vec<InstrAttribution>,
    /// Per-variable attribution, ranked descending (zero-error variables
    /// omitted). Directly comparable to the estimator's per-variable
    /// table.
    pub per_variable: Vec<(String, f64)>,
    /// Primal execution statistics.
    pub stats: ExecStats,
    /// Non-finite local samples that were skipped (NaN/∞ involved).
    pub nonfinite_samples: u64,
    /// Total primal-vs-shadow control-flow splits observed: float
    /// comparisons and float→int truncations that would have decided
    /// differently on the shadow values. Non-zero means the whole report
    /// was measured along a trace the high-precision program would not
    /// have taken — treat [`ShadowReport::output_error`] as untrusted and
    /// fall back to a two-run validation (the tuner's policy).
    pub divergence_count: u64,
    /// The first [`MAX_DIVERGENCE_POINTS`] splits in execution order.
    pub divergence: Vec<DivergencePoint>,
    /// Per-variable divergence attribution, ranked descending
    /// (divergence-free variables omitted): how many splits read this
    /// named variable as a comparison/truncation operand.
    pub per_variable_divergence: Vec<(String, u64)>,
}

impl ShadowReport {
    /// Measured attribution of one variable (0.0 when absent).
    pub fn error_of(&self, var: &str) -> f64 {
        self.per_variable
            .iter()
            .find(|(n, _)| n == var)
            .map(|(_, e)| *e)
            .unwrap_or(0.0)
    }

    /// Divergence attribution of one variable (0 when absent).
    pub fn divergence_of(&self, var: &str) -> u64 {
        self.per_variable_divergence
            .iter()
            .find(|(n, _)| n == var)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    }

    /// `true` when the run observed at least one control-flow split.
    pub fn diverged(&self) -> bool {
        self.divergence_count > 0
    }

    /// Builds the estimate-quality record against an estimator's figure.
    /// `fault_count` stays 0 — a direct oracle run has no fault-isolation
    /// layer; pipelines that retried faults (the tuner) stamp their
    /// `FaultSummary::total()` onto the row afterwards.
    pub fn against_estimate(&self, threshold: f64, estimated: f64) -> EstimateQualityRow {
        EstimateQualityRow {
            kernel: self.kernel.clone(),
            threshold,
            estimated,
            measured: self.output_error,
            divergence_count: self.divergence_count,
            fault_count: 0,
        }
    }
}

/// Packages a raw [`ShadowOutcome`] as a ranked [`ShadowReport`];
/// errors (instead of panicking) when the function did not return a
/// float, which is the one shape the oracle's output-error notion does
/// not cover.
pub fn report_from_outcome(
    func: &chef_exec::bytecode::CompiledFunction,
    out: ShadowOutcome,
) -> Result<ShadowReport, ChefError> {
    build_report(&func.name, func, out)
}

fn build_report(
    kernel: &str,
    func: &chef_exec::bytecode::CompiledFunction,
    out: ShadowOutcome,
) -> Result<ShadowReport, ChefError> {
    if out.ret.is_none() || out.shadow_ret.is_none() {
        return Err(ChefError::Unsupported(format!(
            "shadow oracle needs a float-returning function; `{kernel}` returns none"
        )));
    }
    let mut per_instruction: Vec<InstrAttribution> = out
        .samples
        .iter()
        .enumerate()
        .filter(|(_, s)| s.sum > 0.0)
        .map(|(pc, s)| InstrAttribution {
            pc,
            op: format!("{:?}", func.instrs[pc]),
            sum: s.sum,
            max: s.max,
            count: s.count,
        })
        .collect();
    per_instruction.sort_by(|a, b| b.sum.total_cmp(&a.sum).then(a.pc.cmp(&b.pc)));
    let mut per_variable: Vec<(String, f64)> = out
        .var_error
        .iter()
        .filter(|(_, e)| *e > 0.0)
        .cloned()
        .collect();
    per_variable.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    let mut per_variable_divergence: Vec<(String, u64)> = out
        .var_divergence
        .iter()
        .filter(|(_, c)| *c > 0)
        .cloned()
        .collect();
    per_variable_divergence.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
    Ok(ShadowReport {
        kernel: kernel.to_string(),
        primal: out.ret_f(),
        shadow: out.shadow_f(),
        output_error: out.output_error(),
        acc_error: out.acc_error,
        per_instruction,
        per_variable,
        stats: out.stats,
        nonfinite_samples: out.nonfinite_samples,
        divergence_count: out.divergence_count,
        divergence: out.divergence,
        per_variable_divergence,
    })
}

/// Compiles `func` under `config` (after inlining) and runs the fused
/// shadow pass on `args`, returning the ranked report.
///
/// The function must return a float (all five `chef-apps` kernels do);
/// use [`shadow_run_compiled`] for full control.
pub fn shadow_run(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
    opts: &OracleOptions,
) -> Result<ShadowReport, ChefError> {
    let compiled = compile_config(program, func, config)?;
    shadow_run_compiled(&compiled, args.to_vec(), opts)
}

/// [`shadow_run`] on an already-compiled function.
pub fn shadow_run_compiled(
    compiled: &chef_exec::bytecode::CompiledFunction,
    args: Vec<ArgValue>,
    opts: &OracleOptions,
) -> Result<ShadowReport, ChefError> {
    let out = match opts.mode {
        ShadowMode::F64 => chef_exec::shadow::run_shadow::<f64>(compiled, args, &opts.exec),
        ShadowMode::DD => chef_exec::shadow::run_shadow::<DD>(compiled, args, &opts.exec),
    }
    .map_err(ChefError::Trap)?;
    build_report(&compiled.name, compiled, out)
}

/// Measured ground-truth output error of `config` on `args` — the
/// one-pass replacement for a demoted-vs-baseline validation pair.
pub fn measure_config(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
    opts: &OracleOptions,
) -> Result<f64, ChefError> {
    shadow_run(program, func, args, config, opts).map(|r| r.output_error)
}

/// Runs the oracle over many argument sets for one configuration,
/// fanning out over [`chef_exec::shadow::run_shadow_batch_parallel`]
/// (one shadow machine per worker thread, input order preserved).
pub fn shadow_run_batch(
    program: &Program,
    func: &str,
    arg_sets: &[Vec<ArgValue>],
    config: &PrecisionMap,
    opts: &OracleOptions,
    max_threads: Option<usize>,
) -> Result<Vec<Result<ShadowReport, ChefError>>, ChefError> {
    let compiled = compile_config(program, func, config)?;
    let sets: Vec<Vec<ArgValue>> = arg_sets.to_vec();
    let outs = match opts.mode {
        ShadowMode::F64 => {
            run_shadow_batch_parallel::<f64>(&compiled, sets, &opts.exec, max_threads)
        }
        ShadowMode::DD => run_shadow_batch_parallel::<DD>(&compiled, sets, &opts.exec, max_threads),
    };
    Ok(outs
        .into_iter()
        .map(|r| {
            r.map_err(ChefError::Trap)
                .and_then(|out| build_report(&compiled.name, &compiled, out))
        })
        .collect())
}

/// Inlines `program` and compiles `func` under `config` — the oracle's
/// compilation front door (shared with `chef-tuner`'s variant cache).
pub fn compile_config(
    program: &Program,
    func: &str,
    config: &PrecisionMap,
) -> Result<chef_exec::bytecode::CompiledFunction, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    compile(
        primal,
        &CompileOptions {
            precisions: config.clone(),
            ..Default::default()
        },
    )
    .map_err(ChefError::Compile)
}

/// A reusable oracle session over one compiled configuration: holds a
/// [`ShadowMachine`] so repeated measurements allocate nothing after
/// warm-up (the greedy tuner's inner loop).
pub struct OracleSession {
    compiled: chef_exec::bytecode::CompiledFunction,
    exec: ExecOptions,
    m64: ShadowMachine<f64>,
    mdd: ShadowMachine<DD>,
    mode: ShadowMode,
}

impl OracleSession {
    /// Builds a session for `func` under `config`.
    pub fn new(
        program: &Program,
        func: &str,
        config: &PrecisionMap,
        opts: &OracleOptions,
    ) -> Result<Self, ChefError> {
        Ok(OracleSession {
            compiled: compile_config(program, func, config)?,
            exec: opts.exec.clone(),
            m64: ShadowMachine::new(),
            mdd: ShadowMachine::new(),
            mode: opts.mode,
        })
    }

    /// A session over an already-compiled variant (cache-friendly).
    pub fn from_compiled(
        compiled: chef_exec::bytecode::CompiledFunction,
        opts: &OracleOptions,
    ) -> Self {
        OracleSession {
            compiled,
            exec: opts.exec.clone(),
            m64: ShadowMachine::new(),
            mdd: ShadowMachine::new(),
            mode: opts.mode,
        }
    }

    /// One fused measurement.
    pub fn run(&mut self, args: &[ArgValue]) -> Result<ShadowReport, ChefError> {
        let out = match self.mode {
            ShadowMode::F64 => self
                .m64
                .run_reused(&self.compiled, args.to_vec(), &self.exec),
            ShadowMode::DD => self
                .mdd
                .run_reused(&self.compiled, args.to_vec(), &self.exec),
        }
        .map_err(ChefError::Trap)?;
        build_report(&self.compiled.name, &self.compiled, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::ast::VarId;
    use chef_ir::types::FloatTy;

    fn program(src: &str) -> Program {
        let mut p = chef_ir::parser::parse_program(src).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        p
    }

    #[test]
    fn report_ranks_instructions_and_variables() {
        let src = "double f(double x) {
            double big = x / 3.0;
            double small = x * 1e-9;
            double r = big + small;
            return r;
        }";
        let p = program(src);
        // Demote both intermediates; `big`'s rounding dominates.
        let config = PrecisionMap::empty()
            .with(VarId(1), FloatTy::F32)
            .with(VarId(2), FloatTy::F32);
        let rep = shadow_run(
            &p,
            "f",
            &[ArgValue::F(1.234567890123)],
            &config,
            &OracleOptions::default(),
        )
        .unwrap();
        assert!(rep.output_error > 0.0);
        assert!(!rep.per_instruction.is_empty());
        // Ranked descending.
        for w in rep.per_instruction.windows(2) {
            assert!(w[0].sum >= w[1].sum);
        }
        assert_eq!(rep.per_variable[0].0, "big", "{:?}", rep.per_variable);
    }

    #[test]
    fn empty_config_measures_zero_in_f64_mode() {
        let p = program("double f(double x) { double s = x * 0.1 + 1.0; return s; }");
        let rep = shadow_run(
            &p,
            "f",
            &[ArgValue::F(0.7)],
            &PrecisionMap::empty(),
            &OracleOptions::default(),
        )
        .unwrap();
        assert_eq!(rep.output_error, 0.0);
        assert_eq!(rep.acc_error, 0.0);
        assert!(rep.per_instruction.is_empty());
        assert!(rep.per_variable.is_empty());
    }

    #[test]
    fn dd_mode_sees_f64_rounding_that_f64_mode_cannot() {
        // Classic non-associativity: (1 + tiny) accumulated many times.
        let src = "double f(int n) {
            double s = 1.0;
            for (int i = 0; i < n; i++) { s = s + 1e-17; }
            return s;
        }";
        let p = program(src);
        let f64_rep = shadow_run(
            &p,
            "f",
            &[ArgValue::I(1000)],
            &PrecisionMap::empty(),
            &OracleOptions::default(),
        )
        .unwrap();
        assert_eq!(f64_rep.output_error, 0.0); // f64 shadow == primal
        let dd_rep = shadow_run(
            &p,
            "f",
            &[ArgValue::I(1000)],
            &PrecisionMap::empty(),
            &OracleOptions {
                mode: ShadowMode::DD,
                ..Default::default()
            },
        )
        .unwrap();
        // Each f64 add of 1e-17 to 1.0 is absorbed; the DD shadow keeps
        // the true sum 1 + 1000e-17.
        assert!((dd_rep.shadow - (1.0 + 1000.0 * 1e-17)).abs() < 1e-16);
        assert!((dd_rep.output_error - 1000.0 * 1e-17).abs() < 1e-16);
        assert!(dd_rep.acc_error > 0.0);
    }

    #[test]
    fn dd_output_error_is_exact_below_one_ulp() {
        // The true error of `1.0 + 1e-17` is 1e-17 — far below
        // ulp(1.0)/2, so rounding the shadow to f64 before differencing
        // would report 0. The output error is differenced in shadow
        // precision instead.
        let p = program("double f(double x) { double s = x + 0.00000000000000001; return s; }");
        let rep = shadow_run(
            &p,
            "f",
            &[ArgValue::F(1.0)],
            &PrecisionMap::empty(),
            &OracleOptions {
                mode: ShadowMode::DD,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(rep.shadow, rep.primal, "f64 view of the shadow rounds back");
        assert!(
            (rep.output_error - 1e-17).abs() < 1e-30,
            "sub-ulp error must survive: {}",
            rep.output_error
        );
    }

    #[test]
    fn oracle_returns_an_error_for_non_float_functions() {
        let p = program("int f(int n) { return n * 2; }");
        let err = shadow_run(
            &p,
            "f",
            &[ArgValue::I(21)],
            &PrecisionMap::empty(),
            &OracleOptions::default(),
        )
        .unwrap_err();
        assert!(
            matches!(err, ChefError::Unsupported(_)),
            "expected Unsupported, got {err}"
        );
    }

    #[test]
    fn oracle_session_is_reusable_and_consistent() {
        let src = "double f(double x) { double t = x / 7.0; return t * t; }";
        let p = program(src);
        let config = PrecisionMap::empty().with(VarId(1), FloatTy::F32);
        let mut sess = OracleSession::new(&p, "f", &config, &OracleOptions::default()).unwrap();
        let one = shadow_run(
            &p,
            "f",
            &[ArgValue::F(2.5)],
            &config,
            &OracleOptions::default(),
        )
        .unwrap();
        for _ in 0..5 {
            let again = sess.run(&[ArgValue::F(2.5)]).unwrap();
            assert_eq!(again.output_error.to_bits(), one.output_error.to_bits());
            assert_eq!(again.primal.to_bits(), one.primal.to_bits());
        }
    }

    #[test]
    fn batch_oracle_preserves_order_and_matches_serial() {
        let src = "double f(double x) { double t = x * 0.123456789; return t + x; }";
        let p = program(src);
        let config = PrecisionMap::empty().with(VarId(1), FloatTy::F32);
        let sets: Vec<Vec<ArgValue>> = (0..8).map(|k| vec![ArgValue::F(0.3 + k as f64)]).collect();
        let batch =
            shadow_run_batch(&p, "f", &sets, &config, &OracleOptions::default(), Some(3)).unwrap();
        for (set, rep) in sets.iter().zip(batch) {
            let rep = rep.unwrap();
            let serial = shadow_run(&p, "f", set, &config, &OracleOptions::default()).unwrap();
            assert_eq!(rep.output_error.to_bits(), serial.output_error.to_bits());
        }
    }
}
