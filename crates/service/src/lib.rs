//! # chef-service — resilient concurrent multi-session analysis server
//!
//! A long-lived, dependency-free front end over the CHEF-FP substrate:
//! many *sessions* (one per client/kernel-under-analysis) share a fixed
//! pool of worker threads and their machine-arena shards, submitting
//! plain runs, shadow-oracle runs, batches and whole tuning jobs, and
//! getting typed outcomes back — never a panic, never a wedged worker.
//!
//! The robustness layer has four stages, applied in order:
//!
//! 1. **Admission control** ([`AnalysisServer::open_session`],
//!    [`SessionHandle::submit_run`] & friends): a bounded session
//!    registry ([`ServiceConfig::max_sessions`]), queue-depth
//!    backpressure ([`ServiceConfig::max_queue_depth`]) and the
//!    per-session circuit breaker all reject *at submission* with a
//!    typed [`Rejected`] (and a retry hint) instead of queueing work the
//!    server cannot honour.
//! 2. **Per-session budgets**: every job runs under the session's
//!    instruction budget (`max_instrs`) and cooperative wall-clock
//!    [`deadline`](chef_exec::vm::ExecOptions::deadline), both enforced
//!    by the VM at block granularity — an overrun is a typed trap with
//!    pc attribution, not a killed thread. The deadline is armed when
//!    each *attempt* starts executing (re-armed for the retry), so
//!    neither queue wait nor a failed first attempt eats a session's
//!    execution budget.
//! 3. **Fault isolation + circuit breaking**: a trap or panic in one
//!    job is caught at the job boundary, retried once (injected faults
//!    from seeded [`FaultPlan`]s fire at most every other draw, so one
//!    retry always recovers them), and reported as an [`Outcome`]. The
//!    neighbouring sessions' machines live in separate pool checkouts —
//!    a faulting session cannot corrupt their state (pinned
//!    bit-identically by the isolation tests). Repeated faults trip the
//!    session's [`CircuitBreaker`], quarantining it at admission until a
//!    half-open probe succeeds.
//! 4. **Graceful drain** ([`AnalysisServer::drain`]): new work is
//!    rejected, queued-but-unstarted jobs are cancelled, in-flight jobs
//!    complete, and the [`DrainReport`] verifies through the arena
//!    checkout gauge that every machine went back to its pool —
//!    `outstanding_checkouts == 0` is the leak-freedom proof.
//!
//! See `ARCHITECTURE.md` next to this crate for the full lifecycle and
//! failure-mode table.

use chef_core::prelude::ChefError;
use chef_exec::arena::{MachineArena, ShadowMachineArena};
use chef_exec::fault::FaultPlan;
use chef_exec::prelude::{
    run_batch_parallel_in, run_shadow_batch_parallel_in, ArgValue, CallOutcome, CompiledFunction,
    ExecOptions, ShadowOutcome, Trap, TrapKind,
};
use chef_exec::store::DiskStore;
use chef_ir::ast::Program;
use chef_tuner::{tune_with_oracle, OracleTuneOptions, TuneResult, TunerConfig, VariantCache};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

pub mod breaker;
mod scheduler;

pub use breaker::{Admission, BreakerConfig, CircuitBreaker};

// ------------------------------------------------------------------------
// Configuration
// ------------------------------------------------------------------------

/// Server-wide tuning. Every limit is enforced at admission time; see
/// the crate docs for the four-stage lifecycle.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads (and machine-arena shards). Minimum 1.
    pub workers: usize,
    /// Maximum concurrently open sessions; `open_session` past this is
    /// rejected with [`RejectReason::SessionLimit`].
    pub max_sessions: usize,
    /// Maximum jobs queued (accepted, not yet started) across the
    /// server; submissions past this are rejected with
    /// [`RejectReason::QueueFull`].
    pub max_queue_depth: usize,
    /// Capacity of each session's compiled-variant cache (LRU past
    /// this; see [`chef_tuner::VariantCache`]).
    pub cache_capacity: usize,
    /// Per-session circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Intra-job thread cap for [`SessionHandle::submit_batch`]
    /// (`None` = one thread per argument set, capped by the runtime).
    /// Single runs always use one thread — the scheduler itself is the
    /// parallelism.
    pub batch_threads: Option<usize>,
    /// Directory of the persistent compiled-variant store shared by
    /// every session ([`chef_exec::store::DiskStore`]). `None` (the
    /// default) falls back to the process-wide `CHEF_CACHE_DIR` store,
    /// if any. With a store attached, a restarted server **warm-starts**:
    /// sessions resolve previously compiled variants by content hash
    /// with zero compile work, and [`AnalysisServer::drain`] flushes
    /// every session's pending write-backs before reporting.
    pub cache_dir: Option<PathBuf>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get().min(4))
                .unwrap_or(2),
            max_sessions: 8,
            max_queue_depth: 64,
            cache_capacity: chef_tuner::DEFAULT_CACHE_CAPACITY,
            breaker: BreakerConfig::default(),
            batch_threads: Some(1),
            cache_dir: None,
        }
    }
}

/// What a client declares when opening a session; admission prices the
/// session off these.
#[derive(Clone, Debug, Default)]
pub struct SessionSpec {
    /// Display name (used in reports and keyed telemetry).
    pub name: String,
    /// Instruction budget per job (block-granular; overruns trap with
    /// [`TrapKind::InstrBudgetExhausted`]). `None` = unlimited.
    pub max_instrs: Option<u64>,
    /// Wall-clock budget per execution attempt, armed when the attempt
    /// starts executing and re-armed for the retry (overruns trap with
    /// [`TrapKind::DeadlineExceeded`]). `None` = unlimited.
    pub deadline: Option<Duration>,
    /// Deterministic fault injection for this session's jobs. `None`
    /// falls back to the `CHEF_FAULT_SEED` environment plan (the CI
    /// soak matrix); an inert plan opts out explicitly.
    pub fault: Option<FaultPlan>,
}

impl SessionSpec {
    /// A spec with just a name and no limits.
    pub fn named(name: impl Into<String>) -> Self {
        SessionSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Sets the per-job instruction budget (builder style).
    pub fn with_budget(mut self, max_instrs: u64) -> Self {
        self.max_instrs = Some(max_instrs);
        self
    }

    /// Sets the per-job wall-clock deadline (builder style).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the session's fault plan (builder style).
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }
}

// ------------------------------------------------------------------------
// Outcome types
// ------------------------------------------------------------------------

/// Why a submission (or session open) was refused at admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The server is draining; no new work is accepted.
    Draining,
    /// The session registry is full ([`ServiceConfig::max_sessions`]).
    SessionLimit,
    /// Queue-depth backpressure ([`ServiceConfig::max_queue_depth`]).
    QueueFull,
    /// The session's circuit breaker is open (quarantined).
    CircuitOpen,
}

/// A typed admission refusal. `retry_after` is a per-reason hint with
/// **pinned semantics** — every path that rejects with a given reason
/// produces the same shape (the `retry_after_semantics_per_reason` test
/// enforces this table):
///
/// * [`RejectReason::Draining`] → always `None`. The refusal is
///   permanent for this server's lifetime; no amount of waiting helps.
/// * [`RejectReason::SessionLimit`] → always `Some(n)`: at least `n`
///   open sessions must close before an `open_session` can succeed.
/// * [`RejectReason::QueueFull`] → always `Some(n)`: at least `n`
///   queued jobs must start (or be cancelled) before a submission fits
///   under [`ServiceConfig::max_queue_depth`].
/// * [`RejectReason::CircuitOpen`] → always `Some(n)`: the breaker will
///   reject `n` more submissions before admitting a half-open probe.
///
/// So `None` means exactly "retrying can never succeed", and `Some(n)`
/// is always a countdown in the rejecting resource's own units — never
/// wall-clock time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Rejected {
    pub reason: RejectReason,
    pub retry_after: Option<u32>,
}

impl std::fmt::Display for Rejected {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let unit = match self.reason {
            RejectReason::SessionLimit => "session closes",
            RejectReason::QueueFull => "queued jobs",
            _ => "submissions",
        };
        match self.retry_after {
            Some(n) => write!(f, "rejected: {:?} (retry after {n} {unit})", self.reason),
            None => write!(f, "rejected: {:?} (permanent)", self.reason),
        }
    }
}

/// The terminal state of one accepted job. Every variant is a value —
/// a session observes its own faults and nothing of its neighbours'.
#[derive(Debug)]
pub enum Outcome<T> {
    /// The job finished; `latency_ns` spans submission → completion
    /// (queue wait included), `retried` marks a fault recovered by the
    /// single retry.
    Completed {
        value: T,
        latency_ns: u64,
        retried: bool,
    },
    /// The job trapped (after the retry, if the first fault was
    /// retryable). Budget overruns land here with
    /// [`TrapKind::InstrBudgetExhausted`].
    Faulted { trap: Trap, retried: bool },
    /// The session's wall-clock deadline expired mid-run: a cooperative
    /// [`TrapKind::DeadlineExceeded`] trap with pc attribution.
    DeadlineExceeded { pc: usize, executed: u64 },
    /// The job panicked twice (or the worker was lost).
    Panicked { msg: String },
    /// The job was queued when [`AnalysisServer::drain`] began and was
    /// cancelled without running.
    Cancelled,
    /// A non-trap, non-panic error (compile failure, unknown function):
    /// deterministic caller mistakes, reported without retry and
    /// *without* breaker feedback — retrying a malformed program keeps
    /// surfacing this error, never `CircuitOpen`.
    Error { msg: String },
}

impl<T> Outcome<T> {
    /// The completed value, if any.
    pub fn completed(self) -> Option<T> {
        match self {
            Outcome::Completed { value, .. } => Some(value),
            _ => None,
        }
    }

    /// Stable label for stats/telemetry.
    pub fn kind(&self) -> &'static str {
        match self {
            Outcome::Completed { .. } => "completed",
            Outcome::Faulted { .. } => "faulted",
            Outcome::DeadlineExceeded { .. } => "deadline_exceeded",
            Outcome::Panicked { .. } => "panicked",
            Outcome::Cancelled => "cancelled",
            Outcome::Error { .. } => "error",
        }
    }
}

/// A claim on one accepted job's [`Outcome`].
pub struct Ticket<T> {
    rx: mpsc::Receiver<Outcome<T>>,
}

impl<T> std::fmt::Debug for Ticket<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Ticket(..)")
    }
}

impl<T> Ticket<T> {
    /// Blocks until the job reaches a terminal state. A lost worker
    /// (impossible under the scheduler's panic guard, but defended
    /// against) reads as a panic outcome, not a hang.
    pub fn wait(self) -> Outcome<T> {
        self.rx.recv().unwrap_or(Outcome::Panicked {
            msg: "worker lost before reporting an outcome".to_string(),
        })
    }

    /// Non-blocking poll; `Err(self)` if the job is still running.
    pub fn try_wait(self) -> Result<Outcome<T>, Ticket<T>> {
        match self.rx.try_recv() {
            Ok(o) => Ok(o),
            Err(mpsc::TryRecvError::Empty) => Err(self),
            Err(mpsc::TryRecvError::Disconnected) => Ok(Outcome::Panicked {
                msg: "worker lost before reporting an outcome".to_string(),
            }),
        }
    }
}

// ------------------------------------------------------------------------
// Session state & stats
// ------------------------------------------------------------------------

/// Cap on per-session latency samples retained for quantiles (the
/// telemetry histograms are unbounded-count; this exact-sample buffer is
/// for reports).
const MAX_LATENCY_SAMPLES: usize = 8192;

/// Counters for one session's lifetime, snapshot via
/// [`SessionHandle::stats`].
#[derive(Clone, Debug, Default)]
pub struct SessionStats {
    pub submitted: u64,
    pub completed: u64,
    /// Completions whose first attempt faulted and whose retry
    /// recovered.
    pub retried: u64,
    pub faulted: u64,
    pub deadline_exceeded: u64,
    pub panicked: u64,
    pub cancelled: u64,
    pub errors: u64,
    /// Submissions refused by queue-depth backpressure or draining.
    pub rejected_backpressure: u64,
    /// Submissions refused by the session's open circuit breaker.
    pub rejected_quarantine: u64,
    latencies_ns: Vec<u64>,
}

impl SessionStats {
    /// Exact (p50, p95, p99) over the retained completion latencies;
    /// `None` before the first completion.
    pub fn latency_quantiles(&self) -> Option<(u64, u64, u64)> {
        if self.latencies_ns.is_empty() {
            return None;
        }
        let mut v = self.latencies_ns.clone();
        v.sort_unstable();
        let q = |p: f64| v[((v.len() - 1) as f64 * p).round() as usize];
        Some((q(0.50), q(0.95), q(0.99)))
    }

    /// Jobs that reached a terminal state (everything but rejections).
    pub fn terminal(&self) -> u64 {
        self.completed
            + self.faulted
            + self.deadline_exceeded
            + self.panicked
            + self.cancelled
            + self.errors
    }
}

struct SessionState {
    id: u64,
    name: String,
    cache: VariantCache,
    breaker: CircuitBreaker,
    max_instrs: Option<u64>,
    deadline: Option<Duration>,
    fault: Option<FaultPlan>,
    stats: Mutex<SessionStats>,
}

impl SessionState {
    fn stats(&self) -> std::sync::MutexGuard<'_, SessionStats> {
        self.stats.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Base exec options for one execution attempt, deadline *armed now*
    /// (call this on the worker per attempt, not at submission).
    fn exec_options(&self) -> ExecOptions {
        ExecOptions {
            max_instrs: self.max_instrs,
            deadline: self.deadline.map(|d| Instant::now() + d),
            fault: self.fault.clone().or_else(chef_exec::fault::env_plan),
            ..Default::default()
        }
    }

    /// Machines this session's own cache arenas still have out.
    fn outstanding(&self) -> usize {
        self.cache.arena().outstanding()
            + self.cache.shadow64().outstanding()
            + self.cache.shadow_dd().outstanding()
    }

    fn record_outcome<T>(&self, outcome: &Outcome<T>, latency_ns: u64) {
        let mut s = self.stats();
        match outcome {
            Outcome::Completed { retried, .. } => {
                s.completed += 1;
                if *retried {
                    s.retried += 1;
                }
                if s.latencies_ns.len() < MAX_LATENCY_SAMPLES {
                    s.latencies_ns.push(latency_ns);
                }
            }
            Outcome::Faulted { .. } => s.faulted += 1,
            Outcome::DeadlineExceeded { .. } => s.deadline_exceeded += 1,
            Outcome::Panicked { .. } => s.panicked += 1,
            Outcome::Cancelled => s.cancelled += 1,
            Outcome::Error { .. } => s.errors += 1,
        }
        drop(s);
        chef_telemetry::counter_keyed("service.outcome", outcome.kind()).inc();
        if matches!(outcome, Outcome::Completed { .. }) {
            chef_telemetry::histogram!("service.trial.ns").record(latency_ns);
        }
    }
}

// ------------------------------------------------------------------------
// Server
// ------------------------------------------------------------------------

/// One worker thread's machine pools. Jobs are routed to the shard of
/// the worker that runs them, so concurrent sessions never contend on a
/// pool's mutex while a machine is in use — and a faulting job's
/// discarded machine only ever costs its own shard a re-allocation.
struct WorkerShard {
    arena: MachineArena,
    shadow64: ShadowMachineArena<f64>,
    shadow_dd: ShadowMachineArena<chef_shadow::DD>,
}

impl WorkerShard {
    fn new() -> Self {
        WorkerShard {
            arena: MachineArena::new(),
            shadow64: ShadowMachineArena::new(),
            shadow_dd: ShadowMachineArena::new(),
        }
    }

    fn outstanding(&self) -> usize {
        self.arena.outstanding() + self.shadow64.outstanding() + self.shadow_dd.outstanding()
    }
}

struct ServerInner {
    cfg: ServiceConfig,
    sched: scheduler::Scheduler,
    shards: Vec<WorkerShard>,
    /// The persistent variant store every session's cache shares
    /// ([`ServiceConfig::cache_dir`], falling back to `CHEF_CACHE_DIR`);
    /// `None` = in-memory caches only.
    store: Option<Arc<DiskStore>>,
    sessions: Mutex<HashMap<u64, Arc<SessionState>>>,
    next_id: AtomicU64,
    draining: AtomicBool,
    /// Set at drain start: queued-but-unstarted jobs observe it and
    /// report [`Outcome::Cancelled`] instead of running.
    cancel_queued: AtomicBool,
}

impl ServerInner {
    fn sessions(&self) -> std::sync::MutexGuard<'_, HashMap<u64, Arc<SessionState>>> {
        self.sessions.lock().unwrap_or_else(|p| p.into_inner())
    }
}

/// The server. Dropping it drains the scheduler (queued jobs cancel,
/// in-flight jobs finish) and joins the workers.
pub struct AnalysisServer {
    inner: Arc<ServerInner>,
}

/// The result of a graceful drain. `leak_free()` is the property the
/// isolation tests (and the smoke gate) pin.
#[derive(Debug)]
pub struct DrainReport {
    /// Machines still checked out of any server or session pool after
    /// quiescence — 0 on a clean drain.
    pub outstanding_checkouts: usize,
    /// Final per-session stats, by session name, open sessions first.
    pub sessions: Vec<(String, SessionStats)>,
}

impl DrainReport {
    /// Every pooled machine went back to its pool.
    pub fn leak_free(&self) -> bool {
        self.outstanding_checkouts == 0
    }
}

impl AnalysisServer {
    pub fn new(cfg: ServiceConfig) -> Self {
        let workers = cfg.workers.max(1);
        // An unopenable cache_dir degrades to no disk tier — a server
        // must come up (and compile everything) rather than fail.
        let store = match &cfg.cache_dir {
            Some(dir) => DiskStore::open(dir).ok().map(Arc::new),
            None => DiskStore::from_env(),
        };
        let inner = Arc::new(ServerInner {
            sched: scheduler::Scheduler::new(workers),
            shards: (0..workers).map(|_| WorkerShard::new()).collect(),
            store,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            draining: AtomicBool::new(false),
            cancel_queued: AtomicBool::new(false),
            cfg,
        });
        AnalysisServer { inner }
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.sched.workers()
    }

    /// Jobs accepted but not yet started.
    pub fn queue_depth(&self) -> usize {
        self.inner.sched.queue_depth()
    }

    /// Jobs currently executing on a worker.
    pub fn active_jobs(&self) -> usize {
        self.inner.sched.active()
    }

    /// Currently open sessions.
    pub fn session_count(&self) -> usize {
        self.inner.sessions().len()
    }

    /// Opens a session, or rejects it (draining, or the registry is at
    /// [`ServiceConfig::max_sessions`]).
    pub fn open_session(&self, spec: SessionSpec) -> Result<SessionHandle, Rejected> {
        if self.inner.draining.load(Ordering::SeqCst) {
            return Err(Rejected {
                reason: RejectReason::Draining,
                retry_after: None,
            });
        }
        let mut sessions = self.inner.sessions();
        if sessions.len() >= self.inner.cfg.max_sessions {
            chef_telemetry::counter!("service.rejected.session_limit").inc();
            // Hint: how many sessions must close before an open fits
            // (≥ 1; see the `Rejected` semantics table).
            let excess = (sessions.len() + 1).saturating_sub(self.inner.cfg.max_sessions);
            return Err(Rejected {
                reason: RejectReason::SessionLimit,
                retry_after: Some(excess as u32),
            });
        }
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let st = Arc::new(SessionState {
            id,
            name: if spec.name.is_empty() {
                format!("session-{id}")
            } else {
                spec.name
            },
            cache: {
                // Warm start: every session shares the server's store, so
                // a variant any session (or a previous process) compiled
                // is a content-hash disk hit for all of them.
                let cache = VariantCache::with_capacity(self.inner.cfg.cache_capacity);
                match &self.inner.store {
                    Some(store) => cache.with_store(Arc::clone(store)),
                    None => cache.without_store(),
                }
            },
            breaker: CircuitBreaker::new(self.inner.cfg.breaker),
            max_instrs: spec.max_instrs,
            deadline: spec.deadline,
            fault: spec.fault,
            stats: Mutex::new(SessionStats::default()),
        });
        sessions.insert(id, Arc::clone(&st));
        chef_telemetry::counter!("service.sessions.opened").inc();
        Ok(SessionHandle {
            inner: Arc::clone(&self.inner),
            st,
        })
    }

    /// Machines currently checked out of any pool the server owns
    /// (worker shards + every open session's cache arenas).
    pub fn outstanding_checkouts(&self) -> usize {
        let shards: usize = self.inner.shards.iter().map(|s| s.outstanding()).sum();
        let sessions: usize = self
            .inner
            .sessions()
            .values()
            .map(|s| s.outstanding())
            .sum();
        shards + sessions
    }

    /// The persistent variant store sessions share, if one is attached.
    pub fn disk_store(&self) -> Option<&Arc<DiskStore>> {
        self.inner.store.as_ref()
    }

    /// Graceful drain: stop admitting, cancel queued-but-unstarted
    /// jobs, let in-flight jobs complete, flush every session's pending
    /// variant write-backs to the shared disk store, then report.
    /// Idempotent; the server stays alive (for inspection) but rejects
    /// all new work.
    pub fn drain(&self) -> DrainReport {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.cancel_queued.store(true, Ordering::SeqCst);
        self.inner.sched.quiesce();
        chef_telemetry::counter!("service.drains").inc();
        // After quiescence no job is compiling, so this flush captures
        // everything the sessions ever enqueued: the next process
        // warm-starts from a complete store.
        for s in self.inner.sessions().values() {
            s.cache.flush_disk();
        }
        let sessions: Vec<(String, SessionStats)> = self
            .inner
            .sessions()
            .values()
            .map(|s| (s.name.clone(), s.stats().clone()))
            .collect();
        let outstanding = self.outstanding_checkouts();
        chef_telemetry::gauge!("service.drain.outstanding").set(outstanding as f64);
        DrainReport {
            outstanding_checkouts: outstanding,
            sessions,
        }
    }
}

impl Drop for AnalysisServer {
    fn drop(&mut self) {
        self.inner.draining.store(true, Ordering::SeqCst);
        self.inner.cancel_queued.store(true, Ordering::SeqCst);
        self.inner.sched.shutdown();
    }
}

// ------------------------------------------------------------------------
// Session handle & job submission
// ------------------------------------------------------------------------

/// A fault the job wrapper classifies. Panics are caught a level up.
enum JobFault {
    Trap(Trap),
    Error(String),
}

/// A client's handle to one open session. Cloneable; all clones submit
/// into the same budgets, breaker and stats.
#[derive(Clone)]
pub struct SessionHandle {
    inner: Arc<ServerInner>,
    st: Arc<SessionState>,
}

impl std::fmt::Debug for SessionHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SessionHandle")
            .field("name", &self.st.name)
            .finish_non_exhaustive()
    }
}

impl SessionHandle {
    /// The session's (possibly generated) display name.
    pub fn name(&self) -> &str {
        &self.st.name
    }

    /// Snapshot of the session's counters.
    pub fn stats(&self) -> SessionStats {
        self.st.stats().clone()
    }

    /// `true` while the circuit breaker is rejecting this session.
    pub fn quarantined(&self) -> bool {
        self.st.breaker.is_quarantining()
    }

    /// Times this session's breaker has tripped.
    pub fn breaker_trips(&self) -> u64 {
        self.st.breaker.times_opened()
    }

    /// Closes the session: removes it from the registry (freeing a
    /// [`ServiceConfig::max_sessions`] slot). Jobs already accepted
    /// still complete; their tickets stay valid.
    pub fn close(self) {
        self.inner.sessions().remove(&self.st.id);
        chef_telemetry::counter!("service.sessions.closed").inc();
    }

    /// One plain-VM run of `func` on `args`.
    pub fn submit_run(
        &self,
        func: Arc<CompiledFunction>,
        args: Vec<ArgValue>,
    ) -> Result<Ticket<CallOutcome>, Rejected> {
        self.submit_job(true, move |shard: &WorkerShard, opts: &ExecOptions| {
            run_batch_parallel_in(&func, vec![args.clone()], opts, Some(1), &shard.arena)
                .pop()
                .expect("one result per arg set")
                .map_err(JobFault::Trap)
        })
    }

    /// One batch of runs of `func`, fanned out over
    /// [`ServiceConfig::batch_threads`] inside the job. Per-argument-set
    /// traps are *data* in the completed value (they don't fault the
    /// job or feed the breaker) — a batch is the caller's own sweep.
    pub fn submit_batch(
        &self,
        func: Arc<CompiledFunction>,
        arg_sets: Vec<Vec<ArgValue>>,
    ) -> Result<Ticket<Vec<Result<CallOutcome, Trap>>>, Rejected> {
        let threads = self.inner.cfg.batch_threads;
        self.submit_job(false, move |shard: &WorkerShard, opts: &ExecOptions| {
            Ok(run_batch_parallel_in(
                &func,
                arg_sets.clone(),
                opts,
                threads,
                &shard.arena,
            ))
        })
    }

    /// One fused primal+shadow run (f64 shadow) of `func` on `args`.
    pub fn submit_shadow(
        &self,
        func: Arc<CompiledFunction>,
        args: Vec<ArgValue>,
    ) -> Result<Ticket<ShadowOutcome>, Rejected> {
        self.submit_job(true, move |shard: &WorkerShard, opts: &ExecOptions| {
            run_shadow_batch_parallel_in::<f64>(
                &func,
                vec![args.clone()],
                opts,
                Some(1),
                &shard.shadow64,
            )
            .pop()
            .expect("one result per arg set")
            .map_err(JobFault::Trap)
        })
    }

    /// A whole oracle-tuning job through the session's bounded variant
    /// cache. The session's budget/deadline/fault plan override
    /// `opts.oracle.exec` — the session owns execution policy, the
    /// caller owns tuning policy. Not retried at the service level: the
    /// tuner's own per-trial retry/quarantine layer already isolates
    /// faults, so an error surfacing here is persistent.
    pub fn submit_tune(
        &self,
        program: Arc<Program>,
        func: String,
        args: Vec<ArgValue>,
        cfg: TunerConfig,
        opts: OracleTuneOptions,
    ) -> Result<Ticket<TuneResult>, Rejected> {
        let st = Arc::clone(&self.st);
        self.submit_job(false, move |_shard: &WorkerShard, exec: &ExecOptions| {
            let opts = OracleTuneOptions {
                oracle: chef_shadow::OracleOptions {
                    exec: exec.clone(),
                    ..opts.oracle.clone()
                },
                ..opts.clone()
            };
            tune_with_oracle(&program, &func, &args, &cfg, &opts, &st.cache).map_err(|e| match e {
                ChefError::Trap(t) => JobFault::Trap(t),
                other => JobFault::Error(other.to_string()),
            })
        })
    }

    /// An arbitrary closure as a job: same admission, panic isolation,
    /// breaker feedback and stats as kernel runs, but **no VM budget or
    /// deadline enforcement** — the closure is trusted to terminate.
    /// The escape hatch for custom analyses (and for tests that need a
    /// job they can gate externally). Never retried.
    pub fn submit_task<T: Send + 'static>(
        &self,
        task: impl FnOnce() -> T + Send + 'static,
    ) -> Result<Ticket<T>, Rejected> {
        let mut task = Some(task);
        self.submit_job(false, move |_shard: &WorkerShard, _opts: &ExecOptions| {
            Ok((task.take().expect("tasks run at most once"))())
        })
    }

    /// Admission gate: draining → queue depth → breaker, in that order.
    /// The breaker is consulted **last** so that a submission it admits
    /// (in particular a half-open `Probe`, which transitions breaker
    /// state) is guaranteed to be enqueued — a probe bounced by
    /// backpressure after `breaker.admit()` would strand the breaker in
    /// HalfOpen with no probe in flight, quarantining the session
    /// permanently.
    fn admit(&self) -> Result<Admission, Rejected> {
        if self.inner.draining.load(Ordering::SeqCst) {
            self.st.stats().rejected_backpressure += 1;
            chef_telemetry::counter!("service.rejected.draining").inc();
            return Err(Rejected {
                reason: RejectReason::Draining,
                retry_after: None,
            });
        }
        let depth = self.inner.sched.queue_depth();
        if depth >= self.inner.cfg.max_queue_depth {
            self.st.stats().rejected_backpressure += 1;
            chef_telemetry::counter!("service.rejected.backpressure").inc();
            // Hint: how many queued jobs must start before a submission
            // fits (≥ 1; see the `Rejected` semantics table).
            let excess = (depth + 1).saturating_sub(self.inner.cfg.max_queue_depth);
            return Err(Rejected {
                reason: RejectReason::QueueFull,
                retry_after: Some(excess as u32),
            });
        }
        let admission = self.st.breaker.admit();
        if let Admission::Reject { retry_after } = admission {
            self.st.stats().rejected_quarantine += 1;
            chef_telemetry::counter!("service.rejected.quarantine").inc();
            return Err(Rejected {
                reason: RejectReason::CircuitOpen,
                retry_after: Some(retry_after),
            });
        }
        Ok(admission)
    }

    /// The shared job wrapper: admission, then a closure that runs on a
    /// worker shard under the session's exec options, with panic
    /// catching, classification, a single retry for retryable faults,
    /// stats/telemetry recording and breaker feedback.
    fn submit_job<T: Send + 'static>(
        &self,
        retryable: bool,
        mut attempt: impl FnMut(&WorkerShard, &ExecOptions) -> Result<T, JobFault> + Send + 'static,
    ) -> Result<Ticket<T>, Rejected> {
        let is_probe = self.admit()? == Admission::Probe;
        self.st.stats().submitted += 1;
        chef_telemetry::counter!("service.submitted").inc();
        let (tx, rx) = mpsc::channel();
        let st = Arc::clone(&self.st);
        let inner = Arc::clone(&self.inner);
        let submitted_at = Instant::now();
        self.inner.sched.submit(Box::new(move |widx| {
            if inner.cancel_queued.load(Ordering::SeqCst) {
                // A cancelled probe gives the breaker no verdict; re-arm
                // it so the session is not stranded in HalfOpen.
                if is_probe {
                    st.breaker.on_probe_inconclusive();
                }
                let outcome = Outcome::Cancelled;
                st.record_outcome(&outcome, 0);
                let _ = tx.send(outcome);
                return;
            }
            let shard = &inner.shards[widx];
            // Exec options are rebuilt (and the deadline re-armed) per
            // attempt, so a retried fault gets the session's full wall
            // budget instead of whatever the failed attempt left over.
            let mut run_once = || {
                let opts = st.exec_options();
                match catch_unwind(AssertUnwindSafe(|| attempt(shard, &opts))) {
                    Ok(Ok(v)) => Ok(v),
                    Ok(Err(f)) => Err(f),
                    Err(payload) => Err(JobFault::Error(panic_text(payload.as_ref()))),
                }
            };
            let classify = |fault: JobFault, retried: bool| match fault {
                JobFault::Trap(trap) => match trap.kind {
                    TrapKind::DeadlineExceeded { executed } => Outcome::DeadlineExceeded {
                        pc: trap.pc,
                        executed,
                    },
                    _ => Outcome::Faulted { trap, retried },
                },
                JobFault::Error(msg) => {
                    if msg.starts_with(PANIC_TAG) {
                        Outcome::Panicked { msg }
                    } else {
                        Outcome::Error { msg }
                    }
                }
            };
            let outcome = match run_once() {
                Ok(value) => Outcome::Completed {
                    value,
                    latency_ns: submitted_at.elapsed().as_nanos() as u64,
                    retried: false,
                },
                // Deadline overruns and deterministic errors are not
                // retried: the budget is spent / the error will repeat.
                Err(JobFault::Trap(t)) if retryable && !is_deadline(&t) => match run_once() {
                    Ok(value) => Outcome::Completed {
                        value,
                        latency_ns: submitted_at.elapsed().as_nanos() as u64,
                        retried: true,
                    },
                    Err(second) => classify(second, true),
                },
                Err(JobFault::Error(msg)) if retryable && msg.starts_with(PANIC_TAG) => {
                    match run_once() {
                        Ok(value) => Outcome::Completed {
                            value,
                            latency_ns: submitted_at.elapsed().as_nanos() as u64,
                            retried: true,
                        },
                        Err(second) => classify(second, true),
                    }
                }
                Err(first) => classify(first, false),
            };
            match &outcome {
                Outcome::Completed { .. } => st.breaker.on_success(),
                Outcome::Faulted { .. }
                | Outcome::DeadlineExceeded { .. }
                | Outcome::Panicked { .. } => st.breaker.on_fault(),
                // Neutral outcomes: a cancellation or a deterministic
                // caller mistake (compile failure, unknown function) says
                // nothing about session health — retrying a malformed
                // program must surface the real error, not CircuitOpen.
                // If this job was the half-open probe, re-arm the breaker
                // so the next submission probes again.
                Outcome::Cancelled | Outcome::Error { .. } => {
                    if is_probe {
                        st.breaker.on_probe_inconclusive();
                    }
                }
            }
            st.record_outcome(&outcome, submitted_at.elapsed().as_nanos() as u64);
            let _ = tx.send(outcome);
        }));
        Ok(Ticket { rx })
    }
}

fn is_deadline(t: &Trap) -> bool {
    matches!(t.kind, TrapKind::DeadlineExceeded { .. })
}

/// Prefix marking a caught panic's message, so the classifier can tell
/// panics from deterministic errors without another enum variant
/// crossing the `catch_unwind` boundary.
const PANIC_TAG: &str = "panic: ";

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return format!("{PANIC_TAG}{s}");
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return format!("{PANIC_TAG}{s}");
    }
    format!("{PANIC_TAG}opaque payload")
}
