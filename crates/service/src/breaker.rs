//! Per-session circuit breaker: a session whose jobs keep faulting is
//! quarantined at *admission* instead of being allowed to burn worker
//! time, and is probed back to health instead of being banned forever.
//!
//! The breaker is **count-based**, not clock-based: tripping requires
//! `trip_after` *consecutive* job faults, the open state rejects the next
//! `cooldown` submissions, and the submission after that is admitted as a
//! single half-open probe. A successful probe closes the breaker; a
//! faulting probe re-opens it for another cooldown. Counting in
//! submissions rather than seconds keeps every transition deterministic
//! under test (and under the CI fault-injection matrix) while preserving
//! the shape of a classic time-based breaker — the rejected submissions
//! *are* the cooldown.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Breaker tuning; see the module docs for the state machine.
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive job faults that trip the breaker open.
    pub trip_after: u32,
    /// Submissions rejected while open before a half-open probe is let
    /// through.
    pub cooldown: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            trip_after: 3,
            cooldown: 8,
        }
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum State {
    Closed {
        consecutive_faults: u32,
    },
    Open {
        rejects_left: u32,
    },
    /// One probe job is in flight; its outcome decides the next state.
    HalfOpen,
}

/// What the breaker says about one submission attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Healthy session: run the job.
    Allow,
    /// The breaker is half-open and this job is the probe: run it, and
    /// its outcome closes or re-opens the breaker.
    Probe,
    /// Quarantined: do not run. `retry_after` is how many further
    /// submissions will be rejected before a probe is admitted.
    Reject { retry_after: u32 },
}

/// See the module docs.
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    opened: AtomicU64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed {
                consecutive_faults: 0,
            }),
            opened: AtomicU64::new(0),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Gate for one submission. Open-state bookkeeping happens here: each
    /// rejected submission counts down toward the half-open probe.
    pub fn admit(&self) -> Admission {
        let mut st = self.state();
        match *st {
            State::Closed { .. } => Admission::Allow,
            State::Open { rejects_left: 0 } => {
                *st = State::HalfOpen;
                Admission::Probe
            }
            State::Open { rejects_left } => {
                *st = State::Open {
                    rejects_left: rejects_left - 1,
                };
                Admission::Reject {
                    retry_after: rejects_left,
                }
            }
            // A probe is already in flight; whoever submitted it gets to
            // decide the session's fate first.
            State::HalfOpen => Admission::Reject { retry_after: 1 },
        }
    }

    /// A job completed cleanly: resets the fault streak, and closes the
    /// breaker if this was the half-open probe.
    pub fn on_success(&self) {
        let mut st = self.state();
        match *st {
            State::HalfOpen => {
                chef_telemetry::counter!("service.breaker.closed").inc();
                *st = State::Closed {
                    consecutive_faults: 0,
                };
            }
            State::Closed { .. } => {
                *st = State::Closed {
                    consecutive_faults: 0,
                };
            }
            State::Open { .. } => {} // stale completion from before the trip
        }
    }

    /// The half-open probe ended without a verdict — cancelled at drain,
    /// or a deterministic caller error that says nothing about session
    /// health. Re-arms the breaker at the head of the open queue so the
    /// *next* submission is admitted as a fresh probe; without this the
    /// breaker would be stranded in `HalfOpen` (every submission rejected,
    /// no probe in flight to ever close it). No-op unless half-open.
    pub fn on_probe_inconclusive(&self) {
        let mut st = self.state();
        if *st == State::HalfOpen {
            *st = State::Open { rejects_left: 0 };
        }
    }

    /// A job faulted (trap, deadline, panic): extends the streak, trips
    /// the breaker at `trip_after`, and re-opens it if this was the
    /// half-open probe.
    pub fn on_fault(&self) {
        let mut st = self.state();
        match *st {
            State::Closed { consecutive_faults } => {
                let streak = consecutive_faults + 1;
                if streak >= self.cfg.trip_after {
                    self.opened.fetch_add(1, Ordering::Relaxed);
                    chef_telemetry::counter!("service.breaker.opened").inc();
                    *st = State::Open {
                        rejects_left: self.cfg.cooldown,
                    };
                } else {
                    *st = State::Closed {
                        consecutive_faults: streak,
                    };
                }
            }
            State::HalfOpen => {
                self.opened.fetch_add(1, Ordering::Relaxed);
                chef_telemetry::counter!("service.breaker.reopened").inc();
                *st = State::Open {
                    rejects_left: self.cfg.cooldown,
                };
            }
            State::Open { .. } => {}
        }
    }

    /// `true` while submissions are being rejected (open, or half-open
    /// with the probe still out).
    pub fn is_quarantining(&self) -> bool {
        !matches!(*self.state(), State::Closed { .. })
    }

    /// Times this breaker has tripped (including probe re-opens).
    pub fn times_opened(&self) -> u64 {
        self.opened.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trips_after_consecutive_faults_and_probes_back_closed() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 3,
            cooldown: 2,
        });
        // Two faults with a success between: no trip (streak resets).
        b.on_fault();
        b.on_fault();
        b.on_success();
        assert_eq!(b.admit(), Admission::Allow);
        assert_eq!(b.times_opened(), 0);
        // Three consecutive faults trip it.
        b.on_fault();
        b.on_fault();
        b.on_fault();
        assert!(b.is_quarantining());
        assert_eq!(b.times_opened(), 1);
        // Cooldown: two rejects, counting down to the probe.
        assert_eq!(b.admit(), Admission::Reject { retry_after: 2 });
        assert_eq!(b.admit(), Admission::Reject { retry_after: 1 });
        // Then exactly one probe is admitted; siblings still rejected.
        assert_eq!(b.admit(), Admission::Probe);
        assert_eq!(b.admit(), Admission::Reject { retry_after: 1 });
        // Probe succeeds → closed again.
        b.on_success();
        assert!(!b.is_quarantining());
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn faulting_probe_reopens_for_another_cooldown() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            cooldown: 1,
        });
        b.on_fault();
        assert_eq!(b.admit(), Admission::Reject { retry_after: 1 });
        assert_eq!(b.admit(), Admission::Probe);
        b.on_fault(); // probe fails
        assert_eq!(b.times_opened(), 2);
        assert_eq!(b.admit(), Admission::Reject { retry_after: 1 });
        assert_eq!(b.admit(), Admission::Probe);
        b.on_success();
        assert_eq!(b.admit(), Admission::Allow);
    }

    #[test]
    fn inconclusive_probe_rearms_instead_of_stranding_half_open() {
        let b = CircuitBreaker::new(BreakerConfig {
            trip_after: 1,
            cooldown: 0,
        });
        b.on_fault();
        assert_eq!(b.admit(), Admission::Probe);
        // The probe was cancelled (drain) or ended in a deterministic
        // error: no verdict on session health.
        b.on_probe_inconclusive();
        // The very next submission is a fresh probe — not Reject forever.
        assert_eq!(b.admit(), Admission::Probe);
        b.on_success();
        assert_eq!(b.admit(), Admission::Allow);
        assert_eq!(b.times_opened(), 1);
        // No-op when not half-open.
        b.on_probe_inconclusive();
        assert_eq!(b.admit(), Admission::Allow);
    }
}
