//! Work-stealing batch scheduler: a fixed pool of worker threads, one
//! job deque per worker, submissions spread round-robin and idle workers
//! stealing from their neighbours.
//!
//! The scheduler is deliberately *dumb* about what a job is — a job is a
//! boxed closure handed the index of the worker running it, which the
//! server uses to route the job onto that worker's machine-arena shard
//! (see [`crate::WorkerShard`]). All resilience decisions (admission,
//! budgets, retries, breakers) happen in the closure; the scheduler only
//! guarantees that every accepted job runs exactly once, on some worker,
//! and that [`Scheduler::quiesce`] returns only when nothing is queued
//! *or* executing.
//!
//! Counting protocol: `pending` is jobs accepted but not yet picked up,
//! `active` is jobs currently executing. A submitter increments
//! `pending` **before** pushing the job onto a deque, and a worker
//! increments `active` **before** decrementing `pending` when it takes
//! one — so `pending + active` never reads zero while a job is in
//! transit between the two counters (it may transiently *over*count by
//! one, which only errs conservative for backpressure and quiesce).
//! That is what makes the quiesce loop's exit test sound without a
//! global lock around job execution.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// A unit of work: runs on some worker thread, receiving that worker's
/// index (stable for the scheduler's lifetime).
pub(crate) type Job = Box<dyn FnOnce(usize) + Send + 'static>;

struct SchedInner {
    /// One deque per worker; workers pop their own front and steal from
    /// the back of their neighbours'.
    queues: Vec<Mutex<VecDeque<Job>>>,
    /// Jobs accepted and queued but not yet taken by a worker.
    pending: AtomicUsize,
    /// Jobs currently executing on some worker.
    active: AtomicUsize,
    /// Round-robin cursor for submissions.
    next: AtomicUsize,
    /// Workers exit once this is set and the queues are empty.
    shutdown: AtomicBool,
    /// Sleep/wake for idle workers. The mutex guards the *notification*,
    /// not the counters; waits use a timeout so a lost race costs a tick
    /// of latency, never a hang.
    wake: Mutex<()>,
    wake_cv: Condvar,
    /// Signalled after every job completion for `quiesce` waiters.
    done: Mutex<()>,
    done_cv: Condvar,
}

/// Fixed-size work-stealing thread pool. See the module docs for the
/// counting protocol that backs [`Scheduler::quiesce`].
pub(crate) struct Scheduler {
    inner: Arc<SchedInner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// How long an idle worker (or a quiesce waiter) sleeps between
/// re-checks when a wakeup raced past it.
const IDLE_TICK: Duration = Duration::from_millis(2);

impl Scheduler {
    pub(crate) fn new(workers: usize) -> Self {
        let workers = workers.max(1);
        let inner = Arc::new(SchedInner {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            next: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            wake: Mutex::new(()),
            wake_cv: Condvar::new(),
            done: Mutex::new(()),
            done_cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("chef-service-worker-{i}"))
                    .spawn(move || worker_loop(&inner, i))
                    .expect("spawn service worker")
            })
            .collect();
        Scheduler {
            inner,
            workers: Mutex::new(handles),
        }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Jobs accepted but not yet started — the admission layer's
    /// backpressure signal.
    pub(crate) fn queue_depth(&self) -> usize {
        self.inner.pending.load(Ordering::Relaxed)
    }

    /// Jobs currently executing.
    pub(crate) fn active(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Enqueues a job (round-robin across worker deques) and wakes a
    /// worker. Panics if called after [`Scheduler::shutdown`] — the
    /// server's admission layer rejects before this point.
    pub(crate) fn submit(&self, job: Job) {
        assert!(
            !self.inner.shutdown.load(Ordering::SeqCst),
            "submit after shutdown"
        );
        let n = self.inner.queues.len();
        let at = self.inner.next.fetch_add(1, Ordering::Relaxed) % n;
        // `pending` goes up *before* the job becomes visible in a deque
        // (mirroring the active-before-pending order on the take side):
        // a worker can only decrement after the push, so `pending` never
        // wraps below zero, and `quiesce` can never observe
        // pending == 0 && active == 0 while this job is still in flight.
        self.inner.pending.fetch_add(1, Ordering::SeqCst);
        lock(&self.inner.queues[at]).push_back(job);
        let _g = lock(&self.inner.wake);
        self.inner.wake_cv.notify_one();
    }

    /// Blocks until no job is queued or executing. Callers stop
    /// admitting first (otherwise this chases a moving target).
    pub(crate) fn quiesce(&self) {
        loop {
            let g = lock(&self.inner.done);
            if self.inner.pending.load(Ordering::SeqCst) == 0
                && self.inner.active.load(Ordering::SeqCst) == 0
            {
                return;
            }
            let _ = self
                .inner
                .done_cv
                .wait_timeout(g, IDLE_TICK)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stops the workers: runs everything still queued, then joins the
    /// threads. Idempotent.
    pub(crate) fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = lock(&self.inner.wake);
            self.inner.wake_cv.notify_all();
        }
        let handles = std::mem::take(&mut *lock(&self.workers));
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Scheduler {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Poison-tolerant lock: a panicking *job* is caught inside the job
/// wrapper, but defence-in-depth keeps the scheduler serviceable even if
/// a queue mutex is ever poisoned.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

fn worker_loop(inner: &SchedInner, me: usize) {
    loop {
        match take_job(inner, me) {
            Some(job) => {
                // The server's job wrapper already catches panics and
                // converts them into outcomes; this outer catch is the
                // scheduler's own guarantee that a worker thread (and the
                // `active` count `quiesce` depends on) survives anything
                // a job does.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(me)));
                inner.active.fetch_sub(1, Ordering::SeqCst);
                let _g = lock(&inner.done);
                inner.done_cv.notify_all();
            }
            None => {
                if inner.shutdown.load(Ordering::SeqCst)
                    && inner.pending.load(Ordering::SeqCst) == 0
                {
                    return;
                }
                let g = lock(&inner.wake);
                // Re-check under the wake lock so a submit that fired
                // between `take_job` and here is not slept through for a
                // full tick (it usually isn't even for the timeout).
                if inner.pending.load(Ordering::SeqCst) == 0
                    && !inner.shutdown.load(Ordering::SeqCst)
                {
                    let _ = inner
                        .wake_cv
                        .wait_timeout(g, IDLE_TICK)
                        .unwrap_or_else(|p| p.into_inner());
                }
            }
        }
    }
}

/// Takes one job: own queue front first (cache-warm), then steals from
/// the back of the other queues. Increments `active` *before*
/// decrementing `pending` — see the module docs.
fn take_job(inner: &SchedInner, me: usize) -> Option<Job> {
    let n = inner.queues.len();
    for k in 0..n {
        let i = (me + k) % n;
        let job = if i == me {
            lock(&inner.queues[i]).pop_front()
        } else {
            lock(&inner.queues[i]).pop_back()
        };
        if let Some(job) = job {
            inner.active.fetch_add(1, Ordering::SeqCst);
            inner.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn runs_every_job_exactly_once_across_workers() {
        let sched = Scheduler::new(4);
        let hits = Arc::new(AtomicU64::new(0));
        let used = Arc::new(Mutex::new(std::collections::HashSet::new()));
        for _ in 0..200 {
            let hits = Arc::clone(&hits);
            let used = Arc::clone(&used);
            sched.submit(Box::new(move |w| {
                // Enough dwell time that one worker cannot drain the
                // whole burst before the others wake.
                std::thread::sleep(Duration::from_micros(300));
                hits.fetch_add(1, Ordering::SeqCst);
                used.lock().unwrap().insert(w);
            }));
        }
        sched.quiesce();
        assert_eq!(hits.load(Ordering::SeqCst), 200);
        // The burst is spread over more than one worker (work stealing
        // plus round-robin placement).
        assert!(lock(&used).len() > 1);
        sched.shutdown();
        assert_eq!(sched.queue_depth(), 0);
        assert_eq!(sched.active(), 0);
    }

    #[test]
    fn quiesce_waits_for_slow_in_flight_jobs() {
        let sched = Scheduler::new(2);
        let done = Arc::new(AtomicBool::new(false));
        let d = Arc::clone(&done);
        sched.submit(Box::new(move |_| {
            std::thread::sleep(Duration::from_millis(30));
            d.store(true, Ordering::SeqCst);
        }));
        sched.quiesce();
        assert!(done.load(Ordering::SeqCst), "quiesce returned early");
    }

    #[test]
    fn worker_index_is_a_valid_shard_route() {
        let sched = Scheduler::new(3);
        let bad = Arc::new(AtomicU64::new(0));
        for _ in 0..50 {
            let bad = Arc::clone(&bad);
            sched.submit(Box::new(move |w| {
                if w >= 3 {
                    bad.fetch_add(1, Ordering::SeqCst);
                }
            }));
        }
        sched.quiesce();
        assert_eq!(bad.load(Ordering::SeqCst), 0);
    }
}
