//! Pins the [`Rejected::retry_after`] semantics table (one shape per
//! reason, on every path that produces the reason) and the server's
//! persistent-cache warm start: sessions share the `cache_dir` store,
//! drain flushes pending write-backs, and a second server on the same
//! store resolves every variant from disk without compiling.

use chef_exec::fault::FaultPlan;
use chef_exec::prelude::*;
use chef_service::{
    AnalysisServer, BreakerConfig, Outcome, RejectReason, ServiceConfig, SessionSpec,
};
use std::sync::{mpsc, Arc};

fn compiled(src: &str) -> Arc<CompiledFunction> {
    let mut p = chef_ir::parser::parse_program(src).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    Arc::new(compile_default(&p.functions[0]).unwrap())
}

/// An inert plan (never fires): opts a session out of any ambient
/// `CHEF_FAULT_SEED` environment plan.
fn no_injection() -> FaultPlan {
    FaultPlan::new(None, 0, 0, 1)
}

const KERNEL: &str = "double f(double x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s += sin(x + i * 0.01) * 0.5; }
    return s;
}";

#[test]
fn retry_after_semantics_per_reason() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        max_sessions: 1,
        max_queue_depth: 1,
        breaker: BreakerConfig {
            trip_after: 1,
            cooldown: 2,
        },
        ..Default::default()
    });
    let session = server
        .open_session(
            SessionSpec::named("only")
                .with_budget(100)
                .with_fault(no_injection()),
        )
        .unwrap();

    // SessionLimit → Some(n): n session closes free an open slot.
    let rej = server
        .open_session(SessionSpec::named("extra"))
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::SessionLimit);
    assert_eq!(rej.retry_after, Some(1));

    // QueueFull → Some(n): n queued jobs must start first.
    let light = compiled("double f(double x) { return x * 2.0; }");
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gated = session
        .submit_task(move || gate_rx.recv().unwrap())
        .unwrap();
    while server.active_jobs() == 0 {
        std::thread::yield_now();
    }
    let queued = session.submit_task(|| ()).unwrap();
    let rej = session
        .submit_run(light.clone(), vec![ArgValue::F(1.0)])
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::QueueFull);
    assert_eq!(rej.retry_after, Some(1));
    gate_tx.send(()).unwrap();
    assert!(matches!(gated.wait(), Outcome::Completed { .. }));
    assert!(matches!(queued.wait(), Outcome::Completed { .. }));

    // CircuitOpen → Some(n): a countdown of rejected submissions until
    // the half-open probe. One budget fault trips the breaker
    // (trip_after = 1, cooldown = 2).
    let heavy = compiled(KERNEL);
    let o = session
        .submit_run(heavy, vec![ArgValue::F(0.3), ArgValue::I(500)])
        .unwrap()
        .wait();
    assert!(matches!(o, Outcome::Faulted { .. }), "{o:?}");
    let rej = session
        .submit_run(light.clone(), vec![ArgValue::F(1.0)])
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::CircuitOpen);
    assert_eq!(rej.retry_after, Some(2));

    // Draining → None on BOTH paths (session open and job submission):
    // the refusal is permanent, waiting can never help.
    server.drain();
    let rej = server.open_session(SessionSpec::named("late")).unwrap_err();
    assert_eq!(rej.reason, RejectReason::Draining);
    assert_eq!(rej.retry_after, None);
    let rej = session
        .submit_run(light, vec![ArgValue::F(1.0)])
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::Draining);
    assert_eq!(rej.retry_after, None);
}

#[test]
fn warm_start_shares_store_across_sessions_and_processes() {
    let dir = std::env::temp_dir().join(format!("chef-service-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let mut p = chef_ir::parser::parse_program(KERNEL).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let program = Arc::new(p);
    let args = vec![ArgValue::F(0.37), ArgValue::I(100)];
    let mut cfg = chef_tuner::TunerConfig::with_threshold(1e-3);
    cfg.fault_plan = Some(no_injection());

    let run_tune = |server: &AnalysisServer| {
        let session = server
            .open_session(SessionSpec::named("tuner").with_fault(no_injection()))
            .unwrap();
        let o = session
            .submit_tune(
                Arc::clone(&program),
                "f".to_string(),
                args.clone(),
                cfg.clone(),
                chef_tuner::OracleTuneOptions::default(),
            )
            .unwrap()
            .wait();
        match o {
            Outcome::Completed { value, .. } => value,
            other => panic!("tune failed: {other:?}"),
        }
    };

    // Cold server: everything compiles; drain flushes the write-backs.
    let cold_server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let cold = run_tune(&cold_server);
    let report = cold_server.drain();
    assert!(report.leak_free());
    let store = cold_server
        .disk_store()
        .expect("cache_dir attaches a store");
    assert!(
        store.writes() > 0,
        "drain must flush pending variant write-backs"
    );
    let entries = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".cfn"))
        .count();
    assert_eq!(entries as u64, store.writes());
    drop(cold_server);

    // Warm "process": a fresh server on the same directory resolves
    // every variant by content hash from disk — zero compilations
    // through the store, bit-identical tuning outcome.
    let warm_server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        cache_dir: Some(dir.clone()),
        ..Default::default()
    });
    let warm = run_tune(&warm_server);
    let store = warm_server.disk_store().unwrap();
    assert!(store.hits() > 0, "warm tune must load variants from disk");
    assert_eq!(store.misses(), 0, "warm tune must not compile any variant");
    assert_eq!(store.corrupt(), 0);
    assert_eq!(warm.demoted, cold.demoted);
    assert_eq!(
        warm.baseline_value.to_bits(),
        cold.baseline_value.to_bits(),
        "disk-loaded variants must execute bit-identically"
    );
    match (warm.measured_error, cold.measured_error) {
        (Some(w), Some(c)) => assert_eq!(w.to_bits(), c.to_bits()),
        (w, c) => assert_eq!(w, c),
    }
    assert!(warm_server.drain().leak_free());
    let _ = std::fs::remove_dir_all(&dir);
}
