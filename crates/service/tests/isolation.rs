//! Cross-session isolation, drain, deadline and admission tests — the
//! pinned robustness contract of `chef-service`:
//!
//! * a session full of injected faults cannot perturb its neighbours'
//!   results by a single bit;
//! * a graceful drain leaves zero outstanding machine checkouts and
//!   rejects everything afterwards;
//! * a deadline overrun is a typed trap with pc attribution, never a
//!   panic;
//! * admission rejects with typed reasons at the session limit, under
//!   queue backpressure, and while a breaker quarantines a session.

use chef_exec::fault::FaultPlan;
use chef_exec::prelude::*;
use chef_service::{
    AnalysisServer, BreakerConfig, Outcome, RejectReason, ServiceConfig, SessionSpec,
};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

fn compiled(src: &str) -> Arc<CompiledFunction> {
    let mut p = chef_ir::parser::parse_program(src).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    Arc::new(compile_default(&p.functions[0]).unwrap())
}

/// An inert plan (never fires): opts a session out of any ambient
/// `CHEF_FAULT_SEED` environment plan, so clean sessions stay clean
/// under the CI fault matrix.
fn no_injection() -> FaultPlan {
    FaultPlan::new(None, 0, 0, 1)
}

const KERNEL: &str = "double f(double x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s += sin(x + i * 0.01) * 0.5; }
    return s;
}";

#[test]
fn faulty_session_neighbors_stay_bit_identical_to_solo_runs() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 3,
        ..Default::default()
    });
    let clean_a = server
        .open_session(SessionSpec::named("clean-a").with_fault(no_injection()))
        .unwrap();
    let clean_b = server
        .open_session(SessionSpec::named("clean-b").with_fault(no_injection()))
        .unwrap();
    // The noisy neighbour: every ~3rd draw injects a trap, panic or NaN.
    let faulty = server
        .open_session(SessionSpec::named("faulty").with_fault(FaultPlan::from_seed(42, None)))
        .unwrap();

    let func = compiled(KERNEL);
    let args_of = |k: usize| vec![ArgValue::F(0.1 * k as f64), ArgValue::I(200 + k as i64)];

    // Interleave submissions so faulty jobs run concurrently with (and
    // between) the clean sessions' jobs on the shared workers.
    let mut clean_tickets = Vec::new();
    let mut faulty_tickets = Vec::new();
    for k in 0..12 {
        clean_tickets.push((0, k, clean_a.submit_run(func.clone(), args_of(k)).unwrap()));
        faulty_tickets.push(faulty.submit_run(func.clone(), args_of(k)).unwrap());
        clean_tickets.push((1, k, clean_b.submit_run(func.clone(), args_of(k)).unwrap()));
    }

    // Solo reference: a fresh machine, same exec options as a clean
    // session job (inert plan, no budget).
    let solo_opts = ExecOptions {
        fault: Some(no_injection()),
        ..Default::default()
    };
    for (_, k, t) in clean_tickets {
        match t.wait() {
            Outcome::Completed { value, .. } => {
                let solo = run_with(&func, args_of(k), &solo_opts).unwrap();
                assert_eq!(
                    value.ret_f().to_bits(),
                    solo.ret_f().to_bits(),
                    "clean session run {k} diverged from solo"
                );
                assert_eq!(value.stats, solo.stats, "stats diverged on run {k}");
            }
            other => panic!("clean session job {k} did not complete: {other:?}"),
        }
    }
    // Every faulty job reached a terminal state (completed, retried, or
    // a typed fault) — none hung, none killed a worker.
    for t in faulty_tickets {
        let o = t.wait();
        assert!(
            !matches!(o, Outcome::Cancelled),
            "nothing was draining, so nothing may cancel"
        );
    }
    let report = server.drain();
    assert!(report.leak_free(), "outstanding: {report:?}");
}

#[test]
fn drain_leaves_zero_outstanding_and_rejects_afterwards() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    let session = server
        .open_session(SessionSpec::named("s").with_fault(no_injection()))
        .unwrap();
    let func = compiled(KERNEL);
    let mut tickets = Vec::new();
    for k in 0..16 {
        tickets.push(
            session
                .submit_run(func.clone(), vec![ArgValue::F(k as f64), ArgValue::I(500)])
                .unwrap(),
        );
    }
    let report = server.drain();
    assert!(report.leak_free(), "outstanding: {report:?}");
    assert_eq!(server.queue_depth(), 0);
    assert_eq!(server.active_jobs(), 0);

    // In-flight jobs completed; queued ones were cancelled — and every
    // ticket resolved either way.
    let mut completed = 0u32;
    let mut cancelled = 0u32;
    for t in tickets {
        match t.wait() {
            Outcome::Completed { .. } => completed += 1,
            Outcome::Cancelled => cancelled += 1,
            other => panic!("unexpected outcome during drain: {other:?}"),
        }
    }
    assert_eq!(completed + cancelled, 16);

    // Post-drain: submissions and session opens are rejected, typed.
    let rej = session
        .submit_run(func.clone(), vec![ArgValue::F(0.0), ArgValue::I(1)])
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::Draining);
    let rej = server.open_session(SessionSpec::named("late")).unwrap_err();
    assert_eq!(rej.reason, RejectReason::Draining);

    // The per-session ledger agrees with the ticket tally.
    let stats = session.stats();
    assert_eq!(stats.completed, completed as u64);
    assert_eq!(stats.cancelled, cancelled as u64);
    assert_eq!(stats.rejected_backpressure, 1, "the post-drain submit");
}

#[test]
fn deadline_overrun_is_a_typed_trap_with_pc_never_a_panic() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    let session = server
        .open_session(
            SessionSpec::named("deadline")
                .with_deadline(Duration::from_millis(10))
                .with_fault(no_injection()),
        )
        .unwrap();
    let spin = compiled("void f() { while (true) { } }");
    let outcome = session.submit_run(spin.clone(), vec![]).unwrap().wait();
    match outcome {
        Outcome::DeadlineExceeded { pc, executed } => {
            assert!(pc < spin.instrs.len(), "pc {pc} out of range");
            assert!(executed >= DEADLINE_STRIDE, "{executed}");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(session.stats().deadline_exceeded, 1);
    // The worker survived: the same session still completes good work.
    let quick = compiled("double f(double x) { return x + 1.0; }");
    let o = session
        .submit_run(quick, vec![ArgValue::F(1.0)])
        .unwrap()
        .wait();
    match o {
        Outcome::Completed { value, .. } => assert_eq!(value.ret_f(), 2.0),
        other => panic!("expected completion after deadline trap: {other:?}"),
    }
    assert!(server.drain().leak_free());
}

#[test]
fn budget_faults_trip_the_breaker_and_a_probe_closes_it() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown: 2,
        },
        ..Default::default()
    });
    let session = server
        .open_session(
            SessionSpec::named("hot")
                .with_budget(100)
                .with_fault(no_injection()),
        )
        .unwrap();
    let heavy = compiled(KERNEL); // needs ≫ 100 instructions at n=500
    let light = compiled("double f(double x) { return x * 2.0; }");

    // Two consecutive budget faults trip the breaker. (Sequential
    // submission: each outcome is awaited before the next submit.)
    for _ in 0..2 {
        let o = session
            .submit_run(heavy.clone(), vec![ArgValue::F(0.3), ArgValue::I(500)])
            .unwrap()
            .wait();
        assert!(
            matches!(
                &o,
                Outcome::Faulted { trap, .. }
                    if matches!(trap.kind, TrapKind::InstrBudgetExhausted { .. })
            ),
            "{o:?}"
        );
    }
    assert!(session.quarantined());
    assert_eq!(session.breaker_trips(), 1);

    // Cooldown: the next two submissions are rejected with a typed
    // countdown.
    for expected in [2u32, 1u32] {
        let rej = session
            .submit_run(light.clone(), vec![ArgValue::F(1.0)])
            .unwrap_err();
        assert_eq!(rej.reason, RejectReason::CircuitOpen);
        assert_eq!(rej.retry_after, Some(expected));
    }
    // Then one probe is admitted; it fits the budget, so it closes the
    // breaker and the session is healthy again.
    let o = session
        .submit_run(light.clone(), vec![ArgValue::F(21.0)])
        .unwrap()
        .wait();
    assert!(matches!(o, Outcome::Completed { .. }), "{o:?}");
    assert!(!session.quarantined());
    let o = session
        .submit_run(light, vec![ArgValue::F(1.0)])
        .unwrap()
        .wait();
    assert!(matches!(o, Outcome::Completed { .. }));
    assert_eq!(session.stats().rejected_quarantine, 2);
    assert!(server.drain().leak_free());
}

#[test]
fn injected_faults_recover_via_retry_under_sequential_submission() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        ..Default::default()
    });
    // Period ≥ 3 and one job in flight at a time: a fired draw is
    // always followed by a quiet one, so retry-once recovers every
    // injected trap/panic. (NaN injection completes with a poisoned
    // value — also terminal, also counted.)
    let session = server
        .open_session(SessionSpec::named("inj").with_fault(FaultPlan::from_seed(7, None)))
        .unwrap();
    let func = compiled(KERNEL);
    let mut done = 0u32;
    for k in 0..20 {
        let o = session
            .submit_run(
                func.clone(),
                vec![ArgValue::F(0.2 * k as f64), ArgValue::I(50)],
            )
            .unwrap()
            .wait();
        match o {
            Outcome::Completed { .. } => done += 1,
            other => panic!("sequential injected fault must recover: {other:?}"),
        }
    }
    assert_eq!(done, 20);
    let stats = session.stats();
    assert!(stats.retried > 0, "the plan fires within 20 jobs");
    assert!(server.drain().leak_free());
}

#[test]
fn admission_rejects_at_session_limit_and_queue_depth() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        max_sessions: 2,
        max_queue_depth: 1,
        ..Default::default()
    });
    let a = server.open_session(SessionSpec::named("a")).unwrap();
    let _b = server.open_session(SessionSpec::named("b")).unwrap();
    let rej = server.open_session(SessionSpec::named("c")).unwrap_err();
    assert_eq!(rej.reason, RejectReason::SessionLimit);

    // Closing a session frees its registry slot.
    a.close();
    let c = server.open_session(SessionSpec::named("c")).unwrap();

    // Backpressure: gate the single worker on a channel, fill the
    // one-deep queue, and watch the next submission bounce.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gated = c.submit_task(move || gate_rx.recv().unwrap()).unwrap();
    while server.active_jobs() == 0 {
        std::thread::yield_now();
    }
    let queued = c.submit_task(|| 1u32).unwrap();
    assert_eq!(server.queue_depth(), 1);
    let rej = c.submit_task(|| 2u32).unwrap_err();
    assert_eq!(rej.reason, RejectReason::QueueFull);
    assert_eq!(c.stats().rejected_backpressure, 1);

    gate_tx.send(()).unwrap();
    assert!(matches!(gated.wait(), Outcome::Completed { .. }));
    assert!(matches!(queued.wait(), Outcome::Completed { value: 1, .. }));
    assert!(server.drain().leak_free());
}

#[test]
fn backpressure_never_consumes_the_half_open_probe() {
    // Regression pin: admission must check queue depth *before* the
    // breaker. On the old order, a quarantined session whose cooldown
    // had elapsed would have its half-open Probe admitted by the
    // breaker and then bounced by QueueFull — stranding the breaker in
    // HalfOpen with no probe in flight, i.e. permanent quarantine.
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        max_queue_depth: 1,
        breaker: BreakerConfig {
            trip_after: 1,
            cooldown: 0,
        },
        ..Default::default()
    });
    let victim = server
        .open_session(
            SessionSpec::named("victim")
                .with_budget(100)
                .with_fault(no_injection()),
        )
        .unwrap();
    let noisy = server
        .open_session(SessionSpec::named("noisy").with_fault(no_injection()))
        .unwrap();
    let heavy = compiled(KERNEL); // needs ≫ 100 instructions at n=500
    let light = compiled("double f(double x) { return x * 2.0; }");

    // One budget fault trips the victim's breaker (trip_after = 1);
    // with cooldown = 0 its very next submission is the probe.
    let o = victim
        .submit_run(heavy, vec![ArgValue::F(0.3), ArgValue::I(500)])
        .unwrap()
        .wait();
    assert!(matches!(o, Outcome::Faulted { .. }), "{o:?}");
    assert!(victim.quarantined());

    // Let the faulted job fully settle: its worker decrements `active`
    // only after the outcome is delivered, so wait for the pool to go
    // idle before gating it (otherwise the gate loop below could see
    // the *old* job's `active` count).
    while server.active_jobs() != 0 {
        std::thread::yield_now();
    }

    // Fill the queue: gate the single worker, then queue one more job.
    let (gate_tx, gate_rx) = mpsc::channel::<()>();
    let gated = noisy.submit_task(move || gate_rx.recv().unwrap()).unwrap();
    while server.active_jobs() == 0 {
        std::thread::yield_now();
    }
    let queued = noisy.submit_task(|| ()).unwrap();
    assert_eq!(server.queue_depth(), 1);

    // The victim's submission bounces on backpressure — and must NOT
    // have consumed the breaker's probe.
    let rej = victim
        .submit_run(light.clone(), vec![ArgValue::F(1.0)])
        .unwrap_err();
    assert_eq!(rej.reason, RejectReason::QueueFull);

    // Drain the queue, then the probe is still available: the next
    // submission is admitted, completes, and closes the breaker. (On
    // the old order this submission — and every one after it — was
    // rejected with CircuitOpen forever.)
    gate_tx.send(()).unwrap();
    assert!(matches!(gated.wait(), Outcome::Completed { .. }));
    assert!(matches!(queued.wait(), Outcome::Completed { .. }));
    let o = victim
        .submit_run(light, vec![ArgValue::F(21.0)])
        .unwrap()
        .wait();
    assert!(matches!(o, Outcome::Completed { .. }), "{o:?}");
    assert!(!victim.quarantined());
    let stats = victim.stats();
    assert_eq!(stats.rejected_backpressure, 1);
    assert_eq!(stats.rejected_quarantine, 0);
    assert!(server.drain().leak_free());
}

#[test]
fn error_outcomes_are_breaker_neutral_and_an_error_probe_rearms() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 1,
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown: 0,
        },
        ..Default::default()
    });
    let session = server
        .open_session(
            SessionSpec::named("mistaken")
                .with_budget(100)
                .with_fault(no_injection()),
        )
        .unwrap();
    let mut p = chef_ir::parser::parse_program(KERNEL).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let program = Arc::new(p);
    let mut cfg = chef_tuner::TunerConfig::with_threshold(1e-3);
    cfg.fault_plan = Some(no_injection());
    let args = vec![ArgValue::F(0.37), ArgValue::I(100)];
    let submit_bad_tune = || {
        session
            .submit_tune(
                Arc::clone(&program),
                "no_such_function".to_string(),
                args.clone(),
                cfg.clone(),
                chef_tuner::OracleTuneOptions::default(),
            )
            .unwrap()
            .wait()
    };

    // A client retrying a malformed request keeps seeing its own error,
    // never CircuitOpen: deterministic caller mistakes must not extend
    // the fault streak (trip_after = 2 would trip on the second one).
    for _ in 0..3 {
        let o = submit_bad_tune();
        assert!(matches!(o, Outcome::Error { .. }), "{o:?}");
        assert!(!session.quarantined());
    }
    assert_eq!(session.breaker_trips(), 0);

    // Trip the breaker with two real (budget) faults...
    let heavy = compiled(KERNEL);
    for _ in 0..2 {
        let o = session
            .submit_run(heavy.clone(), vec![ArgValue::F(0.3), ArgValue::I(500)])
            .unwrap()
            .wait();
        assert!(matches!(o, Outcome::Faulted { .. }), "{o:?}");
    }
    assert!(session.quarantined());
    assert_eq!(session.breaker_trips(), 1);

    // ...then let the half-open probe settle as an Error. That is no
    // verdict on session health: the breaker re-arms instead of closing
    // (the error proves nothing), re-opening (it is not a fault), or
    // stranding HalfOpen (the next submission must still be admitted).
    let o = submit_bad_tune();
    assert!(matches!(o, Outcome::Error { .. }), "{o:?}");
    let light = compiled("double f(double x) { return x * 2.0; }");
    let o = session
        .submit_run(light, vec![ArgValue::F(21.0)])
        .unwrap()
        .wait();
    assert!(matches!(o, Outcome::Completed { .. }), "{o:?}");
    assert!(!session.quarantined());
    assert_eq!(session.breaker_trips(), 1);
    assert_eq!(session.stats().errors, 4);
    assert!(server.drain().leak_free());
}

#[test]
fn shadow_and_tune_jobs_flow_through_sessions() {
    let server = AnalysisServer::new(ServiceConfig {
        workers: 2,
        ..Default::default()
    });
    let session = server
        .open_session(SessionSpec::named("tuneme").with_fault(no_injection()))
        .unwrap();

    // Shadow run: same kernel, f64 shadow — completes with a report
    // bit-identical to a direct shadow run.
    let func = compiled(KERNEL);
    let args = vec![ArgValue::F(0.37), ArgValue::I(100)];
    let o = session
        .submit_shadow(func.clone(), args.clone())
        .unwrap()
        .wait();
    let via_service = match o {
        Outcome::Completed { value, .. } => value,
        other => panic!("shadow job failed: {other:?}"),
    };
    let solo = run_shadow::<f64>(
        &func,
        args.clone(),
        &ExecOptions {
            fault: Some(no_injection()),
            ..Default::default()
        },
    )
    .unwrap();
    assert_eq!(via_service.ret_f().to_bits(), solo.ret_f().to_bits());

    // A whole tuning job through the session's bounded variant cache.
    let mut p = chef_ir::parser::parse_program(KERNEL).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let program = Arc::new(p);
    let mut cfg = chef_tuner::TunerConfig::with_threshold(1e-3);
    cfg.fault_plan = Some(no_injection());
    let o = session
        .submit_tune(
            program,
            "f".to_string(),
            args,
            cfg,
            chef_tuner::OracleTuneOptions::default(),
        )
        .unwrap()
        .wait();
    match o {
        Outcome::Completed { value, .. } => {
            assert!(value.measured_error.unwrap_or(0.0) <= 1e-3);
        }
        other => panic!("tune job failed: {other:?}"),
    }
    let report = server.drain();
    assert!(report.leak_free(), "outstanding: {report:?}");
}
