//! The Simpsons benchmark (paper §IV-2, Fig. 5, Table I).
//!
//! Composite Simpson's rule for `∫_a^b sin(x)·e^(−x/2) dx` over `2n`
//! subintervals: `h/3 · (f(a) + f(b) + 4·Σf(odd) + 2·Σf(even))`.

use chef_exec::value::ArgValue;
use chef_ir::ast::Program;

/// KernelC source of the kernel.
pub const SOURCE: &str = "
double simpsons(double a, double b, int n) {
    double h = (b - a) / (2.0 * n);
    double s = sin(a) * exp(-a * 0.5) + sin(b) * exp(-b * 0.5);
    for (int i = 1; i < 2 * n; i++) {
        double x = a + i * h;
        double fx = sin(x) * exp(-x * 0.5);
        if (i % 2 == 1) {
            s = s + 4.0 * fx;
        } else {
            s = s + 2.0 * fx;
        }
    }
    double result = s * h / 3.0;
    return result;
}
";

/// Function name inside [`SOURCE`].
pub const NAME: &str = "simpsons";

/// Parses and checks the kernel.
pub fn program() -> Program {
    let mut p = chef_ir::parser::parse_program(SOURCE).expect("simpsons parses");
    chef_ir::typeck::check_program(&mut p).expect("simpsons typechecks");
    p
}

/// Default integration bounds `[0, 2π]`.
pub const BOUNDS: (f64, f64) = (0.0, 2.0 * std::f64::consts::PI);

/// Arguments for a run with `n` interval pairs.
pub fn args(n: i64) -> Vec<ArgValue> {
    vec![ArgValue::F(BOUNDS.0), ArgValue::F(BOUNDS.1), ArgValue::I(n)]
}

fn f64_integrand(x: f64) -> f64 {
    x.sin() * (-x * 0.5).exp()
}

/// Native f64 reference.
pub fn native_f64(a: f64, b: f64, n: usize) -> f64 {
    let h = (b - a) / (2.0 * n as f64);
    let mut s = f64_integrand(a) + f64_integrand(b);
    for i in 1..2 * n {
        let x = a + i as f64 * h;
        let fx = f64_integrand(x);
        s += if i % 2 == 1 { 4.0 * fx } else { 2.0 * fx };
    }
    s * h / 3.0
}

/// Native mixed variant: integrand evaluation in f32 (the dominant cost),
/// accumulation in f64.
pub fn native_mixed(a: f64, b: f64, n: usize) -> f64 {
    let h = (b - a) / (2.0 * n as f64);
    let hf = h as f32;
    let af = a as f32;
    let integrand = |x: f32| x.sin() * (-x * 0.5).exp();
    let mut s = (integrand(af) + integrand(b as f32)) as f64;
    for i in 1..2 * n {
        let x = af + i as f32 * hf;
        let fx = integrand(x) as f64;
        s += if i % 2 == 1 { 4.0 * fx } else { 2.0 * fx };
    }
    s * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::prelude::*;

    #[test]
    fn kernel_matches_native() {
        let p = program();
        let c = compile_default(p.function(NAME).unwrap()).unwrap();
        for n in [4i64, 64, 512] {
            let vm = run(&c, args(n)).unwrap().ret_f();
            let native = native_f64(BOUNDS.0, BOUNDS.1, n as usize);
            assert!(
                (vm - native).abs() <= 1e-12 * native.abs().max(1.0),
                "n={n}: {vm} vs {native}"
            );
        }
    }

    #[test]
    fn converges_to_closed_form() {
        // ∫0^2π sin(x) e^{-x/2} dx = (2/5)(2 - 2e^{-π})  … computed:
        // antiderivative: -e^{-x/2}(2 sin x + 4 cos x)/5.
        let exact = {
            let f = |x: f64| -(-x * 0.5).exp() * (2.0 * x.sin() + 4.0 * x.cos()) / 5.0;
            f(BOUNDS.1) - f(BOUNDS.0)
        };
        let approx = native_f64(BOUNDS.0, BOUNDS.1, 4096);
        assert!((approx - exact).abs() < 1e-10, "{approx} vs {exact}");
    }

    #[test]
    fn mixed_close_to_f64() {
        let a = native_f64(BOUNDS.0, BOUNDS.1, 4096);
        let b = native_mixed(BOUNDS.0, BOUNDS.1, 4096);
        assert!((a - b).abs() < 1e-3, "{a} vs {b}");
    }
}
