//! Adversarial branching kernels for the divergence-aware shadow oracle.
//!
//! Every paper benchmark is branch-stable under the demotions the tuner
//! admits, so the blind spot the oracle's divergence detection exists for
//! — a demotion that flips a branch — needed its own corpus. Each kernel
//! here has a *pinned* demotion (`flip_vars`) and input (`flip_args`)
//! under which the demoted primal provably takes a different trace than
//! the full-precision shadow, and a *stable* input (`stable_args`) under
//! which the same demotion rounds (non-zero local error) without flipping
//! anything:
//!
//! | Kernel | Divergence mechanism |
//! |---|---|
//! | [`threshold`] | threshold branch on an accumulated value |
//! | [`floatcount`] | loop trip count truncated from a float (`(int)`) |
//! | [`piecewise`] | piecewise function evaluated at a knot |
//!
//! The flips are arranged from representable constants: `0.01` summed 100
//! times lands at `1.0000000000000007` in `f64` but `0.9999993443489075`
//! under an `f32`-rounded accumulator; `1/h` for `h = 1/(100 − 1e-6)` is
//! `99.999999…` in `f64` (truncates to 99) but rounds to `100.0f32`
//! (truncates to 100); `3·x` for `x = (0.75 + 1e-9)/3` sits just above
//! the `0.75` knot in `f64` and exactly on it after `f32` rounding.

use chef_exec::value::ArgValue;
use chef_ir::ast::Program;

fn parse(src: &str, what: &str) -> Program {
    let mut p = chef_ir::parser::parse_program(src).unwrap_or_else(|e| panic!("{what}: {e}"));
    chef_ir::typeck::check_program(&mut p).unwrap_or_else(|e| panic!("{what}: {e:?}"));
    p
}

/// Threshold branch on an accumulated value: whether the running sum
/// crossed `1.0` picks the scale applied to the result, so an
/// accumulator demotion that lands the sum on the other side of the
/// threshold both flips the branch and grossly changes the output.
pub mod threshold {
    use super::*;

    /// KernelC source of the kernel.
    pub const SOURCE: &str = "
double threshold(double x, int n) {
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + x; }
    double r = 0.0;
    if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
    return r;
}
";

    /// Function name inside [`SOURCE`].
    pub const NAME: &str = "threshold";

    /// Parses and checks the kernel.
    pub fn program() -> Program {
        parse(SOURCE, NAME)
    }

    /// Arguments for `n` accumulation steps of `x`.
    pub fn args(x: f64, n: i64) -> Vec<ArgValue> {
        vec![ArgValue::F(x), ArgValue::I(n)]
    }

    /// The variables whose demotion to `f32` flips the branch on
    /// [`flip_args`].
    pub const FLIP_VARS: &[&str] = &["s"];

    /// Input on which demoting `s` flips `s < 1.0`: the `f64` sum of
    /// 100 × 0.01 is `1.0000000000000007` (≥ 1), the `f32`-rounded
    /// accumulation `0.9999993443489075` (< 1).
    pub fn flip_args() -> Vec<ArgValue> {
        args(0.01, 100)
    }

    /// Input far from the threshold: the same demotion rounds on every
    /// add but every branch decision is precision-stable.
    pub fn stable_args() -> Vec<ArgValue> {
        args(0.01, 42)
    }
}

/// Loop trip count truncated from a float: `(int)(1/h)` decides how many
/// times `h` is accumulated, so rounding `1/h` across an integer boundary
/// changes the iteration count itself — the divergence lands on the
/// float→int truncation, before any float comparison runs.
pub mod floatcount {
    use super::*;

    /// KernelC source of the kernel.
    pub const SOURCE: &str = "
double floatcount(double h) {
    double t = 1.0 / h;
    int n = (int) t;
    double s = 0.0;
    for (int i = 0; i < n; i++) { s = s + h; }
    return s;
}
";

    /// Function name inside [`SOURCE`].
    pub const NAME: &str = "floatcount";

    /// Parses and checks the kernel.
    pub fn program() -> Program {
        parse(SOURCE, NAME)
    }

    /// Arguments for step width `h`.
    pub fn args(h: f64) -> Vec<ArgValue> {
        vec![ArgValue::F(h)]
    }

    /// The variables whose demotion to `f32` changes the trip count on
    /// [`flip_args`].
    pub const FLIP_VARS: &[&str] = &["t"];

    /// `h = 1/(100 − 1e-6)`: `1/h = 99.999999…` truncates to 99 in
    /// `f64` but rounds to `100.0` in `f32` (ulp ≈ 7.6e-6 there), so the
    /// demoted primal runs one extra iteration.
    pub fn flip_args() -> Vec<ArgValue> {
        args(1.0 / (100.0 - 1e-6))
    }

    /// `h = 1/64` is exactly representable: `1/h = 64.0` on both sides.
    pub fn stable_args() -> Vec<ArgValue> {
        args(1.0 / 64.0)
    }
}

/// Piecewise function evaluated at a knot: the two pieces agree in value
/// nowhere near the knot, so rounding the argument across it swaps which
/// piece computes the result.
pub mod piecewise {
    use super::*;

    /// KernelC source of the kernel.
    pub const SOURCE: &str = "
double piecewise(double x) {
    double y = x * 3.0;
    double r = 0.0;
    if (y <= 0.75) { r = y + 1.0; } else { r = y * y; }
    return r;
}
";

    /// Function name inside [`SOURCE`].
    pub const NAME: &str = "piecewise";

    /// Parses and checks the kernel.
    pub fn program() -> Program {
        parse(SOURCE, NAME)
    }

    /// Arguments for evaluation point `x`.
    pub fn args(x: f64) -> Vec<ArgValue> {
        vec![ArgValue::F(x)]
    }

    /// The variables whose demotion to `f32` flips the knot comparison
    /// on [`flip_args`].
    pub const FLIP_VARS: &[&str] = &["y"];

    /// `x = (0.75 + 1e-9)/3`: `3x = 0.7500000009…` is above the knot in
    /// `f64` but rounds to exactly `0.75` in `f32` (half-ulp there is
    /// ≈ 3e-8), putting the demoted primal on the other piece.
    pub fn flip_args() -> Vec<ArgValue> {
        args((0.75 + 1e-9) / 3.0)
    }

    /// An evaluation point a whole unit away from the knot.
    pub fn stable_args() -> Vec<ArgValue> {
        args(0.6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::prelude::*;

    fn runs(p: &Program, name: &str, args: Vec<ArgValue>) -> f64 {
        let c = compile_default(p.function(name).unwrap()).unwrap();
        run(&c, args).unwrap().ret_f()
    }

    #[test]
    fn kernels_parse_and_run_at_full_precision() {
        let t = runs(
            &threshold::program(),
            threshold::NAME,
            threshold::flip_args(),
        );
        // Full precision: s ≥ 1 → the halved piece.
        assert!((t - 0.5000000000000003).abs() < 1e-12, "{t}");
        let f = runs(
            &floatcount::program(),
            floatcount::NAME,
            floatcount::flip_args(),
        );
        // 99 steps of h ≈ 0.01.
        assert!((f - 0.99).abs() < 1e-6, "{f}");
        let p = runs(
            &piecewise::program(),
            piecewise::NAME,
            piecewise::flip_args(),
        );
        // Above the knot: the squared piece.
        assert!((p - 0.5625).abs() < 1e-8, "{p}");
    }

    #[test]
    fn stable_inputs_stay_on_one_piece() {
        let t = runs(
            &threshold::program(),
            threshold::NAME,
            threshold::stable_args(),
        );
        assert!(
            (t - 0.84).abs() < 1e-12,
            "below threshold: doubled piece, {t}"
        );
        let p = runs(
            &piecewise::program(),
            piecewise::NAME,
            piecewise::stable_args(),
        );
        assert!(
            (p - 3.24).abs() < 1e-12,
            "above the knot: squared piece, {p}"
        );
        let f = runs(
            &floatcount::program(),
            floatcount::NAME,
            floatcount::stable_args(),
        );
        assert_eq!(f, 1.0, "64 exact steps of 1/64");
    }
}
