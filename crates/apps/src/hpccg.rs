//! The HPCCG benchmark (paper §IV-4, Fig. 7, Fig. 9, Table I).
//!
//! From the Mantevo suite: unpreconditioned conjugate gradient on a
//! 27-point stencil over an `nx × ny × nz` "chimney" domain (the paper
//! scales `nz` from 10 to 320 on a 20 × 30 base). The sparse matrix is in
//! CSR form (`vals`, `inds`, `rowptr`), diagonal 27, off-diagonals −1;
//! `b = A·1` so the exact solution is all-ones.
//!
//! The Fig. 9 heat map tracks the per-iteration sensitivity of `r`, `p`,
//! `x` and `Ap`; `rtrans` (assigned exactly once per CG iteration) is the
//! iteration marker.

use chef_exec::value::ArgValue;
use chef_ir::ast::Program;

/// KernelC source of the CG solver. The quantity of interest is the
/// solution sum plus the final squared residual (so every CG vector —
/// including `x` — carries sensitivity to the output).
pub const SOURCE: &str = "
double hpccg(double vals[], int inds[], int rowptr[], double b[],
             int nrow, int maxiter, double tol) {
    double x[nrow];
    double r[nrow];
    double p[nrow];
    double Ap[nrow];
    for (int i = 0; i < nrow; i++) {
        x[i] = 0.0;
        r[i] = b[i];
        p[i] = b[i];
    }
    double rtrans = 0.0;
    for (int i = 0; i < nrow; i++) {
        rtrans = rtrans + r[i] * r[i];
    }
    int iter = 0;
    while (iter < maxiter && rtrans > tol * tol) {
        for (int i = 0; i < nrow; i++) {
            double sum = 0.0;
            for (int j = rowptr[i]; j < rowptr[i + 1]; j++) {
                sum = sum + vals[j] * p[inds[j]];
            }
            Ap[i] = sum;
        }
        double pAp = 0.0;
        for (int i = 0; i < nrow; i++) {
            pAp = pAp + p[i] * Ap[i];
        }
        double alpha = rtrans / pAp;
        for (int i = 0; i < nrow; i++) {
            x[i] = x[i] + alpha * p[i];
            r[i] = r[i] - alpha * Ap[i];
        }
        double oldrtrans = rtrans;
        double newrtrans = 0.0;
        for (int i = 0; i < nrow; i++) {
            newrtrans = newrtrans + r[i] * r[i];
        }
        rtrans = newrtrans;
        double beta = rtrans / oldrtrans;
        for (int i = 0; i < nrow; i++) {
            p[i] = r[i] + beta * p[i];
        }
        iter = iter + 1;
    }
    double xsum = 0.0;
    for (int i = 0; i < nrow; i++) {
        xsum = xsum + x[i];
    }
    return xsum + rtrans;
}
";

/// Function name inside [`SOURCE`].
pub const NAME: &str = "hpccg";

/// Parses and checks the kernel.
pub fn program() -> Program {
    let mut p = chef_ir::parser::parse_program(SOURCE).expect("hpccg parses");
    chef_ir::typeck::check_program(&mut p).expect("hpccg typechecks");
    p
}

/// A 27-point stencil problem in CSR form.
#[derive(Clone, Debug)]
pub struct Problem {
    /// Non-zero values.
    pub vals: Vec<f64>,
    /// Column indices.
    pub inds: Vec<i64>,
    /// Row offsets (`nrow + 1` entries).
    pub rowptr: Vec<i64>,
    /// Right-hand side (`A · 1`).
    pub b: Vec<f64>,
    /// Number of rows (`nx·ny·nz`).
    pub nrow: usize,
}

/// Builds the HPCCG matrix for an `nx × ny × nz` grid: diagonal 27.0,
/// −1.0 for each of the up-to-26 neighbours (like the Mantevo generator).
pub fn problem(nx: usize, ny: usize, nz: usize) -> Problem {
    let nrow = nx * ny * nz;
    let mut vals = Vec::new();
    let mut inds: Vec<i64> = Vec::new();
    let mut rowptr: Vec<i64> = Vec::with_capacity(nrow + 1);
    rowptr.push(0);
    for iz in 0..nz as isize {
        for iy in 0..ny as isize {
            for ix in 0..nx as isize {
                let row = (iz * ny as isize * nx as isize + iy * nx as isize + ix) as usize;
                for sz in -1..=1isize {
                    for sy in -1..=1isize {
                        for sx in -1..=1isize {
                            let (jx, jy, jz) = (ix + sx, iy + sy, iz + sz);
                            if jx < 0
                                || jy < 0
                                || jz < 0
                                || jx >= nx as isize
                                || jy >= ny as isize
                                || jz >= nz as isize
                            {
                                continue;
                            }
                            let col =
                                (jz * ny as isize * nx as isize + jy * nx as isize + jx) as usize;
                            vals.push(if col == row { 27.0 } else { -1.0 });
                            inds.push(col as i64);
                        }
                    }
                }
                rowptr.push(vals.len() as i64);
            }
        }
    }
    // b = A * ones.
    let mut b = vec![0.0f64; nrow];
    for row in 0..nrow {
        let (lo, hi) = (rowptr[row] as usize, rowptr[row + 1] as usize);
        b[row] = vals[lo..hi].iter().sum();
    }
    Problem {
        vals,
        inds,
        rowptr,
        b,
        nrow,
    }
}

/// Default CG controls used by the paper-scale runs.
pub const MAX_ITER: i64 = 150;
/// Residual tolerance.
pub const TOL: f64 = 1e-12;

/// VM arguments for a problem.
pub fn args(p: &Problem) -> Vec<ArgValue> {
    vec![
        ArgValue::FArr(p.vals.clone()),
        ArgValue::IArr(p.inds.clone()),
        ArgValue::IArr(p.rowptr.clone()),
        ArgValue::FArr(p.b.clone()),
        ArgValue::I(p.nrow as i64),
        ArgValue::I(MAX_ITER),
        ArgValue::F(TOL),
    ]
}

/// Native CG, generic over the working precision of the vectors. Returns
/// `(final squared residual, iterations)`.
macro_rules! native_cg {
    ($name:ident, $t:ty) => {
        /// Native CG at one working precision (see macro invocations).
        /// Returns `(xsum + rtrans, iterations, rtrans)`.
        pub fn $name(p: &Problem, maxiter: usize, tol: f64) -> (f64, usize, f64) {
            let nrow = p.nrow;
            let vals: Vec<$t> = p.vals.iter().map(|&v| v as $t).collect();
            let b: Vec<$t> = p.b.iter().map(|&v| v as $t).collect();
            let mut x = vec![0.0 as $t; nrow];
            let mut r = b.clone();
            let mut pv = b.clone();
            let mut ap = vec![0.0 as $t; nrow];
            let mut rtrans: $t = r.iter().map(|&v| v * v).sum();
            let mut iter = 0;
            while iter < maxiter && (rtrans as f64) > tol * tol {
                for i in 0..nrow {
                    let (lo, hi) = (p.rowptr[i] as usize, p.rowptr[i + 1] as usize);
                    let mut sum = 0.0 as $t;
                    for j in lo..hi {
                        sum += vals[j] * pv[p.inds[j] as usize];
                    }
                    ap[i] = sum;
                }
                let pap: $t = (0..nrow).map(|i| pv[i] * ap[i]).sum();
                let alpha = rtrans / pap;
                for i in 0..nrow {
                    x[i] += alpha * pv[i];
                    r[i] -= alpha * ap[i];
                }
                let old = rtrans;
                rtrans = r.iter().map(|&v| v * v).sum();
                let beta = rtrans / old;
                for i in 0..nrow {
                    pv[i] = r[i] + beta * pv[i];
                }
                iter += 1;
            }
            let xsum: $t = x.iter().sum();
            (xsum as f64 + rtrans as f64, iter, rtrans as f64)
        }
    };
}

native_cg!(native_f64, f64);
native_cg!(native_f32, f32);

/// The paper's loop-split configuration: the first `split` iterations run
/// in f64; at the split point the whole CG state (matrix included) is
/// converted to f32 and the remaining iterations run entirely in f32 —
/// the memory-traffic halving is where the speedup comes from.
/// Returns `(xsum + rtrans, iterations, rtrans)`.
pub fn native_split(p: &Problem, maxiter: usize, tol: f64, split: usize) -> (f64, usize, f64) {
    let nrow = p.nrow;
    let mut x = vec![0.0f64; nrow];
    let mut r = p.b.clone();
    let mut pv = p.b.clone();
    let mut ap = vec![0.0f64; nrow];
    let mut rtrans: f64 = r.iter().map(|&v| v * v).sum();
    let mut iter = 0;
    while iter < maxiter.min(split) && rtrans > tol * tol {
        for i in 0..nrow {
            let (lo, hi) = (p.rowptr[i] as usize, p.rowptr[i + 1] as usize);
            let mut sum = 0.0f64;
            for j in lo..hi {
                sum += p.vals[j] * pv[p.inds[j] as usize];
            }
            ap[i] = sum;
        }
        let pap: f64 = (0..nrow).map(|i| pv[i] * ap[i]).sum();
        let alpha = rtrans / pap;
        for i in 0..nrow {
            x[i] += alpha * pv[i];
            r[i] -= alpha * ap[i];
        }
        let old = rtrans;
        rtrans = r.iter().map(|&v| v * v).sum();
        let beta = rtrans / old;
        for i in 0..nrow {
            pv[i] = r[i] + beta * pv[i];
        }
        iter += 1;
    }
    // Demote the tail: all vectors and the matrix drop to f32.
    let vals32: Vec<f32> = p.vals.iter().map(|&v| v as f32).collect();
    let mut x32: Vec<f32> = x.iter().map(|&v| v as f32).collect();
    let mut r32: Vec<f32> = r.iter().map(|&v| v as f32).collect();
    let mut p32: Vec<f32> = pv.iter().map(|&v| v as f32).collect();
    let mut ap32 = vec![0.0f32; nrow];
    let mut rtrans32 = rtrans as f32;
    while iter < maxiter && (rtrans32 as f64) > tol * tol {
        for i in 0..nrow {
            let (lo, hi) = (p.rowptr[i] as usize, p.rowptr[i + 1] as usize);
            let mut sum = 0.0f32;
            for j in lo..hi {
                sum += vals32[j] * p32[p.inds[j] as usize];
            }
            ap32[i] = sum;
        }
        let pap: f32 = (0..nrow).map(|i| p32[i] * ap32[i]).sum();
        let alpha = rtrans32 / pap;
        for i in 0..nrow {
            x32[i] += alpha * p32[i];
            r32[i] -= alpha * ap32[i];
        }
        let old = rtrans32;
        rtrans32 = r32.iter().map(|&v| v * v).sum();
        // The f32 tail stalls near f32 epsilon; stop when the residual no
        // longer improves (stagnation guard, as real mixed CG codes do).
        if rtrans32 >= old {
            iter += 1;
            break;
        }
        let beta = rtrans32 / old;
        for i in 0..nrow {
            p32[i] = r32[i] + beta * p32[i];
        }
        iter += 1;
    }
    let xsum: f64 = x32.iter().map(|&v| v as f64).sum();
    (xsum + rtrans32 as f64, iter, rtrans32 as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::prelude::*;

    #[test]
    fn matrix_structure_is_27_point() {
        let p = problem(4, 4, 4);
        assert_eq!(p.nrow, 64);
        assert_eq!(p.rowptr.len(), 65);
        // An interior point has 27 neighbours.
        let interior = 1 + 4 + 16 + 4; // row index of (1,1,1)
        let nnz = (p.rowptr[interior + 1] - p.rowptr[interior]) as usize;
        assert_eq!(nnz, 27);
        // A corner has 8.
        let nnz0 = (p.rowptr[1] - p.rowptr[0]) as usize;
        assert_eq!(nnz0, 8);
    }

    #[test]
    fn cg_converges_to_ones() {
        let p = problem(6, 6, 6);
        let (out, iters, res) = native_f64(&p, 200, 1e-10);
        assert!(res < 1e-20, "residual {res}");
        // Solution is all-ones: xsum = nrow.
        assert!((out - p.nrow as f64) < 1e-6, "{out}");
        assert!(iters < 50, "iterations {iters}");
    }

    #[test]
    fn kernel_matches_native() {
        let p = problem(4, 5, 3);
        let prog = program();
        let c = compile_default(prog.function(NAME).unwrap()).unwrap();
        let vm = run(&c, args(&p)).unwrap().ret_f();
        let (native, _, _) = native_f64(&p, MAX_ITER as usize, TOL);
        let scale = native.abs().max(1e-300);
        assert!((vm - native).abs() < 1e-9 * scale, "{vm} vs {native}");
    }

    #[test]
    fn split_config_still_converges() {
        let p = problem(6, 6, 6);
        let (full, _, full_res) = native_f64(&p, 150, 1e-10);
        let (split, _, split_res) = native_split(&p, 150, 1e-10, 10);
        // Residuals tiny; the split variant may stall slightly above f32
        // epsilon but the solutions must agree closely.
        assert!(full_res < 1e-18);
        assert!(split_res < 1e-6, "{split_res}");
        assert!((full - split).abs() < 1e-3, "{full} vs {split}");
    }
}
