//! The k-Means benchmark (paper §IV-3, Fig. 6, Tables I and III).
//!
//! From the Rodinia suite; the paper instruments the Euclidean-distance
//! hotspot. The kernel below performs one assignment pass: for every
//! point, the distance to each cluster centre, keeping the minimum —
//! `total` sums the nearest distances so the analysis has a scalar output
//! whose adjoints cover every distance computation.
//!
//! The Table III variables: `attributes` (the input points), `clusters`
//! (the centres) and `sum` (the per-distance accumulator).

use chef_exec::value::ArgValue;
use chef_ir::ast::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// KernelC source of the kernel. The `best` sentinel is 1e30 (not
/// DBL_MAX) so the f32-demotion analysis stays finite — `(float)1e300`
/// would overflow to infinity.
pub const SOURCE: &str = "
double kmeans_assign(double attributes[], double clusters[],
                     int npoints, int nclusters, int nfeatures) {
    double total = 0.0;
    for (int p = 0; p < npoints; p++) {
        double best = 1e30;
        for (int c = 0; c < nclusters; c++) {
            double sum = 0.0;
            for (int f = 0; f < nfeatures; f++) {
                double diff = attributes[p * nfeatures + f] - clusters[c * nfeatures + f];
                sum = sum + diff * diff;
            }
            double dist = sqrt(sum);
            if (dist < best) {
                best = dist;
            }
        }
        total = total + best;
    }
    return total;
}
";

/// Function name inside [`SOURCE`].
pub const NAME: &str = "kmeans_assign";

/// Parses and checks the kernel.
pub fn program() -> Program {
    let mut p = chef_ir::parser::parse_program(SOURCE).expect("kmeans parses");
    chef_ir::typeck::check_program(&mut p).expect("kmeans typechecks");
    p
}

/// A generated k-Means workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// `npoints × nfeatures` flattened attributes, quantized so every
    /// value is exactly representable in `f32` (the Rodinia input files
    /// carry 4 decimal digits read as `float` — the reason the paper's
    /// attributes error is exactly zero).
    pub attributes: Vec<f64>,
    /// `nclusters × nfeatures` flattened centres (full f64 values).
    pub clusters: Vec<f64>,
    /// Number of points.
    pub npoints: usize,
    /// Number of clusters.
    pub nclusters: usize,
    /// Features per point.
    pub nfeatures: usize,
}

/// Generates Gaussian blobs around `nclusters` random centres.
pub fn workload(npoints: usize, nclusters: usize, nfeatures: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let centres: Vec<Vec<f64>> = (0..nclusters)
        .map(|_| (0..nfeatures).map(|_| rng.gen_range(-5.0..5.0)).collect())
        .collect();
    let mut attributes = Vec::with_capacity(npoints * nfeatures);
    for p in 0..npoints {
        let c = &centres[p % nclusters];
        for f in 0..nfeatures {
            // Box-Muller-ish jitter; quantize to the f32 grid like the
            // Rodinia text inputs.
            let jitter: f64 = rng.gen_range(-0.8..0.8);
            attributes.push(((c[f] + jitter) as f32) as f64);
        }
    }
    // Initial cluster guesses: the first nclusters points, perturbed into
    // full-precision (not f32-representable) values.
    let clusters: Vec<f64> = (0..nclusters * nfeatures)
        .map(|i| attributes[i] + rng.gen_range(-0.01..0.01))
        .collect();
    Workload {
        attributes,
        clusters,
        npoints,
        nclusters,
        nfeatures,
    }
}

/// VM arguments for a workload.
pub fn args(w: &Workload) -> Vec<ArgValue> {
    vec![
        ArgValue::FArr(w.attributes.clone()),
        ArgValue::FArr(w.clusters.clone()),
        ArgValue::I(w.npoints as i64),
        ArgValue::I(w.nclusters as i64),
        ArgValue::I(w.nfeatures as i64),
    ]
}

/// Native f64 reference.
pub fn native_f64(w: &Workload) -> f64 {
    let mut total = 0.0f64;
    for p in 0..w.npoints {
        let mut best = f64::INFINITY;
        for c in 0..w.nclusters {
            let mut sum = 0.0f64;
            for f in 0..w.nfeatures {
                let diff = w.attributes[p * w.nfeatures + f] - w.clusters[c * w.nfeatures + f];
                sum += diff * diff;
            }
            best = best.min(sum.sqrt());
        }
        total += best;
    }
    total
}

/// Pre-converts the attributes to their demoted storage (done once when
/// a real mixed-precision program loads its data — not part of the timed
/// kernel).
pub fn attributes_f32(w: &Workload) -> Vec<f32> {
    w.attributes.iter().map(|&x| x as f32).collect()
}

/// Native variant with `attributes` demoted to f32 (the only demotion the
/// paper's threshold admits). Timing should pass pre-converted storage
/// via [`native_attr_f32_from`]; this convenience converts inline.
pub fn native_attr_f32(w: &Workload) -> f64 {
    native_attr_f32_from(&attributes_f32(w), w)
}

/// The timed kernel of the attributes-demoted configuration.
pub fn native_attr_f32_from(attrs: &[f32], w: &Workload) -> f64 {
    let mut total = 0.0f64;
    for p in 0..w.npoints {
        let mut best = f64::INFINITY;
        for c in 0..w.nclusters {
            let mut sum = 0.0f64;
            for f in 0..w.nfeatures {
                let diff = attrs[p * w.nfeatures + f] as f64 - w.clusters[c * w.nfeatures + f];
                sum += diff * diff;
            }
            best = best.min(sum.sqrt());
        }
        total += best;
    }
    total
}

/// Native variant with everything (attributes, clusters, sums) in f32 —
/// the "all 3" row of Table III.
pub fn native_all_f32(w: &Workload) -> f64 {
    let attrs: Vec<f32> = w.attributes.iter().map(|&x| x as f32).collect();
    let cls: Vec<f32> = w.clusters.iter().map(|&x| x as f32).collect();
    let mut total = 0.0f64;
    for p in 0..w.npoints {
        let mut best = f32::INFINITY;
        for c in 0..w.nclusters {
            let mut sum = 0.0f32;
            for f in 0..w.nfeatures {
                let diff = attrs[p * w.nfeatures + f] - cls[c * w.nfeatures + f];
                sum += diff * diff;
            }
            best = best.min(sum.sqrt());
        }
        total += best as f64;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::prelude::*;

    #[test]
    fn kernel_matches_native() {
        let w = workload(64, 4, 3, 7);
        let p = program();
        let c = compile_default(p.function(NAME).unwrap()).unwrap();
        let vm = run(&c, args(&w)).unwrap().ret_f();
        let native = native_f64(&w);
        assert!((vm - native).abs() < 1e-9 * native, "{vm} vs {native}");
    }

    #[test]
    fn attributes_are_exactly_f32() {
        let w = workload(100, 5, 4, 1);
        for &a in &w.attributes {
            assert_eq!(a, (a as f32) as f64);
        }
        // Clusters are deliberately not.
        assert!(w.clusters.iter().any(|&c| c != (c as f32) as f64));
    }

    #[test]
    fn attr_demotion_changes_nothing_but_all_f32_does() {
        let w = workload(500, 5, 4, 3);
        let base = native_f64(&w);
        // f32-exact attributes: demoting them is lossless.
        assert_eq!(native_attr_f32(&w), base);
        // Demoting everything is not.
        assert_ne!(native_all_f32(&w), base);
    }
}
