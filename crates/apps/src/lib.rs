//! # chef-apps — the five paper benchmarks
//!
//! Each module packages one benchmark of the CHEF-FP evaluation (§IV):
//! the KernelC kernel the analysis runs on, a workload generator matching
//! the published input structure, and native Rust reference
//! implementations (full precision + the paper's mixed/approximate
//! configurations) used for ground-truth errors and speedup measurements.
//!
//! | Module | Paper workload | Sweep axis |
//! |---|---|---|
//! | [`arclen`] | Arc Length | iterations (Fig. 4) |
//! | [`simpsons`] | Simpsons | iterations (Fig. 5) |
//! | [`kmeans`] | Rodinia k-Means | data points (Fig. 6) |
//! | [`hpccg`] | Mantevo HPCCG | z-dimension (Fig. 7, Fig. 9) |
//! | [`blackscholes`] | PARSEC Black-Scholes | options (Fig. 8, Table IV) |
//!
//! [`adversarial`] is not a paper benchmark: it packages the branching
//! kernels (threshold on an accumulated value, trip count from a float,
//! piecewise knot) whose demotions flip control flow — the corpus the
//! shadow oracle's divergence detection is tested against.

pub mod adversarial;
pub mod arclen;
pub mod blackscholes;
pub mod hpccg;
pub mod kmeans;
pub mod simpsons;
