//! The Black-Scholes benchmark (paper §IV-5, Fig. 8, Table IV).
//!
//! From the PARSEC suite: European option pricing via the Black-Scholes
//! closed form. The kernel prices a batch and returns the summed price so
//! the analysis has a scalar output.
//!
//! The approximation study (Algorithm 2) needs *named* inputs for the
//! `exp`/`log`/`sqrt` calls, so the kernel binds them to the locals
//! `tQ` (→ `sqrt`), `ratio` (→ `log`) and `negrT` (→ `exp`).

use chef_exec::value::ArgValue;
use chef_ir::ast::Program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// KernelC source of the kernel.
pub const SOURCE: &str = "
double blackscholes(double sptprice[], double strike[], double rate[],
                    double volatility[], double otime[], int otype[],
                    int numOptions) {
    double acc = 0.0;
    for (int i = 0; i < numOptions; i++) {
        double S = sptprice[i];
        double K = strike[i];
        double r = rate[i];
        double v = volatility[i];
        double T = otime[i];
        double tQ = T;
        double xSqrtTime = sqrt(tQ);
        double ratio = S / K;
        double logTerm = log(ratio);
        double d1 = (r + 0.5 * v * v) * T + logTerm;
        d1 = d1 / (v * xSqrtTime);
        double d2 = d1 - v * xSqrtTime;
        double NofXd1 = normcdf(d1);
        double NofXd2 = normcdf(d2);
        double negrT = -r * T;
        double expval = exp(negrT);
        double price = 0.0;
        if (otype[i] == 1) {
            price = K * expval * (1.0 - NofXd2) - S * (1.0 - NofXd1);
        } else {
            price = S * NofXd1 - K * expval * NofXd2;
        }
        acc = acc + price;
    }
    return acc;
}
";

/// Function name inside [`SOURCE`].
pub const NAME: &str = "blackscholes";

/// The mixed-precision tuning surface: the computed locals of the
/// kernel (the Table IV configuration surface). The input arrays are
/// excluded — their estimated error cancels (signed) across options,
/// which is exactly the estimate/measurement gap the shadow oracle
/// exposes. One source of truth for `repro --oracle` and the
/// workspace-level oracle tests.
pub const TUNE_CANDIDATES: &[&str] = &[
    "tQ",
    "xSqrtTime",
    "ratio",
    "logTerm",
    "d1",
    "d2",
    "negrT",
    "expval",
    "price",
    "r",
    "v",
    "T",
    "acc",
];

/// Parses and checks the kernel.
pub fn program() -> Program {
    let mut p = chef_ir::parser::parse_program(SOURCE).expect("blackscholes parses");
    chef_ir::typeck::check_program(&mut p).expect("blackscholes typechecks");
    p
}

/// A batch of options.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Spot prices.
    pub sptprice: Vec<f64>,
    /// Strike prices.
    pub strike: Vec<f64>,
    /// Risk-free rates.
    pub rate: Vec<f64>,
    /// Volatilities.
    pub volatility: Vec<f64>,
    /// Times to expiry (years).
    pub otime: Vec<f64>,
    /// 1 = put, 0 = call.
    pub otype: Vec<i64>,
}

impl Workload {
    /// Batch size.
    pub fn len(&self) -> usize {
        self.sptprice.len()
    }

    /// `true` when the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.sptprice.is_empty()
    }
}

/// Generates a PARSEC-like option batch.
pub fn workload(n: usize, seed: u64) -> Workload {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = Workload {
        sptprice: Vec::with_capacity(n),
        strike: Vec::with_capacity(n),
        rate: Vec::with_capacity(n),
        volatility: Vec::with_capacity(n),
        otime: Vec::with_capacity(n),
        otype: Vec::with_capacity(n),
    };
    for _ in 0..n {
        let s: f64 = rng.gen_range(20.0..120.0);
        w.sptprice.push(s);
        w.strike.push(s * rng.gen_range(0.8..1.2));
        w.rate.push(rng.gen_range(0.02..0.1));
        w.volatility.push(rng.gen_range(0.1..0.6));
        w.otime.push(rng.gen_range(0.1..2.0));
        w.otype.push(rng.gen_range(0..=1));
    }
    w
}

/// VM arguments for a workload.
pub fn args(w: &Workload) -> Vec<ArgValue> {
    vec![
        ArgValue::FArr(w.sptprice.clone()),
        ArgValue::FArr(w.strike.clone()),
        ArgValue::FArr(w.rate.clone()),
        ArgValue::FArr(w.volatility.clone()),
        ArgValue::FArr(w.otime.clone()),
        ArgValue::IArr(w.otype.clone()),
        ArgValue::I(w.len() as i64),
    ]
}

/// The PARSEC CNDF: Abramowitz & Stegun 26.2.17 with an explicit `exp`
/// call — which is exactly why the paper's "Fast exp" configuration
/// changes both the discount factor *and* the normal CDF (§IV-5).
#[inline]
fn cndf(x: f64, exp_f: fn(f64) -> f64) -> f64 {
    const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
    let neg = x < 0.0;
    let xx = x.abs();
    let k = 1.0 / (1.0 + 0.231_641_9 * xx);
    let poly = k
        * (0.319_381_530
            + k * (-0.356_563_782
                + k * (1.781_477_937 + k * (-1.821_255_978 + k * 1.330_274_429))));
    let phi = exp_f(-0.5 * xx * xx) * INV_SQRT_2PI;
    let v = 1.0 - phi * poly;
    if neg {
        1.0 - v
    } else {
        v
    }
}

/// Prices one option with pluggable math functions.
#[inline]
fn price_one(
    s: f64,
    k: f64,
    r: f64,
    v: f64,
    t: f64,
    put: bool,
    exp_f: fn(f64) -> f64,
    log_f: fn(f64) -> f64,
    sqrt_f: fn(f64) -> f64,
) -> f64 {
    let sqrt_time = sqrt_f(t);
    let log_term = log_f(s / k);
    let mut d1 = (r + 0.5 * v * v) * t + log_term;
    d1 /= v * sqrt_time;
    let d2 = d1 - v * sqrt_time;
    let n1 = cndf(d1, exp_f);
    let n2 = cndf(d2, exp_f);
    let expval = exp_f(-r * t);
    if put {
        k * expval * (1.0 - n2) - s * (1.0 - n1)
    } else {
        s * n1 - k * expval * n2
    }
}

fn std_exp(x: f64) -> f64 {
    x.exp()
}
fn std_log(x: f64) -> f64 {
    x.ln()
}
fn std_sqrt(x: f64) -> f64 {
    x.sqrt()
}

/// Native exact pricing: returns per-option prices.
pub fn native_prices(w: &Workload) -> Vec<f64> {
    (0..w.len())
        .map(|i| {
            price_one(
                w.sptprice[i],
                w.strike[i],
                w.rate[i],
                w.volatility[i],
                w.otime[i],
                w.otype[i] == 1,
                std_exp,
                std_log,
                std_sqrt,
            )
        })
        .collect()
}

/// Native pricing under the paper's "FastApprox w/o Fast exp"
/// configuration (approximate `log` and `sqrt`).
pub fn approx_prices_no_fast_exp(w: &Workload) -> Vec<f64> {
    (0..w.len())
        .map(|i| {
            price_one(
                w.sptprice[i],
                w.strike[i],
                w.rate[i],
                w.volatility[i],
                w.otime[i],
                w.otype[i] == 1,
                std_exp,
                fastapprox::wide::fastlog64,
                fastapprox::wide::fastsqrt64,
            )
        })
        .collect()
}

/// Native pricing under the paper's "FastApprox w/ Fast exp"
/// configuration (additionally the coarse `fasterexp`).
pub fn approx_prices_fast_exp(w: &Workload) -> Vec<f64> {
    (0..w.len())
        .map(|i| {
            price_one(
                w.sptprice[i],
                w.strike[i],
                w.rate[i],
                w.volatility[i],
                w.otime[i],
                w.otype[i] == 1,
                fastapprox::wide::fasterexp64,
                fastapprox::wide::fastlog64,
                fastapprox::wide::fastsqrt64,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::prelude::*;

    #[test]
    fn kernel_matches_native() {
        let w = workload(128, 11);
        let p = program();
        let c = compile_default(p.function(NAME).unwrap()).unwrap();
        let vm = run(&c, args(&w)).unwrap().ret_f();
        let native: f64 = native_prices(&w).iter().sum();
        // The kernel's `normcdf` intrinsic is exact; the native path uses
        // the PARSEC A&S polynomial (~7.5e-8 absolute): loose tolerance.
        assert!(
            (vm - native).abs() < 1e-4 * native.abs().max(1.0),
            "{vm} vs {native}"
        );
    }

    #[test]
    fn put_call_parity_holds() {
        // C − P = S − K·e^(−rT) for matching parameters.
        let (s, k, r, v, t) = (100.0, 95.0, 0.05, 0.3, 1.0);
        let call = price_one(s, k, r, v, t, false, std_exp, std_log, std_sqrt);
        let put = price_one(s, k, r, v, t, true, std_exp, std_log, std_sqrt);
        let parity = s - k * (-r * t).exp();
        // The A&S polynomial CNDF is accurate to ~7.5e-8.
        assert!((call - put - parity).abs() < 1e-5);
    }

    #[test]
    fn prices_are_nonnegative() {
        let w = workload(500, 3);
        for p in native_prices(&w) {
            assert!(p >= -1e-9, "{p}");
        }
    }

    #[test]
    fn approx_configs_rank_by_error() {
        let w = workload(1000, 5);
        let exact = native_prices(&w);
        let row1 = approx_prices_no_fast_exp(&w);
        let row2 = approx_prices_fast_exp(&w);
        let err = |approx: &[f64]| -> f64 {
            approx
                .iter()
                .zip(&exact)
                .map(|(a, e)| (a - e).abs())
                .sum::<f64>()
        };
        let (e1, e2) = (err(&row1), err(&row2));
        assert!(e1 > 0.0);
        // Fast exp is far coarser: accumulated error grows (Table IV).
        assert!(e2 > e1 * 2.0, "row1 {e1} row2 {e2}");
    }
}
