//! The Arc Length benchmark (paper §IV-1, Fig. 4, Table I).
//!
//! Approximates the length of `fun(x) = x + Σ_{k=1..5} sin(2^k x)/2^k`
//! over `[0, π]` by summing straight-line segment lengths at `n` sample
//! points — the same kernel ADAPT's evaluation uses. The mixed-precision
//! question: which of the intermediates can live in `float`?

use chef_exec::value::ArgValue;
use chef_ir::ast::Program;

/// KernelC source of the kernel.
pub const SOURCE: &str = "
double arclen(int n) {
    double h = 3.141592653589793 / n;
    double t1 = 0.0;
    double s1 = 0.0;
    for (int i = 1; i <= n; i++) {
        double x = i * h;
        double d = x;
        double k = 1.0;
        for (int j = 1; j <= 5; j++) {
            k = k * 2.0;
            d = d + sin(k * x) / k;
        }
        double diff = d - t1;
        s1 = s1 + sqrt(h * h + diff * diff);
        t1 = d;
    }
    return s1;
}
";

/// Function name inside [`SOURCE`].
pub const NAME: &str = "arclen";

/// Parses and checks the kernel.
pub fn program() -> Program {
    let mut p = chef_ir::parser::parse_program(SOURCE).expect("arclen parses");
    chef_ir::typeck::check_program(&mut p).expect("arclen typechecks");
    p
}

/// Arguments for a run with `n` segments.
pub fn args(n: i64) -> Vec<ArgValue> {
    vec![ArgValue::I(n)]
}

/// Native f64 reference (ground truth + timing baseline).
pub fn native_f64(n: usize) -> f64 {
    let h = std::f64::consts::PI / n as f64;
    let mut t1 = 0.0f64;
    let mut s1 = 0.0f64;
    for i in 1..=n {
        let x = i as f64 * h;
        let mut d = x;
        let mut k = 1.0f64;
        for _ in 1..=5 {
            k *= 2.0;
            d += (k * x).sin() / k;
        }
        let diff = d - t1;
        s1 += (h * h + diff * diff).sqrt();
        t1 = d;
    }
    s1
}

/// Native mixed-precision variant: the sine-series accumulation (`d`, `k`)
/// and the segment distance run in `f32`; the global accumulator `s1`
/// stays f64 — the configuration CHEF-FP's tuner finds for the 1e-5
/// threshold.
pub fn native_mixed(n: usize) -> f64 {
    let h = std::f64::consts::PI / n as f64;
    let hf = h as f32;
    let mut t1 = 0.0f32;
    let mut s1 = 0.0f64;
    for i in 1..=n {
        let x = i as f32 * hf;
        let mut d = x;
        let mut k = 1.0f32;
        for _ in 1..=5 {
            k *= 2.0;
            d += (k * x).sin() / k;
        }
        let diff = d - t1;
        s1 += ((hf * hf + diff * diff) as f64).sqrt();
        t1 = d;
    }
    s1
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::prelude::*;

    #[test]
    fn kernel_matches_native() {
        let p = program();
        let c = compile_default(p.function(NAME).unwrap()).unwrap();
        for n in [10i64, 100, 1000] {
            let vm = run(&c, args(n)).unwrap().ret_f();
            let native = native_f64(n as usize);
            assert!(
                (vm - native).abs() < 1e-12 * native.abs(),
                "n={n}: vm {vm} vs native {native}"
            );
        }
    }

    #[test]
    fn arc_length_converges_to_known_value() {
        // The exact length of this curve is ≈ 5.79577632241304 (ADAPT's
        // reference value for [0, π]).
        let l = native_f64(100_000);
        assert!((l - 5.795776322).abs() < 1e-6, "{l}");
    }

    #[test]
    fn mixed_variant_is_close_but_not_identical() {
        let a = native_f64(10_000);
        let b = native_mixed(10_000);
        assert_ne!(a, b);
        assert!((a - b).abs() < 1e-2, "{a} vs {b}");
    }
}
