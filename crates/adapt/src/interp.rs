//! The tracing interpreter: executes a KernelC function while recording
//! every FP operation into the [`OpTape`](crate::tape::OpTape).
//!
//! This is the architectural model of ADAPT-over-CoDiPack (paper §II-B
//! "Tracing"): an operator-overloading AD tool re-records the computation
//! graph **at every analysis run**, flattening control flow into the tape,
//! then reverse-interprets it. Consequences reproduced here:
//!
//! * analysis time includes tree-walking interpretation plus tape
//!   management on every run (no compile-once benefit);
//! * peak memory grows with the *operation count* of the execution
//!   (CHEF-FP's transformation needs only the TBR-selected values);
//! * error estimation happens post-hoc over the recorded tape.

use crate::tape::{Entry, EntryIdx, OpTape, TapeOom};
use chef_exec::precision::{demotion_error, round_to};
use chef_exec::value::ArgValue;
use chef_ir::ast::*;
use chef_ir::types::{ElemTy, FloatTy, Type};
use std::collections::HashMap;

/// Which per-assignment error formula the post-hoc pass applies.
#[derive(Clone, Copy, Debug)]
pub enum Formula {
    /// ADAPT's eq. 2: `|x̄ · (x − fl_target(x))|`.
    Demotion(FloatTy),
    /// The Taylor model of eq. 1 with a fixed epsilon.
    Epsilon(FloatTy),
}

/// Analysis options.
#[derive(Clone, Debug)]
pub struct AdaptOptions {
    /// The error formula.
    pub formula: Formula,
    /// Byte budget for the operation tape (reproduces the OOM points).
    pub memory_limit: Option<usize>,
    /// Safety valve on executed operations.
    pub max_ops: Option<u64>,
}

impl Default for AdaptOptions {
    fn default() -> Self {
        AdaptOptions {
            formula: Formula::Demotion(FloatTy::F32),
            memory_limit: None,
            max_ops: None,
        }
    }
}

/// Analysis failure.
#[derive(Clone, Debug)]
pub enum AdaptError {
    /// Tape exceeded the configured memory budget.
    OutOfMemory(TapeOom),
    /// Runtime fault (division by zero, OOB, missing return…).
    Runtime(String),
    /// Construct the interpreter does not support.
    Unsupported(String),
    /// The operation budget ran out.
    OpBudget,
}

impl std::fmt::Display for AdaptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdaptError::OutOfMemory(o) => write!(f, "{o}"),
            AdaptError::Runtime(m) => write!(f, "runtime error: {m}"),
            AdaptError::Unsupported(m) => write!(f, "unsupported: {m}"),
            AdaptError::OpBudget => write!(f, "operation budget exhausted"),
        }
    }
}

impl std::error::Error for AdaptError {}

impl From<TapeOom> for AdaptError {
    fn from(o: TapeOom) -> Self {
        AdaptError::OutOfMemory(o)
    }
}

/// The analysis result.
#[derive(Clone, Debug)]
pub struct AdaptOutcome {
    /// Primal function value.
    pub value: f64,
    /// Total estimated FP error.
    pub fp_error: f64,
    /// Per-variable attribution (float variables by name).
    pub per_variable: HashMap<String, f64>,
    /// Gradient of float inputs: name → scalar or per-element adjoints.
    pub gradient: Vec<(String, ArgValue)>,
    /// Number of tape entries recorded.
    pub tape_entries: usize,
    /// Peak tape bytes (entries + the reverse pass's adjoint vector).
    pub tape_peak_bytes: usize,
    /// Operations executed by the interpreter.
    pub ops_executed: u64,
}

/// Runs the ADAPT-style analysis of `func` (which must be inlined) on the
/// given arguments.
pub fn analyze(
    func: &Function,
    args: &[ArgValue],
    opts: &AdaptOptions,
) -> Result<AdaptOutcome, AdaptError> {
    let mut interp = Interp::new(func, opts)?;
    interp.bind(args)?;
    let (value, ret_idx) = interp.run()?;
    interp.finish(value, ret_idx)
}

#[derive(Clone, Debug)]
enum Slot {
    F(f64, Option<EntryIdx>),
    I(i64),
    B(bool),
    FA(Vec<f64>, Vec<Option<EntryIdx>>),
    IA(Vec<i64>),
    Unset,
}

#[derive(Clone, Copy, Debug)]
enum TVal {
    /// value, tape index, effective precision (C-like promotion: narrow
    /// operands produce narrow results, mirroring `chef-exec`'s compiler).
    F(f64, Option<EntryIdx>, FloatTy),
    I(i64),
    B(bool),
}

impl TVal {
    fn as_f(self) -> (f64, Option<EntryIdx>, FloatTy) {
        match self {
            TVal::F(v, i, p) => (v, i, p),
            TVal::I(v) => (v as f64, None, FloatTy::F64),
            TVal::B(_) => panic!("bool used as float"),
        }
    }

    fn as_i(self) -> i64 {
        match self {
            TVal::I(v) => v,
            TVal::B(b) => b as i64,
            TVal::F(..) => panic!("float used as int"),
        }
    }

    fn as_b(self) -> bool {
        match self {
            TVal::B(b) => b,
            _ => panic!("non-bool condition"),
        }
    }
}

struct Interp<'a> {
    func: &'a Function,
    opts: &'a AdaptOptions,
    tape: OpTape,
    env: Vec<Slot>,
    /// (entry, attribution name) for every executed assignment and input.
    marks: Vec<(EntryIdx, u32)>,
    /// Attribution slot names.
    slot_names: Vec<String>,
    slot_of: HashMap<String, u32>,
    /// Float inputs for gradient extraction.
    inputs: Vec<(String, InputIdx)>,
    ops: u64,
}

enum InputIdx {
    Scalar(EntryIdx),
    Array(Vec<EntryIdx>),
}

/// Attribution sentinel for the function result (counted in the total,
/// not in any named variable's bucket).
const RESULT_SLOT: u32 = u32::MAX;

impl<'a> Interp<'a> {
    fn new(func: &'a Function, opts: &'a AdaptOptions) -> Result<Self, AdaptError> {
        let mut slot_names = Vec::new();
        let mut slot_of = HashMap::new();
        for (_, info) in func.vars_iter() {
            if info.ty.is_differentiable() {
                slot_of.insert(info.name.clone(), slot_names.len() as u32);
                slot_names.push(info.name.clone());
            }
        }
        let tape = match opts.memory_limit {
            Some(limit) => OpTape::with_limit(limit),
            None => OpTape::new(),
        };
        Ok(Interp {
            func,
            opts,
            tape,
            env: vec![Slot::Unset; func.vars.len()],
            marks: Vec::new(),
            slot_names,
            slot_of,
            inputs: Vec::new(),
            ops: 0,
        })
    }

    fn tick(&mut self) -> Result<(), AdaptError> {
        self.ops += 1;
        if let Some(max) = self.opts.max_ops {
            if self.ops > max {
                return Err(AdaptError::OpBudget);
            }
        }
        Ok(())
    }

    fn bind(&mut self, args: &[ArgValue]) -> Result<(), AdaptError> {
        if args.len() != self.func.params.len() {
            return Err(AdaptError::Runtime(format!(
                "expected {} args, got {}",
                self.func.params.len(),
                args.len()
            )));
        }
        for (p, arg) in self.func.params.iter().zip(args) {
            let id = p.id.expect("typeck ran").index();
            match (&p.ty, arg) {
                (Type::Float(ft), ArgValue::F(v)) => {
                    let v = round_to(*v, *ft);
                    let idx = self.tape.input(v)?;
                    self.mark(idx, &p.name);
                    self.inputs.push((p.name.clone(), InputIdx::Scalar(idx)));
                    self.env[id] = Slot::F(v, Some(idx));
                    let _ = ft;
                }
                (Type::Int, ArgValue::I(v)) => self.env[id] = Slot::I(*v),
                (Type::Bool, ArgValue::B(v)) => self.env[id] = Slot::B(*v),
                (Type::Array(ElemTy::Float(ft)), ArgValue::FArr(v)) => {
                    let mut vals = Vec::with_capacity(v.len());
                    let mut idxs = Vec::with_capacity(v.len());
                    let mut raw = Vec::with_capacity(v.len());
                    for &x in v {
                        let x = round_to(x, *ft);
                        let idx = self.tape.input(x)?;
                        self.mark(idx, &p.name);
                        vals.push(x);
                        idxs.push(Some(idx));
                        raw.push(idx);
                    }
                    self.inputs.push((p.name.clone(), InputIdx::Array(raw)));
                    self.env[id] = Slot::FA(vals, idxs);
                }
                (Type::Array(ElemTy::Int), ArgValue::IArr(v)) => {
                    self.env[id] = Slot::IA(v.clone());
                }
                (ty, got) => {
                    return Err(AdaptError::Runtime(format!(
                        "parameter `{}`: expected {ty}, got {got:?}",
                        p.name
                    )))
                }
            }
        }
        Ok(())
    }

    fn mark(&mut self, idx: EntryIdx, name: &str) {
        if let Some(&slot) = self.slot_of.get(name) {
            self.marks.push((idx, slot));
        }
    }

    fn run(&mut self) -> Result<(f64, Option<EntryIdx>), AdaptError> {
        match self.block(&self.func.body)? {
            Some(TVal::F(v, idx, _)) => Ok((v, idx)),
            Some(_) => Err(AdaptError::Unsupported("non-float return".into())),
            None => Err(AdaptError::Runtime("missing return".into())),
        }
    }

    /// Executes a block; `Some` = a return value was produced.
    fn block(&mut self, b: &Block) -> Result<Option<TVal>, AdaptError> {
        for s in &b.stmts {
            if let Some(ret) = self.stmt(s)? {
                return Ok(Some(ret));
            }
        }
        Ok(None)
    }

    fn stmt(&mut self, s: &Stmt) -> Result<Option<TVal>, AdaptError> {
        self.tick()?;
        match &s.kind {
            StmtKind::Decl {
                id, ty, size, init, ..
            } => {
                let id = id.expect("typeck ran").index();
                if let Some(sz) = size {
                    let n = self.expr(sz)?.as_i();
                    if n < 0 {
                        return Err(AdaptError::Runtime("negative array length".into()));
                    }
                    match ty {
                        Type::Array(ElemTy::Float(_)) => {
                            self.env[id] = Slot::FA(vec![0.0; n as usize], vec![None; n as usize]);
                        }
                        Type::Array(ElemTy::Int) => {
                            self.env[id] = Slot::IA(vec![0; n as usize]);
                        }
                        _ => unreachable!("typeck"),
                    }
                    return Ok(None);
                }
                if let Some(e) = init {
                    let v = self.expr(e)?;
                    self.assign_scalar(id, v)?;
                } else {
                    // C-like: uninitialized; model as zero/passive.
                    self.env[id] = match ty {
                        Type::Float(_) => Slot::F(0.0, None),
                        Type::Int => Slot::I(0),
                        Type::Bool => Slot::B(false),
                        _ => Slot::Unset,
                    };
                }
                Ok(None)
            }
            StmtKind::Assign { lhs, op, rhs } => {
                let mut val = self.expr(rhs)?;
                if let Some(bop) = op.binop() {
                    let cur = self.read_lvalue(lhs)?;
                    val = self.binop(bop, cur, val)?;
                }
                self.write_lvalue(lhs, val)?;
                Ok(None)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                if self.expr(cond)?.as_b() {
                    self.block(then_branch)
                } else if let Some(eb) = else_branch {
                    self.block(eb)
                } else {
                    Ok(None)
                }
            }
            StmtKind::While { cond, body } => {
                while self.expr(cond)?.as_b() {
                    self.tick()?;
                    if let Some(r) = self.block(body)? {
                        return Ok(Some(r));
                    }
                }
                Ok(None)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                loop {
                    let go = match cond {
                        Some(c) => self.expr(c)?.as_b(),
                        None => true,
                    };
                    if !go {
                        break;
                    }
                    self.tick()?;
                    if let Some(r) = self.block(body)? {
                        return Ok(Some(r));
                    }
                    if let Some(st) = step {
                        self.stmt(st)?;
                    }
                }
                Ok(None)
            }
            StmtKind::Return(Some(e)) => {
                let ret = self.expr(e)?;
                // Round to the declared return precision. A non-trivial
                // return expression is an assignment to the output and
                // contributes an error term (same convention as CHEF-FP,
                // which instruments `_result = e` unless `e` is a bare
                // variable copy).
                if let Type::Float(ft) = self.func.ret {
                    let (v, idx, _) = ret.as_f();
                    let v = round_to(v, ft);
                    if !matches!(e.kind, ExprKind::Var(_)) {
                        let entry = self.tape.record(Entry {
                            a: idx.map(|j| (j, 1.0)),
                            b: None,
                            value: v,
                        })?;
                        self.marks.push((entry, RESULT_SLOT));
                        return Ok(Some(TVal::F(v, Some(entry), ft)));
                    }
                    return Ok(Some(TVal::F(v, idx, ft)));
                }
                Ok(Some(ret))
            }
            StmtKind::Return(None) => Err(AdaptError::Unsupported("void return".into())),
            StmtKind::Block(b) => self.block(b),
            StmtKind::ExprStmt(e) => {
                self.expr(e)?;
                Ok(None)
            }
            StmtKind::TapePush(_) | StmtKind::TapePop(_) => {
                Err(AdaptError::Unsupported("tape ops in primal".into()))
            }
        }
    }

    /// Assignment semantics: round to the variable's precision, record a
    /// copy entry, and mark it for attribution (every executed assignment
    /// contributes an error term — same aggregation CHEF-FP uses).
    fn assign_scalar(&mut self, id: usize, val: TVal) -> Result<(), AdaptError> {
        let info = &self.func.vars[id];
        match info.ty {
            Type::Float(ft) => {
                let (v, idx, _) = val.as_f();
                let v = round_to(v, ft);
                let e = self.tape.record(Entry {
                    a: idx.map(|i| (i, 1.0)),
                    b: None,
                    value: v,
                })?;
                let name = info.name.clone();
                self.mark(e, &name);
                self.env[id] = Slot::F(v, Some(e));
            }
            Type::Int => self.env[id] = Slot::I(val.as_i()),
            Type::Bool => self.env[id] = Slot::B(val.as_b()),
            _ => return Err(AdaptError::Unsupported("array scalar-assign".into())),
        }
        Ok(())
    }

    fn read_lvalue(&mut self, lv: &LValue) -> Result<TVal, AdaptError> {
        match lv {
            LValue::Var(v) => self.read_var(v),
            LValue::Index { base, index } => {
                let i = self.expr(index)?.as_i();
                let id = base.vid().index();
                let elem_ft = match self.func.vars[id].ty {
                    Type::Array(ElemTy::Float(ft)) => ft,
                    _ => FloatTy::F64,
                };
                match &self.env[id] {
                    Slot::FA(vals, idxs) => {
                        let n = vals.len();
                        if i < 0 || i as usize >= n {
                            return Err(AdaptError::Runtime(format!(
                                "index {i} out of bounds (len {n})"
                            )));
                        }
                        Ok(TVal::F(vals[i as usize], idxs[i as usize], elem_ft))
                    }
                    Slot::IA(vals) => {
                        let n = vals.len();
                        if i < 0 || i as usize >= n {
                            return Err(AdaptError::Runtime(format!(
                                "index {i} out of bounds (len {n})"
                            )));
                        }
                        Ok(TVal::I(vals[i as usize]))
                    }
                    _ => Err(AdaptError::Runtime(format!(
                        "`{}` is not an array",
                        base.name
                    ))),
                }
            }
        }
    }

    fn read_var(&mut self, v: &VarRef) -> Result<TVal, AdaptError> {
        let id = v.vid().index();
        let prec = match self.func.vars[id].ty {
            Type::Float(ft) => ft,
            _ => FloatTy::F64,
        };
        match &self.env[id] {
            Slot::F(val, idx) => Ok(TVal::F(*val, *idx, prec)),
            Slot::I(val) => Ok(TVal::I(*val)),
            Slot::B(val) => Ok(TVal::B(*val)),
            Slot::Unset => Ok(TVal::F(0.0, None, prec)),
            _ => Err(AdaptError::Runtime(format!(
                "array `{}` read as scalar",
                v.name
            ))),
        }
    }

    fn write_lvalue(&mut self, lv: &LValue, val: TVal) -> Result<(), AdaptError> {
        match lv {
            LValue::Var(v) => self.assign_scalar(v.vid().index(), val),
            LValue::Index { base, index } => {
                let i = self.expr(index)?.as_i();
                let id = base.vid().index();
                let name = base.name.clone();
                // Element precision.
                let elem_ft = match self.func.vars[id].ty {
                    Type::Array(ElemTy::Float(ft)) => Some(ft),
                    _ => None,
                };
                match &mut self.env[id] {
                    Slot::FA(vals, idxs) => {
                        let n = vals.len();
                        if i < 0 || i as usize >= n {
                            return Err(AdaptError::Runtime(format!(
                                "index {i} out of bounds (len {n})"
                            )));
                        }
                        let (v, idx, _) = val.as_f();
                        let v = round_to(v, elem_ft.unwrap_or(FloatTy::F64));
                        let e = self.tape.record(Entry {
                            a: idx.map(|j| (j, 1.0)),
                            b: None,
                            value: v,
                        })?;
                        vals[i as usize] = v;
                        idxs[i as usize] = Some(e);
                        self.mark(e, &name);
                        Ok(())
                    }
                    Slot::IA(vals) => {
                        let n = vals.len();
                        if i < 0 || i as usize >= n {
                            return Err(AdaptError::Runtime(format!(
                                "index {i} out of bounds (len {n})"
                            )));
                        }
                        vals[i as usize] = val.as_i();
                        Ok(())
                    }
                    _ => Err(AdaptError::Runtime(format!("`{name}` is not an array"))),
                }
            }
        }
    }

    fn expr(&mut self, e: &Expr) -> Result<TVal, AdaptError> {
        self.tick()?;
        match &e.kind {
            ExprKind::FloatLit(v) => {
                let prec = match e.ty {
                    Some(Type::Float(ft)) => ft,
                    _ => FloatTy::F64,
                };
                Ok(TVal::F(*v, None, prec))
            }
            ExprKind::IntLit(v) => Ok(TVal::I(*v)),
            ExprKind::BoolLit(b) => Ok(TVal::B(*b)),
            ExprKind::Var(v) => self.read_var(v),
            ExprKind::Index { base, index } => {
                let lv = LValue::Index {
                    base: base.clone(),
                    index: (**index).clone(),
                };
                self.read_lvalue(&lv)
            }
            ExprKind::Unary { op, operand } => {
                let v = self.expr(operand)?;
                match op {
                    UnOp::Neg => match v {
                        TVal::F(x, idx, p) => {
                            let r = -x;
                            let i = match idx {
                                Some(j) => Some(self.tape.record(Entry {
                                    a: Some((j, -1.0)),
                                    b: None,
                                    value: r,
                                })?),
                                None => None,
                            };
                            Ok(TVal::F(r, i, p))
                        }
                        TVal::I(x) => Ok(TVal::I(x.wrapping_neg())),
                        TVal::B(_) => Err(AdaptError::Runtime("negate bool".into())),
                    },
                    UnOp::Not => Ok(TVal::B(!v.as_b())),
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                if op.is_logic() {
                    let l = self.expr(lhs)?.as_b();
                    return match op {
                        BinOp::And => {
                            if !l {
                                Ok(TVal::B(false))
                            } else {
                                Ok(TVal::B(self.expr(rhs)?.as_b()))
                            }
                        }
                        BinOp::Or => {
                            if l {
                                Ok(TVal::B(true))
                            } else {
                                Ok(TVal::B(self.expr(rhs)?.as_b()))
                            }
                        }
                        _ => unreachable!(),
                    };
                }
                let a = self.expr(lhs)?;
                let b = self.expr(rhs)?;
                self.binop(*op, a, b)
            }
            ExprKind::Call {
                callee: Callee::Intrinsic(i),
                args,
            } => {
                let vals: Vec<TVal> = args
                    .iter()
                    .map(|a| self.expr(a))
                    .collect::<Result<_, _>>()?;
                self.intrinsic(*i, &vals)
            }
            ExprKind::Call {
                callee: Callee::Func(n),
                ..
            } => Err(AdaptError::Unsupported(format!(
                "user call `{n}` (inline first)"
            ))),
            ExprKind::Cast { ty, expr } => {
                let v = self.expr(expr)?;
                match ty {
                    Type::Float(ft) => {
                        let (x, idx, p) = v.as_f();
                        if *ft != FloatTy::F64 && p > *ft {
                            let r = round_to(x, *ft);
                            let i = match idx {
                                Some(j) => Some(self.tape.record(Entry {
                                    a: Some((j, 1.0)),
                                    b: None,
                                    value: r,
                                })?),
                                None => None,
                            };
                            Ok(TVal::F(r, i, *ft))
                        } else {
                            // Widening (or same-width) casts are exact.
                            Ok(TVal::F(x, idx, p.min(*ft)))
                        }
                    }
                    Type::Int => match v {
                        TVal::F(x, ..) => Ok(TVal::I(x as i64)),
                        TVal::I(x) => Ok(TVal::I(x)),
                        TVal::B(_) => Err(AdaptError::Runtime("bool cast".into())),
                    },
                    _ => Err(AdaptError::Unsupported("cast target".into())),
                }
            }
        }
    }

    fn binop(&mut self, op: BinOp, a: TVal, b: TVal) -> Result<TVal, AdaptError> {
        use BinOp::*;
        let float_op = matches!(a, TVal::F(..)) || matches!(b, TVal::F(..));
        if op.is_cmp() {
            let r = if float_op {
                let (x, ..) = a.as_f();
                let (y, ..) = b.as_f();
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            } else {
                let (x, y) = (a.as_i(), b.as_i());
                match op {
                    Eq => x == y,
                    Ne => x != y,
                    Lt => x < y,
                    Le => x <= y,
                    Gt => x > y,
                    Ge => x >= y,
                    _ => unreachable!(),
                }
            };
            return Ok(TVal::B(r));
        }
        if float_op {
            let (x, xi, px) = a.as_f();
            let (y, yi, py) = b.as_f();
            let prec = px.max(py);
            let (raw, da, db) = match op {
                Add => (x + y, 1.0, 1.0),
                Sub => (x - y, 1.0, -1.0),
                Mul => (x * y, y, x),
                Div => (x / y, 1.0 / y, -x / (y * y)),
                Rem => return Err(AdaptError::Runtime("float %".into())),
                _ => unreachable!(),
            };
            // C-like semantics (matching chef-exec): arithmetic whose
            // operands are all narrow rounds its result to that precision.
            let value = round_to(raw, prec);
            let idx = if xi.is_some() || yi.is_some() {
                Some(self.tape.record(Entry {
                    a: xi.map(|j| (j, da)),
                    b: yi.map(|j| (j, db)),
                    value,
                })?)
            } else {
                None
            };
            Ok(TVal::F(value, idx, prec))
        } else {
            let (x, y) = (a.as_i(), b.as_i());
            let r = match op {
                Add => x.wrapping_add(y),
                Sub => x.wrapping_sub(y),
                Mul => x.wrapping_mul(y),
                Div => {
                    if y == 0 {
                        return Err(AdaptError::Runtime("integer division by zero".into()));
                    }
                    x.wrapping_div(y)
                }
                Rem => {
                    if y == 0 {
                        return Err(AdaptError::Runtime("integer remainder by zero".into()));
                    }
                    x.wrapping_rem(y)
                }
                _ => unreachable!(),
            };
            Ok(TVal::I(r))
        }
    }

    fn intrinsic(&mut self, i: Intrinsic, vals: &[TVal]) -> Result<TVal, AdaptError> {
        let approx = chef_exec::intrinsics::ApproxConfig::exact();
        if i.arity() == 2 {
            let (x, xi, px) = vals[0].as_f();
            let (y, yi, py) = vals[1].as_f();
            let prec = px.max(py);
            let value = round_to(chef_exec::intrinsics::eval2(i, x, y, &approx), prec);
            let (da, db) = match i {
                Intrinsic::Pow => (y * x.powf(y - 1.0), x.powf(y) * x.ln()),
                Intrinsic::Fmin => {
                    if x <= y {
                        (1.0, 0.0)
                    } else {
                        (0.0, 1.0)
                    }
                }
                Intrinsic::Fmax => {
                    if x >= y {
                        (1.0, 0.0)
                    } else {
                        (0.0, 1.0)
                    }
                }
                _ => unreachable!(),
            };
            let idx = if xi.is_some() || yi.is_some() {
                Some(self.tape.record(Entry {
                    a: xi.map(|j| (j, da)),
                    b: yi.map(|j| (j, db)),
                    value,
                })?)
            } else {
                None
            };
            return Ok(TVal::F(value, idx, prec));
        }
        let (x, xi, prec) = vals[0].as_f();
        let value = round_to(chef_exec::intrinsics::eval1(i, x, &approx), prec);
        let d = numeric_derivative(i, x);
        let idx = match xi {
            Some(j) => Some(self.tape.record(Entry {
                a: Some((j, d)),
                b: None,
                value,
            })?),
            None => None,
        };
        Ok(TVal::F(value, idx, prec))
    }

    fn finish(self, value: f64, ret_idx: Option<EntryIdx>) -> Result<AdaptOutcome, AdaptError> {
        let tape_entries = self.tape.len();
        // Peak memory: the tape plus the adjoint vector of the reverse
        // interpretation.
        let tape_peak_bytes = self.tape.bytes() + tape_entries * 8;
        let adj = match ret_idx {
            Some(idx) => self.tape.reverse(idx),
            None => vec![0.0; tape_entries],
        };
        let gap = |v: f64| match self.opts.formula {
            Formula::Demotion(ft) => demotion_error(v, ft).abs(),
            Formula::Epsilon(ft) => ft.epsilon() * v.abs(),
        };
        let mut fp_error = 0.0;
        let mut per_variable: HashMap<String, f64> = HashMap::new();
        for &(idx, slot) in &self.marks {
            let contribution = (adj[idx as usize]).abs() * gap(self.tape.value(idx));
            fp_error += contribution;
            if slot != RESULT_SLOT {
                *per_variable
                    .entry(self.slot_names[slot as usize].clone())
                    .or_insert(0.0) += contribution;
            }
        }
        let gradient = self
            .inputs
            .iter()
            .map(|(name, idx)| {
                let v = match idx {
                    InputIdx::Scalar(i) => ArgValue::F(adj[*i as usize]),
                    InputIdx::Array(is) => {
                        ArgValue::FArr(is.iter().map(|i| adj[*i as usize]).collect())
                    }
                };
                (name.clone(), v)
            })
            .collect();
        Ok(AdaptOutcome {
            value,
            fp_error,
            per_variable,
            gradient,
            tape_entries,
            tape_peak_bytes,
            ops_executed: self.ops,
        })
    }
}

/// Numeric derivative of a unary intrinsic at `x` (runtime values — the
/// tracing tool's equivalent of `chef-ad`'s symbolic rules).
fn numeric_derivative(i: Intrinsic, x: f64) -> f64 {
    match i {
        Intrinsic::Sin => x.cos(),
        Intrinsic::Cos => -x.sin(),
        Intrinsic::Tan => {
            let c = x.cos();
            1.0 / (c * c)
        }
        Intrinsic::Exp | Intrinsic::FastExp | Intrinsic::FasterExp => x.exp(),
        Intrinsic::Log | Intrinsic::FastLog => 1.0 / x,
        Intrinsic::Exp2 => x.exp2() * std::f64::consts::LN_2,
        Intrinsic::Log2 => 1.0 / (x * std::f64::consts::LN_2),
        Intrinsic::Sqrt | Intrinsic::FastSqrt => 0.5 / x.sqrt(),
        Intrinsic::Fabs => {
            if x >= 0.0 {
                1.0
            } else {
                -1.0
            }
        }
        Intrinsic::Floor | Intrinsic::Ceil => 0.0,
        Intrinsic::Erf => 2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp(),
        Intrinsic::Erfc => -2.0 / std::f64::consts::PI.sqrt() * (-x * x).exp(),
        Intrinsic::NormCdf | Intrinsic::FastNormCdf => {
            (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
        }
        Intrinsic::Tanh => {
            let t = x.tanh();
            1.0 - t * t
        }
        Intrinsic::Sinh => x.cosh(),
        Intrinsic::Cosh => x.sinh(),
        Intrinsic::Atan => 1.0 / (1.0 + x * x),
        Intrinsic::Pow | Intrinsic::Fmin | Intrinsic::Fmax => unreachable!("binary"),
    }
}
