//! The runtime operation tape (the CoDiPack substrate of ADAPT).
//!
//! A tracing AD tool records **every elementary FP operation** executed by
//! the program into a growing tape; the reverse pass interprets the tape
//! backwards to accumulate adjoints. Unlike the source-transformation
//! tape of `chef-exec` (which holds only to-be-restored values and shrinks
//! as the backward sweep pops), this tape holds one entry per operation
//! and only ever grows until the reverse pass — this is the memory
//! asymmetry behind the paper's Figs. 4–8 and the ADAPT out-of-memory
//! points.

/// Index of a tape entry. `u32::MAX` (via `Option`) marks passive values.
pub type EntryIdx = u32;

/// One recorded operation: up to two active arguments with their local
/// partial derivatives, plus the computed value.
#[derive(Clone, Copy, Debug)]
pub struct Entry {
    /// First active argument (tape index, ∂result/∂arg).
    pub a: Option<(EntryIdx, f64)>,
    /// Second active argument.
    pub b: Option<(EntryIdx, f64)>,
    /// The operation's result value.
    pub value: f64,
}

/// In-memory cost of one entry (index+partial pairs, value, padding) —
/// used for the peak-memory accounting; CoDiPack-style tapes store about
/// this much per recorded operation.
pub const ENTRY_BYTES: usize = std::mem::size_of::<Entry>();

/// Tape exhaustion error (the reproduced "ADAPT runs out of memory").
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TapeOom {
    /// The configured limit in bytes.
    pub limit_bytes: usize,
}

impl std::fmt::Display for TapeOom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "operation tape exceeded {} bytes", self.limit_bytes)
    }
}

impl std::error::Error for TapeOom {}

/// The operation tape.
#[derive(Debug, Default)]
pub struct OpTape {
    entries: Vec<Entry>,
    limit_bytes: Option<usize>,
}

impl OpTape {
    /// Unlimited tape.
    pub fn new() -> Self {
        OpTape::default()
    }

    /// Tape that fails once `limit_bytes` of entries are live.
    pub fn with_limit(limit_bytes: usize) -> Self {
        OpTape {
            limit_bytes: Some(limit_bytes),
            ..OpTape::default()
        }
    }

    /// Records an entry, returning its index.
    #[inline]
    pub fn record(&mut self, e: Entry) -> Result<EntryIdx, TapeOom> {
        if let Some(limit) = self.limit_bytes {
            if (self.entries.len() + 1) * ENTRY_BYTES > limit {
                return Err(TapeOom { limit_bytes: limit });
            }
        }
        let idx = self.entries.len() as EntryIdx;
        self.entries.push(e);
        Ok(idx)
    }

    /// Records a fresh *input* (leaf) entry.
    pub fn input(&mut self, value: f64) -> Result<EntryIdx, TapeOom> {
        self.record(Entry {
            a: None,
            b: None,
            value,
        })
    }

    /// Number of recorded entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total tape bytes (entries only; the adjoint vector of the reverse
    /// pass doubles this transiently).
    pub fn bytes(&self) -> usize {
        self.entries.len() * ENTRY_BYTES
    }

    /// The value stored at `idx`.
    pub fn value(&self, idx: EntryIdx) -> f64 {
        self.entries[idx as usize].value
    }

    /// Runs the reverse (adjoint) interpretation: seeds `seed_at` with 1
    /// and returns the adjoint of every entry.
    pub fn reverse(&self, seed_at: EntryIdx) -> Vec<f64> {
        let mut adj = vec![0.0f64; self.entries.len()];
        adj[seed_at as usize] = 1.0;
        for i in (0..self.entries.len()).rev() {
            let a_i = adj[i];
            if a_i == 0.0 {
                continue;
            }
            let e = &self.entries[i];
            if let Some((j, d)) = e.a {
                adj[j as usize] += a_i * d;
            }
            if let Some((j, d)) = e.b {
                adj[j as usize] += a_i * d;
            }
        }
        adj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reverses_a_product() {
        // f = x * y at (3, 5): df/dx = 5, df/dy = 3.
        let mut t = OpTape::new();
        let x = t.input(3.0).unwrap();
        let y = t.input(5.0).unwrap();
        let f = t
            .record(Entry {
                a: Some((x, 5.0)),
                b: Some((y, 3.0)),
                value: 15.0,
            })
            .unwrap();
        let adj = t.reverse(f);
        assert_eq!(adj[x as usize], 5.0);
        assert_eq!(adj[y as usize], 3.0);
    }

    #[test]
    fn chain_rule_through_shared_subexpression() {
        // g = (x*x) + (x*x): dg/dx = 4x.
        let mut t = OpTape::new();
        let x = t.input(2.0).unwrap();
        let sq = t
            .record(Entry {
                a: Some((x, 2.0)),
                b: Some((x, 2.0)),
                value: 4.0,
            })
            .unwrap();
        let g = t
            .record(Entry {
                a: Some((sq, 1.0)),
                b: Some((sq, 1.0)),
                value: 8.0,
            })
            .unwrap();
        let adj = t.reverse(g);
        assert_eq!(adj[x as usize], 8.0); // 4x at x=2
    }

    #[test]
    fn limit_reports_oom() {
        let mut t = OpTape::with_limit(ENTRY_BYTES * 2);
        t.input(1.0).unwrap();
        t.input(2.0).unwrap();
        assert!(t.input(3.0).is_err());
    }

    #[test]
    fn byte_accounting() {
        let mut t = OpTape::new();
        for i in 0..10 {
            t.input(i as f64).unwrap();
        }
        assert_eq!(t.bytes(), 10 * ENTRY_BYTES);
    }
}
