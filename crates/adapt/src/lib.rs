//! # adapt-baseline — runtime-taping AD with post-hoc FP error analysis
//!
//! The comparator of the paper's evaluation: ADAPT (Menon et al., SC'18)
//! runs on top of CoDiPack, an operator-overloading (tracing) AD tool.
//! This crate reproduces that architecture for KernelC:
//!
//! 1. a tree-walking interpreter executes the primal while **recording
//!    every elementary FP operation** into an operation tape
//!    ([`tape::OpTape`]);
//! 2. the tape is interpreted backwards for adjoints;
//! 3. error terms are evaluated **post hoc** over the recorded entries.
//!
//! Contrast with CHEF-FP (`chef-core`): same estimates, but the tape here
//! grows with the operation count of each analyzed execution and the whole
//! analysis re-interprets the program every run — the time and memory gap
//! measured in the paper's Figs. 4–8 comes from exactly this difference.

pub mod interp;
pub mod tape;

pub use interp::{analyze, AdaptError, AdaptOptions, AdaptOutcome, Formula};
pub use tape::{Entry, OpTape, TapeOom, ENTRY_BYTES};

#[cfg(test)]
mod tests {
    use super::*;
    use chef_exec::value::ArgValue;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn func(src: &str) -> chef_ir::ast::Function {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        p.functions.pop().unwrap()
    }

    #[test]
    fn gradient_of_product() {
        let f = func("double f(double x, double y) { double z = x * y; return z; }");
        let out = analyze(
            &f,
            &[ArgValue::F(3.0), ArgValue::F(5.0)],
            &Default::default(),
        )
        .unwrap();
        assert_eq!(out.value, 15.0);
        assert_eq!(out.gradient[0].1, ArgValue::F(5.0));
        assert_eq!(out.gradient[1].1, ArgValue::F(3.0));
    }

    #[test]
    fn loop_gradient_and_tape_growth() {
        let f = func(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += x * x; } return s; }",
        );
        let small = analyze(
            &f,
            &[ArgValue::F(2.0), ArgValue::I(10)],
            &Default::default(),
        )
        .unwrap();
        let large = analyze(
            &f,
            &[ArgValue::F(2.0), ArgValue::I(1000)],
            &Default::default(),
        )
        .unwrap();
        assert_eq!(small.gradient[0].1, ArgValue::F(40.0)); // 2nx
        assert_eq!(large.gradient[0].1, ArgValue::F(4000.0));
        // The tape grows linearly with iterations: ~100x entries.
        assert!(large.tape_entries > small.tape_entries * 50);
    }

    #[test]
    fn memory_limit_oome() {
        let f = func(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += x; } return s; }",
        );
        let opts = AdaptOptions {
            memory_limit: Some(10_000),
            ..Default::default()
        };
        assert!(analyze(&f, &[ArgValue::F(1.0), ArgValue::I(10)], &opts).is_ok());
        let err = analyze(&f, &[ArgValue::F(1.0), ArgValue::I(100_000)], &opts).unwrap_err();
        assert!(matches!(err, AdaptError::OutOfMemory(_)));
    }

    #[test]
    fn error_estimate_positive_for_inexact_values() {
        let f = func("double f(double x) { double y = x * 3.0; return y; }");
        let out = analyze(&f, &[ArgValue::F(0.1)], &Default::default()).unwrap();
        assert!(out.fp_error > 0.0);
        assert!(out.per_variable["y"] > 0.0);
        assert!(out.per_variable["x"] > 0.0);
    }

    #[test]
    fn branches_flatten_into_tape() {
        let f = func(
            "double f(double x) { double r = 0.0; if (x > 0.0) { r = x * x; } else { r = -x; } return r; }",
        );
        let pos = analyze(&f, &[ArgValue::F(2.0)], &Default::default()).unwrap();
        assert_eq!(pos.gradient[0].1, ArgValue::F(4.0));
        let neg = analyze(&f, &[ArgValue::F(-2.0)], &Default::default()).unwrap();
        assert_eq!(neg.gradient[0].1, ArgValue::F(-1.0));
    }

    #[test]
    fn array_inputs_get_per_element_adjoints() {
        let f = func(
            "double dot(double a[], double b[], int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += a[i] * b[i]; } return s; }",
        );
        let out = analyze(
            &f,
            &[
                ArgValue::FArr(vec![1.0, 2.0]),
                ArgValue::FArr(vec![3.0, 4.0]),
                ArgValue::I(2),
            ],
            &Default::default(),
        )
        .unwrap();
        assert_eq!(out.gradient[0].1, ArgValue::FArr(vec![3.0, 4.0]));
        assert_eq!(out.gradient[1].1, ArgValue::FArr(vec![1.0, 2.0]));
    }
}
