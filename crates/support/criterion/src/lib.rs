//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the bench crate uses:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::sample_size`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`], and the
//! `criterion_group!`/`criterion_main!` macros. Each benchmark is
//! auto-calibrated to a per-sample time budget, timed for `sample_size`
//! samples, and reported as median / mean / min ns-per-iteration.
//!
//! Extras for this workspace:
//!
//! * `CHEF_BENCH_JSON=<path>`: append one JSON line per benchmark
//!   (`{"id": ..., "median_ns": ...}`) so runs can be diffed by scripts
//!   and the CI perf-smoke step.
//! * `CHEF_BENCH_BUDGET_MS=<ms>`: per-sample time budget (default 40 ms).
//! * Benchmark-name filtering: `cargo bench -- <substring>` runs only the
//!   benchmarks whose `group/name` id contains the substring, like real
//!   criterion.

use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    filter: Option<String>,
    budget: Duration,
    json_path: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- foo` passes `foo` through; ignore criterion's
        // own `--bench` marker flag.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        let budget = std::env::var("CHEF_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map_or(Duration::from_millis(40), Duration::from_millis);
        Criterion {
            filter,
            budget,
            json_path: std::env::var("CHEF_BENCH_JSON").ok(),
        }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            group: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a stand-alone benchmark (no group).
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, 20, f);
        self
    }

    fn run_one(&mut self, id: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            budget: self.budget,
            sample_size,
            samples_ns: Vec::new(),
        };
        f(&mut b);
        b.report(id, self.json_path.as_deref());
    }
}

/// A group of related benchmarks sharing an id prefix.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let id = format!("{}/{}", self.group, name);
        let n = self.sample_size;
        self.c.run_one(&id, n, f);
        self
    }

    /// Ends the group (formatting no-op, kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; `iter` does the timing.
pub struct Bencher {
    budget: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times `f`, auto-calibrating iterations per sample to the budget.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        // Warmup + calibration: find an iteration count that fills the
        // per-sample budget without spending minutes on slow benches.
        let mut iters: u64 = 1;
        let per_iter = loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(2) || iters >= 1 << 20 {
                break elapsed.as_secs_f64() / iters as f64;
            }
            iters *= 4;
        };
        let budget_s = self.budget.as_secs_f64();
        let iters_per_sample = ((budget_s / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / iters_per_sample as f64;
            self.samples_ns.push(ns);
        }
    }

    fn report(&self, id: &str, json_path: Option<&str>) {
        if self.samples_ns.is_empty() {
            println!("{id:<44} (no samples)");
            return;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(f64::total_cmp);
        let median = s[s.len() / 2];
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        let min = s[0];
        println!(
            "{id:<44} time: [{} {} {}]",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
        if let Some(path) = json_path {
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(
                    f,
                    "{{\"id\": \"{id}\", \"median_ns\": {median:.1}, \"mean_ns\": {mean:.1}, \"min_ns\": {min:.1}}}"
                );
            }
        }
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Builds a `pub fn $name()` running each registered bench function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Builds the bench binary's `main` from one or more groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            filter: None,
            budget: Duration::from_millis(1),
            json_path: None,
        };
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        let mut ran = false;
        g.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            ran = true;
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn ns_formatting() {
        assert_eq!(fmt_ns(12.3), "12.3 ns");
        assert_eq!(fmt_ns(1_500.0), "1.500 µs");
        assert_eq!(fmt_ns(2_000_000.0), "2.000 ms");
    }
}
