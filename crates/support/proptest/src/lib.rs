//! Minimal offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API the repo's property
//! tests use: the [`proptest!`] macro with `#![proptest_config(...)]`,
//! range/`Just`/tuple strategies, [`Strategy::prop_map`],
//! [`Strategy::prop_recursive`], [`prop_oneof!`], and
//! [`collection::vec`]. Values are generated from a deterministic PRNG
//! seeded by the test name, so failures reproduce across runs. There is
//! no shrinking — a failing case panics with the generated inputs left in
//! the assertion message.

use std::ops::Range;
use std::rc::Rc;

/// Per-test configuration (`cases` = generated inputs per property).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic generator driving all strategies (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded from an arbitrary string (the test name).
    pub fn from_name(name: &str) -> Self {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        TestRng {
            state: h.finish() | 1,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }
}

/// A value generator. The subset of proptest's `Strategy` the tests use.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (needed by [`prop_oneof!`] and
    /// [`Strategy::prop_recursive`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }

    /// Recursive strategy: `f` receives the strategy for the next-smaller
    /// depth and returns the composite level. `depth` bounds nesting;
    /// `_desired_size`/`_expected_branch` are accepted for API parity.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S + 'static,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            let expanded = f(level).boxed();
            let l = leaf.clone();
            level = BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
                // Mix leaves back in at every level so generated trees
                // vary in depth instead of always bottoming out.
                if rng.below(4) == 0 {
                    l.generate(rng)
                } else {
                    expanded.generate(rng)
                }
            }));
        }
        level
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`]'s return type.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between boxed alternatives ([`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given (non-empty) alternatives.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        // Sample the exponent uniformly when the range spans many decades
        // (like proptest's f64 strategies, this exercises small and large
        // magnitudes instead of only values near the upper bound).
        let (lo, hi) = (self.start, self.end);
        if lo > 0.0 && hi / lo > 1e3 {
            let (llo, lhi) = (lo.ln(), hi.ln());
            (llo + rng.unit_f64() * (lhi - llo)).exp().clamp(lo, hi)
        } else {
            lo + rng.unit_f64() * (hi - lo)
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        let r64 = (self.start as f64)..(self.end as f64);
        r64.generate(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($S:ident . $idx:tt),+))*) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Vec of `len` (sampled from `lens`) elements of `elem`.
    pub fn vec<S: Strategy>(elem: S, lens: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, lens }
    }

    /// [`vec`]'s return type.
    pub struct VecStrategy<S> {
        elem: S,
        lens: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.lens.end - self.lens.start;
            let n = self.lens.start + rng.below(span.max(1));
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    /// Alias so `prop::collection::vec(...)` resolves, as in real proptest.
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Asserts inside a property (no shrinking; panics with the message).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// The property-test entry macro: declares `#[test]` functions whose
/// arguments are drawn from strategies for `cases` iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -5.0f64..5.0, n in 1usize..10) {
            prop_assert!((-5.0..5.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn maps_apply(v in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert!(v % 2 == 0 && v < 20);
        }

        #[test]
        fn oneof_picks_an_arm(s in prop_oneof![Just("a"), Just("b")]) {
            prop_assert!(s == "a" || s == "b");
        }

        #[test]
        fn vecs_have_requested_lengths(v in prop::collection::vec(0i64..100, 1..8)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&x| (0..100).contains(&x)));
        }
    }

    #[test]
    fn recursion_is_depth_bounded() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let strat = Just(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::from_name("recursion");
        for _ in 0..200 {
            assert!(depth(&strat.generate(&mut rng)) <= 4);
        }
    }

    use super::{Just, Strategy, TestRng};
}
