//! Minimal offline stand-in for the `rand` crate.
//!
//! The workspace builds without network access, so the subset of the
//! `rand` 0.8 API the repo actually uses (`StdRng::seed_from_u64`,
//! `gen_range` over float/integer ranges, `gen_bool`) is provided here,
//! backed by the xoshiro256++ generator seeded through SplitMix64.
//! Deterministic across platforms for a given seed, which is all the
//! workload generators and the fuzzer need.

use std::ops::{Range, RangeInclusive};

/// Core source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding interface (only the `seed_from_u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a half-open `Range`.
pub trait SampleUniform: PartialOrd + Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128;
                // Modulo bias is ≤ span/2^64, negligible for test workloads.
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_sample_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range in gen_range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        lo + unit * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range(rng: &mut dyn RngCore, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Uniform sample from the range.
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

macro_rules! impl_inclusive_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = rng.next_u64() as u128 % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}
impl_inclusive_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// The user-facing sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from a range, like `rand`'s `gen_range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        f64::sample_range(self, 0.0, 1.0) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for `rand`'s
    /// `StdRng`; not cryptographically secure, which the workloads don't
    /// need).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000), b.gen_range(0..1000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(-5.0..5.0);
            assert!((-5.0..5.0).contains(&v));
            let i = r.gen_range(0..3);
            assert!((0..3).contains(&i));
            let u = r.gen_range(0usize..17);
            assert!(u < 17);
        }
    }

    #[test]
    fn gen_bool_probability_is_sane() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
