//! The pass manager: ordered, fixpointed optimization pipelines.

use crate::cse::cse_function;
use crate::dce::dce_function;
use crate::fold::fold_function;
use chef_ir::ast::Function;

/// Optimization level, mirroring a compiler's `-O` flags.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum OptLevel {
    /// No optimization (compile the AST as-is).
    O0,
    /// Folding and safe algebraic simplification only.
    O1,
    /// Folding + local CSE + DCE, iterated to fixpoint. The default, and
    /// what the CHEF-FP analysis pipeline runs on generated adjoints.
    #[default]
    O2,
}

/// Statistics about one optimization run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OptStats {
    /// Pipeline iterations until fixpoint.
    pub iterations: usize,
    /// Whether the fold pass changed anything at least once.
    pub folded: bool,
    /// Whether CSE introduced at least one temporary.
    pub cse_hits: bool,
    /// Whether DCE removed at least one statement.
    pub dce_hits: bool,
}

/// Maximum pipeline iterations before we stop chasing the fixpoint.
const MAX_ITERS: usize = 10;

/// Optimizes `f` in place at `level`, returning what happened.
pub fn optimize_function(f: &mut Function, level: OptLevel) -> OptStats {
    let mut stats = OptStats::default();
    if level == OptLevel::O0 {
        return stats;
    }
    for _ in 0..MAX_ITERS {
        stats.iterations += 1;
        let mut changed = false;
        let folded = fold_function(f);
        stats.folded |= folded;
        changed |= folded;
        if level == OptLevel::O2 {
            let cse = cse_function(f);
            stats.cse_hits |= cse;
            changed |= cse;
            let dce = dce_function(f);
            stats.dce_hits |= dce;
            changed |= dce;
        }
        if !changed {
            break;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::printer::print_function;
    use chef_ir::typeck::check_program;

    fn optimized(src: &str, level: OptLevel) -> (String, OptStats) {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let stats = optimize_function(&mut p.functions[0], level);
        (print_function(&p.functions[0]), stats)
    }

    #[test]
    fn o0_is_identity() {
        let src = "double f(double x) { double dead = 1.0 + 2.0; return x * 1.0; }";
        let (s, stats) = optimized(src, OptLevel::O0);
        assert!(s.contains("1.0 + 2.0"), "{s}");
        assert_eq!(stats.iterations, 0);
    }

    #[test]
    fn o1_folds_but_keeps_dead_code() {
        let src = "double f(double x) { double dead = 1.0 + 2.0; return x * 1.0; }";
        let (s, stats) = optimized(src, OptLevel::O1);
        assert!(s.contains("dead = 3.0"), "{s}");
        assert!(s.contains("return x;"), "{s}");
        assert!(stats.folded);
    }

    #[test]
    fn o2_reaches_fixpoint() {
        // Folding exposes dead code; DCE removal must follow in the same
        // run.
        let src = "double f(double x) {
            double a = x * 1.0;
            double dead = a * 0.0 + 3.0 * 4.0;
            double b = a + 0.0;
            return b;
        }";
        let (s, stats) = optimized(src, OptLevel::O2);
        assert!(!s.contains("dead"), "{s}");
        assert!(stats.dce_hits);
        assert!(stats.iterations >= 2);
    }

    #[test]
    fn o2_cse_and_dce_compose() {
        let src = "double f(double x, double y) {
            double a = (x + y) * (x + y);
            double b = (x + y) * 2.0;
            return a + b;
        }";
        let (s, stats) = optimized(src, OptLevel::O2);
        assert!(stats.cse_hits);
        assert_eq!(s.matches("x + y").count(), 1, "{s}");
    }
}
