//! Dead-code elimination.
//!
//! Removes assignments (and initializers) whose target is a scalar local
//! that is never read and never observable from outside the function.
//! Observable sinks are: by-ref parameters, array parameters (their
//! elements travel back to the caller), return expressions, tape
//! operations, and conditions.
//!
//! The pass is deliberately conservative about *trapping* expressions: an
//! RHS containing an integer division/remainder or an array access is kept
//! even if dead, so eliminating code can never remove a runtime trap the
//! original program had.

use chef_ir::ast::*;
use chef_ir::visit::{walk_expr, Visitor};
use std::collections::HashSet;

/// Runs DCE to fixpoint over a function. Returns `true` if anything
/// changed.
pub fn dce_function(f: &mut Function) -> bool {
    let mut changed_any = false;
    loop {
        let reads = collect_reads(f);
        let observable = observable_vars(f);
        let mut pass = Remover {
            reads,
            observable,
            changed: false,
        };
        pass.block(&mut f.body);
        if !pass.changed {
            return changed_any;
        }
        changed_any = true;
    }
}

/// `true` if evaluating `e` can never trap or call user code (safe to
/// delete).
pub fn expr_is_removable(e: &Expr) -> bool {
    struct Check(bool);
    impl Visitor for Check {
        fn visit_expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Call {
                    callee: Callee::Func(_),
                    ..
                } => self.0 = false,
                ExprKind::Index { .. } => self.0 = false, // may trap OOB
                ExprKind::Binary {
                    op: BinOp::Rem | BinOp::Div,
                    lhs,
                    rhs,
                } => {
                    // Integer division may trap; float division is IEEE.
                    let is_int = e.ty == Some(chef_ir::types::Type::Int);
                    if is_int {
                        self.0 = false;
                    }
                    self.visit_expr(lhs);
                    self.visit_expr(rhs);
                }
                _ => walk_expr(self, e),
            }
        }
    }
    let mut c = Check(true);
    c.visit_expr(e);
    c.0
}

fn collect_reads(f: &Function) -> HashSet<VarId> {
    struct Reads {
        set: HashSet<VarId>,
    }
    impl Visitor for Reads {
        fn visit_expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Var(v) => {
                    if let Some(id) = v.id {
                        self.set.insert(id);
                    }
                }
                ExprKind::Index { base, index } => {
                    if let Some(id) = base.id {
                        self.set.insert(id);
                    }
                    self.visit_expr(index);
                }
                _ => walk_expr(self, e),
            }
        }
        fn visit_stmt(&mut self, s: &Stmt) {
            // An element store reads the index expression and, via
            // compound ops, possibly the array itself; treat the base of
            // an index-lvalue as read (elements may be loaded later
            // through aliasing iteration patterns we don't track).
            if let StmtKind::Assign {
                lhs: LValue::Index { base, index },
                ..
            } = &s.kind
            {
                if let Some(id) = base.id {
                    self.set.insert(id);
                }
                self.visit_expr(index);
            }
            chef_ir::visit::walk_stmt(self, s);
        }
    }
    let mut r = Reads {
        set: HashSet::new(),
    };
    r.visit_block(&f.body);
    r.set
}

fn observable_vars(f: &Function) -> HashSet<VarId> {
    let mut set = HashSet::new();
    for p in &f.params {
        let observable = p.by_ref || matches!(p.ty, chef_ir::types::Type::Array(_));
        if observable {
            if let Some(id) = p.id {
                set.insert(id);
            }
        }
    }
    set
}

struct Remover {
    reads: HashSet<VarId>,
    observable: HashSet<VarId>,
    changed: bool,
}

impl Remover {
    fn is_dead_target(&self, v: &VarRef) -> bool {
        match v.id {
            Some(id) => !self.reads.contains(&id) && !self.observable.contains(&id),
            None => false,
        }
    }

    fn block(&mut self, b: &mut Block) {
        b.stmts.retain_mut(|s| self.keep_stmt(s));
    }

    /// Returns `false` to remove the statement.
    fn keep_stmt(&mut self, s: &mut Stmt) -> bool {
        match &mut s.kind {
            StmtKind::Assign {
                lhs: LValue::Var(v),
                rhs,
                ..
            } => {
                if self.is_dead_target(v) && expr_is_removable(rhs) {
                    self.changed = true;
                    return false;
                }
                true
            }
            StmtKind::Decl { id, init, size, .. } => {
                let dead =
                    id.is_some_and(|i| !self.reads.contains(&i) && !self.observable.contains(&i));
                if dead && size.is_none() {
                    match init {
                        Some(e) if !expr_is_removable(e) => true,
                        _ => {
                            self.changed = true;
                            false
                        }
                    }
                } else {
                    true
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.block(then_branch);
                if let Some(eb) = else_branch {
                    self.block(eb);
                    if eb.stmts.is_empty() {
                        *else_branch = None;
                        self.changed = true;
                    }
                }
                if then_branch.stmts.is_empty() && else_branch.is_none() && expr_is_removable(cond)
                {
                    self.changed = true;
                    return false;
                }
                true
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                self.block(body);
                true
            }
            StmtKind::Block(b) => {
                self.block(b);
                if b.stmts.is_empty() {
                    self.changed = true;
                    return false;
                }
                true
            }
            // Tape ops, element stores, returns, expression statements:
            // always kept (side effects or observability).
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::printer::print_function;
    use chef_ir::typeck::check_program;

    fn dced(src: &str) -> String {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        dce_function(&mut p.functions[0]);
        print_function(&p.functions[0])
    }

    #[test]
    fn removes_unused_local() {
        let s = dced("double f(double x) { double dead = x * 2.0; return x; }");
        assert!(!s.contains("dead"), "{s}");
    }

    #[test]
    fn removes_chains_to_fixpoint() {
        let s = dced("double f(double x) { double a = x; double b = a * 2.0; double c = b + 1.0; return x; }");
        assert!(!s.contains("double a"), "{s}");
        assert!(!s.contains("double b"), "{s}");
        assert!(!s.contains("double c"), "{s}");
    }

    #[test]
    fn keeps_by_ref_param_stores() {
        let s = dced("void f(double x, double &out) { out = x * 2.0; }");
        assert!(s.contains("out = x * 2.0;"), "{s}");
    }

    #[test]
    fn keeps_array_element_stores() {
        let s = dced("void f(double a[], double x) { a[0] = x; }");
        assert!(s.contains("a[0] = x;"), "{s}");
    }

    #[test]
    fn keeps_trapping_rhs() {
        // 1 / n may trap; the assignment is dead but must stay.
        let s = dced("int f(int n) { int dead = 1 / n; return n; }");
        assert!(s.contains("1 / n"), "{s}");
    }

    #[test]
    fn removes_empty_if() {
        let s = dced("double f(double x) { if (x > 0.0) { double d = x; } return x; }");
        assert!(!s.contains("if"), "{s}");
    }

    #[test]
    fn keeps_used_variables() {
        let s = dced("double f(double x) { double y = x * x; return y + 1.0; }");
        assert!(s.contains("y = x * x"), "{s}");
    }

    #[test]
    fn keeps_loop_with_live_accumulator() {
        let s = dced(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        );
        assert!(s.contains("s += 1.0;"), "{s}");
    }
}
