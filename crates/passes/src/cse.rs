//! Local common-subexpression elimination.
//!
//! Within each block, pure non-trivial subexpressions whose operands are
//! not written anywhere in that block and that occur two or more times are
//! hoisted into a fresh temporary declared before their first occurrence.
//! This is the optimization the paper gets "for free" from Clang once the
//! error-estimation arithmetic is inlined into the adjoint: expressions
//! like `x * y` shared between the primal recomputation, the adjoint
//! update and the error term collapse into one evaluation.
//!
//! Candidates must be call-free of user functions, index-free (array loads
//! may trap and alias stores), and structurally identical (keyed on the
//! printed canonical form).

use chef_ir::ast::*;
use chef_ir::printer::print_expr;
use chef_ir::visit::{walk_expr, walk_expr_mut, MutVisitor, Visitor};
use std::collections::{HashMap, HashSet};

/// Runs local CSE over every block of `f`. Returns `true` if anything
/// changed.
pub fn cse_function(f: &mut Function) -> bool {
    // Take the body out, transform recursively with access to the
    // function's variable table (fresh temps are registered there), put it
    // back.
    let mut fresh = 0usize;
    let mut body = std::mem::take(&mut f.body);
    let changed = transform_block(&mut body, f, &mut fresh);
    f.body = body;
    changed
}

fn transform_block(b: &mut Block, f: &mut Function, fresh: &mut usize) -> bool {
    let mut changed = false;
    // Recurse into nested blocks first.
    for s in &mut b.stmts {
        match &mut s.kind {
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                changed |= transform_block(then_branch, f, fresh);
                if let Some(eb) = else_branch {
                    changed |= transform_block(eb, f, fresh);
                }
            }
            StmtKind::For { body, .. } | StmtKind::While { body, .. } => {
                changed |= transform_block(body, f, fresh);
            }
            StmtKind::Block(inner) => {
                changed |= transform_block(inner, f, fresh);
            }
            _ => {}
        }
    }
    changed |= cse_one_block(b, f, fresh);
    changed
}

/// Vars written anywhere inside the block (including nested statements).
fn assigned_vars(b: &Block) -> HashSet<VarId> {
    struct W(HashSet<VarId>);
    impl Visitor for W {
        fn visit_stmt(&mut self, s: &Stmt) {
            match &s.kind {
                StmtKind::Assign { lhs, .. } | StmtKind::TapePop(lhs) => {
                    if let Some(id) = lhs.var().id {
                        self.0.insert(id);
                    }
                }
                StmtKind::Decl { id: Some(id), .. } => {
                    self.0.insert(*id);
                }
                _ => {}
            }
            chef_ir::visit::walk_stmt(self, s);
        }
    }
    let mut w = W(HashSet::new());
    w.visit_block(b);
    w.0
}

/// `true` if `e` is a candidate subexpression: non-leaf, pure,
/// index-free, reads at least one variable and none of them in `killed`.
fn is_candidate(e: &Expr, killed: &HashSet<VarId>) -> bool {
    match &e.kind {
        ExprKind::Binary { .. } | ExprKind::Unary { .. } | ExprKind::Cast { .. } => {}
        ExprKind::Call {
            callee: Callee::Intrinsic(_),
            ..
        } => {}
        _ => return false,
    }
    if !e.ty.is_some_and(|t| t.is_numeric_scalar()) {
        return false;
    }
    struct Scan<'a> {
        killed: &'a HashSet<VarId>,
        ok: bool,
        reads_var: bool,
    }
    impl Visitor for Scan<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Var(v) => {
                    self.reads_var = true;
                    if v.id.is_none_or(|id| self.killed.contains(&id)) {
                        self.ok = false;
                    }
                }
                ExprKind::Index { .. } => self.ok = false,
                ExprKind::Call {
                    callee: Callee::Func(_),
                    ..
                } => self.ok = false,
                _ => walk_expr(self, e),
            }
        }
    }
    let mut s = Scan {
        killed,
        ok: true,
        reads_var: false,
    };
    s.visit_expr(e);
    s.ok && s.reads_var
}

/// Expressions borne directly by a top-level statement that are safe to
/// rewrite (not loop headers or conditions).
fn stmt_exprs_mut(s: &mut Stmt) -> Vec<&mut Expr> {
    match &mut s.kind {
        StmtKind::Decl { init: Some(e), .. } => vec![e],
        StmtKind::Assign { rhs, .. } => vec![rhs],
        StmtKind::Return(Some(e)) => vec![e],
        StmtKind::ExprStmt(e) => vec![e],
        StmtKind::TapePush(e) => vec![e],
        _ => vec![],
    }
}

fn stmt_exprs(s: &Stmt) -> Vec<&Expr> {
    match &s.kind {
        StmtKind::Decl { init: Some(e), .. } => vec![e],
        StmtKind::Assign { rhs, .. } => vec![rhs],
        StmtKind::Return(Some(e)) => vec![e],
        StmtKind::ExprStmt(e) => vec![e],
        StmtKind::TapePush(e) => vec![e],
        _ => vec![],
    }
}

fn cse_one_block(b: &mut Block, f: &mut Function, fresh: &mut usize) -> bool {
    let killed = assigned_vars(b);
    // Count candidate occurrences (key: canonical printed form).
    let mut counts: HashMap<String, CandInfo> = HashMap::new();
    for (si, s) in b.stmts.iter().enumerate() {
        for e in stmt_exprs(s) {
            collect_candidates(e, &killed, si, &mut counts);
        }
    }
    let mut repeated: Vec<(String, CandInfo)> =
        counts.into_iter().filter(|(_, i)| i.count >= 2).collect();
    if repeated.is_empty() {
        return false;
    }
    // Largest expressions first, so inner repeats stay inside the hoisted
    // initializer of the outer one.
    repeated.sort_by(|a, b| b.1.size.cmp(&a.1.size).then(a.0.cmp(&b.0)));

    let mut changed = false;
    for (key, info) in repeated {
        let expr = info.expr.expect("counted expressions retain a sample");
        // Re-locate the first statement still containing the expression
        // (earlier replacements may have moved things).
        let Some(first_idx) = b
            .stmts
            .iter()
            .position(|s| stmt_exprs(s).iter().any(|e| contains_key(e, &key)))
        else {
            continue;
        };
        // Count again post-replacements; skip if no longer repeated.
        let occurrences: usize = b
            .stmts
            .iter()
            .flat_map(stmt_exprs)
            .map(|e| count_key(e, &key))
            .sum();
        if occurrences < 2 {
            continue;
        }
        let ty = expr.type_of();
        let name = format!("_cse{}", *fresh);
        *fresh += 1;
        let id = f.add_var(name.clone(), ty);
        // Replace occurrences everywhere in the block's own statements.
        let replacement = Expr::typed(ExprKind::Var(VarRef::resolved(name.clone(), id)), ty);
        for s in &mut b.stmts {
            for e in stmt_exprs_mut(s) {
                replace_key(e, &key, &replacement);
            }
        }
        let decl = Stmt::synth(StmtKind::Decl {
            name,
            id: Some(id),
            ty,
            size: None,
            init: Some(expr),
        });
        b.stmts.insert(first_idx, decl);
        changed = true;
    }
    changed
}

fn expr_size(e: &Expr) -> usize {
    struct C(usize);
    impl Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            self.0 += 1;
            walk_expr(self, e);
        }
    }
    let mut c = C(0);
    c.visit_expr(e);
    c.0
}

fn collect_candidates(
    e: &Expr,
    killed: &HashSet<VarId>,
    stmt_idx: usize,
    out: &mut HashMap<String, CandInfo>,
) {
    if is_candidate(e, killed) {
        let key = print_expr(e);
        let info = out.entry(key).or_default();
        info.count += 1;
        if info.expr.is_none() {
            info.first_stmt = stmt_idx;
            info.expr = Some(e.clone());
            info.size = expr_size(e);
        }
    }
    // Recurse regardless: inner candidates count on their own.
    match &e.kind {
        ExprKind::Unary { operand, .. } => collect_candidates(operand, killed, stmt_idx, out),
        ExprKind::Binary { lhs, rhs, .. } => {
            collect_candidates(lhs, killed, stmt_idx, out);
            collect_candidates(rhs, killed, stmt_idx, out);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                collect_candidates(a, killed, stmt_idx, out);
            }
        }
        ExprKind::Cast { expr, .. } => collect_candidates(expr, killed, stmt_idx, out),
        ExprKind::Index { index, .. } => collect_candidates(index, killed, stmt_idx, out),
        _ => {}
    }
}

/// Alias used by [`collect_candidates`]'s map values.
#[derive(Default)]
pub(crate) struct CandInfo {
    pub(crate) count: usize,
    pub(crate) first_stmt: usize,
    pub(crate) expr: Option<Expr>,
    pub(crate) size: usize,
}

fn contains_key(e: &Expr, key: &str) -> bool {
    count_key(e, key) > 0
}

fn count_key(e: &Expr, key: &str) -> usize {
    let mut n = if print_expr(e) == key { 1 } else { 0 };
    match &e.kind {
        ExprKind::Unary { operand, .. } => n += count_key(operand, key),
        ExprKind::Binary { lhs, rhs, .. } => {
            n += count_key(lhs, key);
            n += count_key(rhs, key);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                n += count_key(a, key);
            }
        }
        ExprKind::Cast { expr, .. } => n += count_key(expr, key),
        ExprKind::Index { index, .. } => n += count_key(index, key),
        _ => {}
    }
    n
}

fn replace_key(e: &mut Expr, key: &str, replacement: &Expr) {
    struct R<'a> {
        key: &'a str,
        replacement: &'a Expr,
    }
    impl MutVisitor for R<'_> {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if print_expr(e) == self.key {
                *e = self.replacement.clone();
                return;
            }
            walk_expr_mut(self, e);
        }
    }
    R { key, replacement }.visit_expr_mut(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::printer::print_function;
    use chef_ir::typeck::check_program;

    fn csed(src: &str) -> String {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        cse_function(&mut p.functions[0]);
        print_function(&p.functions[0])
    }

    #[test]
    fn hoists_repeated_products() {
        let s = csed(
            "double f(double x, double y) { double a = x * y + 1.0; double b = x * y - 1.0; return a + b; }",
        );
        assert!(s.contains("_cse0 = x * y;"), "{s}");
        assert_eq!(s.matches("x * y").count(), 1, "{s}");
    }

    #[test]
    fn respects_reassignment_kill() {
        // x is reassigned in the block: x * y must NOT be CSEd.
        let s = csed(
            "double f(double x, double y) { double a = x * y; x = 2.0; double b = x * y; return a + b; }",
        );
        assert!(!s.contains("_cse"), "{s}");
    }

    #[test]
    fn hoists_intrinsic_calls() {
        let s = csed(
            "double f(double x) { double a = sqrt(x + 1.0); double b = sqrt(x + 1.0) * 2.0; return a + b; }",
        );
        assert!(s.contains("_cse"), "{s}");
        assert_eq!(s.matches("sqrt").count(), 1, "{s}");
    }

    #[test]
    fn skips_array_reads() {
        let s = csed(
            "double f(double a[], int i) { double p = a[i] * 2.0; double q = a[i] * 2.0; return p + q; }",
        );
        assert!(!s.contains("_cse"), "{s}");
    }

    #[test]
    fn works_inside_loop_bodies() {
        let s = csed(
            "double f(double x, int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += x * x + 1.0; s += x * x - 1.0; } return s; }",
        );
        assert!(s.contains("_cse0 = x * x;"), "{s}");
    }

    #[test]
    fn single_occurrence_untouched() {
        let s = csed("double f(double x, double y) { return x * y; }");
        assert!(!s.contains("_cse"), "{s}");
    }

    #[test]
    fn prefers_larger_expressions() {
        let s = csed(
            "double f(double x, double y) { double a = (x + y) * (x - y); double b = (x + y) * (x - y); return a + b; }",
        );
        // The whole product is hoisted once; inner x+y / x-y live in the
        // initializer only.
        assert!(s.contains("_cse0 = (x + y) * (x - y);"), "{s}");
        assert_eq!(s.matches(r"(x + y) * (x - y)").count(), 1, "{s}");
    }
}
