//! User-function inlining.
//!
//! The VM executes one flat function, and the reverse-mode transformation
//! in `chef-ad` differentiates one flat function — so user calls (e.g. the
//! `CNDF` helper of Black-Scholes) are inlined first, callees before
//! callers, in topological order of the call graph.
//!
//! Supported callee shape: any KernelC function whose `return` (if any) is
//! the unique final top-level statement. By-value scalar arguments bind to
//! fresh locals; by-ref scalars and arrays substitute the caller's lvalue
//! directly.

use chef_ir::ast::*;
use chef_ir::span::Span;
use chef_ir::types::Type;
use chef_ir::visit::{walk_expr_mut, MutVisitor, Visitor};
use std::collections::HashMap;

/// Why inlining failed.
#[derive(Clone, Debug, PartialEq)]
pub enum InlineError {
    /// The call graph has a cycle through this function.
    Recursive {
        /// A function on the cycle.
        name: String,
    },
    /// Callee has a `return` that is not the unique final statement.
    UnsupportedReturn {
        /// The callee.
        name: String,
    },
    /// A user call appears in a loop condition or step, where statement
    /// hoisting would change per-iteration semantics.
    CallInLoopHeader {
        /// Call site.
        span: Span,
    },
    /// Callee not found in the program.
    UnknownFunction {
        /// The missing name.
        name: String,
    },
    /// A by-ref/array argument is not a plain variable reference.
    BadByRefArgument {
        /// Call site.
        span: Span,
    },
}

impl std::fmt::Display for InlineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InlineError::Recursive { name } => write!(f, "recursive call through `{name}`"),
            InlineError::UnsupportedReturn { name } => {
                write!(f, "`{name}`: only a single trailing `return` is inlinable")
            }
            InlineError::CallInLoopHeader { .. } => {
                write!(f, "user calls in loop conditions/steps cannot be inlined")
            }
            InlineError::UnknownFunction { name } => write!(f, "unknown function `{name}`"),
            InlineError::BadByRefArgument { .. } => {
                write!(f, "by-ref/array arguments must be variables")
            }
        }
    }
}

impl std::error::Error for InlineError {}

/// Inlines every user call in every function of `p`, returning a program
/// whose functions are call-free (ready for `chef-exec`/`chef-ad`).
pub fn inline_program(p: &Program) -> Result<Program, InlineError> {
    let order = topo_order(p)?;
    let mut done: HashMap<String, Function> = HashMap::new();
    for name in order {
        let f = p
            .function(&name)
            .expect("topo order names come from the program");
        let mut f = f.clone();
        inline_function(&mut f, &done)?;
        done.insert(name, f);
    }
    // Preserve the original definition order.
    let functions = p
        .functions
        .iter()
        .map(|f| done.remove(&f.name).expect("every function was processed"))
        .collect();
    Ok(Program { functions })
}

/// Inlines calls in `f` against a map of already-inlined callees.
pub fn inline_function(
    f: &mut Function,
    callees: &HashMap<String, Function>,
) -> Result<(), InlineError> {
    let mut body = std::mem::take(&mut f.body);
    let mut ctx = Ctx {
        func: f,
        callees,
        fresh: 0,
    };
    ctx.block(&mut body)?;
    f.body = body;
    Ok(())
}

fn topo_order(p: &Program) -> Result<Vec<String>, InlineError> {
    // DFS with three colours for cycle detection.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    fn callees_of(f: &Function) -> Vec<String> {
        struct C(Vec<String>);
        impl chef_ir::visit::Visitor for C {
            fn visit_expr(&mut self, e: &Expr) {
                if let ExprKind::Call {
                    callee: Callee::Func(n),
                    ..
                } = &e.kind
                {
                    self.0.push(n.clone());
                }
                chef_ir::visit::walk_expr(self, e);
            }
        }
        let mut c = C(Vec::new());
        c.visit_block(&f.body);
        c.0
    }
    fn dfs(
        name: &str,
        p: &Program,
        colors: &mut HashMap<String, Color>,
        out: &mut Vec<String>,
    ) -> Result<(), InlineError> {
        match colors.get(name).copied().unwrap_or(Color::White) {
            Color::Black => return Ok(()),
            Color::Grey => {
                return Err(InlineError::Recursive {
                    name: name.to_string(),
                })
            }
            Color::White => {}
        }
        colors.insert(name.to_string(), Color::Grey);
        let f = p
            .function(name)
            .ok_or_else(|| InlineError::UnknownFunction {
                name: name.to_string(),
            })?;
        for c in callees_of(f) {
            dfs(&c, p, colors, out)?;
        }
        colors.insert(name.to_string(), Color::Black);
        out.push(name.to_string());
        Ok(())
    }
    let mut colors = HashMap::new();
    let mut out = Vec::new();
    for f in &p.functions {
        dfs(&f.name, p, &mut colors, &mut out)?;
    }
    Ok(out)
}

/// How a callee variable maps into the caller.
#[derive(Clone, Debug)]
enum Mapping {
    /// Fresh caller-local (by-value params and callee locals).
    Fresh(VarId, Symbol),
    /// The caller's lvalue (by-ref scalar args), read via `to_expr`.
    Place(LValue, Type),
}

struct Ctx<'a> {
    func: &'a mut Function,
    callees: &'a HashMap<String, Function>,
    fresh: usize,
}

impl Ctx<'_> {
    fn block(&mut self, b: &mut Block) -> Result<(), InlineError> {
        let mut out: Vec<Stmt> = Vec::with_capacity(b.stmts.len());
        for mut s in std::mem::take(&mut b.stmts) {
            let mut prelude = Vec::new();
            match &mut s.kind {
                StmtKind::Decl { init, size, .. } => {
                    if let Some(e) = init {
                        self.extract(e, &mut prelude)?;
                    }
                    if let Some(e) = size {
                        self.extract(e, &mut prelude)?;
                    }
                }
                StmtKind::Assign { lhs, rhs, .. } => {
                    if let LValue::Index { index, .. } = lhs {
                        self.extract(index, &mut prelude)?;
                    }
                    self.extract(rhs, &mut prelude)?;
                }
                StmtKind::Return(Some(e)) => self.extract(e, &mut prelude)?,
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    self.extract(cond, &mut prelude)?;
                    self.block(then_branch)?;
                    if let Some(eb) = else_branch {
                        self.block(eb)?;
                    }
                }
                StmtKind::For {
                    init,
                    cond,
                    step,
                    body,
                } => {
                    if let Some(i) = init {
                        if stmt_has_call(i) {
                            return Err(InlineError::CallInLoopHeader { span: i.span });
                        }
                    }
                    if let Some(c) = cond {
                        if expr_has_call(c) {
                            return Err(InlineError::CallInLoopHeader { span: c.span });
                        }
                    }
                    if let Some(st) = step {
                        if stmt_has_call(st) {
                            return Err(InlineError::CallInLoopHeader { span: st.span });
                        }
                    }
                    self.block(body)?;
                }
                StmtKind::While { cond, body } => {
                    if expr_has_call(cond) {
                        return Err(InlineError::CallInLoopHeader { span: cond.span });
                    }
                    self.block(body)?;
                }
                StmtKind::Block(inner) => self.block(inner)?,
                StmtKind::ExprStmt(e) => {
                    // A bare void call: splice the body, drop the
                    // statement.
                    if let ExprKind::Call {
                        callee: Callee::Func(name),
                        args,
                    } = &e.kind
                    {
                        let callee = self
                            .callees
                            .get(name.as_str())
                            .ok_or_else(|| InlineError::UnknownFunction { name: name.clone() })?
                            .clone();
                        if callee.ret == Type::Void {
                            let mut args = args.clone();
                            for a in &mut args {
                                self.extract(a, &mut prelude)?;
                            }
                            self.splice(&callee, &args, None, &mut prelude)?;
                            out.extend(prelude);
                            continue; // statement consumed
                        }
                    }
                    self.extract(e, &mut prelude)?;
                }
                StmtKind::Return(None) | StmtKind::TapePush(_) | StmtKind::TapePop(_) => {}
            }
            out.extend(prelude);
            out.push(s);
        }
        b.stmts = out;
        Ok(())
    }

    /// Rewrites `e` in place, replacing user calls with fresh result
    /// variables whose computation is appended to `prelude`.
    fn extract(&mut self, e: &mut Expr, prelude: &mut Vec<Stmt>) -> Result<(), InlineError> {
        // Children first so innermost calls inline first.
        match &mut e.kind {
            ExprKind::Unary { operand, .. } => self.extract(operand, prelude)?,
            ExprKind::Binary { lhs, rhs, .. } => {
                self.extract(lhs, prelude)?;
                self.extract(rhs, prelude)?;
            }
            ExprKind::Cast { expr, .. } => self.extract(expr, prelude)?,
            ExprKind::Index { index, .. } => self.extract(index, prelude)?,
            ExprKind::Call { args, .. } => {
                for a in args.iter_mut() {
                    self.extract(a, prelude)?;
                }
            }
            _ => {}
        }
        if let ExprKind::Call {
            callee: Callee::Func(name),
            args,
        } = &e.kind
        {
            let callee = self
                .callees
                .get(name.as_str())
                .ok_or_else(|| InlineError::UnknownFunction { name: name.clone() })?
                .clone();
            if matches!(callee.ret, Type::Void) {
                return Err(InlineError::UnsupportedReturn { name: name.clone() });
            }
            let ret_name = format!("_ret_{}_{}", callee.name, self.fresh);
            self.fresh += 1;
            let ret_id = self.func.add_var(ret_name.clone(), callee.ret);
            prelude.push(Stmt::synth(StmtKind::Decl {
                name: ret_name.clone(),
                id: Some(ret_id),
                ty: callee.ret,
                size: None,
                init: None,
            }));
            self.splice(&callee, args, Some((ret_id, ret_name.clone())), prelude)?;
            *e = Expr::typed(
                ExprKind::Var(VarRef::resolved(ret_name, ret_id)),
                callee.ret,
            );
        }
        Ok(())
    }

    /// Splices `callee`'s (renamed) body into `prelude`, binding arguments
    /// and redirecting the trailing return into `ret`.
    fn splice(
        &mut self,
        callee: &Function,
        args: &[Expr],
        ret: Option<(VarId, Symbol)>,
        prelude: &mut Vec<Stmt>,
    ) -> Result<(), InlineError> {
        let tag = self.fresh;
        self.fresh += 1;
        let mut map: HashMap<VarId, Mapping> = HashMap::new();
        // Bind parameters.
        for (pi, (param, arg)) in callee.params.iter().zip(args).enumerate() {
            let pid = param.id.expect("typeck resolves params");
            let by_ref = param.by_ref || matches!(param.ty, Type::Array(_));
            if by_ref {
                let lv = match &arg.kind {
                    ExprKind::Var(v) => LValue::Var(v.clone()),
                    ExprKind::Index { base, index } => LValue::Index {
                        base: base.clone(),
                        index: (**index).clone(),
                    },
                    _ => return Err(InlineError::BadByRefArgument { span: arg.span }),
                };
                map.insert(pid, Mapping::Place(lv, param.ty));
            } else {
                let name = format!("_arg{}_{}_{}", tag, pi, param.name);
                let id = self.func.add_var(name.clone(), param.ty);
                prelude.push(Stmt::synth(StmtKind::Decl {
                    name: name.clone(),
                    id: Some(id),
                    ty: param.ty,
                    size: None,
                    init: Some(arg.clone()),
                }));
                map.insert(pid, Mapping::Fresh(id, name));
            }
        }
        // Register fresh locals for the callee's own variables.
        for (vid, info) in callee.vars_iter() {
            if info.is_param {
                continue;
            }
            let name = format!("_inl{}_{}", tag, info.name);
            let id = self.func.add_var(name.clone(), info.ty);
            map.insert(vid, Mapping::Fresh(id, name));
        }
        // Validate return placement and clone the body.
        let mut stmts = callee.body.stmts.clone();
        let trailing_return = matches!(stmts.last().map(|s| &s.kind), Some(StmtKind::Return(_)));
        let illegal_returns = stmts
            .iter()
            .take(if trailing_return {
                stmts.len() - 1
            } else {
                stmts.len()
            })
            .any(stmt_contains_return);
        if illegal_returns {
            return Err(InlineError::UnsupportedReturn {
                name: callee.name.clone(),
            });
        }
        if let Some(Stmt {
            kind: StmtKind::Return(val),
            ..
        }) = stmts.last_mut()
        {
            let val = val.take();
            let last = stmts.len() - 1;
            match (val, &ret) {
                (Some(v), Some((rid, rname))) => {
                    stmts[last] = Stmt::synth(StmtKind::Assign {
                        lhs: LValue::Var(VarRef::resolved(rname.clone(), *rid)),
                        op: AssignOp::Assign,
                        rhs: v,
                    });
                }
                _ => {
                    stmts.pop();
                }
            }
        } else if ret.is_some() {
            // Non-void callee must end with a return.
            return Err(InlineError::UnsupportedReturn {
                name: callee.name.clone(),
            });
        }
        // Rename everything.
        let mut ren = Renamer { map: &map };
        for s in &mut stmts {
            ren.visit_stmt_mut(s);
        }
        prelude.extend(stmts);
        Ok(())
    }
}

struct Renamer<'a> {
    map: &'a HashMap<VarId, Mapping>,
}

impl MutVisitor for Renamer<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        match &mut e.kind {
            ExprKind::Var(v) => {
                if let Some(id) = v.id {
                    match self.map.get(&id) {
                        Some(Mapping::Fresh(nid, nname)) => {
                            *v = VarRef::resolved(nname.clone(), *nid);
                        }
                        Some(Mapping::Place(lv, ty)) => {
                            let ty = *ty;
                            let mut read = lv.to_expr(ty);
                            // The index inside the place may itself
                            // reference caller variables — it is already in
                            // caller terms, do not rename it.
                            read.span = e.span;
                            *e = read;
                            return;
                        }
                        None => {}
                    }
                }
            }
            ExprKind::Index { base, index } => {
                self.rename_base(base);
                self.visit_expr_mut(index);
                return;
            }
            _ => {}
        }
        walk_expr_mut(self, e);
    }

    fn visit_lvalue_mut(&mut self, lv: &mut LValue) {
        match lv {
            LValue::Var(v) => {
                if let Some(id) = v.id {
                    match self.map.get(&id) {
                        Some(Mapping::Fresh(nid, nname)) => {
                            *v = VarRef::resolved(nname.clone(), *nid);
                        }
                        Some(Mapping::Place(place, _)) => {
                            *lv = place.clone();
                        }
                        None => {}
                    }
                }
            }
            LValue::Index { base, index } => {
                self.rename_base(base);
                self.visit_expr_mut(index);
            }
        }
    }

    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        if let StmtKind::Decl { name, id, .. } = &mut s.kind {
            if let Some(old) = id {
                if let Some(Mapping::Fresh(nid, nname)) = self.map.get(old) {
                    *name = nname.clone();
                    *id = Some(*nid);
                }
            }
        }
        chef_ir::visit::walk_stmt_mut(self, s);
    }
}

impl Renamer<'_> {
    fn rename_base(&self, base: &mut VarRef) {
        if let Some(id) = base.id {
            match self.map.get(&id) {
                Some(Mapping::Fresh(nid, nname)) => {
                    *base = VarRef::resolved(nname.clone(), *nid);
                }
                Some(Mapping::Place(LValue::Var(v), _)) => {
                    *base = v.clone();
                }
                Some(Mapping::Place(..)) => {
                    // Array params can only bind whole arrays (typeck).
                }
                None => {}
            }
        }
    }
}

fn expr_has_call(e: &Expr) -> bool {
    struct C(bool);
    impl chef_ir::visit::Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call {
                callee: Callee::Func(_),
                ..
            } = &e.kind
            {
                self.0 = true;
            }
            chef_ir::visit::walk_expr(self, e);
        }
    }
    let mut c = C(false);
    c.visit_expr(e);
    c.0
}

fn stmt_has_call(s: &Stmt) -> bool {
    struct C(bool);
    impl chef_ir::visit::Visitor for C {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call {
                callee: Callee::Func(_),
                ..
            } = &e.kind
            {
                self.0 = true;
            }
            chef_ir::visit::walk_expr(self, e);
        }
    }
    let mut c = C(false);
    c.visit_stmt(s);
    c.0
}

fn stmt_contains_return(s: &Stmt) -> bool {
    struct C(bool);
    impl chef_ir::visit::Visitor for C {
        fn visit_stmt(&mut self, s: &Stmt) {
            if matches!(s.kind, StmtKind::Return(_)) {
                self.0 = true;
            }
            chef_ir::visit::walk_stmt(self, s);
        }
    }
    let mut c = C(false);
    c.visit_stmt(s);
    c.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::printer::print_function;
    use chef_ir::typeck::check_program;

    fn inlined(src: &str, which: &str) -> String {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let q = inline_program(&p).unwrap();
        print_function(q.function(which).unwrap())
    }

    #[test]
    fn inlines_simple_call() {
        let s = inlined(
            "double sq(double a) { return a * a; }
             double f(double x) { return sq(x) + sq(2.0 * x); }",
            "f",
        );
        assert!(!s.contains("sq("), "{s}");
        assert!(s.contains("_arg"), "{s}");
    }

    #[test]
    fn inlines_transitively() {
        let s = inlined(
            "double sq(double a) { return a * a; }
             double quad(double a) { return sq(sq(a)); }
             double f(double x) { return quad(x); }",
            "f",
        );
        assert!(!s.contains("quad("), "{s}");
        assert!(!s.contains("sq("), "{s}");
    }

    #[test]
    fn inlines_by_ref_argument() {
        let s = inlined(
            "void bump(double &v) { v = v + 1.0; }
             double f(double x) { bump(x); return x; }",
            "f",
        );
        assert!(s.contains("x = x + 1.0;"), "{s}");
    }

    #[test]
    fn inlines_array_params() {
        let s = inlined(
            "double first(double a[]) { return a[0]; }
             double f(double data[]) { return first(data) * 2.0; }",
            "f",
        );
        assert!(s.contains("data[0]"), "{s}");
    }

    #[test]
    fn detects_recursion() {
        let mut p = parse_program(
            "double f(double x) { return g(x); }
             double g(double x) { return f(x); }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        assert!(matches!(
            inline_program(&p),
            Err(InlineError::Recursive { .. })
        ));
    }

    #[test]
    fn rejects_mid_function_returns() {
        let mut p = parse_program(
            "double g(double x) { if (x < 0.0) { return 0.0; } return x; }
             double f(double x) { return g(x); }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        assert!(matches!(
            inline_program(&p),
            Err(InlineError::UnsupportedReturn { .. })
        ));
    }

    #[test]
    fn rejects_call_in_loop_condition() {
        let mut p = parse_program(
            "bool again(double x) { return x < 10.0; }
             double f(double x) { while (again(x)) { x = x + 1.0; } return x; }",
        )
        .unwrap();
        check_program(&mut p).unwrap();
        assert!(matches!(
            inline_program(&p),
            Err(InlineError::CallInLoopHeader { .. })
        ));
    }

    #[test]
    fn void_call_statement_splices_body() {
        let s = inlined(
            "void init(double a[], int n) { for (int i = 0; i < n; i++) { a[i] = 0.0; } }
             double f(double a[], int n) { init(a, n); return a[0]; }",
            "f",
        );
        assert!(!s.contains("init("), "{s}");
        assert!(s.contains("a[_inl"), "{s}");
    }

    #[test]
    fn locals_are_renamed_unambiguously() {
        let s = inlined(
            "double g(double a) { double t = a + 1.0; return t * t; }
             double f(double x) { double t = 3.0; return g(x) + t; }",
            "f",
        );
        // The callee's `t` must not collide with the caller's `t`.
        assert!(s.contains("_inl"), "{s}");
        assert!(s.contains("double t = 3.0;"), "{s}");
    }
}
