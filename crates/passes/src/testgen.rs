//! Random well-typed KernelC program generation.
//!
//! Used by property tests across the workspace to check that
//! transformations preserve semantics: optimization passes must not change
//! VM results, the inliner must match un-inlined execution, and
//! reverse-mode gradients must match finite differences on these programs.
//!
//! Generated programs are numeric straight-line/structured code over
//! `double`/`float`/`int` scalars: declarations, (compound) assignments,
//! bounded `for` loops, `if`/`else` on comparisons, intrinsic calls from a
//! NaN-safe subset, and a final `double` return. Division denominators are
//! guarded (`d * d + 1.0`) so results stay finite and comparisons stay
//! meaningful.

use chef_ir::ast::Function;
use chef_ir::parser::parse_program;
use chef_ir::typeck::check_program;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tuning knobs for the generator.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Number of statements in the function body.
    pub stmts: usize,
    /// Maximum depth of generated expressions.
    pub max_depth: usize,
    /// Allow `for` loops.
    pub loops: bool,
    /// Allow `if`/`else`.
    pub branches: bool,
    /// Allow `float`-typed locals (exercises rounding).
    pub narrow_floats: bool,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            stmts: 8,
            max_depth: 3,
            loops: true,
            branches: true,
            narrow_floats: true,
        }
    }
}

/// A generated program plus suitable arguments.
#[derive(Clone, Debug)]
pub struct GeneratedProgram {
    /// The KernelC source text.
    pub source: String,
    /// The checked function (named `gen`).
    pub function: Function,
    /// Float arguments (`x`, `y`).
    pub float_args: Vec<f64>,
    /// Int argument (`n`, small and positive).
    pub int_arg: i64,
}

struct Gen {
    rng: StdRng,
    cfg: GenConfig,
    f64_vars: Vec<String>,
    f32_vars: Vec<String>,
    /// Nesting depth of loops around the statement being generated.
    /// Inside loops only *damped* updates are emitted (|update factor| ≤ 1)
    /// so values cannot grow unboundedly across iterations — unbounded
    /// growth makes float-derivative comparisons meaningless (adjoint
    /// absorption: adding and removing a 1e40 swamps a 1e20 payload).
    loop_ctx: usize,
    next_var: usize,
}

impl Gen {
    fn fresh(&mut self, prefix: &str) -> String {
        let n = self.next_var;
        self.next_var += 1;
        format!("{prefix}{n}")
    }

    fn float_expr(&mut self, depth: usize) -> String {
        if depth == 0 || self.rng.gen_bool(0.3) {
            return match self.rng.gen_range(0..3) {
                0 => {
                    let v: f64 = self.rng.gen_range(-4.0..4.0);
                    format!("{v:?}")
                }
                1 if !self.f32_vars.is_empty() && self.rng.gen_bool(0.4) => {
                    self.f32_vars[self.rng.gen_range(0..self.f32_vars.len())].clone()
                }
                _ => self.f64_vars[self.rng.gen_range(0..self.f64_vars.len())].clone(),
            };
        }
        match self.rng.gen_range(0..8) {
            0 => format!(
                "({} + {})",
                self.float_expr(depth - 1),
                self.float_expr(depth - 1)
            ),
            1 => format!(
                "({} - {})",
                self.float_expr(depth - 1),
                self.float_expr(depth - 1)
            ),
            2 => format!(
                "({} * {})",
                self.float_expr(depth - 1),
                self.float_expr(depth - 1)
            ),
            3 => {
                // Guarded division: denominator >= 1.
                let d = self.float_expr(depth - 1);
                format!("({} / ({d} * {d} + 1.0))", self.float_expr(depth - 1))
            }
            // The space matters: `-` followed by a negative literal must
            // not lex as the `--` decrement token.
            4 => format!("(- {})", self.float_expr(depth - 1)),
            5 => {
                // NaN-safe unary intrinsics on any real input.
                let f = ["sin", "cos", "tanh", "atan", "fabs"][self.rng.gen_range(0..5)];
                format!("{f}({})", self.float_expr(depth - 1))
            }
            6 => {
                // Domain-guarded: sqrt/log of a positive quantity.
                let inner = self.float_expr(depth - 1);
                if self.rng.gen_bool(0.5) {
                    format!("sqrt({inner} * {inner} + 0.5)")
                } else {
                    format!("log({inner} * {inner} + 1.5)")
                }
            }
            _ => format!("(float)({})", self.float_expr(depth - 1)),
        }
    }

    fn cond_expr(&mut self) -> String {
        let a = self.float_expr(1);
        let b = self.float_expr(1);
        let op = ["<", "<=", ">", ">="][self.rng.gen_range(0..4)];
        format!("{a} {op} {b}")
    }

    fn stmt(&mut self, depth_budget: usize, out: &mut Vec<String>, indent: usize) {
        let pad = "    ".repeat(indent);
        let choice = self.rng.gen_range(0..10);
        match choice {
            0..=3 => {
                // New declaration.
                let e = self.float_expr(self.cfg.max_depth);
                if self.cfg.narrow_floats && self.rng.gen_bool(0.3) {
                    let v = self.fresh("s");
                    out.push(format!("{pad}float {v} = {e};"));
                    self.f32_vars.push(v);
                } else {
                    let v = self.fresh("v");
                    out.push(format!("{pad}double {v} = {e};"));
                    self.f64_vars.push(v);
                }
            }
            4..=6 => {
                // (Compound) assignment to an existing f64 var. Inside
                // loops only damped updates are allowed (see `loop_ctx`).
                let v = self.f64_vars[self.rng.gen_range(0..self.f64_vars.len())].clone();
                if self.loop_ctx > 0 {
                    let e = self.float_expr(self.cfg.max_depth.min(2));
                    match self.rng.gen_range(0..4) {
                        0 => out.push(format!("{pad}{v} = tanh({e});")),
                        1 => out.push(format!("{pad}{v} += sin({e});")),
                        2 => out.push(format!("{pad}{v} -= sin({e});")),
                        _ => out.push(format!("{pad}{v} *= cos({e});")),
                    }
                } else {
                    let op = ["=", "+=", "-=", "*="][self.rng.gen_range(0..4)];
                    let e = self.float_expr(self.cfg.max_depth);
                    out.push(format!("{pad}{v} {op} {e};"));
                }
            }
            7 if self.cfg.branches && depth_budget > 0 => {
                let c = self.cond_expr();
                out.push(format!("{pad}if ({c}) {{"));
                let (n64, n32) = (self.f64_vars.len(), self.f32_vars.len());
                let n = self.rng.gen_range(1..3);
                for _ in 0..n {
                    self.stmt(depth_budget - 1, out, indent + 1);
                }
                self.f64_vars.truncate(n64);
                self.f32_vars.truncate(n32);
                if self.rng.gen_bool(0.5) {
                    out.push(format!("{pad}}} else {{"));
                    let n = self.rng.gen_range(1..3);
                    for _ in 0..n {
                        self.stmt(depth_budget - 1, out, indent + 1);
                    }
                    self.f64_vars.truncate(n64);
                    self.f32_vars.truncate(n32);
                }
                out.push(format!("{pad}}}"));
            }
            8 if self.cfg.loops && depth_budget > 0 => {
                let i = self.fresh("i");
                let bound = self.rng.gen_range(2..6);
                out.push(format!("{pad}for (int {i} = 0; {i} < {bound}; {i}++) {{"));
                let (n64, n32) = (self.f64_vars.len(), self.f32_vars.len());
                self.loop_ctx += 1;
                let n = self.rng.gen_range(1..3);
                for _ in 0..n {
                    self.stmt(depth_budget - 1, out, indent + 1);
                }
                self.loop_ctx -= 1;
                self.f64_vars.truncate(n64);
                self.f32_vars.truncate(n32);
                out.push(format!("{pad}}}"));
            }
            _ => {
                // Accumulate into an f64 var with a trig-damped value
                // (stays bounded across loop iterations).
                let v = self.f64_vars[self.rng.gen_range(0..self.f64_vars.len())].clone();
                let e = self.float_expr(2);
                out.push(format!("{pad}{v} += sin({e});"));
            }
        }
    }
}

/// Generates one random, type-correct program from `seed`.
pub fn generate(seed: u64, cfg: &GenConfig) -> GeneratedProgram {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg: cfg.clone(),
        f64_vars: vec!["x".into(), "y".into()],
        f32_vars: Vec::new(),
        loop_ctx: 0,
        next_var: 0,
    };
    let mut lines = Vec::new();
    for _ in 0..cfg.stmts {
        g.stmt(2, &mut lines, 1);
    }
    // Return a bounded combination of everything still in scope at the
    // top level (all f64 vars declared at nesting 0 … easiest: fold the
    // two parameters plus accumulators through sin to stay finite).
    let ret_var = g.f64_vars[g.rng.gen_range(0..g.f64_vars.len())].clone();
    let source = format!(
        "double gen(double x, double y, int n) {{\n{}\n    return sin({ret_var}) + x - y;\n}}\n",
        lines.join("\n")
    );
    let mut program = parse_program(&source).unwrap_or_else(|e| {
        panic!("generator produced unparsable code: {e}\n{source}");
    });
    // Declarations inside branches/loops go out of scope; if the chosen
    // return variable was declared in a nested scope the checker rejects
    // it. Fall back to `x` in that case.
    let function = match check_program(&mut program) {
        Ok(()) => program.functions.pop().unwrap(),
        Err(_) => {
            let source2 = format!(
                "double gen(double x, double y, int n) {{\n{}\n    return sin(x) + x - y;\n}}\n",
                lines.join("\n")
            );
            let mut p2 = parse_program(&source2)
                .unwrap_or_else(|e| panic!("generator fallback unparsable: {e}\n{source2}"));
            check_program(&mut p2).unwrap_or_else(|e| {
                panic!("generator fallback untypable: {e}\n{source2}");
            });
            return GeneratedProgram {
                source: source2,
                function: p2.functions.pop().unwrap(),
                float_args: pick_args(seed),
                int_arg: 3 + (seed % 5) as i64,
            };
        }
    };
    GeneratedProgram {
        source,
        function,
        float_args: pick_args(seed),
        int_arg: 3 + (seed % 5) as i64,
    }
}

fn pick_args(seed: u64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
    vec![rng.gen_range(-3.0..3.0), rng.gen_range(-3.0..3.0)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_produces_checked_programs() {
        for seed in 0..50 {
            let g = generate(seed, &GenConfig::default());
            assert_eq!(g.function.name, "gen");
            assert!(g.function.vars.len() >= 3, "seed {seed}");
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = generate(42, &GenConfig::default());
        let b = generate(42, &GenConfig::default());
        assert_eq!(a.source, b.source);
        assert_eq!(a.float_args, b.float_args);
    }

    #[test]
    fn straight_line_config() {
        let cfg = GenConfig {
            loops: false,
            branches: false,
            ..GenConfig::default()
        };
        for seed in 0..20 {
            let g = generate(seed, &cfg);
            assert!(!g.source.contains("for ("), "seed {seed}: {}", g.source);
            assert!(!g.source.contains("if ("), "seed {seed}: {}", g.source);
        }
    }
}
