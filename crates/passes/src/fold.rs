//! Constant folding and (IEEE-safe) algebraic simplification.
//!
//! The paper's speed argument is that inlined error-estimation code
//! "becomes a candidate for further compiler optimizations". This pass is
//! the first of those: it evaluates literal subtrees at compile time and
//! applies only *value-preserving* identities. Unsafe rewrites of the
//! `-ffast-math` family (reassociation, `x*0 → 0`, `x-x → 0`) are
//! deliberately excluded — §V-B of the paper warns that exactly those
//! optimizations change the FP error behaviour being analyzed.

use chef_ir::ast::*;
use chef_ir::types::{FloatTy, Type};
use chef_ir::visit::{walk_expr_mut, MutVisitor};

/// Runs constant folding + safe algebraic simplification over a function.
/// Returns `true` if anything changed.
pub fn fold_function(f: &mut Function) -> bool {
    let mut v = Folder { changed: false };
    v.visit_block_mut(&mut f.body);
    v.changed
}

struct Folder {
    changed: bool,
}

impl MutVisitor for Folder {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        // Children first (bottom-up folding).
        walk_expr_mut(self, e);
        if let Some(new) = fold_expr(e) {
            *e = new;
            self.changed = true;
        }
    }

    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        chef_ir::visit::walk_stmt_mut(self, s);
        // `if (true) …` / `if (false) …` → keep only the taken branch.
        if let StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } = &mut s.kind
        {
            if let ExprKind::BoolLit(b) = cond.kind {
                let taken = if b {
                    std::mem::take(then_branch)
                } else {
                    else_branch.take().unwrap_or_default()
                };
                s.kind = StmtKind::Block(taken);
                self.changed = true;
            }
        }
        // `while (false) …` → nothing.
        if let StmtKind::While { cond, .. } = &s.kind {
            if matches!(cond.kind, ExprKind::BoolLit(false)) {
                s.kind = StmtKind::Block(Block::empty());
                self.changed = true;
            }
        }
    }
}

/// Attempts to rewrite one (already children-folded) expression node.
fn fold_expr(e: &Expr) -> Option<Expr> {
    let ty = e.ty;
    let span = e.span;
    let mk = |kind: ExprKind| Expr { kind, span, ty };
    match &e.kind {
        ExprKind::Unary { op, operand } => match (op, &operand.kind) {
            (UnOp::Neg, ExprKind::FloatLit(v)) => Some(mk(ExprKind::FloatLit(-v))),
            (UnOp::Neg, ExprKind::IntLit(v)) => Some(mk(ExprKind::IntLit(v.wrapping_neg()))),
            (UnOp::Not, ExprKind::BoolLit(b)) => Some(mk(ExprKind::BoolLit(!b))),
            // -(-x) → x ; !(!b) → b (exact for IEEE negation).
            (
                UnOp::Neg,
                ExprKind::Unary {
                    op: UnOp::Neg,
                    operand: inner,
                },
            )
            | (
                UnOp::Not,
                ExprKind::Unary {
                    op: UnOp::Not,
                    operand: inner,
                },
            ) => Some((**inner).clone()),
            _ => None,
        },
        ExprKind::Binary { op, lhs, rhs } => fold_binary(*op, lhs, rhs, &mk),
        ExprKind::Cast { ty: target, expr } => {
            // Fold casts of literals where we can round exactly without the
            // soft-float tables: f32/f64 and int targets.
            match (&expr.kind, target) {
                (ExprKind::FloatLit(v), Type::Float(FloatTy::F64)) => {
                    Some(mk(ExprKind::FloatLit(*v)))
                }
                (ExprKind::FloatLit(v), Type::Float(FloatTy::F32)) => {
                    Some(mk(ExprKind::FloatLit(*v as f32 as f64)))
                }
                (ExprKind::FloatLit(v), Type::Int) if v.is_finite() => {
                    Some(mk(ExprKind::IntLit(*v as i64)))
                }
                (ExprKind::IntLit(v), Type::Int) => Some(mk(ExprKind::IntLit(*v))),
                (ExprKind::IntLit(v), Type::Float(FloatTy::F64)) => {
                    Some(mk(ExprKind::FloatLit(*v as f64)))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

fn fold_binary(op: BinOp, lhs: &Expr, rhs: &Expr, mk: &dyn Fn(ExprKind) -> Expr) -> Option<Expr> {
    use ExprKind::*;
    // The precision the result must be rounded to: for a `float`-typed
    // node (e.g. both operands came from `(float)` casts) the VM would
    // compute and then round to f32, so the fold must do the same.
    // f16/bf16 results are left unfolded (rounding needs the soft-float
    // tables in `chef-exec`, which this crate does not depend on).
    let result_prec = match lhs.ty.zip(rhs.ty) {
        Some((Type::Float(a), Type::Float(b))) => Some(a.max(b)),
        Some((Type::Float(a), Type::Int)) | Some((Type::Int, Type::Float(a))) => Some(a),
        _ => None,
    };
    let foldable_prec = !matches!(result_prec, Some(FloatTy::F16) | Some(FloatTy::BF16));
    // Literal ⊕ literal.
    match (&lhs.kind, &rhs.kind) {
        (FloatLit(a), FloatLit(b)) if foldable_prec => {
            return fold_float_binop(op, *a, *b, result_prec).map(mk);
        }
        (IntLit(a), IntLit(b)) => {
            return fold_int_binop(op, *a, *b).map(mk);
        }
        // Mixed int/float arithmetic promotes the int (C semantics).
        (IntLit(a), FloatLit(b)) if foldable_prec => {
            return fold_float_binop(op, *a as f64, *b, result_prec).map(mk);
        }
        (FloatLit(a), IntLit(b)) if foldable_prec => {
            return fold_float_binop(op, *a, *b as f64, result_prec).map(mk);
        }
        (BoolLit(a), BoolLit(b)) => {
            let v = match op {
                BinOp::And => *a && *b,
                BinOp::Or => *a || *b,
                BinOp::Eq => a == b,
                BinOp::Ne => a != b,
                _ => return None,
            };
            return Some(mk(BoolLit(v)));
        }
        _ => {}
    }
    // IEEE-safe identities. `x + 0.0`, `x - 0.0`, `x * 1.0`, `x / 1.0`
    // are exact for every x including NaN and infinities (note: `0.0 + x`
    // is also exact; `x + (-0.0)` is, too, but plain `+0.0` on the left of
    // `-` is not: `0.0 - x` ≠ `-x` for x = 0.0).
    let is_f0 = |e: &Expr| matches!(e.kind, FloatLit(v) if v == 0.0 && v.is_sign_positive());
    let is_f1 = |e: &Expr| matches!(e.kind, FloatLit(v) if v == 1.0);
    let is_i0 = |e: &Expr| matches!(e.kind, IntLit(0));
    let is_i1 = |e: &Expr| matches!(e.kind, IntLit(1));
    match op {
        BinOp::Add => {
            // x + 0.0 → x only when x is a float expression: if x were an
            // int, the promotion to float must stay.
            if is_f0(rhs) && lhs.ty.map(Type::is_float) == Some(true) {
                return Some(lhs.clone());
            }
            if is_f0(lhs) && rhs.ty.map(Type::is_float) == Some(true) {
                return Some(rhs.clone());
            }
            if is_i0(rhs) && lhs.ty == Some(Type::Int) {
                return Some(lhs.clone());
            }
            if is_i0(lhs) && rhs.ty == Some(Type::Int) {
                return Some(rhs.clone());
            }
        }
        BinOp::Sub => {
            if is_f0(rhs) && lhs.ty.map(Type::is_float) == Some(true) {
                return Some(lhs.clone());
            }
            if is_i0(rhs) && lhs.ty == Some(Type::Int) {
                return Some(lhs.clone());
            }
        }
        BinOp::Mul => {
            if is_f1(rhs) && lhs.ty.map(Type::is_float) == Some(true) {
                return Some(lhs.clone());
            }
            if is_f1(lhs) && rhs.ty.map(Type::is_float) == Some(true) {
                return Some(rhs.clone());
            }
            if is_i1(rhs) && lhs.ty == Some(Type::Int) {
                return Some(lhs.clone());
            }
            if is_i1(lhs) && rhs.ty == Some(Type::Int) {
                return Some(rhs.clone());
            }
        }
        BinOp::Div => {
            if is_f1(rhs) && lhs.ty.map(Type::is_float) == Some(true) {
                return Some(lhs.clone());
            }
            if is_i1(rhs) && lhs.ty == Some(Type::Int) {
                return Some(lhs.clone());
            }
        }
        // b && true → b ; b && false → false (no side effects in KernelC
        // expressions, so dropping the left operand is safe only when it
        // is the one being erased — here we only erase literals).
        BinOp::And => {
            if matches!(rhs.kind, BoolLit(true)) {
                return Some(lhs.clone());
            }
            if matches!(lhs.kind, BoolLit(true)) {
                return Some(rhs.clone());
            }
            if matches!(lhs.kind, BoolLit(false)) {
                return Some(mk(BoolLit(false)));
            }
        }
        BinOp::Or => {
            if matches!(rhs.kind, BoolLit(false)) {
                return Some(lhs.clone());
            }
            if matches!(lhs.kind, BoolLit(false)) {
                return Some(rhs.clone());
            }
            if matches!(lhs.kind, BoolLit(true)) {
                return Some(mk(BoolLit(true)));
            }
        }
        _ => {}
    }
    None
}

fn fold_float_binop(op: BinOp, a: f64, b: f64, prec: Option<FloatTy>) -> Option<ExprKind> {
    // Round arithmetic to the node's effective precision, exactly like the
    // VM would (F16/BF16 were filtered out by the caller).
    let r = |v: f64| match prec {
        Some(FloatTy::F32) => v as f32 as f64,
        _ => v,
    };
    Some(match op {
        BinOp::Add => ExprKind::FloatLit(r(a + b)),
        BinOp::Sub => ExprKind::FloatLit(r(a - b)),
        BinOp::Mul => ExprKind::FloatLit(r(a * b)),
        BinOp::Div => ExprKind::FloatLit(r(a / b)),
        BinOp::Eq => ExprKind::BoolLit(a == b),
        BinOp::Ne => ExprKind::BoolLit(a != b),
        BinOp::Lt => ExprKind::BoolLit(a < b),
        BinOp::Le => ExprKind::BoolLit(a <= b),
        BinOp::Gt => ExprKind::BoolLit(a > b),
        BinOp::Ge => ExprKind::BoolLit(a >= b),
        BinOp::Rem | BinOp::And | BinOp::Or => return None,
    })
}

fn fold_int_binop(op: BinOp, a: i64, b: i64) -> Option<ExprKind> {
    Some(match op {
        BinOp::Add => ExprKind::IntLit(a.wrapping_add(b)),
        BinOp::Sub => ExprKind::IntLit(a.wrapping_sub(b)),
        BinOp::Mul => ExprKind::IntLit(a.wrapping_mul(b)),
        // Division/remainder by zero traps at runtime; keep it visible.
        BinOp::Div if b != 0 => ExprKind::IntLit(a.wrapping_div(b)),
        BinOp::Rem if b != 0 => ExprKind::IntLit(a.wrapping_rem(b)),
        BinOp::Eq => ExprKind::BoolLit(a == b),
        BinOp::Ne => ExprKind::BoolLit(a != b),
        BinOp::Lt => ExprKind::BoolLit(a < b),
        BinOp::Le => ExprKind::BoolLit(a <= b),
        BinOp::Gt => ExprKind::BoolLit(a > b),
        BinOp::Ge => ExprKind::BoolLit(a >= b),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::printer::print_function;
    use chef_ir::typeck::check_program;

    fn folded(src: &str) -> String {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        fold_function(&mut p.functions[0]);
        print_function(&p.functions[0])
    }

    #[test]
    fn folds_literal_arithmetic() {
        let s = folded("double f() { return 2.0 * 3.0 + 4.0; }");
        assert!(s.contains("return 10.0;"), "{s}");
    }

    #[test]
    fn folds_nested_and_mixed() {
        let s = folded("double f() { return (1 + 2) * 2.5; }");
        assert!(s.contains("return 7.5;"), "{s}");
    }

    #[test]
    fn identity_mul_one() {
        let s = folded("double f(double x) { return x * 1.0 + 0.0; }");
        assert!(s.contains("return x;"), "{s}");
    }

    #[test]
    fn keeps_int_promotion_with_float_zero() {
        // n + 0.0 must stay a float expression, not collapse to int n.
        let s = folded("double f(int n) { return n + 0.0; }");
        assert!(s.contains("n + 0.0"), "{s}");
    }

    #[test]
    fn does_not_fold_unsafe_identities() {
        // x * 0.0 could hide NaN/Inf; x - x could hide NaN.
        let s = folded("double f(double x) { return x * 0.0 + (x - x); }");
        assert!(s.contains("x * 0.0"), "{s}");
        assert!(s.contains("x - x"), "{s}");
    }

    #[test]
    fn negative_zero_is_not_erased() {
        // x + (-0.0) is exact, but our conservative check only erases +0.0;
        // what matters is we never rewrite 0.0 - x.
        let s = folded("double f(double x) { return 0.0 - x; }");
        assert!(s.contains("0.0 - x"), "{s}");
    }

    #[test]
    fn folds_branches_on_literal_conditions() {
        let s = folded("double f(double x) { if (true) { x = 1.0; } else { x = 2.0; } return x; }");
        assert!(s.contains("x = 1.0;"), "{s}");
        assert!(!s.contains("x = 2.0;"), "{s}");
    }

    #[test]
    fn folds_double_negation() {
        let s = folded("double f(double x) { return -(-x); }");
        assert!(s.contains("return x;"), "{s}");
    }

    #[test]
    fn folds_float_casts() {
        let s = folded("double f() { return (float)0.1; }");
        assert!(s.contains(&format!("return {:?};", 0.1f32 as f64)), "{s}");
    }

    #[test]
    fn does_not_fold_div_by_zero_int() {
        let s = folded("int f() { return 1 / 0; }");
        assert!(s.contains("1 / 0"), "{s}");
    }

    #[test]
    fn folds_comparisons_and_logic() {
        let s = folded("bool f() { return 1.0 < 2.0 && !(3 > 4); }");
        assert!(s.contains("return true;"), "{s}");
    }
}
