//! # chef-passes — optimization passes over the KernelC AST
//!
//! CHEF-FP's speed advantage comes from generating error-estimation code
//! *into* the derivative source, where the regular compiler optimization
//! pipeline can chew on it (paper §I, §III). This crate is that pipeline
//! for KernelC:
//!
//! * [`fold`] — constant folding and IEEE-safe algebraic identities
//!   (deliberately excluding the `-ffast-math`-style rewrites §V-B warns
//!   about);
//! * [`cse`] — local common-subexpression elimination;
//! * [`dce`] — dead-code elimination that never removes observable or
//!   potentially-trapping work;
//! * [`inline`] — user-function inlining (callees before callers), needed
//!   before both execution and differentiation;
//! * [`pipeline`] — the `-O0/-O1/-O2` pass manager;
//! * [`testgen`] — random well-typed program generation for the
//!   semantics-preservation property tests.

pub mod cse;
pub mod dce;
pub mod fold;
pub mod inline;
pub mod pipeline;
pub mod testgen;

pub use cse::cse_function;
pub use dce::dce_function;
pub use fold::fold_function;
pub use inline::{inline_function, inline_program, InlineError};
pub use pipeline::{optimize_function, OptLevel, OptStats};
