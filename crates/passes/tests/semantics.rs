//! Property tests: optimization and inlining preserve VM semantics.
//!
//! Random well-typed KernelC programs are executed before and after each
//! transformation; results must match bit-for-bit (the passes are
//! IEEE-safe by design — see `fold.rs` on why `-ffast-math` identities are
//! excluded).

use chef_exec::prelude::*;
use chef_ir::parser::parse_program;
use chef_ir::typeck::check_program;
use chef_passes::pipeline::{optimize_function, OptLevel};
use chef_passes::testgen::{generate, GenConfig};

fn eval(func: &chef_ir::ast::Function, args: &[ArgValue]) -> Result<f64, Trap> {
    let compiled = compile_default(func).expect("compiles");
    let opts = ExecOptions {
        max_instrs: Some(5_000_000),
        ..Default::default()
    };
    run_with(&compiled, args.to_vec(), &opts).map(|o| o.ret_f())
}

fn same_result(a: Result<f64, Trap>, b: Result<f64, Trap>) -> bool {
    match (a, b) {
        (Ok(x), Ok(y)) => x == y || (x.is_nan() && y.is_nan()),
        (Err(_), Err(_)) => true,
        _ => false,
    }
}

#[test]
fn o1_preserves_semantics_on_random_programs() {
    let cfg = GenConfig::default();
    for seed in 0..150 {
        let g = generate(seed, &cfg);
        let args = vec![
            ArgValue::F(g.float_args[0]),
            ArgValue::F(g.float_args[1]),
            ArgValue::I(g.int_arg),
        ];
        let before = eval(&g.function, &args);
        let mut opt = g.function.clone();
        optimize_function(&mut opt, OptLevel::O1);
        let after = eval(&opt, &args);
        assert!(
            same_result(before.clone(), after.clone()),
            "seed {seed}: {before:?} vs {after:?}\n{}",
            g.source
        );
    }
}

#[test]
fn o2_preserves_semantics_on_random_programs() {
    let cfg = GenConfig::default();
    for seed in 0..150 {
        let g = generate(seed, &cfg);
        let args = vec![
            ArgValue::F(g.float_args[0]),
            ArgValue::F(g.float_args[1]),
            ArgValue::I(g.int_arg),
        ];
        let before = eval(&g.function, &args);
        let mut opt = g.function.clone();
        optimize_function(&mut opt, OptLevel::O2);
        let after = eval(&opt, &args);
        assert!(
            same_result(before.clone(), after.clone()),
            "seed {seed}: {before:?} vs {after:?}\n{}",
            g.source
        );
    }
}

#[test]
fn o2_preserves_semantics_across_multiple_inputs() {
    // A smaller seed set probed at several argument points, catching
    // input-dependent miscompiles (branch-direction changes).
    let cfg = GenConfig {
        stmts: 10,
        ..GenConfig::default()
    };
    let probes: &[(f64, f64, i64)] =
        &[(0.0, 0.0, 3), (1.5, -2.5, 4), (-0.1, 3.9, 5), (2.0, 2.0, 2)];
    for seed in 0..40 {
        let g = generate(seed + 1000, &cfg);
        let mut opt = g.function.clone();
        optimize_function(&mut opt, OptLevel::O2);
        for &(x, y, n) in probes {
            let args = vec![ArgValue::F(x), ArgValue::F(y), ArgValue::I(n)];
            let before = eval(&g.function, &args);
            let after = eval(&opt, &args);
            assert!(
                same_result(before.clone(), after.clone()),
                "seed {}, args ({x},{y},{n}): {before:?} vs {after:?}\n{}",
                seed + 1000,
                g.source
            );
        }
    }
}

#[test]
fn inlining_preserves_semantics() {
    // Hand-written multi-function programs with by-value, by-ref and array
    // parameters.
    let cases = [
        (
            "double sq(double a) { return a * a; }
             double main_fn(double x, double y) { return sq(x + y) - sq(x - y); }",
            vec![ArgValue::F(1.7), ArgValue::F(-0.3)],
        ),
        (
            "double horner(double c0, double c1, double c2, double t) {
                 double acc = c2;
                 acc = acc * t + c1;
                 acc = acc * t + c0;
                 return acc;
             }
             double main_fn(double x, double y) {
                 return horner(1.0, y, 3.0, x) * horner(y, 2.0, x, 0.5);
             }",
            vec![ArgValue::F(0.9), ArgValue::F(2.1)],
        ),
        (
            "void accumulate(double v, double &acc) { acc = acc + v * v; }
             double main_fn(double x, double y) {
                 double acc = 0.0;
                 accumulate(x, acc);
                 accumulate(y, acc);
                 return acc;
             }",
            vec![ArgValue::F(3.0), ArgValue::F(4.0)],
        ),
        (
            "double cndf_like(double t) {
                 double k = 1.0 / (1.0 + 0.2316419 * fabs(t));
                 double w = 1.0 - 0.39894228 * exp(-0.5 * t * t) * k;
                 return w;
             }
             double main_fn(double x, double y) {
                 return cndf_like(x) + cndf_like(-y);
             }",
            vec![ArgValue::F(0.25), ArgValue::F(1.75)],
        ),
    ];
    for (i, (src, args)) in cases.iter().enumerate() {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        // Reference: execute main_fn by simulating the call tree manually
        // is impossible on the VM (single function), so the reference here
        // is the *inlined* program run at O0 versus O2 — plus, for the
        // first case, a closed-form check.
        let inlined = chef_passes::inline_program(&p).unwrap();
        let f = inlined.function("main_fn").unwrap();
        let base = eval(f, args).unwrap();
        let mut opt = f.clone();
        optimize_function(&mut opt, OptLevel::O2);
        let after = eval(&opt, args).unwrap();
        assert_eq!(base, after, "case {i}");
        if i == 0 {
            // (x+y)^2 - (x-y)^2 = 4xy exactly in this arithmetic order?
            // Not exactly in FP, but close:
            let (x, y) = (1.7, -0.3);
            assert!((base - 4.0 * x * y).abs() < 1e-12, "{base}");
        }
        if i == 2 {
            assert_eq!(base, 25.0);
        }
    }
}

#[test]
fn inlined_by_value_args_do_not_alias() {
    // g mutates its by-value parameter; the caller's variable must not
    // change.
    let src = "double g(double a) { a = a + 100.0; return a; }
               double main_fn(double x) { double r = g(x); return r + x; }";
    let mut p = parse_program(src).unwrap();
    check_program(&mut p).unwrap();
    let inlined = chef_passes::inline_program(&p).unwrap();
    let f = inlined.function("main_fn").unwrap();
    let out = eval(f, &[ArgValue::F(1.0)]).unwrap();
    assert_eq!(out, 102.0); // (1+100) + 1
}
