//! Analysis-time micro-benchmarks: CHEF-FP vs the ADAPT baseline on fixed
//! workloads (the statistically-robust companion to the Fig. 4–8 sweeps),
//! plus the TBR ablation called out in DESIGN.md.

use adapt_baseline::{analyze, AdaptOptions};
use chef_core::prelude::*;
use chef_exec::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_pair(
    c: &mut Criterion,
    group: &str,
    program: &chef_ir::ast::Program,
    func: &str,
    args: &[ArgValue],
) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);

    let est = estimate_error(program, func, &EstimateOptions::default()).unwrap();
    g.bench_function("chef-fp", |b| {
        b.iter(|| est.execute(std::hint::black_box(args)).unwrap().fp_error)
    });

    let inlined = chef_passes::inline_program(program).unwrap();
    let primal = inlined.function(func).unwrap().clone();
    g.bench_function("adapt", |b| {
        b.iter(|| {
            analyze(
                &primal,
                std::hint::black_box(args),
                &AdaptOptions::default(),
            )
            .unwrap()
            .fp_error
        })
    });

    // Ablation: CHEF-FP without the TBR analysis (push everything).
    let no_tbr = EstimateOptions {
        tbr: false,
        ..Default::default()
    };
    let est_full = estimate_error(program, func, &no_tbr).unwrap();
    g.bench_function("chef-fp-no-tbr", |b| {
        b.iter(|| {
            est_full
                .execute(std::hint::black_box(args))
                .unwrap()
                .fp_error
        })
    });

    // Ablation: unoptimized generated code (-O0).
    let o0 = EstimateOptions {
        opt_level: chef_passes::OptLevel::O0,
        ..Default::default()
    };
    let est_o0 = estimate_error(program, func, &o0).unwrap();
    g.bench_function("chef-fp-O0", |b| {
        b.iter(|| est_o0.execute(std::hint::black_box(args)).unwrap().fp_error)
    });

    g.finish();
}

fn benches(c: &mut Criterion) {
    let p = chef_apps::arclen::program();
    bench_pair(
        c,
        "analysis/arclen-5k",
        &p,
        chef_apps::arclen::NAME,
        &chef_apps::arclen::args(5_000),
    );

    let w = chef_apps::kmeans::workload(500, 5, 4, 42);
    let p = chef_apps::kmeans::program();
    bench_pair(
        c,
        "analysis/kmeans-500",
        &p,
        chef_apps::kmeans::NAME,
        &chef_apps::kmeans::args(&w),
    );

    let w = chef_apps::blackscholes::workload(500, 42);
    let p = chef_apps::blackscholes::program();
    bench_pair(
        c,
        "analysis/blackscholes-500",
        &p,
        chef_apps::blackscholes::NAME,
        &chef_apps::blackscholes::args(&w),
    );
}

criterion_group!(analysis, benches);
criterion_main!(analysis);
