//! Native benchmark kernels: full precision vs the paper's mixed /
//! approximate configurations (the speedup columns of Tables I and IV).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let mut g = c.benchmark_group("native/arclen-100k");
    g.sample_size(20);
    g.bench_function("f64", |b| {
        b.iter(|| chef_apps::arclen::native_f64(black_box(100_000)))
    });
    g.bench_function("mixed", |b| {
        b.iter(|| chef_apps::arclen::native_mixed(black_box(100_000)))
    });
    g.finish();

    let (lo, hi) = chef_apps::simpsons::BOUNDS;
    let mut g = c.benchmark_group("native/simpsons-100k");
    g.sample_size(20);
    g.bench_function("f64", |b| {
        b.iter(|| chef_apps::simpsons::native_f64(lo, hi, black_box(100_000)))
    });
    g.bench_function("mixed", |b| {
        b.iter(|| chef_apps::simpsons::native_mixed(lo, hi, black_box(100_000)))
    });
    g.finish();

    let w = chef_apps::kmeans::workload(20_000, 5, 4, 42);
    let mut g = c.benchmark_group("native/kmeans-20k");
    g.sample_size(10);
    g.bench_function("f64", |b| {
        b.iter(|| chef_apps::kmeans::native_f64(black_box(&w)))
    });
    g.bench_function("attr-f32", |b| {
        b.iter(|| chef_apps::kmeans::native_attr_f32(black_box(&w)))
    });
    g.finish();

    let prob = chef_apps::hpccg::problem(20, 30, 10);
    let mut g = c.benchmark_group("native/hpccg-20x30x10");
    g.sample_size(10);
    g.bench_function("f64", |b| {
        b.iter(|| chef_apps::hpccg::native_f64(black_box(&prob), 150, 1e-10))
    });
    g.bench_function("split-30", |b| {
        b.iter(|| chef_apps::hpccg::native_split(black_box(&prob), 150, 1e-10, 30))
    });
    g.bench_function("all-f32", |b| {
        b.iter(|| chef_apps::hpccg::native_f32(black_box(&prob), 150, 1e-10))
    });
    g.finish();

    let w = chef_apps::blackscholes::workload(10_000, 42);
    let mut g = c.benchmark_group("native/blackscholes-10k");
    g.sample_size(10);
    g.bench_function("exact", |b| {
        b.iter(|| chef_apps::blackscholes::native_prices(black_box(&w)))
    });
    g.bench_function("fastapprox", |b| {
        b.iter(|| chef_apps::blackscholes::approx_prices_no_fast_exp(black_box(&w)))
    });
    g.bench_function("fastapprox-fast-exp", |b| {
        b.iter(|| chef_apps::blackscholes::approx_prices_fast_exp(black_box(&w)))
    });
    g.finish();
}

criterion_group!(apps, benches);
criterion_main!(apps);
