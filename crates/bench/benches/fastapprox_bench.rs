//! FastApprox vs standard math micro-benchmarks (the raw speed trade the
//! paper's Table IV buys error with).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    let xs: Vec<f32> = (1..=1024).map(|i| i as f32 * 0.017).collect();
    let xd: Vec<f64> = xs.iter().map(|&x| x as f64).collect();

    let mut g = c.benchmark_group("fastapprox/exp");
    g.sample_size(20);
    g.bench_function("std-exp-f64", |b| {
        b.iter(|| xd.iter().map(|&x| black_box(x).exp()).sum::<f64>())
    });
    g.bench_function("fastexp-f32", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| fastapprox::fastexp(black_box(x)))
                .sum::<f32>()
        })
    });
    g.bench_function("fasterexp-f32", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| fastapprox::fasterexp(black_box(x)))
                .sum::<f32>()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("fastapprox/log");
    g.sample_size(20);
    g.bench_function("std-ln-f64", |b| {
        b.iter(|| xd.iter().map(|&x| black_box(x).ln()).sum::<f64>())
    });
    g.bench_function("fastlog-f32", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| fastapprox::fastlog(black_box(x)))
                .sum::<f32>()
        })
    });
    g.finish();

    let mut g = c.benchmark_group("fastapprox/normcdf");
    g.sample_size(20);
    g.bench_function("exact-erfc64", |b| {
        b.iter(|| {
            xd.iter()
                .map(|&x| fastapprox::erf::normcdf64(black_box(x) - 8.0))
                .sum::<f64>()
        })
    });
    g.bench_function("fastnormcdf-f32", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| fastapprox::fastnormcdf(black_box(x) - 8.0))
                .sum::<f32>()
        })
    });
    g.finish();
}

criterion_group!(fastapprox_bench, benches);
criterion_main!(fastapprox_bench);
