//! Substrate micro-benchmarks: soft-float rounding, VM dispatch, and the
//! cost of the source transformations themselves (parse → check → AD →
//! optimize → compile).

use chef_ad::reverse::reverse_diff;
use chef_exec::precision::round_to;
use chef_exec::prelude::*;
use chef_ir::types::FloatTy;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn benches(c: &mut Criterion) {
    // Precision simulation.
    let xs: Vec<f64> = (1..=1024).map(|i| i as f64 * 0.0173).collect();
    let mut g = c.benchmark_group("precision/round_to");
    g.sample_size(20);
    for ty in [FloatTy::F32, FloatTy::F16, FloatTy::BF16] {
        g.bench_function(ty.keyword(), |b| {
            b.iter(|| xs.iter().map(|&x| round_to(black_box(x), ty)).sum::<f64>())
        });
    }
    g.finish();

    // VM throughput on the arclen primal (fused + reusable machine —
    // the default engine configuration).
    let p = chef_apps::arclen::program();
    let compiled = chef_exec::compile::compile_default(p.function("arclen").unwrap()).unwrap();
    let mut g = c.benchmark_group("vm/arclen-primal");
    g.sample_size(10);
    g.bench_function("n=10000", |b| {
        b.iter(|| run(&compiled, vec![ArgValue::I(10_000)]).unwrap().ret_f())
    });
    g.finish();

    // Fusion ablation: the same kernel with the peephole disabled, plus
    // an explicit reusable machine to isolate dispatch cost.
    let arclen = p.function("arclen").unwrap();
    let unfused = chef_exec::compile::compile(
        arclen,
        &chef_exec::compile::CompileOptions {
            fuse: false,
            ..Default::default()
        },
    )
    .unwrap();
    let fused = chef_exec::compile::compile_default(arclen).unwrap();
    let mut g = c.benchmark_group("vm/fused-vs-unfused");
    g.sample_size(10);
    g.bench_function("unfused", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&unfused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("fused", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.finish();

    // Packed-word dispatch ablation: the same fused kernel with the
    // packer disabled (enum interpreter) vs the default packed loop.
    let enum_only = chef_exec::compile::compile(
        arclen,
        &chef_exec::compile::CompileOptions {
            pack: false,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(enum_only.packed.is_none());
    assert!(fused.packed.is_some());
    let mut g = c.benchmark_group("vm/packed-vs-enum");
    g.sample_size(10);
    g.bench_function("enum", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&enum_only, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("packed", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.finish();

    // Shadow-execution overhead: the fused primal+shadow pass against
    // the plain VM run on the same kernel. The acceptance bar for the
    // oracle subsystem is < 4x for the f64 shadow; the double-double
    // shadow is reported for reference.
    let mut g = c.benchmark_group("shadow/overhead");
    g.sample_size(10);
    g.bench_function("plain", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("shadowed-f64", |b| {
        let mut m = chef_exec::shadow::ShadowMachine::<f64>::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("shadowed-dd", |b| {
        let mut m = chef_exec::shadow::ShadowMachine::<chef_shadow::DD>::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.finish();

    // Telemetry overhead: the fused arclen run with the per-pc profiler
    // off (default) and on. The off path is a separate monomorphization
    // of the dispatch loop (`<const PROFILE: bool>`), so it must stay
    // within noise of the pre-telemetry baseline (the repro --smoke gate
    // enforces <= 1.02x); the profiling path pays one slice increment
    // per instruction and must stay <= 1.5x.
    let mut g = c.benchmark_group("telemetry/overhead");
    g.sample_size(10);
    g.bench_function("profile-off", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("profile-on", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions {
            profile: true,
            ..Default::default()
        };
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.finish();

    // Divergence-detection overhead: the fused f64 shadow with the
    // default divergence checks (every float compare and F2I evaluated a
    // second time on shadow operands) against the same pass with
    // detection off and against the plain VM. Measured on arclen (the
    // < 4x acceptance bar) and on the branch-heavy simpsons kernel,
    // whose inner loop decides a float-derived branch per iteration.
    let ps = chef_apps::simpsons::program();
    let simpsons = chef_exec::compile::compile_default(ps.function("simpsons").unwrap()).unwrap();
    let simpsons_args = || chef_apps::simpsons::args(5_000);
    let mut g = c.benchmark_group("shadow/divergence-overhead");
    g.sample_size(10);
    g.bench_function("arclen-plain", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("arclen-shadow-nodetect", |b| {
        let mut m = chef_exec::shadow::ShadowMachine::<f64>::new();
        let opts = ExecOptions {
            detect_divergence: false,
            ..Default::default()
        };
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("arclen-shadow-detect", |b| {
        let mut m = chef_exec::shadow::ShadowMachine::<f64>::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("simpsons-plain", |b| {
        let mut m = chef_exec::vm::Machine::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&simpsons, simpsons_args(), &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.bench_function("simpsons-shadow-detect", |b| {
        let mut m = chef_exec::shadow::ShadowMachine::<f64>::new();
        let opts = ExecOptions::default();
        b.iter(|| {
            m.run_reused(&simpsons, simpsons_args(), &opts)
                .unwrap()
                .ret_f()
        })
    });
    g.finish();

    // Batch API: serial machine reuse vs parallel fan-out on independent
    // analysis-style runs.
    let mut g = c.benchmark_group("vm/batch");
    g.sample_size(10);
    let sets = || -> Vec<Vec<ArgValue>> { (0..64).map(|_| vec![ArgValue::I(2_000)]).collect() };
    g.bench_function("serial-64", |b| {
        let opts = ExecOptions::default();
        b.iter(|| chef_exec::vm::run_batch(&fused, sets(), &opts))
    });
    g.bench_function("parallel-64", |b| {
        let opts = ExecOptions::default();
        b.iter(|| chef_exec::vm::run_batch_parallel(&fused, sets(), &opts, None))
    });
    g.finish();

    // Service layer: the same 64 independent runs submitted through an
    // `AnalysisServer` session — prices admission control, the
    // work-stealing queue, per-job stats and breaker feedback against
    // the raw parallel batch path the service wraps (`parallel-64`
    // above is the baseline).
    let mut g = c.benchmark_group("service/session-batch");
    g.sample_size(10);
    g.bench_function("session-64", |b| {
        let server = chef_service::AnalysisServer::new(chef_service::ServiceConfig {
            max_queue_depth: 128,
            ..Default::default()
        });
        let session = server
            .open_session(
                chef_service::SessionSpec::named("bench")
                    .with_fault(chef_exec::fault::FaultPlan::new(None, 0, 0, 1)),
            )
            .unwrap();
        let func = std::sync::Arc::new(fused.clone());
        b.iter(|| {
            let tickets: Vec<_> = (0..64)
                .map(|_| {
                    session
                        .submit_run(func.clone(), vec![ArgValue::I(2_000)])
                        .unwrap()
                })
                .collect();
            tickets
                .into_iter()
                .map(|t| t.wait().completed().expect("bench job completes").ret_f())
                .sum::<f64>()
        })
    });
    g.finish();

    // Transformation pipeline cost (compile-time work, amortized over
    // analyses in CHEF-FP; paid per run by tracing tools).
    let src = chef_apps::blackscholes::SOURCE;
    let mut g = c.benchmark_group("transform");
    g.sample_size(20);
    g.bench_function("parse+check", |b| {
        b.iter(|| {
            let mut p = chef_ir::parser::parse_program(black_box(src)).unwrap();
            chef_ir::typeck::check_program(&mut p).unwrap();
            p
        })
    });
    let mut checked = chef_ir::parser::parse_program(src).unwrap();
    chef_ir::typeck::check_program(&mut checked).unwrap();
    let primal = checked.function("blackscholes").unwrap().clone();
    g.bench_function("reverse-ad", |b| {
        b.iter(|| reverse_diff(black_box(&primal)).unwrap())
    });
    let grad = reverse_diff(&primal).unwrap();
    g.bench_function("optimize-O2", |b| {
        b.iter(|| {
            let mut f = grad.clone();
            chef_passes::optimize_function(&mut f, chef_passes::OptLevel::O2);
            f
        })
    });
    let mut opt = grad.clone();
    chef_passes::optimize_function(&mut opt, chef_passes::OptLevel::O2);
    g.bench_function("bytecode-compile", |b| {
        b.iter(|| chef_exec::compile::compile_default(black_box(&opt)).unwrap())
    });
    g.finish();
}

criterion_group!(substrate, benches);
criterion_main!(substrate);
