//! # chef-bench — harness utilities for the paper-reproduction binary and
//! the criterion micro-benchmarks.

use std::time::Instant;

/// Times one invocation of `f` in milliseconds.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

/// Times `f` by the median of `reps` runs (after one warmup), returning
/// `(last result, median ms)`.
pub fn time_median<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, f64) {
    let mut samples = Vec::with_capacity(reps);
    let mut out = None;
    let _ = f(); // warmup
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        out = Some(f());
        samples.push(t0.elapsed().as_secs_f64() * 1e3);
    }
    samples.sort_by(f64::total_cmp);
    (out.expect("reps >= 1"), samples[samples.len() / 2])
}

/// Pretty scientific formatting matching the paper's tables: two mantissa
/// decimals, explicit exponent sign, zero-padded two-digit exponent
/// (`3.24e-06`, `1.50e+05`). Rust's `{:.2e}` prints `3.24e-6`, so the
/// exponent is re-rendered here.
pub fn sci(v: f64) -> String {
    if v == 0.0 {
        return "0.00e+00".to_string();
    }
    let raw = format!("{v:.2e}");
    match raw.split_once('e') {
        Some((mantissa, exp)) => {
            let exp: i32 = exp.parse().expect("{:.2e} produces a valid exponent");
            format!(
                "{mantissa}e{}{:02}",
                if exp < 0 { '-' } else { '+' },
                exp.abs()
            )
        }
        None => raw,
    }
}

/// Formats bytes as a human-readable MB value.
pub fn mb(bytes: usize) -> String {
    format!("{:.2}", bytes as f64 / (1024.0 * 1024.0))
}

/// Relative deviation of an estimate from a measurement, as a percentage
/// in the same zero-padded exponent style as [`sci`] (`|est − meas| /
/// |meas| · 100`, e.g. `1.00e+01%`). A zero measurement against a
/// non-zero estimate prints `inf%` (the deviation is unbounded, not an
/// astronomically scaled number). Used by the estimated-vs-measured
/// columns of `repro --oracle`.
pub fn rel_dev_pct(estimated: f64, measured: f64) -> String {
    if measured == 0.0 {
        return if estimated == 0.0 {
            format!("{}%", sci(0.0))
        } else {
            "inf%".to_string()
        };
    }
    let dev = (estimated - measured).abs() / measured.abs() * 100.0;
    format!("{}%", sci(dev))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_returns_result() {
        let (v, ms) = time_ms(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(ms >= 0.0);
    }

    #[test]
    fn median_timing_runs_all_reps() {
        let mut count = 0;
        let (_, _) = time_median(5, || count += 1);
        assert_eq!(count, 6); // warmup + 5
    }

    #[test]
    fn formatting() {
        // Paper style: zero-padded two-digit exponent with explicit sign.
        assert_eq!(sci(3.24e-6), "3.24e-06");
        assert_eq!(sci(1.5e5), "1.50e+05");
        assert_eq!(sci(-2.5e-3), "-2.50e-03");
        assert_eq!(sci(7.0), "7.00e+00");
        assert_eq!(sci(1.234e-123), "1.23e-123");
        assert_eq!(sci(0.0), "0.00e+00");
        assert_eq!(mb(1024 * 1024), "1.00");
    }

    #[test]
    fn relative_deviation_keeps_the_pinned_exponent_style() {
        // 1.1e-6 estimated vs 1.0e-6 measured: 10% deviation.
        assert_eq!(rel_dev_pct(1.1e-6, 1.0e-6), "1.00e+01%");
        // Estimate an order of magnitude high: 900%.
        assert_eq!(rel_dev_pct(1e-5, 1e-6), "9.00e+02%");
        // Exact agreement (including the both-zero case) is 0%.
        assert_eq!(rel_dev_pct(3.0e-7, 3.0e-7), "0.00e+00%");
        assert_eq!(rel_dev_pct(0.0, 0.0), "0.00e+00%");
        // A zero measurement against a non-zero estimate is unbounded.
        assert_eq!(rel_dev_pct(1e-11, 0.0), "inf%");
        // The exponent stays zero-padded and sign-explicit like `sci`.
        assert_eq!(rel_dev_pct(2.0e-6, 1.0e-6), "1.00e+02%");
    }
}
