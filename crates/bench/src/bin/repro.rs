//! Regenerates every table and figure of the CHEF-FP paper.
//!
//! ```text
//! cargo run -p chef-bench --bin repro --release -- all
//! cargo run -p chef-bench --bin repro --release -- table1 table3 fig4
//! ```
//!
//! Workload scales are one decade below the paper's cluster runs so the
//! whole reproduction finishes in minutes on one machine; the shapes
//! (who wins, growth rates, OOM points, zero-error variables, sensitivity
//! collapse) are what is being reproduced. See EXPERIMENTS.md.

use adapt_baseline::{analyze, AdaptError, AdaptOptions};
use chef_bench::{mb, rel_dev_pct, sci, time_median, time_ms};
use chef_core::prelude::*;
use chef_core::report::{EstimateQualityRow, Record};
use chef_exec::compile::{compile_default, PrecisionMap};
use chef_exec::prelude::*;
use chef_ir::ast::{Intrinsic, Program};
use chef_shadow::{OracleOptions, ShadowMode};
use chef_tuner::{tune, validate, validate_with_oracle, TunerConfig};

/// The simulated per-analysis memory budget for the ADAPT baseline
/// (the paper's runs died at 188 GB on the cluster; scaled with our
/// decade-smaller workloads).
const ADAPT_MEM_LIMIT: usize = 4 << 30; // 4 GiB

/// `expect` for the CLI driver: a failure prints one clean line to
/// stderr and exits non-zero (failing the CI gate), instead of
/// unwinding with a panic backtrace. A missing input file, a corrupt
/// snapshot, or a trapped analysis all land here.
trait OrFail {
    type Ok;
    fn or_fail(self, what: &str) -> Self::Ok;
}

impl<T, E: std::fmt::Display> OrFail for Result<T, E> {
    type Ok = T;
    fn or_fail(self, what: &str) -> T {
        self.unwrap_or_else(|e| {
            eprintln!("repro: {what}: {e}");
            std::process::exit(1);
        })
    }
}

impl<T> OrFail for Option<T> {
    type Ok = T;
    fn or_fail(self, what: &str) -> T {
        self.unwrap_or_else(|| {
            eprintln!("repro: {what}");
            std::process::exit(1);
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Some(k) = args.iter().position(|a| a == "--perf-delta") {
        let (old, new) = match (args.get(k + 1), args.get(k + 2)) {
            (Some(o), Some(n)) => (o.clone(), n.clone()),
            _ => {
                eprintln!("usage: repro --perf-delta <old.json> <new.json>");
                std::process::exit(2);
            }
        };
        perf_delta(&old, &new);
        return;
    }
    if args.iter().any(|a| a == "--smoke" || a == "smoke") {
        smoke();
        return;
    }
    if args
        .iter()
        .any(|a| a == "--serve-smoke" || a == "serve-smoke")
    {
        serve_smoke();
        return;
    }
    if args.iter().any(|a| a == "--profile" || a == "profile") {
        profile_table();
        return;
    }
    if let Some(k) = args.iter().position(|a| a == "--cfg") {
        let kernel = args.get(k + 1).map(String::as_str).unwrap_or("arclen");
        cfg_dump(kernel);
        return;
    }
    let all = args.is_empty() || args.iter().any(|a| a == "all");
    let want = |name: &str| all || args.iter().any(|a| a == name);

    if want("table1") {
        table1();
    }
    if want("table2") {
        table2();
    }
    if want("table3") {
        table3();
    }
    if want("table4") {
        table4();
    }
    if want("oracle") || args.iter().any(|a| a == "--oracle") {
        oracle_table();
    }
    if want("fig4") {
        sweep_fig(
            "Figure 4: Arc Length — analysis time & memory vs iterations",
            &[10_000, 100_000, 1_000_000],
            |n| {
                (
                    chef_apps::arclen::program(),
                    chef_apps::arclen::NAME,
                    chef_apps::arclen::args(n),
                )
            },
            &[],
        );
    }
    if want("fig5") {
        sweep_fig(
            "Figure 5: Simpsons — analysis time & memory vs iterations",
            &[10_000, 100_000, 1_000_000],
            |n| {
                (
                    chef_apps::simpsons::program(),
                    chef_apps::simpsons::NAME,
                    chef_apps::simpsons::args(n),
                )
            },
            &[],
        );
    }
    if want("fig6") {
        sweep_fig(
            "Figure 6: k-Means — analysis time & memory vs data points",
            &[100, 1_000, 10_000, 100_000],
            |n| {
                let w = chef_apps::kmeans::workload(n as usize, 5, 4, 42);
                (
                    chef_apps::kmeans::program(),
                    chef_apps::kmeans::NAME,
                    chef_apps::kmeans::args(&w),
                )
            },
            &[
                ("attributes", "npoints * nfeatures"),
                ("clusters", "nclusters * nfeatures"),
            ],
        );
    }
    if want("fig7") {
        sweep_fig(
            "Figure 7: HPCCG — analysis time & memory vs z-dimension (20x30 base)",
            &[5, 10, 20, 40],
            |z| {
                let p = chef_apps::hpccg::problem(20, 30, z as usize);
                (
                    chef_apps::hpccg::program(),
                    chef_apps::hpccg::NAME,
                    chef_apps::hpccg::args(&p),
                )
            },
            &[("b", "nrow")],
        );
    }
    if want("fig8") {
        sweep_fig(
            "Figure 8: Black-Scholes — analysis time & memory vs options",
            &[1_000, 10_000, 100_000],
            |n| {
                let w = chef_apps::blackscholes::workload(n as usize, 42);
                (
                    chef_apps::blackscholes::program(),
                    chef_apps::blackscholes::NAME,
                    chef_apps::blackscholes::args(&w),
                )
            },
            &[("sptprice", "numOptions")],
        );
    }
    if want("fig9") {
        fig9();
    }
}

fn header(title: &str) {
    println!("\n==== {title} ====");
}

// ---------------------------------------------------------------- Table I

fn table1() {
    header("Table I: mixed-precision versions — threshold, actual vs estimated error, speedup");
    println!(
        "{:<14} {:>10} {:>14} {:>16} {:>9}  demoted",
        "Benchmark", "Threshold", "Actual Error", "Estimated Error", "Speedup"
    );

    // --- Arc Length, threshold 1e-5 ---
    {
        let p = chef_apps::arclen::program();
        let n = 100_000i64;
        let args = chef_apps::arclen::args(n);
        let cfg = TunerConfig::with_threshold(1e-5);
        let res = tune(&p, chef_apps::arclen::NAME, &args, &cfg).or_fail("arclen tune failed");
        let rep =
            validate(&p, chef_apps::arclen::NAME, &args, &res.config).or_fail("validation failed");
        let (_, t64) = time_median(9, || chef_apps::arclen::native_f64(n as usize));
        let (_, tmx) = time_median(9, || chef_apps::arclen::native_mixed(n as usize));
        row1(
            "Arc Length",
            1e-5,
            rep.actual_error,
            res.estimated_error,
            t64 / tmx,
            &res.demoted,
        );
    }
    // --- Simpsons, threshold 1e-6 ---
    {
        let p = chef_apps::simpsons::program();
        let n = 100_000i64;
        let args = chef_apps::simpsons::args(n);
        let cfg = TunerConfig::with_threshold(1e-6);
        let res = tune(&p, chef_apps::simpsons::NAME, &args, &cfg).or_fail("simpsons tune failed");
        let rep = validate(&p, chef_apps::simpsons::NAME, &args, &res.config)
            .or_fail("validation failed");
        let (a, b) = chef_apps::simpsons::BOUNDS;
        let (_, t64) = time_median(9, || chef_apps::simpsons::native_f64(a, b, n as usize));
        let (_, tmx) = time_median(9, || chef_apps::simpsons::native_mixed(a, b, n as usize));
        row1(
            "Simpsons",
            1e-6,
            rep.actual_error,
            res.estimated_error,
            t64 / tmx,
            &res.demoted,
        );
    }
    // --- k-Means, threshold 1e-6 ---
    {
        let p = chef_apps::kmeans::program();
        let w = chef_apps::kmeans::workload(10_000, 5, 4, 42);
        let args = chef_apps::kmeans::args(&w);
        let cfg = TunerConfig::with_threshold(1e-6)
            .with_array_len("attributes", "npoints * nfeatures")
            .with_array_len("clusters", "nclusters * nfeatures");
        let res = tune(&p, chef_apps::kmeans::NAME, &args, &cfg).or_fail("kmeans tune failed");
        let rep =
            validate(&p, chef_apps::kmeans::NAME, &args, &res.config).or_fail("validation failed");
        // The admitted configuration (attributes only) brings no speedup —
        // measure it anyway (paper reports '-').
        let speedup = if res.demoted.iter().any(|d| d == "attributes") {
            // Time against a larger batch so the kernels are measurable,
            // with the f32 storage prepared outside the timed region.
            let wt = chef_apps::kmeans::workload(100_000, 5, 4, 42);
            let attrs32 = chef_apps::kmeans::attributes_f32(&wt);
            let (_, t64) = time_median(9, || chef_apps::kmeans::native_f64(&wt));
            let (_, tmx) =
                time_median(9, || chef_apps::kmeans::native_attr_f32_from(&attrs32, &wt));
            t64 / tmx
        } else {
            1.0 // empty configuration: the program is unchanged
        };
        row1(
            "k-Means",
            1e-6,
            rep.actual_error,
            res.estimated_error,
            speedup,
            &res.demoted,
        );
    }
    // --- HPCCG: the loop-split configuration from the Fig. 9 profile ---
    {
        let threshold = 1e-10;
        let prob = chef_apps::hpccg::problem(20, 30, 10);
        let profile = hpccg_profile(&prob).or_fail("hpccg sensitivity profiling failed");
        // Smallest split whose estimated f32-tail error (eq. 1 over the
        // post-split sensitivities) meets the threshold — the same
        // estimate-driven selection the other rows use.
        let eps32 = chef_ir::types::FloatTy::F32.epsilon();
        let tail_estimate = |split: usize| -> f64 {
            eps32
                * profile
                    .matrix
                    .iter()
                    .flat_map(|row| row.iter().skip(split))
                    .sum::<f64>()
        };
        let split = (1..=profile.ticks)
            .find(|&s| tail_estimate(s) <= threshold)
            .unwrap_or(profile.ticks);
        let estimated = tail_estimate(split);
        let (base, t64) = time_median(3, || chef_apps::hpccg::native_f64(&prob, 150, 1e-10));
        let (tuned, tsp) = time_median(3, || {
            chef_apps::hpccg::native_split(&prob, 150, 1e-10, split)
        });
        // Quantity of interest for the threshold: the final squared
        // residual (the solver's convergence quality). The solution-sum
        // component is the Fig. 9 visualization QoI; demoting the solution
        // vector itself is *not* admissible at 1e-10 (its representation
        // error alone is ~1e-4) and the paper's threshold only makes sense
        // against the residual — see EXPERIMENTS.md.
        let actual = (base.2 - tuned.2).abs();
        row1(
            "HPCCG",
            threshold,
            actual,
            estimated,
            t64 / tsp,
            &[format!("loop split @ {split}")],
        );
    }
}

/// The Fig. 9 sensitivity profile of the residual-carrying vectors.
fn hpccg_profile(prob: &chef_apps::hpccg::Problem) -> Result<SensitivityProfile, ChefError> {
    let p = chef_apps::hpccg::program();
    let cfg = SensitivityConfig {
        tracked: vec!["r".into(), "p".into(), "Ap".into()],
        tick_on: "rtrans".into(),
        max_ticks: 200,
    };
    profile_sensitivity(
        &p,
        chef_apps::hpccg::NAME,
        &cfg,
        &chef_apps::hpccg::args(prob),
        &ExecOptions::default(),
    )
}

fn row1(name: &str, thr: f64, actual: f64, estimated: f64, speedup: f64, demoted: &[String]) {
    println!(
        "{:<14} {:>10} {:>14} {:>16} {:>9.2}  {}",
        name,
        sci(thr),
        sci(actual),
        sci(estimated),
        speedup,
        if demoted.is_empty() {
            "(none)".to_string()
        } else {
            demoted.join(", ")
        }
    );
}

// --------------------------------------------------------------- Table II

struct AnalysisPoint {
    chef_ms: f64,
    chef_bytes: usize,
    adapt_ms: Option<f64>,
    adapt_bytes: Option<usize>,
}

/// CHEF-FP side of one analysis point: build once (compile time
/// excluded, like the paper's compile-once tooling), run the analysis.
fn chef_point(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    lens: &[(&str, &str)],
) -> (f64, usize) {
    let mut opts = EstimateOptions::default();
    for (a, l) in lens {
        opts.array_lens.insert((*a).to_string(), (*l).to_string());
    }
    let est = estimate_error(program, func, &opts).or_fail("estimator build failed");
    let (chef_out, chef_ms) = time_ms(|| est.execute(args).or_fail("analysis run trapped"));
    (chef_ms, chef_out.stats.peak_memory_bytes())
}

/// ADAPT-baseline side of one analysis point: taping + reverse +
/// post-hoc errors, every run. `None` = out of memory at this scale.
fn adapt_point(program: &Program, func: &str, args: &[ArgValue]) -> Option<(f64, usize)> {
    let inlined = chef_passes::inline_program(program).or_fail("inlining failed");
    let primal = inlined
        .function(func)
        .or_fail("function not found after inlining");
    let adapt_opts = AdaptOptions {
        memory_limit: Some(ADAPT_MEM_LIMIT),
        ..Default::default()
    };
    let (adapt_res, adapt_ms) = time_ms(|| analyze(primal, args, &adapt_opts));
    match adapt_res {
        Ok(out) => Some((adapt_ms, out.tape_peak_bytes)),
        Err(AdaptError::OutOfMemory(_)) => None,
        Err(e) => {
            eprintln!("repro: adapt baseline failed: {e}");
            std::process::exit(1);
        }
    }
}

fn analyze_both(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    lens: &[(&str, &str)],
) -> AnalysisPoint {
    let (chef_ms, chef_bytes) = chef_point(program, func, args, lens);
    let adapt = adapt_point(program, func, args);
    AnalysisPoint {
        chef_ms,
        chef_bytes,
        adapt_ms: adapt.map(|(t, _)| t),
        adapt_bytes: adapt.map(|(_, b)| b),
    }
}

fn table2() {
    header("Table II: CHEF-FP analysis-time and memory improvements over ADAPT");
    println!("{:<14} {:>8} {:>8}", "Benchmark", "Time", "Memory");
    let rows: Vec<(&str, AnalysisPoint)> = vec![
        ("Arc length", {
            let p = chef_apps::arclen::program();
            analyze_both(
                &p,
                chef_apps::arclen::NAME,
                &chef_apps::arclen::args(100_000),
                &[],
            )
        }),
        ("Simpsons", {
            let p = chef_apps::simpsons::program();
            analyze_both(
                &p,
                chef_apps::simpsons::NAME,
                &chef_apps::simpsons::args(100_000),
                &[],
            )
        }),
        ("k-Means", {
            let p = chef_apps::kmeans::program();
            let w = chef_apps::kmeans::workload(10_000, 5, 4, 42);
            analyze_both(
                &p,
                chef_apps::kmeans::NAME,
                &chef_apps::kmeans::args(&w),
                &[
                    ("attributes", "npoints * nfeatures"),
                    ("clusters", "nclusters * nfeatures"),
                ],
            )
        }),
        ("HPCCG", {
            let p = chef_apps::hpccg::program();
            let prob = chef_apps::hpccg::problem(20, 30, 5);
            analyze_both(
                &p,
                chef_apps::hpccg::NAME,
                &chef_apps::hpccg::args(&prob),
                &[],
            )
        }),
        ("Black-Scholes", {
            let p = chef_apps::blackscholes::program();
            let w = chef_apps::blackscholes::workload(10_000, 42);
            analyze_both(
                &p,
                chef_apps::blackscholes::NAME,
                &chef_apps::blackscholes::args(&w),
                &[],
            )
        }),
    ];
    for (name, pt) in rows {
        match (pt.adapt_ms, pt.adapt_bytes) {
            (Some(ams), Some(abytes)) => println!(
                "{:<14} {:>7.2}x {:>7.2}x",
                name,
                ams / pt.chef_ms,
                abytes as f64 / pt.chef_bytes as f64
            ),
            _ => println!("{:<14} {:>8} {:>8}", name, "OOM", "OOM"),
        }
    }
}

// -------------------------------------------------------------- Table III

fn table3() {
    header("Table III: k-Means — per-variable mixed-precision error (actual vs estimated)");
    let p = chef_apps::kmeans::program();
    let w = chef_apps::kmeans::workload(100_000, 5, 4, 42);
    let args = chef_apps::kmeans::args(&w);
    let opts = EstimateOptions::default()
        .with_array_len("attributes", "npoints * nfeatures")
        .with_array_len("clusters", "nclusters * nfeatures");
    let mut model = AdaptModel::to_f32();
    let est = estimate_error_with(&p, chef_apps::kmeans::NAME, &mut model, &opts)
        .or_fail("estimator build failed");
    let out = est.execute(&args).or_fail("kmeans analysis trapped");

    let inlined = chef_passes::inline_program(&p).or_fail("inlining failed");
    let primal = inlined
        .function(chef_apps::kmeans::NAME)
        .or_fail("kmeans kernel not found after inlining");
    let baseline = {
        let c = compile_default(primal).or_fail("kmeans compile failed");
        run(&c, args.clone())
            .or_fail("kmeans baseline trapped")
            .ret_f()
    };
    let rows = [
        ("attributes", vec!["attributes"]),
        ("clusters", vec!["clusters"]),
        ("sum", vec!["sum"]),
        ("all 3", vec!["attributes", "clusters", "sum"]),
    ];
    // One PrecisionMap per row, validated in parallel (chef-tuner's
    // candidate-evaluation path).
    let configs: Vec<PrecisionMap> = rows
        .iter()
        .map(|(_, vars)| {
            let mut pm = PrecisionMap::empty();
            for (id, v) in primal.vars_iter() {
                if vars.contains(&v.name.as_str()) {
                    pm.set(id, chef_ir::types::FloatTy::F32);
                }
            }
            pm
        })
        .collect();
    let reports = chef_tuner::validate_configs(&p, chef_apps::kmeans::NAME, &args, &configs)
        .or_fail("config validation failed");
    assert_eq!(reports[0].baseline, baseline);
    println!(
        "{:<32} {:>14} {:>16}",
        "Variable(s) in Lower Precision", "Actual Error", "Estimated Error"
    );
    for ((label, vars), report) in rows.iter().zip(&reports) {
        let estimated: f64 = vars.iter().map(|v| out.error_of(v)).sum();
        println!(
            "{label:<32} {:>14} {:>16}",
            sci(report.actual_error),
            sci(estimated)
        );
    }
}

// --------------------------------------------------------------- Table IV

fn table4() {
    header("Table IV: Black-Scholes — FastApprox configurations (1000 options)");
    let w = chef_apps::blackscholes::workload(1000, 42);
    let p = chef_apps::blackscholes::program();
    let exact = chef_apps::blackscholes::native_prices(&w);

    type ApproxConfigRow = (
        &'static str,
        Vec<(&'static str, Intrinsic, Intrinsic)>,
        Vec<f64>,
    );
    let configs: [ApproxConfigRow; 2] = [
        (
            "FastApprox w/o Fast exp",
            vec![
                ("tQ", Intrinsic::Sqrt, Intrinsic::FastSqrt),
                ("ratio", Intrinsic::Log, Intrinsic::FastLog),
            ],
            chef_apps::blackscholes::approx_prices_no_fast_exp(&w),
        ),
        (
            "FastApprox w/ Fast exp",
            vec![
                ("tQ", Intrinsic::Sqrt, Intrinsic::FastSqrt),
                ("ratio", Intrinsic::Log, Intrinsic::FastLog),
                ("negrT", Intrinsic::Exp, Intrinsic::FasterExp),
            ],
            chef_apps::blackscholes::approx_prices_fast_exp(&w),
        ),
    ];

    println!(
        "{:<26} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>8}",
        "Configuration",
        "act avg",
        "act max",
        "act acc",
        "est avg",
        "est max",
        "est acc",
        "speedup"
    );
    for (label, mapping, approx_prices) in configs {
        // Per-option estimates: analyze each option as a batch of one.
        let mut model = ApproxModel::new();
        for (var, ex, ap) in &mapping {
            model = model.with(*var, *ex, *ap);
        }
        let est = estimate_error_with(
            &p,
            chef_apps::blackscholes::NAME,
            &mut model,
            &EstimateOptions::default(),
        )
        .or_fail("estimator build failed");
        // Per-option analyses are independent: compile once, fan the
        // thousand runs out over the VM's parallel batch path.
        let arg_sets: Vec<Vec<ArgValue>> = (0..w.len())
            .map(|i| {
                let one = chef_apps::blackscholes::Workload {
                    sptprice: vec![w.sptprice[i]],
                    strike: vec![w.strike[i]],
                    rate: vec![w.rate[i]],
                    volatility: vec![w.volatility[i]],
                    otime: vec![w.otime[i]],
                    otype: vec![w.otype[i]],
                };
                chef_apps::blackscholes::args(&one)
            })
            .collect();
        let est_errs: Vec<f64> = est
            .execute_batch(&arg_sets)
            .into_iter()
            .map(|r| r.or_fail("single-option analysis trapped").fp_error)
            .collect();
        let actual_errs: Vec<f64> = (0..w.len())
            .map(|i| (approx_prices[i] - exact[i]).abs())
            .collect();
        let stats = |v: &[f64]| -> (f64, f64, f64) {
            let acc: f64 = v.iter().sum();
            let max = v.iter().cloned().fold(0.0f64, f64::max);
            (acc / v.len() as f64, max, acc)
        };
        let (aavg, amax, aacc) = stats(&actual_errs);
        let (eavg, emax, eacc) = stats(&est_errs);
        // Speedup of the approximate native variant, timed on a larger
        // batch (100k options) so the kernels dominate measurement noise.
        let wt = chef_apps::blackscholes::workload(100_000, 7);
        let (_, t_exact) = time_median(9, || chef_apps::blackscholes::native_prices(&wt));
        let t_approx = match label {
            "FastApprox w/o Fast exp" => {
                time_median(9, || {
                    chef_apps::blackscholes::approx_prices_no_fast_exp(&wt)
                })
                .1
            }
            _ => time_median(9, || chef_apps::blackscholes::approx_prices_fast_exp(&wt)).1,
        };
        println!(
            "{:<26} {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>7.2}x",
            label,
            sci(aavg),
            sci(amax),
            sci(aacc),
            sci(eavg),
            sci(emax),
            sci(eacc),
            t_exact / t_approx
        );
    }
}

// ------------------------------------------------------------ Figures 4–8

fn sweep_fig(
    title: &str,
    scales: &[u64],
    mk: impl Fn(i64) -> (Program, &'static str, Vec<ArgValue>) + Sync,
    lens: &[(&str, &str)],
) {
    header(title);
    println!(
        "{:>10} | {:>10} {:>10} | {:>10} {:>10} | {:>10} {:>10}",
        "scale", "app ms", "app MB", "chef ms", "chef MB", "adapt ms", "adapt MB"
    );
    // The per-scale app + CHEF-FP analyses are independent and
    // memory-light: fan them out over the batch-execution thread pool
    // and print in scale order. On a loaded or single-core machine
    // concurrent timing inflates the absolute milliseconds; the growth
    // *shape* across scales — what the figures reproduce — is preserved.
    let rows = chef_exec::par::parallel_map(scales.to_vec(), None, |scale| {
        let (program, func, args) = mk(scale as i64);
        // Application alone (the paper's "Appl. Time/Memory" series).
        let inlined = chef_passes::inline_program(&program).or_fail("inlining failed");
        let primal = inlined
            .function(func)
            .or_fail("function not found after inlining");
        let compiled = compile_default(primal).or_fail("compile failed");
        let (app_out, app_ms) =
            time_ms(|| run(&compiled, args.clone()).or_fail("application run trapped"));
        let app_bytes = app_out.stats.peak_memory_bytes();

        let (chef_ms, chef_bytes) = chef_point(&program, func, &args, lens);
        (
            scale, app_ms, app_bytes, chef_ms, chef_bytes, program, func, args,
        )
    });
    // The ADAPT baselines stay serial: each run tapes toward the 4 GiB
    // budget, and concurrent baselines could OOM the host where the
    // serial sweep (one tape alive at a time) survives.
    for (scale, app_ms, app_bytes, chef_ms, chef_bytes, program, func, args) in rows {
        let (adapt_ms, adapt_mb) = match adapt_point(&program, func, &args) {
            Some((t, b)) => (format!("{t:.1}"), mb(b)),
            None => ("OOM".to_string(), "OOM".to_string()),
        };
        println!(
            "{:>10} | {:>10.1} {:>10} | {:>10.1} {:>10} | {:>10} {:>10}",
            scale,
            app_ms,
            mb(app_bytes),
            chef_ms,
            mb(chef_bytes),
            adapt_ms,
            adapt_mb
        );
    }
}

// ---------------------------------------------------------------- Fig. 9

fn fig9() {
    header("Figure 9: HPCCG per-iteration sensitivity heat map (r, p, x, Ap)");
    let prob = chef_apps::hpccg::problem(20, 30, 10);
    let p = chef_apps::hpccg::program();
    let cfg = SensitivityConfig {
        tracked: vec!["r".into(), "p".into(), "x".into(), "Ap".into()],
        tick_on: "rtrans".into(),
        max_ticks: 200,
    };
    let profile = profile_sensitivity(
        &p,
        chef_apps::hpccg::NAME,
        &cfg,
        &chef_apps::hpccg::args(&prob),
        &ExecOptions::default(),
    )
    .or_fail("hpccg sensitivity profiling failed");
    println!("iterations recorded: {}", profile.ticks);
    print!("{}", profile.ascii_heatmap(64));
    // The split decision uses the residual-carrying vectors (x's
    // |value·adjoint| plateaus at the solution by construction).
    let residual = hpccg_profile(&prob).or_fail("hpccg sensitivity profiling failed");
    match residual.split_point(1e-3) {
        Some(t) => println!(
            "residual sensitivities (r, p, Ap) collapse below 1e-3 of peak after \
             iteration {t} -> loop-split configuration: iterations 0..{t} in double, \
             rest in float"
        ),
        None => println!("sensitivities never collapse below the threshold"),
    }
}

// ----------------------------------------------------------- oracle table

/// One shadow-oracle comparison: tune on estimates, then *measure* the
/// chosen configuration with the fused shadow pass. Returns the quality
/// row plus the demotion set and the top measured attribution.
fn oracle_row(
    p: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> (EstimateQualityRow, Vec<String>, String) {
    let res = tune(p, func, args, cfg).or_fail("tuner failed");
    let rep = validate_with_oracle(p, func, args, &res.config, &OracleOptions::default())
        .or_fail("oracle run failed");
    let top = rep
        .per_variable
        .first()
        .map(|(n, e)| format!("{n} ({})", sci(*e)))
        .unwrap_or_else(|| "-".to_string());
    let mut row = rep.against_estimate(cfg.threshold, res.estimated_error);
    // Faults the tuner isolated while producing this configuration: a
    // non-zero count means the row was measured under degraded
    // conditions (retried or quarantined trials) and still completed.
    row.fault_count = res.faults.total();
    (row, res.demoted, top)
}

/// The `repro --oracle` rows at full (paper-scaled) workloads.
fn oracle_rows() -> Vec<(EstimateQualityRow, Vec<String>, String)> {
    let mut rows = Vec::new();
    {
        let p = chef_apps::arclen::program();
        rows.push(oracle_row(
            &p,
            chef_apps::arclen::NAME,
            &chef_apps::arclen::args(100_000),
            &TunerConfig::with_threshold(1e-5),
        ));
    }
    {
        let p = chef_apps::simpsons::program();
        rows.push(oracle_row(
            &p,
            chef_apps::simpsons::NAME,
            &chef_apps::simpsons::args(100_000),
            &TunerConfig::with_threshold(1e-6),
        ));
    }
    {
        let p = chef_apps::kmeans::program();
        let w = chef_apps::kmeans::workload(10_000, 5, 4, 42);
        let cfg = TunerConfig::with_threshold(1e-6)
            .with_array_len("attributes", "npoints * nfeatures")
            .with_array_len("clusters", "nclusters * nfeatures");
        rows.push(oracle_row(
            &p,
            chef_apps::kmeans::NAME,
            &chef_apps::kmeans::args(&w),
            &cfg,
        ));
    }
    {
        let p = chef_apps::hpccg::program();
        let prob = chef_apps::hpccg::problem(20, 30, 5);
        rows.push(oracle_row(
            &p,
            chef_apps::hpccg::NAME,
            &chef_apps::hpccg::args(&prob),
            &TunerConfig::with_threshold(1e-10),
        ));
    }
    {
        let p = chef_apps::blackscholes::program();
        let w = chef_apps::blackscholes::workload(1_000, 42);
        // Demotion over the computed locals (the Table IV surface); see
        // `chef_apps::blackscholes::TUNE_CANDIDATES`.
        let mut cfg = TunerConfig::with_threshold(1e-5);
        cfg.candidates = Some(
            chef_apps::blackscholes::TUNE_CANDIDATES
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        rows.push(oracle_row(
            &p,
            chef_apps::blackscholes::NAME,
            &chef_apps::blackscholes::args(&w),
            &cfg,
        ));
    }
    rows
}

fn print_oracle_rows(rows: &[(EstimateQualityRow, Vec<String>, String)]) {
    println!(
        "{:<14} {:>10} {:>14} {:>14} {:>12} {:>9} {:>5}  top attribution / demoted",
        "Benchmark", "Threshold", "Estimated", "Measured", "rel dev", "<=10x", "div"
    );
    for (row, demoted, top) in rows {
        println!(
            "{:<14} {:>10} {:>14} {:>14} {:>12} {:>9} {:>5}  {} / {}",
            row.kernel,
            sci(row.threshold),
            sci(row.estimated),
            sci(row.measured),
            rel_dev_pct(row.estimated, row.measured),
            // A divergent row's measured error describes the wrong trace;
            // its band is not meaningful (and not gated).
            if row.diverged() {
                "n/a"
            } else if row.within_order_of_magnitude() {
                "yes"
            } else {
                "NO"
            },
            row.divergence_count,
            top,
            if demoted.is_empty() {
                "(none)".to_string()
            } else {
                demoted.join(", ")
            }
        );
    }
}

/// Divergence counts of the adversarial branching kernels under their
/// pinned flip/stable inputs — the detection feature exercised end to
/// end for the smoke artifact. (`(kernel, flip splits, stable splits)`;
/// the flip count must be ≥ 1, the stable count 0.)
fn adversarial_divergence() -> Vec<(&'static str, u64, u64)> {
    use chef_apps::adversarial::{floatcount, piecewise, threshold};
    let count = |p: &Program, func: &str, vars: &[&str], args: &[ArgValue]| -> u64 {
        let ids = chef_tuner::ids_of(p, func, vars).or_fail("flip variables did not resolve");
        let mut pm = PrecisionMap::empty();
        for id in ids {
            pm.set(id, chef_ir::types::FloatTy::F32);
        }
        chef_shadow::shadow_run(p, func, args, &pm, &OracleOptions::default())
            .or_fail("oracle run failed")
            .divergence_count
    };
    let t = threshold::program();
    let f = floatcount::program();
    let w = piecewise::program();
    vec![
        (
            "threshold",
            count(
                &t,
                threshold::NAME,
                threshold::FLIP_VARS,
                &threshold::flip_args(),
            ),
            count(
                &t,
                threshold::NAME,
                threshold::FLIP_VARS,
                &threshold::stable_args(),
            ),
        ),
        (
            "floatcount",
            count(
                &f,
                floatcount::NAME,
                floatcount::FLIP_VARS,
                &floatcount::flip_args(),
            ),
            count(
                &f,
                floatcount::NAME,
                floatcount::FLIP_VARS,
                &floatcount::stable_args(),
            ),
        ),
        (
            "piecewise",
            count(
                &w,
                piecewise::NAME,
                piecewise::FLIP_VARS,
                &piecewise::flip_args(),
            ),
            count(
                &w,
                piecewise::NAME,
                piecewise::FLIP_VARS,
                &piecewise::stable_args(),
            ),
        ),
    ]
}

fn oracle_table() {
    header("Oracle: estimated vs shadow-measured error per tuned configuration");
    print_oracle_rows(&oracle_rows());

    // The dual direction: with *no* demotion, the double-double shadow
    // measures each f64 kernel's own rounding error (RPC-style check).
    println!("\nf64 self-error (double-double shadow, no demotion):");
    let dd = OracleOptions {
        mode: ShadowMode::DD,
        ..Default::default()
    };
    let selfs: Vec<(&str, Program, &str, Vec<ArgValue>)> = vec![
        (
            "Arc Length",
            chef_apps::arclen::program(),
            chef_apps::arclen::NAME,
            chef_apps::arclen::args(100_000),
        ),
        (
            "Simpsons",
            chef_apps::simpsons::program(),
            chef_apps::simpsons::NAME,
            chef_apps::simpsons::args(100_000),
        ),
        (
            "Black-Scholes",
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
            chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(1_000, 42)),
        ),
    ];
    for (label, p, func, args) in selfs {
        let rep = validate_with_oracle(&p, func, &args, &PrecisionMap::empty(), &dd)
            .or_fail("double-double oracle run failed");
        println!(
            "{label:<14} |out err| = {}   acc = {}   div = {}",
            sci(rep.output_error),
            sci(rep.acc_error),
            rep.divergence_count
        );
    }

    // The adversarial corpus: demotions that flip control flow must be
    // flagged, branch-stable inputs must stay silent.
    println!("\nadversarial corpus (divergence splits, flip / stable input):");
    for (name, flip, stable) in adversarial_divergence() {
        println!("{name:<14} {flip:>4} / {stable}");
    }
}

// ------------------------------------------------------------ perf smoke

/// CI perf smoke: times the engine's hot paths on small workloads and
/// `repro --cfg <kernel>`: the CFG optimizer tier's debug surface —
/// basic blocks with immediate dominators, natural loops, and the LICM
/// plan (hoisted ops, guards, compaction) for one app kernel. The
/// bytecode is compiled with the tier *off* (fusion on, packing off) so
/// the dump shows exactly what the optimizer would see; the plan comes
/// from optimizing a copy. Pinned by the `cfg_differential` golden test.
fn cfg_dump(kernel: &str) {
    let (p, name): (Program, &str) = match kernel {
        "arclen" => (chef_apps::arclen::program(), chef_apps::arclen::NAME),
        "simpsons" => (chef_apps::simpsons::program(), chef_apps::simpsons::NAME),
        "kmeans" => (chef_apps::kmeans::program(), chef_apps::kmeans::NAME),
        "blackscholes" => (
            chef_apps::blackscholes::program(),
            chef_apps::blackscholes::NAME,
        ),
        "hpccg" => (chef_apps::hpccg::program(), chef_apps::hpccg::NAME),
        other => {
            eprintln!(
                "repro: unknown kernel `{other}` \
                 (expected arclen|simpsons|kmeans|blackscholes|hpccg)"
            );
            std::process::exit(2);
        }
    };
    let inlined = chef_passes::inline_program(&p).or_fail("inlining failed");
    let func = inlined.function(name).or_fail("kernel not found");
    let c = chef_exec::compile::compile(
        func,
        &chef_exec::compile::CompileOptions {
            fuse: true,
            pack: false,
            cfg: false,
            ..Default::default()
        },
    )
    .or_fail("compile failed");
    print!("{}", chef_exec::cfg::dump(&c));
    let mut opt = c.clone();
    let stats = chef_exec::cfg::optimize(&mut opt);
    println!(
        "  licm: {} hoisted, {} guard(s), {} register slot(s) compacted{}",
        stats.hoisted,
        stats.guards,
        stats.regs_compacted,
        if stats.reducible {
            ""
        } else {
            " (irreducible: pass bailed)"
        }
    );
    for op in &stats.hoisted_ops {
        println!("    hoist {op}");
    }
}

/// writes a `BENCH_smoke.json` snapshot, so the perf trajectory is
/// tracked from one commit to the next (compare the JSON across runs;
/// absolute numbers vary with the runner, ratios should not).
fn smoke() {
    use chef_core::json::Json;

    header("perf smoke (scaled-down hot paths; snapshot -> BENCH_smoke.json)");

    // 1. Raw VM dispatch: the arclen primal — full default pipeline
    // (fusion + CFG tier + packing), the same stream with the CFG tier
    // off, unfused, and enum-dispatched.
    let p = chef_apps::arclen::program();
    let primal = p
        .function(chef_apps::arclen::NAME)
        .or_fail("arclen kernel not found");
    let fused = compile_default(primal).or_fail("arclen compile failed");
    let cfg_off = chef_exec::compile::compile(
        primal,
        &chef_exec::compile::CompileOptions {
            cfg: false,
            ..Default::default()
        },
    )
    .or_fail("arclen cfg-off compile failed");
    let unfused = chef_exec::compile::compile(
        primal,
        &chef_exec::compile::CompileOptions {
            fuse: false,
            ..Default::default()
        },
    )
    .or_fail("arclen unfused compile failed");
    let enum_only = chef_exec::compile::compile(
        primal,
        &chef_exec::compile::CompileOptions {
            pack: false,
            ..Default::default()
        },
    )
    .or_fail("arclen enum compile failed");
    // The CFG tier's measurable work on arclen: how many ops LICM lifts
    // out of the loops (snapshot-tracked and gated: zero would mean the
    // tier silently stopped finding the h*h hoist).
    let licm_hoisted_arclen = {
        let mut c = cfg_off.clone();
        f64::from(chef_exec::cfg::optimize(&mut c).hoisted)
    };
    let opts = ExecOptions::default();
    let mut m = chef_exec::vm::Machine::new();
    let (_, vm_cfg_ms) = time_median(31, || {
        m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
            .unwrap()
            .ret_f()
    });
    let (_, vm_fused_ms) = time_median(31, || {
        m.run_reused(&cfg_off, vec![ArgValue::I(10_000)], &opts)
            .unwrap()
            .ret_f()
    });
    let (_, vm_unfused_ms) = time_median(31, || {
        m.run_reused(&unfused, vec![ArgValue::I(10_000)], &opts)
            .unwrap()
            .ret_f()
    });
    let (_, vm_enum_ms) = time_median(31, || {
        m.run_reused(&enum_only, vec![ArgValue::I(10_000)], &opts)
            .unwrap()
            .ret_f()
    });
    // Telemetry gates (PR 7): the same fused run with the per-pc
    // profiler armed, and an interleaved re-measurement of the
    // profile-off path. Profile-off dispatch is a separately
    // monomorphized loop — machine code identical to a build without
    // telemetry — so its paired ratio must stay within noise; gated at
    // ≤ 1.02x below, min-of-3 so runner jitter cannot fail CI.
    let prof_opts = ExecOptions {
        profile: true,
        ..Default::default()
    };
    let (_, vm_profiled_ms) = time_median(31, || {
        m.run_reused(&fused, vec![ArgValue::I(10_000)], &prof_opts)
            .unwrap()
            .ret_f()
    });
    let telemetry_off_x = (0..3)
        .map(|_| {
            let (_, again_ms) = time_median(31, || {
                m.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
                    .unwrap()
                    .ret_f()
            });
            again_ms / vm_cfg_ms
        })
        .fold(f64::INFINITY, f64::min);

    // 2. Analysis end-to-end: build + run the arclen estimator.
    let est = estimate_error(&p, chef_apps::arclen::NAME, &EstimateOptions::default())
        .or_fail("estimator build failed");
    let args = chef_apps::arclen::args(2_000);
    let (_, analysis_ms) = time_median(5, || est.execute(&args).unwrap().fp_error);

    // 3. Batched analysis: 32 independent estimates through the batch path.
    let sets: Vec<Vec<ArgValue>> = (0..32).map(|_| chef_apps::arclen::args(500)).collect();
    let (_, batch_ms) = time_median(3, || {
        est.execute_batch(&sets)
            .into_iter()
            .map(|r| r.unwrap().fp_error)
            .sum::<f64>()
    });

    // 4. Tuner end-to-end (tune + validate) on simpsons.
    let ps = chef_apps::simpsons::program();
    let targs = chef_apps::simpsons::args(2_000);
    let (_, tuner_ms) = time_median(3, || {
        let cfg = TunerConfig::with_threshold(1e-6);
        let res = tune(&ps, chef_apps::simpsons::NAME, &targs, &cfg).unwrap();
        validate(&ps, chef_apps::simpsons::NAME, &targs, &res.config)
            .unwrap()
            .actual_error
    });

    // 5. Sensitivity profile on a small HPCCG problem.
    let prob = chef_apps::hpccg::problem(4, 4, 4);
    let (_, sens_ms) = time_median(3, || hpccg_profile(&prob).unwrap().ticks);

    // 6. Fused shadow pass vs the plain VM run on the same kernel (the
    // shadow/overhead bench group's headline ratio, snapshot-tracked) —
    // timed with divergence detection off (the pure shadow cost) and on
    // (the default engine configuration, the acceptance bar's number).
    let mut sm = chef_exec::shadow::ShadowMachine::<f64>::new();
    let nodiv = ExecOptions {
        detect_divergence: false,
        ..Default::default()
    };
    let (_, vm_shadow_ms) = time_median(31, || {
        sm.run_reused(&fused, vec![ArgValue::I(10_000)], &nodiv)
            .unwrap()
            .ret_f()
    });
    let (_, vm_shadow_div_ms) = time_median(31, || {
        sm.run_reused(&fused, vec![ArgValue::I(10_000)], &opts)
            .unwrap()
            .ret_f()
    });
    // Same pass with non-finite trapping armed (PR 6): on a finite run
    // the checks never fire, so this prices the per-instruction
    // `is_finite` probes alone (acceptance bar: ≤ 1.10x the plain
    // shadow pass above).
    let nonfinite = ExecOptions {
        detect_divergence: false,
        trap_on_nonfinite: true,
        ..Default::default()
    };
    let (_, vm_shadow_nf_ms) = time_median(31, || {
        sm.run_reused(&fused, vec![ArgValue::I(10_000)], &nonfinite)
            .unwrap()
            .ret_f()
    });

    // 7. Service layer: the same fused kernel, 64 independent runs
    // pushed through an `AnalysisServer` session — admission, per-job
    // stats and telemetry included. The session's own latency ledger
    // yields the p50/p99 per-job figures; the wall time prices the
    // whole round trip (its `service.*` counters land in the telemetry
    // snapshot below).
    let (service_wall_ms, service_p50_ms, service_p99_ms) = {
        let server = chef_service::AnalysisServer::new(chef_service::ServiceConfig {
            max_queue_depth: 128,
            ..Default::default()
        });
        let session = server
            .open_session(
                chef_service::SessionSpec::named("smoke")
                    .with_fault(chef_exec::fault::FaultPlan::new(None, 0, 0, 1)),
            )
            .or_fail("service session rejected");
        let func = std::sync::Arc::new(fused.clone());
        let t0 = std::time::Instant::now();
        let tickets: Vec<_> = (0..64)
            .map(|_| {
                session
                    .submit_run(func.clone(), vec![ArgValue::I(2_000)])
                    .or_fail("service submission rejected")
            })
            .collect();
        for t in tickets {
            t.wait().completed().or_fail("service job did not complete");
        }
        let wall = t0.elapsed().as_secs_f64() * 1e3;
        let report = server.drain();
        if !report.leak_free() {
            eprintln!(
                "service leak: {} checkout(s) outstanding after drain",
                report.outstanding_checkouts
            );
            std::process::exit(1);
        }
        let (p50, _, p99) = session
            .stats()
            .latency_quantiles()
            .or_fail("service session recorded no latencies");
        (wall, p50 as f64 / 1e6, p99 as f64 / 1e6)
    };

    // 8. Persistent variant cache: cold compile vs warm disk load over
    // the five app kernels. The store lives in `CHEF_CACHE_DIR` when
    // set (the CI cache-reuse job shares it across two runs, so the
    // second run resolves every kernel from disk) or in a throwaway
    // temp dir otherwise — the `compile_{cold,warm}_ms` snapshot
    // fields exist either way. With `CHEF_SMOKE_EXPECT_WARM=1` the
    // populate phase is *required* to be all disk hits (zero
    // compiles); any miss fails the run.
    let (compile_cold_ms, compile_warm_ms, cache_failed) = {
        use chef_exec::store::DiskStore;
        use std::sync::Arc;

        let kernels: Vec<(&'static str, Program, &'static str, Vec<ArgValue>)> = vec![
            (
                "arclen",
                chef_apps::arclen::program(),
                chef_apps::arclen::NAME,
                chef_apps::arclen::args(500),
            ),
            (
                "simpsons",
                chef_apps::simpsons::program(),
                chef_apps::simpsons::NAME,
                chef_apps::simpsons::args(500),
            ),
            (
                "kmeans",
                chef_apps::kmeans::program(),
                chef_apps::kmeans::NAME,
                chef_apps::kmeans::args(&chef_apps::kmeans::workload(100, 5, 4, 42)),
            ),
            (
                "hpccg",
                chef_apps::hpccg::program(),
                chef_apps::hpccg::NAME,
                chef_apps::hpccg::args(&chef_apps::hpccg::problem(4, 4, 4)),
            ),
            (
                "blackscholes",
                chef_apps::blackscholes::program(),
                chef_apps::blackscholes::NAME,
                chef_apps::blackscholes::args(&chef_apps::blackscholes::workload(100, 42)),
            ),
        ];
        let primals: Vec<(&'static str, chef_ir::ast::Function, Vec<ArgValue>)> = kernels
            .iter()
            .map(|(label, p, func, kargs)| {
                let inlined = chef_passes::inline_program(p).or_fail("inlining failed");
                let primal = inlined
                    .function(func)
                    .or_fail("kernel not found after inlining")
                    .clone();
                (*label, primal, kargs.clone())
            })
            .collect();

        // Cold baseline: direct compiles, no cache — the cost the warm
        // path is supposed to skip entirely.
        let (cold_funcs, cold_ms) = time_ms(|| {
            primals
                .iter()
                .map(|(_, primal, _)| compile_default(primal).or_fail("cold compile failed"))
                .collect::<Vec<_>>()
        });

        let shared = std::env::var_os("CHEF_CACHE_DIR").is_some();
        let dir = std::env::var_os("CHEF_CACHE_DIR")
            .map(std::path::PathBuf::from)
            .unwrap_or_else(|| {
                std::env::temp_dir().join(format!("chef-smoke-cache-{}", std::process::id()))
            });
        let mut bad = false;

        // Populate (or, on a re-run against a shared store, hit): the
        // store-backed cache writes each compiled kernel through the
        // deferred write-back queue; flush_disk empties it.
        let populate_store = Arc::new(DiskStore::open(&dir).or_fail("cannot open cache dir"));
        let cache = chef_tuner::VariantCache::new().with_store(Arc::clone(&populate_store));
        let empty_pm = PrecisionMap::empty();
        for (_, primal, _) in &primals {
            cache
                .get_or_compile(primal, &empty_pm)
                .or_fail("cache populate failed");
        }
        cache.flush_disk();
        let expect_warm = std::env::var("CHEF_SMOKE_EXPECT_WARM").as_deref() == Ok("1");
        if expect_warm {
            if populate_store.misses() > 0 {
                eprintln!(
                    "cache regression: CHEF_SMOKE_EXPECT_WARM=1 but {} lookup(s) missed the store",
                    populate_store.misses()
                );
                bad = true;
            }
            if populate_store.hits() as usize != primals.len() {
                eprintln!(
                    "cache regression: expected {} disk hits, saw {}",
                    primals.len(),
                    populate_store.hits()
                );
                bad = true;
            }
        }

        // Warm: a fresh cache and a fresh store handle on the same
        // directory must resolve every kernel from disk — zero
        // compilations, no new compile/pack spans, bit-identical
        // execution against the cold-compiled functions.
        let spans_of = |name: &str| chef_telemetry::snapshot().spans_named(name).len();
        let (compiles_before, packs_before) = (spans_of("compile"), spans_of("pack"));
        let warm_store = Arc::new(DiskStore::open(&dir).or_fail("cannot reopen cache dir"));
        let warm_cache = chef_tuner::VariantCache::new().with_store(Arc::clone(&warm_store));
        let (warm_funcs, warm_ms) = time_ms(|| {
            primals
                .iter()
                .map(|(_, primal, _)| {
                    warm_cache
                        .get_or_compile(primal, &empty_pm)
                        .or_fail("warm load failed")
                })
                .collect::<Vec<_>>()
        });
        if warm_cache.misses() > 0 || warm_store.misses() > 0 || warm_store.corrupt() > 0 {
            eprintln!(
                "cache regression: warm pass compiled {} / missed {} / corrupt {}",
                warm_cache.misses(),
                warm_store.misses(),
                warm_store.corrupt()
            );
            bad = true;
        }
        if spans_of("compile") > compiles_before || spans_of("pack") > packs_before {
            eprintln!("cache regression: warm pass recorded new compile/pack spans");
            bad = true;
        }
        for (i, (label, _, kargs)) in primals.iter().enumerate() {
            let cold_out = run(&cold_funcs[i], kargs.clone()).or_fail("cold kernel run trapped");
            let warm_out = run(&warm_funcs[i], kargs.clone()).or_fail("warm kernel run trapped");
            let bits = |v: &Option<Value>| match v {
                Some(Value::F(f)) => (1u8, f.to_bits()),
                Some(Value::I(n)) => (2, *n as u64),
                Some(Value::B(b)) => (3, *b as u64),
                None => (0, 0),
            };
            if bits(&cold_out.ret) != bits(&warm_out.ret) {
                eprintln!(
                    "cache regression: {label} disk-loaded kernel diverged from cold compile"
                );
                bad = true;
            }
        }
        println!(
            "cache: {} kernels | populate hits {} misses {} writes {} | warm hits {} in {:.3} ms \
             (cold compile {:.3} ms)",
            primals.len(),
            populate_store.hits(),
            populate_store.misses(),
            populate_store.writes(),
            warm_store.hits(),
            warm_ms,
            cold_ms
        );
        if !shared {
            let _ = std::fs::remove_dir_all(&dir);
        }
        (cold_ms, warm_ms, bad)
    };

    let rows = [
        ("vm_arclen_cfg_ms", vm_cfg_ms),
        ("vm_arclen_fused_ms", vm_fused_ms),
        ("vm_arclen_unfused_ms", vm_unfused_ms),
        ("vm_arclen_enum_ms", vm_enum_ms),
        ("licm_hoisted_arclen", licm_hoisted_arclen),
        ("vm_arclen_profiled_ms", vm_profiled_ms),
        ("vm_arclen_shadowed_ms", vm_shadow_ms),
        ("vm_arclen_shadowed_div_ms", vm_shadow_div_ms),
        ("vm_arclen_shadowed_nonfinite_ms", vm_shadow_nf_ms),
        ("analysis_arclen_ms", analysis_ms),
        ("analysis_batch32_ms", batch_ms),
        ("tuner_simpsons_ms", tuner_ms),
        ("sensitivity_hpccg_ms", sens_ms),
        ("service_batch64_wall_ms", service_wall_ms),
        ("service_job_p50_ms", service_p50_ms),
        ("service_job_p99_ms", service_p99_ms),
        ("compile_cold_ms", compile_cold_ms),
        ("compile_warm_ms", compile_warm_ms),
    ];
    for (name, ms) in &rows {
        println!("{name:<32} {ms:>9.3} ms");
    }
    println!(
        "cfg tier: {:.2}x the fusion-only dispatch on arclen (<= 1.0 expected)",
        vm_cfg_ms / vm_fused_ms
    );
    println!(
        "shadow overhead: {:.2}x over the plain fused run (detection off)",
        vm_shadow_ms / vm_cfg_ms
    );
    println!(
        "shadow + divergence detection: {:.2}x over the plain fused run (< 4x bar)",
        vm_shadow_div_ms / vm_cfg_ms
    );
    println!(
        "non-finite trapping: {:.2}x over the plain shadow pass (<= 1.10x bar)",
        vm_shadow_nf_ms / vm_shadow_ms
    );
    println!(
        "packed dispatch: {:.2}x over the enum interpreter on the same stream",
        vm_enum_ms / vm_cfg_ms
    );
    let telemetry_prof_x = vm_profiled_ms / vm_cfg_ms;
    println!(
        "telemetry off: {telemetry_off_x:.3}x paired re-run of the profile-off dispatch (<= 1.02x bar)"
    );
    println!(
        "per-pc profiling: {telemetry_prof_x:.2}x over the profile-off dispatch (<= 1.5x bar)"
    );
    let doc = Json::obj(rows.iter().map(|&(name, ms)| (name, Json::Num(ms))).chain([
        ("telemetry_off_overhead_x", Json::Num(telemetry_off_x)),
        ("telemetry_profiled_overhead_x", Json::Num(telemetry_prof_x)),
    ]));
    let path = "BENCH_smoke.json";
    std::fs::write(path, doc.to_string_pretty()).or_fail("cannot write BENCH_smoke.json");
    println!("snapshot written to {path}");

    // Shadow-oracle smoke table: small workloads, same estimated-vs-
    // measured rows as `repro --oracle`, written next to the perf
    // snapshot for the CI artifact.
    header("oracle smoke (estimated vs shadow-measured; -> BENCH_oracle_smoke.json)");
    let mut rows = Vec::new();
    {
        let p = chef_apps::arclen::program();
        rows.push(oracle_row(
            &p,
            chef_apps::arclen::NAME,
            &chef_apps::arclen::args(2_000),
            &TunerConfig::with_threshold(3e-6),
        ));
    }
    {
        let p = chef_apps::simpsons::program();
        rows.push(oracle_row(
            &p,
            chef_apps::simpsons::NAME,
            &chef_apps::simpsons::args(2_000),
            &TunerConfig::with_threshold(1e-7),
        ));
    }
    print_oracle_rows(&rows);

    // Per-kernel divergence counts of the adversarial corpus: flips must
    // be flagged (≥ 1 split) and stable inputs must stay silent — a
    // regression in either direction fails the smoke run.
    let div = adversarial_divergence();
    println!("\nadversarial corpus (divergence splits, flip / stable input):");
    for (name, flip, stable) in &div {
        println!("{name:<14} {flip:>4} / {stable}");
    }
    let doc = Json::obj([
        (
            "rows",
            Json::Arr(rows.iter().map(|(r, _, _)| r.to_json_value()).collect()),
        ),
        (
            "divergence",
            Json::Arr(
                div.iter()
                    .map(|&(name, flip, stable)| {
                        Json::obj([
                            ("kernel", Json::str(name)),
                            ("flip_splits", Json::Num(flip as f64)),
                            ("stable_splits", Json::Num(stable as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("shadow_overhead_x", Json::Num(vm_shadow_ms / vm_cfg_ms)),
        (
            "divergence_overhead_x",
            Json::Num(vm_shadow_div_ms / vm_cfg_ms),
        ),
    ]);
    let path = "BENCH_oracle_smoke.json";
    std::fs::write(path, doc.to_string_pretty()).or_fail("cannot write BENCH_oracle_smoke.json");
    println!("snapshot written to {path}");

    // Estimate-quality regression gate: the estimated-vs-measured ratios
    // must stay inside the paper's order-of-magnitude band. A violation
    // fails the run (and CI) instead of silently archiving a regression.
    // Rows whose configuration diverged are printed but not gated: their
    // measured error describes a trace the baseline never takes, so the
    // band is meaningless for them. A cache-reuse violation detected
    // above fails the run through the same exit.
    let mut failed = cache_failed;
    for (r, _, _) in &rows {
        if r.diverged() {
            println!(
                "note: {} diverged ({} splits) — order-of-magnitude band not enforced",
                r.kernel, r.divergence_count
            );
        } else if !r.within_order_of_magnitude() {
            eprintln!(
                "estimate-quality regression: {} estimated {} vs measured {} \
                 leaves the order-of-magnitude band",
                r.kernel,
                sci(r.estimated),
                sci(r.measured)
            );
            failed = true;
        }
    }
    for (name, flip, stable) in &div {
        if *flip == 0 {
            eprintln!("divergence regression: {name} flip input reported no split");
            failed = true;
        }
        if *stable > 0 {
            eprintln!("divergence regression: {name} stable input reported {stable} split(s)");
            failed = true;
        }
    }
    // CFG-tier gates: LICM must keep finding work on arclen (the h*h
    // hoist), and the optimized stream must not dispatch slower than the
    // fusion-only baseline (5% jitter allowance for the CI runner; the
    // committed snapshot is expected at ≤ 1.0x).
    if licm_hoisted_arclen < 1.0 {
        eprintln!("cfg regression: LICM hoisted nothing on arclen");
        failed = true;
    }
    if vm_cfg_ms > vm_fused_ms * 1.05 {
        eprintln!(
            "cfg regression: optimized arclen dispatch ran at {:.3}x the \
             fusion-only baseline (> 1.05x bar)",
            vm_cfg_ms / vm_fused_ms
        );
        failed = true;
    }
    // Telemetry gates: profile-off dispatch must be free (the off loop
    // is the same machine code as a build without telemetry), and the
    // profiling loop must stay within its documented budget.
    if telemetry_off_x > 1.02 {
        eprintln!(
            "telemetry regression: profile-off dispatch re-ran at {telemetry_off_x:.3}x \
             (> 1.02x bar)"
        );
        failed = true;
    }
    if telemetry_prof_x > 1.5 {
        eprintln!(
            "telemetry regression: per-pc profiling ran at {telemetry_prof_x:.2}x (> 1.5x bar)"
        );
        failed = true;
    }

    // Telemetry snapshot of the whole smoke run — every counter, span
    // and histogram the instrumented stack recorded — written for the
    // CI artifact even when a gate failed (it is the evidence).
    let snap = chef_telemetry::snapshot();
    let tdoc = chef_core::report::telemetry_to_json(&snap);
    std::fs::write("TELEMETRY_smoke.json", tdoc.to_string_pretty())
        .or_fail("cannot write TELEMETRY_smoke.json");
    println!(
        "telemetry: {} counters, {} histograms, {} spans ({} dropped) -> TELEMETRY_smoke.json",
        snap.counters.len(),
        snap.histograms.len(),
        snap.spans.len(),
        snap.spans_dropped
    );
    if failed {
        std::process::exit(1);
    }
}

// ------------------------------------------------------------ serve smoke

/// `repro --serve-smoke`: the chef-service soak gate. Runs one
/// [`chef_service::AnalysisServer`] through every degraded regime at
/// once — clean sessions, a fault-injected session (seed from
/// `CHEF_FAULT_SEED`, so the CI matrix varies it), a deadline-bound
/// session and a budget-starved one that trips its breaker — then
/// prints the per-session outcome table and self-verifies:
///
/// * **contamination**: every clean-session result is bit-identical to
///   a solo run on a fresh machine;
/// * **termination**: every submitted job reached a terminal outcome
///   (a hang here times out the CI job — that *is* the gate);
/// * **typed degradation**: deadline overruns surface as
///   `DeadlineExceeded` with a valid pc, budget exhaustion quarantines
///   the session via its breaker instead of failing the run;
/// * **leak-free drain**: zero machine-arena checkouts outstanding.
///
/// Exits non-zero on any violation.
fn serve_smoke() {
    use chef_exec::fault::FaultPlan;
    use chef_service::{AnalysisServer, Outcome, RejectReason, ServiceConfig, SessionSpec};
    use std::sync::Arc;
    use std::time::Duration;

    let seed = std::env::var("CHEF_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(42);
    header(&format!(
        "service smoke: concurrent sessions under fault injection (seed {seed})"
    ));

    let inert = || FaultPlan::new(None, 0, 0, 1);
    let server = AnalysisServer::new(ServiceConfig {
        workers: 4,
        max_queue_depth: 256,
        ..Default::default()
    });
    let p = chef_apps::arclen::program();
    let func = Arc::new(
        compile_default(
            p.function(chef_apps::arclen::NAME)
                .or_fail("arclen kernel not found"),
        )
        .or_fail("arclen compile failed"),
    );
    let mut failed = false;

    // Clean pair + noisy neighbour, interleaved onto the shared workers.
    let clean_a = server
        .open_session(SessionSpec::named("clean-a").with_fault(inert()))
        .or_fail("open clean-a");
    let clean_b = server
        .open_session(SessionSpec::named("clean-b").with_fault(inert()))
        .or_fail("open clean-b");
    let faulty = server
        .open_session(SessionSpec::named("faulty").with_fault(FaultPlan::from_seed(seed, None)))
        .or_fail("open faulty");
    let mut clean_tickets = Vec::new();
    let mut faulty_tickets = Vec::new();
    for k in 0..24u32 {
        let args = vec![ArgValue::I(1_000 + k as i64)];
        clean_tickets.push((
            k,
            clean_a
                .submit_run(func.clone(), args.clone())
                .or_fail("submit"),
        ));
        faulty_tickets.push(
            faulty
                .submit_run(func.clone(), args.clone())
                .or_fail("submit"),
        );
        clean_tickets.push((k, clean_b.submit_run(func.clone(), args).or_fail("submit")));
    }
    let solo_opts = ExecOptions {
        fault: Some(inert()),
        ..Default::default()
    };
    for (k, t) in clean_tickets {
        match t.wait() {
            Outcome::Completed { value, .. } => {
                let solo =
                    chef_exec::vm::run_with(&func, vec![ArgValue::I(1_000 + k as i64)], &solo_opts)
                        .or_fail("solo reference run trapped");
                if value.ret_f().to_bits() != solo.ret_f().to_bits() {
                    eprintln!("contamination: clean run {k} diverged from its solo reference");
                    failed = true;
                }
            }
            other => {
                eprintln!("clean session job {k} not completed: {}", other.kind());
                failed = true;
            }
        }
    }
    for t in faulty_tickets {
        t.wait(); // terminal (completed, retried-completed, or typed fault)
    }

    // Deadline regime: an over-budget run must degrade to a typed trap.
    let deadline = server
        .open_session(
            SessionSpec::named("deadline")
                .with_deadline(Duration::from_millis(5))
                .with_fault(inert()),
        )
        .or_fail("open deadline");
    match deadline
        .submit_run(func.clone(), vec![ArgValue::I(200_000_000)])
        .or_fail("submit")
        .wait()
    {
        Outcome::DeadlineExceeded { pc, .. } if pc < func.instrs.len() => {}
        other => {
            eprintln!(
                "deadline overrun was not a typed DeadlineExceeded: {}",
                other.kind()
            );
            failed = true;
        }
    }
    match deadline
        .submit_run(func.clone(), vec![ArgValue::I(100)])
        .or_fail("submit")
        .wait()
    {
        Outcome::Completed { .. } => {}
        other => {
            eprintln!("short run after a deadline trap failed: {}", other.kind());
            failed = true;
        }
    }

    // Budget regime: repeated exhaustion trips the breaker (quarantine),
    // which is the *intended* degraded state — not a smoke failure.
    let budget = server
        .open_session(
            SessionSpec::named("budget")
                .with_budget(100)
                .with_fault(inert()),
        )
        .or_fail("open budget");
    for _ in 0..3 {
        budget
            .submit_run(func.clone(), vec![ArgValue::I(100_000)])
            .or_fail("submit")
            .wait();
    }
    if !budget.quarantined() {
        eprintln!("budget session did not trip its breaker after 3 exhausted jobs");
        failed = true;
    }
    match budget.submit_run(func.clone(), vec![ArgValue::I(100)]) {
        Err(rej) if rej.reason == RejectReason::CircuitOpen => {}
        Err(rej) => {
            eprintln!("quarantined session rejected with the wrong reason: {rej}");
            failed = true;
        }
        Ok(t) => {
            t.wait();
            eprintln!("quarantined session admitted a job");
            failed = true;
        }
    }

    let sessions = [&clean_a, &clean_b, &faulty, &deadline, &budget];
    println!(
        "{:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} | {:>9} {:>9} {:>9}",
        "session",
        "sub",
        "done",
        "retry",
        "fault",
        "ddl",
        "rej",
        "quar",
        "p50 us",
        "p95 us",
        "p99 us"
    );
    for s in sessions {
        let st = s.stats();
        let (p50, p95, p99) = st
            .latency_quantiles()
            .map(|(a, b, c)| (a as f64 / 1e3, b as f64 / 1e3, c as f64 / 1e3))
            .unwrap_or((0.0, 0.0, 0.0));
        println!(
            "{:<10} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} {:>5} | {:>9.1} {:>9.1} {:>9.1}",
            s.name(),
            st.submitted,
            st.completed,
            st.retried,
            st.faulted,
            st.deadline_exceeded,
            st.rejected_backpressure,
            st.rejected_quarantine,
            p50,
            p95,
            p99
        );
        if st.terminal() != st.submitted {
            eprintln!(
                "termination: session {} submitted {} but only {} reached a terminal state",
                s.name(),
                st.submitted,
                st.terminal()
            );
            failed = true;
        }
    }

    let report = server.drain();
    if !report.leak_free() {
        eprintln!(
            "leak: {} machine-arena checkout(s) outstanding after drain",
            report.outstanding_checkouts
        );
        failed = true;
    }
    println!(
        "drain: {} session(s), {} checkout(s) outstanding",
        report.sessions.len(),
        report.outstanding_checkouts
    );
    if failed {
        std::process::exit(1);
    }
    println!("service smoke: all gates passed");
}

// ------------------------------------------------------------- profiling

/// `repro --profile`: the per-pc execution profile of the arclen kernel
/// — the "hottest pcs by time × error" view. One fused-shadow run with
/// [`ExecOptions::profile`] yields both the dispatch counts (execution
/// frequency ≈ time share in a uniform-dispatch interpreter) and the
/// per-pc local-error samples ([`PcSample`]), so each row marries how
/// *often* an instruction ran with how much rounding error it produced.
fn profile_table() {
    header("per-pc execution profile: arclen, all floats demoted to f32 (f64 shadow)");
    let p = chef_apps::arclen::program();
    let primal = p
        .function(chef_apps::arclen::NAME)
        .or_fail("arclen kernel not found");
    // Fully demoted: undemoted arclen has no rounding sites relative to
    // the f64 shadow, and an all-zero error column ranks nothing.
    let mut pm = PrecisionMap::empty();
    for (id, v) in primal.vars_iter() {
        use chef_ir::types::{ElemTy, Type};
        if let Type::Float(_) | Type::Array(ElemTy::Float(_)) = v.ty {
            pm.set(id, chef_ir::types::FloatTy::F32);
        }
    }
    let func = chef_exec::compile::compile(
        primal,
        &chef_exec::compile::CompileOptions {
            precisions: pm,
            ..Default::default()
        },
    )
    .or_fail("arclen compile failed");
    let opts = ExecOptions {
        profile: true,
        ..Default::default()
    };
    let mut sm = chef_exec::shadow::ShadowMachine::<f64>::new();
    let out = sm
        .run_reused(&func, vec![ArgValue::I(10_000)], &opts)
        .or_fail("arclen profiled shadow run trapped");
    let prof = out
        .profile
        .as_ref()
        .or_fail("profile missing despite ExecOptions::profile");

    // The profiler's ground-truth invariant: per-pc increments sum to
    // exactly the block-granular instruction count.
    assert_eq!(
        prof.total(),
        out.stats.instrs_executed,
        "per-pc counts must sum to instrs_executed"
    );
    // And the plain VM (packed dispatch, no shadow) counts identically.
    let vm_out = chef_exec::vm::Machine::new()
        .run_reused(&func, vec![ArgValue::I(10_000)], &opts)
        .or_fail("arclen profiled vm run trapped");
    assert_eq!(
        vm_out.profile.as_ref().map(|p| &p.pc_counts),
        Some(&prof.pc_counts),
        "vm and shadow profiles must agree"
    );

    let total = prof.total() as f64;
    let acc: f64 = out.samples.iter().map(|s| s.sum).sum();
    println!(
        "{:>4} {:<14} {:>12} {:>7} {:>12} {:>7}",
        "pc", "op", "count", "time%", "err sum", "err%"
    );
    for (pc, count) in prof.hottest(16) {
        let s = &out.samples[pc];
        let err_pct = if acc > 0.0 { 100.0 * s.sum / acc } else { 0.0 };
        println!(
            "{pc:>4} {:<14} {count:>12} {:>6.2}% {:>12} {err_pct:>6.2}%",
            chef_exec::vm::instr_mnemonic(&func.instrs[pc]),
            100.0 * count as f64 / total,
            sci(s.sum),
        );
    }
    println!("\nby opcode:");
    for (op, count) in prof.opcode_histogram(&func) {
        println!(
            "{op:<14} {count:>12} {:>6.2}%",
            100.0 * count as f64 / total
        );
    }
    println!(
        "\n{} instructions dispatched, accumulated local error {}",
        prof.total(),
        sci(acc)
    );
}

// ------------------------------------------------------------ perf delta

/// Prints a before/after table of two `BENCH_smoke.json` snapshots (CI's
/// perf-delta step). Informational: absolute numbers vary across runners,
/// so the gate is the test suite and the oracle band, not this table.
fn perf_delta(old_path: &str, new_path: &str) {
    use chef_core::json::{parse, Json};
    let load = |path: &str| -> Json {
        let text = std::fs::read_to_string(path).or_fail(&format!("cannot read snapshot `{path}`"));
        parse(&text).or_fail(&format!("snapshot `{path}` is not valid JSON"))
    };
    let old = load(old_path);
    let new = load(new_path);
    header(&format!("perf delta: {old_path} -> {new_path}"));
    println!(
        "{:<26} {:>12} {:>12} {:>9}",
        "metric", "old ms", "new ms", "speedup"
    );
    let (Json::Obj(old_map), Json::Obj(new_map)) = (&old, &new) else {
        eprintln!("repro: snapshots are not JSON objects");
        std::process::exit(1);
    };
    let mut keys: Vec<&String> = old_map.keys().chain(new_map.keys()).collect();
    keys.sort();
    keys.dedup();
    for key in keys {
        match (
            old_map.get(key.as_str()).and_then(Json::as_f64),
            new_map.get(key.as_str()).and_then(Json::as_f64),
        ) {
            (Some(o), Some(n)) => {
                println!("{key:<26} {o:>12.3} {n:>12.3} {:>8.2}x", o / n);
            }
            // A key present on only one side (snapshots gain and lose
            // metrics across PRs) is informational, never an error.
            (o, n) => {
                let fmt = |v: Option<f64>| match v {
                    Some(v) => format!("{v:.3}"),
                    None => "-".to_string(),
                };
                println!("{key:<26} {:>12} {:>12} {:>9}", fmt(o), fmt(n), "n/a");
            }
        }
    }
}
