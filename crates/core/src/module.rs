//! The Error Estimation Module (paper §III-D, Fig. 3).
//!
//! Bridges the AD engine's callback system to an [`ErrorModel`]: it
//! subscribes to `chef-ad`'s adjoint generation as an
//! [`AdjointExtension`], asks the model for an error expression at every
//! differentiable assignment, and synthesizes
//!
//! * `_fp_error += <model expr>;` — the running total (output parameter
//!   `E` of rule S1),
//! * `_var_err[slot] += <model expr>;` — per-variable attribution (when
//!   enabled), and
//! * the `FinalizeEE` input contributions, including loops over array
//!   parameters whose length parameter is known.
//!
//! The generated signature ends with
//! `(..., double &_fp_error, double &_primal_out[, double _var_err[]])`.

use crate::model::{ErrorModel, ModelCtx};
use chef_ad::reverse::{AdjointExtension, AssignCtx, FinalizeCtx};
use chef_ir::ast::*;
use chef_ir::types::{ElemTy, FloatTy, Type};
use std::collections::HashMap;

/// Stable attribution slots: one per float variable of the primal.
#[derive(Clone, Debug, Default)]
pub struct VarSlots {
    /// Slot index → variable name (primal naming).
    pub names: Vec<String>,
    index: HashMap<String, usize>,
}

impl VarSlots {
    /// Builds slots for every differentiable variable of `primal`
    /// (parameters first, then locals, in declaration order).
    pub fn of_function(primal: &Function) -> VarSlots {
        let mut s = VarSlots::default();
        for (_, info) in primal.vars_iter() {
            if info.ty.is_differentiable() {
                s.index.insert(info.name.clone(), s.names.len());
                s.names.push(info.name.clone());
            }
        }
        s
    }

    /// The slot of a variable name, if tracked.
    pub fn slot(&self, name: &str) -> Option<usize> {
        self.index.get(name).copied()
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when no variable is tracked.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

/// Configuration of the estimation module.
#[derive(Clone, Debug, Default)]
pub struct ModuleConfig {
    /// Emit per-variable attribution (`_var_err[]` output).
    pub attribution: bool,
    /// For each float array parameter, a KernelC integer expression over
    /// the function's parameters giving its element count (e.g. `"n"` or
    /// `"npoints * nfeatures"`) — enables input-error loops in
    /// `FinalizeEE`.
    pub array_lens: HashMap<String, String>,
}

/// Names of the parameters the module appends (positions are resolved by
/// the caller from the generated signature).
pub struct ExtraParamNames;

impl ExtraParamNames {
    /// The running total output.
    pub const FP_ERROR: &'static str = "_fp_error";
    /// The primal result output.
    pub const PRIMAL_OUT: &'static str = "_primal_out";
    /// The attribution table.
    pub const VAR_ERR: &'static str = "_var_err";
}

/// The Error Estimation Module: an [`AdjointExtension`] parameterized by a
/// user [`ErrorModel`].
pub struct EstimationModule<'m> {
    model: &'m mut dyn ErrorModel,
    slots: VarSlots,
    cfg: ModuleConfig,
    fresh: usize,
    /// Number of assignments instrumented (for reports/tests).
    pub instrumented: usize,
}

impl<'m> EstimationModule<'m> {
    /// Creates a module for `primal` around `model`.
    pub fn new(model: &'m mut dyn ErrorModel, primal: &Function, cfg: ModuleConfig) -> Self {
        EstimationModule {
            model,
            slots: VarSlots::of_function(primal),
            cfg,
            fresh: 0,
            instrumented: 0,
        }
    }

    /// The attribution slot table.
    pub fn slots(&self) -> &VarSlots {
        &self.slots
    }

    /// Emits `_fp_error += err;` (+ attribution) given the error
    /// expression. Shared by assign and finalize paths.
    fn emit_accumulation(
        &mut self,
        grad: &mut Function,
        err: Expr,
        var_name: &str,
        out: &mut Vec<Stmt>,
    ) {
        let fp_id = grad
            .param_id(ExtraParamNames::FP_ERROR)
            .expect("module adds _fp_error");
        let slot = if self.cfg.attribution {
            self.slots.slot(var_name)
        } else {
            None
        };
        if let Some(slot) = slot {
            // double _ee{k} = err; _fp_error += _ee{k}; _var_err[slot] += _ee{k};
            let name = format!("_ee{}", self.fresh);
            self.fresh += 1;
            let id = grad.add_var(name.clone(), Type::Float(FloatTy::F64));
            out.push(Stmt::synth(StmtKind::Decl {
                name: name.clone(),
                id: Some(id),
                ty: Type::Float(FloatTy::F64),
                size: None,
                init: Some(err),
            }));
            let read = || Expr::var(&name, id, Type::Float(FloatTy::F64));
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: LValue::Var(VarRef::resolved(ExtraParamNames::FP_ERROR, fp_id)),
                op: AssignOp::AddAssign,
                rhs: read(),
            }));
            let arr_id = grad
                .param_id(ExtraParamNames::VAR_ERR)
                .expect("attribution on");
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: LValue::Index {
                    base: VarRef::resolved(ExtraParamNames::VAR_ERR, arr_id),
                    index: Expr::ilit(slot as i64),
                },
                op: AssignOp::AddAssign,
                rhs: read(),
            }));
        } else {
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: LValue::Var(VarRef::resolved(ExtraParamNames::FP_ERROR, fp_id)),
                op: AssignOp::AddAssign,
                rhs: err,
            }));
        }
    }
}

/// Parses an `array_lens` length hint (a KernelC int expression over the
/// function's parameters) and resolves its variable references against the
/// generated function's parameters. Returns `None` when the hint does not
/// parse or references unknown names.
pub fn resolve_len_expr(src: &str, grad: &Function) -> Option<Expr> {
    let mut e = chef_ir::parser::parse_expr(src).ok()?;
    fn resolve(e: &mut Expr, grad: &Function) -> bool {
        match &mut e.kind {
            ExprKind::Var(v) => match grad.param_id(&v.name) {
                Some(id) => {
                    v.id = Some(id);
                    e.ty = Some(grad.var(id).ty);
                    grad.var(id).ty == Type::Int
                }
                None => false,
            },
            ExprKind::IntLit(_) => {
                e.ty = Some(Type::Int);
                true
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let ok = op.is_arith() && resolve(lhs, grad) && resolve(rhs, grad);
                e.ty = Some(Type::Int);
                ok
            }
            _ => false,
        }
    }
    if resolve(&mut e, grad) {
        Some(e)
    } else {
        None
    }
}

impl AdjointExtension for EstimationModule<'_> {
    fn extra_params(&self) -> Vec<Param> {
        let mut ps = vec![
            Param::by_ref(ExtraParamNames::FP_ERROR, Type::Float(FloatTy::F64)),
            Param::by_ref(ExtraParamNames::PRIMAL_OUT, Type::Float(FloatTy::F64)),
        ];
        if self.cfg.attribution {
            ps.push(Param::array(
                ExtraParamNames::VAR_ERR,
                ElemTy::Float(FloatTy::F64),
            ));
        }
        ps
    }

    fn on_assign(&mut self, ctx: &mut AssignCtx<'_>) -> Vec<Stmt> {
        let mctx = ModelCtx {
            var_name: &ctx.var_name,
            value: &ctx.value,
            adjoint: &ctx.adjoint,
            target_prec: ctx.target_prec,
            is_element: ctx.is_element,
            in_loop: ctx.in_loop,
            span: ctx.span,
        };
        let Some(err) = self.model.assign_error(&mctx) else {
            return Vec::new();
        };
        self.instrumented += 1;
        let mut out = Vec::new();
        let var_name = ctx.var_name.clone();
        self.emit_accumulation(ctx.grad, err, &var_name, &mut out);
        out
    }

    fn on_finalize(&mut self, ctx: &mut FinalizeCtx<'_>) -> Vec<Stmt> {
        let mut out = Vec::new();
        // Export the primal result.
        let po_id = ctx
            .grad
            .param_id(ExtraParamNames::PRIMAL_OUT)
            .expect("module param");
        out.push(Stmt::synth(StmtKind::Assign {
            lhs: LValue::Var(VarRef::resolved(ExtraParamNames::PRIMAL_OUT, po_id)),
            op: AssignOp::Assign,
            rhs: ctx.result.clone(),
        }));
        // Input representation-error contributions (rule S1).
        let inputs = std::mem::take(&mut ctx.inputs);
        for input in &inputs {
            if input.is_array {
                // Need a length to loop over.
                let Some(len_src) = self.cfg.array_lens.get(&input.name).cloned() else {
                    continue;
                };
                let Some(len_expr) = resolve_len_expr(&len_src, ctx.grad) else {
                    continue;
                };
                let iname = format!("_fi{}", self.fresh);
                self.fresh += 1;
                let iid = ctx.grad.add_var(iname.clone(), Type::Int);
                let iread = || Expr::var(&iname, iid, Type::Int);
                let arr_info = ctx.grad.var(input.var);
                let darr_info = ctx.grad.var(input.d_var);
                let value = Expr::index(
                    arr_info.name.clone(),
                    input.var,
                    iread(),
                    Type::Float(input.prec),
                );
                let adjoint = Expr::index(
                    darr_info.name.clone(),
                    input.d_var,
                    iread(),
                    Type::Float(FloatTy::F64),
                );
                let Some(err) = self
                    .model
                    .input_error(&input.name, &value, &adjoint, input.prec)
                else {
                    continue;
                };
                let mut body = Vec::new();
                let input_name = input.name.clone();
                self.emit_accumulation(ctx.grad, err, &input_name, &mut body);
                out.push(Stmt::synth(StmtKind::For {
                    init: Some(Box::new(Stmt::synth(StmtKind::Decl {
                        name: iname.clone(),
                        id: Some(iid),
                        ty: Type::Int,
                        size: None,
                        init: Some(Expr::ilit(0)),
                    }))),
                    cond: Some(Expr::binary(BinOp::Lt, iread(), len_expr.clone())),
                    step: Some(Box::new(Stmt::synth(StmtKind::Assign {
                        lhs: LValue::Var(VarRef::resolved(iname.clone(), iid)),
                        op: AssignOp::AddAssign,
                        rhs: Expr::ilit(1),
                    }))),
                    body: Block::of(body),
                }));
            } else {
                let info = ctx.grad.var(input.var);
                let value = Expr::var(info.name.clone(), input.var, Type::Float(input.prec));
                let dinfo = ctx.grad.var(input.d_var);
                let adjoint = Expr::var(dinfo.name.clone(), input.d_var, Type::Float(FloatTy::F64));
                if let Some(err) = self
                    .model
                    .input_error(&input.name, &value, &adjoint, input.prec)
                {
                    let input_name = input.name.clone();
                    self.emit_accumulation(ctx.grad, err, &input_name, &mut out);
                }
            }
        }
        out
    }
}
