//! The user-facing `estimate_error` API (paper Listing 1).
//!
//! ```
//! use chef_core::prelude::*;
//! use chef_exec::prelude::ArgValue;
//!
//! let src = "
//!     float func(float x, float y) {
//!         float z;
//!         z = x + y;
//!         return z;
//!     }";
//! // Call estimate_error on the target function.
//! let est = estimate_error_src(src, "func", &EstimateOptions::default()).unwrap();
//! // Execute the generated code.
//! let out = est.execute(&[ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)]).unwrap();
//! // out.fp_error now contains the error of func.
//! assert!(out.fp_error > 0.0);
//! assert_eq!(out.gradient_f("x"), 1.0);
//! ```

use crate::model::{ErrorModel, TaylorModel};
use crate::module::{EstimationModule, ModuleConfig, VarSlots};
use chef_ad::reverse::{reverse_diff_with, AdError, ReverseConfig};
use chef_exec::prelude::*;
use chef_ir::ast::{Function, Program};
use chef_ir::diag::{Diagnostic, Diagnostics};
use chef_ir::types::Type;
use chef_passes::inline::InlineError;
use chef_passes::pipeline::OptLevel;
use std::collections::HashMap;

/// Everything that can go wrong while building an estimator.
#[derive(Debug)]
pub enum ChefError {
    /// Lexical/syntax error.
    Parse(Diagnostic),
    /// Type errors.
    Typeck(Diagnostics),
    /// Inlining failure.
    Inline(InlineError),
    /// Differentiation failure.
    Ad(AdError),
    /// Bytecode compilation failure.
    Compile(CompileError),
    /// The generated code trapped at runtime (OOB index, div-by-zero,
    /// tape out-of-memory, …).
    Trap(Trap),
    /// No such function in the program.
    UnknownFunction(String),
    /// The request is outside what the pipeline supports (e.g. the
    /// shadow oracle on a function that does not return a float).
    Unsupported(String),
}

impl From<Trap> for ChefError {
    fn from(t: Trap) -> Self {
        ChefError::Trap(t)
    }
}

impl std::fmt::Display for ChefError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChefError::Parse(d) => write!(f, "parse error: {d}"),
            ChefError::Typeck(d) => write!(f, "type error: {d}"),
            ChefError::Inline(e) => write!(f, "inline error: {e}"),
            ChefError::Ad(e) => write!(f, "AD error: {e}"),
            ChefError::Compile(e) => write!(f, "compile error: {e}"),
            ChefError::Trap(t) => write!(f, "runtime trap: {t}"),
            ChefError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            ChefError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for ChefError {}

/// Options for [`estimate_error`].
pub struct EstimateOptions {
    /// Optimization level applied to the generated adjoint+EE code.
    pub opt_level: OptLevel,
    /// Run the TBR analysis (fewer tape pushes).
    pub tbr: bool,
    /// Per-variable error attribution.
    pub attribution: bool,
    /// Array parameter name → length parameter name (enables input-error
    /// loops over array inputs).
    pub array_lens: HashMap<String, String>,
    /// VM options for execution (tape limits, approximate intrinsics…).
    pub exec: ExecOptions,
}

impl Default for EstimateOptions {
    fn default() -> Self {
        EstimateOptions {
            opt_level: OptLevel::O2,
            tbr: true,
            attribution: true,
            array_lens: HashMap::new(),
            exec: ExecOptions::default(),
        }
    }
}

impl EstimateOptions {
    /// Registers an array-length pairing (builder style).
    pub fn with_array_len(mut self, array: impl Into<String>, len: impl Into<String>) -> Self {
        self.array_lens.insert(array.into(), len.into());
        self
    }
}

/// Where each adjoint output lives in the generated signature.
#[derive(Clone, Debug)]
struct AdjointSlot {
    /// Primal parameter name.
    name: String,
    /// Index of the corresponding primal argument.
    primal_idx: usize,
    /// `true` if this is an array adjoint.
    is_array: bool,
}

/// A ready-to-run error-estimating gradient (the `df` of Listing 1).
pub struct ErrorEstimator {
    /// The generated adjoint + EE function (KernelC AST) — inspect with
    /// [`ErrorEstimator::generated_source`].
    pub grad: Function,
    compiled: CompiledFunction,
    slots: VarSlots,
    adjoints: Vec<AdjointSlot>,
    n_primal: usize,
    attribution: bool,
    exec: ExecOptions,
    /// Session-scoped machine arena: batch executions draw per-worker
    /// machines from here, so consecutive batches (and other estimators
    /// sharing the analysis session via [`ErrorEstimator::arena`]) reuse
    /// one set of register-file/tape allocations.
    arena: chef_exec::arena::MachineArena,
    /// Number of assignments the model instrumented.
    pub instrumented_assignments: usize,
}

/// The result of one estimator execution.
#[derive(Clone, Debug)]
pub struct EstimateOutcome {
    /// The primal function value.
    pub value: f64,
    /// Total estimated FP error (the `fp_error` of Listing 1).
    pub fp_error: f64,
    /// Gradient of each differentiable input: name → adjoint value(s).
    pub gradient: Vec<(String, ArgValue)>,
    /// Per-variable error attribution (empty unless enabled).
    pub per_variable: HashMap<String, f64>,
    /// VM statistics (analysis time proxies: instructions, tape peak…).
    pub stats: ExecStats,
}

impl EstimateOutcome {
    /// Scalar gradient component by parameter name (panics when absent).
    pub fn gradient_f(&self, name: &str) -> f64 {
        match self.gradient.iter().find(|(n, _)| n == name) {
            Some((_, ArgValue::F(v))) => *v,
            other => panic!("no scalar gradient for `{name}`: {other:?}"),
        }
    }

    /// Array gradient component by parameter name (panics when absent).
    pub fn gradient_arr(&self, name: &str) -> &[f64] {
        match self.gradient.iter().find(|(n, _)| n == name) {
            Some((_, ArgValue::FArr(v))) => v,
            other => panic!("no array gradient for `{name}`: {other:?}"),
        }
    }

    /// Attribution for one variable (0.0 when untracked).
    pub fn error_of(&self, var: &str) -> f64 {
        self.per_variable.get(var).copied().unwrap_or(0.0)
    }
}

/// Builds an error estimator for `func` in `program` using the default
/// Taylor model (paper eq. 1).
pub fn estimate_error(
    program: &Program,
    func: &str,
    opts: &EstimateOptions,
) -> Result<ErrorEstimator, ChefError> {
    estimate_error_with(program, func, &mut TaylorModel::declared(), opts)
}

/// Builds an error estimator with a custom [`ErrorModel`] (paper §III-E).
pub fn estimate_error_with(
    program: &Program,
    func: &str,
    model: &mut dyn ErrorModel,
    opts: &EstimateOptions,
) -> Result<ErrorEstimator, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;

    let cfg = ModuleConfig {
        attribution: opts.attribution,
        array_lens: opts.array_lens.clone(),
    };
    let mut module = EstimationModule::new(model, primal, cfg);
    let rcfg = ReverseConfig {
        tbr: opts.tbr,
        ..Default::default()
    };
    let mut grad = reverse_diff_with(primal, &rcfg, &mut module).map_err(ChefError::Ad)?;
    let slots = module.slots().clone();
    let instrumented = module.instrumented;
    chef_passes::optimize_function(&mut grad, opts.opt_level);
    let compiled = chef_exec::compile::compile_default(&grad).map_err(ChefError::Compile)?;

    let mut adjoints = Vec::new();
    for (i, p) in primal.params.iter().enumerate() {
        match p.ty {
            Type::Float(_) => adjoints.push(AdjointSlot {
                name: p.name.clone(),
                primal_idx: i,
                is_array: false,
            }),
            Type::Array(chef_ir::types::ElemTy::Float(_)) => adjoints.push(AdjointSlot {
                name: p.name.clone(),
                primal_idx: i,
                is_array: true,
            }),
            _ => {}
        }
    }
    Ok(ErrorEstimator {
        grad,
        compiled,
        slots,
        adjoints,
        n_primal: primal.params.len(),
        attribution: opts.attribution,
        exec: opts.exec.clone(),
        arena: chef_exec::arena::MachineArena::new(),
        instrumented_assignments: instrumented,
    })
}

/// Convenience: parse + typecheck + [`estimate_error`] in one call.
pub fn estimate_error_src(
    src: &str,
    func: &str,
    opts: &EstimateOptions,
) -> Result<ErrorEstimator, ChefError> {
    let mut program = chef_ir::parser::parse_program(src).map_err(ChefError::Parse)?;
    chef_ir::typeck::check_program(&mut program).map_err(ChefError::Typeck)?;
    estimate_error(&program, func, opts)
}

/// Convenience: parse + typecheck + custom-model estimator.
pub fn estimate_error_src_with(
    src: &str,
    func: &str,
    model: &mut dyn ErrorModel,
    opts: &EstimateOptions,
) -> Result<ErrorEstimator, ChefError> {
    let mut program = chef_ir::parser::parse_program(src).map_err(ChefError::Parse)?;
    chef_ir::typeck::check_program(&mut program).map_err(ChefError::Typeck)?;
    estimate_error_with(&program, func, model, opts)
}

impl ErrorEstimator {
    /// The generated adjoint + error-estimation code, as readable KernelC
    /// (the equivalent of dumping Clad's generated derivative).
    pub fn generated_source(&self) -> String {
        chef_ir::printer::print_function(&self.grad)
    }

    /// The attribution slot table.
    pub fn slots(&self) -> &VarSlots {
        &self.slots
    }

    /// Executes the estimator on the primal arguments (Listing 1's
    /// `df.execute(...)`): adjoint seeds and EE outputs are appended
    /// automatically.
    pub fn execute(&self, primal_args: &[ArgValue]) -> Result<EstimateOutcome, Trap> {
        self.execute_with(primal_args, &self.exec)
    }

    /// Executes with explicit VM options (tape limits, approximations).
    pub fn execute_with(
        &self,
        primal_args: &[ArgValue],
        exec: &ExecOptions,
    ) -> Result<EstimateOutcome, Trap> {
        let args = self.build_vm_args(primal_args);
        let out = chef_exec::vm::run_with(&self.compiled, args, exec)?;
        Ok(self.decode_outcome(out))
    }

    /// Executes the estimator on every argument set, in parallel across
    /// threads (each with its own reusable VM), preserving input order.
    ///
    /// This is the analysis-loop fast path: the generated code is
    /// compiled once, and independent estimates (tuner candidates, the
    /// per-option study of Table IV) fan out over
    /// [`chef_exec::vm::run_batch_parallel`].
    pub fn execute_batch(&self, arg_sets: &[Vec<ArgValue>]) -> Vec<Result<EstimateOutcome, Trap>> {
        self.execute_batch_with(arg_sets, &self.exec, None)
    }

    /// [`ErrorEstimator::execute_batch`] with explicit VM options and an
    /// optional thread cap (`Some(1)` forces the serial machine-reuse
    /// path).
    pub fn execute_batch_with(
        &self,
        arg_sets: &[Vec<ArgValue>],
        exec: &ExecOptions,
        max_threads: Option<usize>,
    ) -> Vec<Result<EstimateOutcome, Trap>> {
        let vm_args: Vec<Vec<ArgValue>> =
            arg_sets.iter().map(|set| self.build_vm_args(set)).collect();
        chef_exec::vm::run_batch_parallel_in(
            &self.compiled,
            vm_args,
            exec,
            max_threads,
            &self.arena,
        )
        .into_iter()
        .map(|r| r.map(|out| self.decode_outcome(out)))
        .collect()
    }

    /// The estimator's machine arena — expose it to share machine
    /// allocations with other engines in the same analysis session.
    pub fn arena(&self) -> &chef_exec::arena::MachineArena {
        &self.arena
    }

    /// Appends adjoint seeds and EE output slots to the primal arguments.
    fn build_vm_args(&self, primal_args: &[ArgValue]) -> Vec<ArgValue> {
        let mut args: Vec<ArgValue> = primal_args.to_vec();
        for adj in &self.adjoints {
            if adj.is_array {
                let len = primal_args[adj.primal_idx].as_farr().len();
                args.push(ArgValue::FArr(vec![0.0; len]));
            } else {
                args.push(ArgValue::F(0.0));
            }
        }
        args.push(ArgValue::F(0.0)); // _fp_error
        args.push(ArgValue::F(0.0)); // _primal_out
        if self.attribution {
            args.push(ArgValue::FArr(vec![0.0; self.slots.len()]));
        }
        args
    }

    /// Unpacks a VM outcome into the estimate structure.
    fn decode_outcome(&self, out: chef_exec::vm::CallOutcome) -> EstimateOutcome {
        let extras_at = self.n_primal + self.adjoints.len();
        let fp_error = out.args[extras_at].as_f();
        let value = out.args[extras_at + 1].as_f();
        let mut per_variable = HashMap::new();
        if self.attribution {
            let table = out.args[extras_at + 2].as_farr();
            for (slot, name) in self.slots.names.iter().enumerate() {
                per_variable.insert(name.clone(), table[slot]);
            }
        }
        let gradient = self
            .adjoints
            .iter()
            .enumerate()
            .map(|(k, adj)| (adj.name.clone(), out.args[self.n_primal + k].clone()))
            .collect();
        EstimateOutcome {
            value,
            fp_error,
            gradient,
            per_variable,
            stats: out.stats,
        }
    }
}
