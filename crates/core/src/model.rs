//! Error models: the pluggable `AssignError` formulas.
//!
//! A model receives, for every FP assignment in the backward sweep, the
//! assigned *value* expression and its *adjoint* expression (paper
//! Listing 2's `StmtDiff refExpr` exposes exactly this pair plus the
//! name), and returns the KernelC expression whose value is that
//! assignment's error contribution. The error-estimation module
//! (`crate::module`) accumulates the returned expressions into the
//! `_fp_error` output and the per-variable attribution table.
//!
//! Three models from the paper ship built in:
//!
//! * [`TaylorModel`] — eq. 1, `|ε_m · x · x̄|`, the default model;
//! * [`AdaptModel`] — eq. 2, `|x̄ · (x − (float)x)|`, ADAPT's demotion
//!   model used for mixed-precision candidate selection;
//! * [`ApproxModel`] — Algorithm 2, `|x̄ · (f(x) − f̃(x))|` for variables
//!   feeding approximable functions (the FastApprox study).
//!
//! Implement the trait yourself for domain-specific analyses — the paper's
//! §III-E "custom model" escape hatch.

use chef_ir::ast::{Expr, Intrinsic};
use chef_ir::span::Span;
use chef_ir::types::{FloatTy, Type};
use std::collections::HashMap;

/// What a model sees for one assignment (a stable, reduced view of
/// `chef_ad::AssignCtx`).
pub struct ModelCtx<'a> {
    /// Source-level variable name.
    pub var_name: &'a str,
    /// Expression reading the just-assigned value.
    pub value: &'a Expr,
    /// Expression reading the adjoint of the assignment's result.
    pub adjoint: &'a Expr,
    /// Declared precision of the assigned location.
    pub target_prec: FloatTy,
    /// `true` for array-element stores.
    pub is_element: bool,
    /// `true` inside a loop.
    pub in_loop: bool,
    /// Source location of the assignment.
    pub span: Span,
}

/// A floating-point error model (paper Listing 2's
/// `FPErrorEstimationModel`).
pub trait ErrorModel {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Error-contribution expression for one assignment, or `None` to
    /// skip it (rule S2's `AssignError`).
    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<Expr>;

    /// Error-contribution expression for one *input* (value/adjoint pair),
    /// added during `FinalizeEE` (rule S1). Default: none.
    fn input_error(
        &mut self,
        _name: &str,
        _value: &Expr,
        _adjoint: &Expr,
        _prec: FloatTy,
    ) -> Option<Expr> {
        None
    }
}

fn fabs(e: Expr) -> Expr {
    Expr::call(Intrinsic::Fabs, vec![e])
}

/// The default model (paper eq. 1): `A = |ε · x · x̄|`.
///
/// With [`TaylorModel::declared`], `ε` is the machine epsilon of each
/// assignment's *declared* precision — the total rounding error of the
/// program as written. With [`TaylorModel::for_demotion`], `ε` is the
/// epsilon of a hypothetical lower precision — "what would the error be
/// if everything ran at `ft`", the query driving mixed-precision tuning.
#[derive(Clone, Debug)]
pub struct TaylorModel {
    /// Fixed epsilon override (None = use declared precision).
    demote_to: Option<FloatTy>,
}

impl TaylorModel {
    /// Epsilon from each variable's declared precision.
    pub fn declared() -> Self {
        TaylorModel { demote_to: None }
    }

    /// Epsilon of the hypothetical demotion target `ft` for every
    /// assignment.
    pub fn for_demotion(ft: FloatTy) -> Self {
        TaylorModel {
            demote_to: Some(ft),
        }
    }
}

impl Default for TaylorModel {
    fn default() -> Self {
        TaylorModel::declared()
    }
}

impl ErrorModel for TaylorModel {
    fn name(&self) -> &'static str {
        "taylor"
    }

    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<Expr> {
        let eps = self.demote_to.unwrap_or(ctx.target_prec).epsilon();
        Some(Expr::mul(
            Expr::flit(eps),
            fabs(Expr::mul(ctx.value.clone(), ctx.adjoint.clone())),
        ))
    }

    fn input_error(
        &mut self,
        _name: &str,
        value: &Expr,
        adjoint: &Expr,
        prec: FloatTy,
    ) -> Option<Expr> {
        let eps = self.demote_to.unwrap_or(prec).epsilon();
        Some(Expr::mul(
            Expr::flit(eps),
            fabs(Expr::mul(value.clone(), adjoint.clone())),
        ))
    }
}

/// ADAPT's model (paper eq. 2): `Δ = |x̄ · (x − (float)x)|`.
///
/// The exact error committed by demoting each value to `target`; the
/// paper's Listing 3 builds precisely this call. Requires the analyzed
/// program to run at a precision above `target` (contributions are zero
/// otherwise — the cast is the identity).
#[derive(Clone, Debug)]
pub struct AdaptModel {
    /// Demotion target (the paper uses `float`).
    pub target: FloatTy,
}

impl AdaptModel {
    /// The paper's configuration: demote `double` to `float`.
    pub fn to_f32() -> Self {
        AdaptModel {
            target: FloatTy::F32,
        }
    }

    /// Demote to an arbitrary precision (f16 studies).
    pub fn to(target: FloatTy) -> Self {
        AdaptModel { target }
    }

    fn formula(&self, value: &Expr, adjoint: &Expr) -> Expr {
        let demoted = Expr::cast(Type::Float(self.target), value.clone());
        let gap = Expr::sub(value.clone(), demoted);
        fabs(Expr::mul(adjoint.clone(), gap))
    }
}

impl ErrorModel for AdaptModel {
    fn name(&self) -> &'static str {
        "adapt"
    }

    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<Expr> {
        Some(self.formula(ctx.value, ctx.adjoint))
    }

    fn input_error(
        &mut self,
        _name: &str,
        value: &Expr,
        adjoint: &Expr,
        _prec: FloatTy,
    ) -> Option<Expr> {
        Some(self.formula(value, adjoint))
    }
}

/// The approximation-error model (paper Algorithm 2).
///
/// Configured with a map from variable names to the function they feed
/// (`S : name → function`); when one of those variables is assigned, the
/// contribution is `|x̄ · (f(x) − f̃(x))|` with `f̃` the FastApprox
/// replacement at the configured grade.
#[derive(Clone, Debug, Default)]
pub struct ApproxModel {
    /// var name → (exact intrinsic, approximate intrinsic).
    map: HashMap<String, (Intrinsic, Intrinsic)>,
}

impl ApproxModel {
    /// Empty map (no contributions).
    pub fn new() -> Self {
        ApproxModel::default()
    }

    /// Registers: variable `var` is the input of `exact`, which the
    /// approximate configuration replaces by `approx`.
    pub fn with(mut self, var: impl Into<String>, exact: Intrinsic, approx: Intrinsic) -> Self {
        assert_eq!(exact.arity(), 1, "only unary replacements are modeled");
        assert_eq!(approx.arity(), 1);
        self.map.insert(var.into(), (exact, approx));
        self
    }

    /// Variables being tracked.
    pub fn tracked(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }
}

impl ErrorModel for ApproxModel {
    fn name(&self) -> &'static str {
        "approx"
    }

    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<Expr> {
        let (exact, approx) = *self.map.get(ctx.var_name)?;
        // Δ = EVAL(f, x) − EVALAPPROX(f, x)   (Algorithm 2, line 4)
        let delta = Expr::sub(
            Expr::call(exact, vec![ctx.value.clone()]),
            Expr::call(approx, vec![ctx.value.clone()]),
        );
        // xApproxError = |dx · Δ|            (Algorithm 2, line 6)
        Some(fabs(Expr::mul(ctx.adjoint.clone(), delta)))
    }

    fn input_error(
        &mut self,
        name: &str,
        value: &Expr,
        adjoint: &Expr,
        _prec: FloatTy,
    ) -> Option<Expr> {
        // Mapped variables can be parameters: they are never assigned, so
        // their contribution is added at FinalizeEE instead.
        let (exact, approx) = *self.map.get(name)?;
        let delta = Expr::sub(
            Expr::call(exact, vec![value.clone()]),
            Expr::call(approx, vec![value.clone()]),
        );
        Some(fabs(Expr::mul(adjoint.clone(), delta)))
    }
}

/// A model combinator: sums the contributions of two models (e.g. Taylor
/// rounding error *plus* approximation error).
pub struct SumModel<A, B>(pub A, pub B);

impl<A: ErrorModel, B: ErrorModel> ErrorModel for SumModel<A, B> {
    fn name(&self) -> &'static str {
        "sum"
    }

    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<Expr> {
        match (self.0.assign_error(ctx), self.1.assign_error(ctx)) {
            (Some(a), Some(b)) => Some(Expr::add(a, b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }

    fn input_error(
        &mut self,
        name: &str,
        value: &Expr,
        adjoint: &Expr,
        prec: FloatTy,
    ) -> Option<Expr> {
        match (
            self.0.input_error(name, value, adjoint, prec),
            self.1.input_error(name, value, adjoint, prec),
        ) {
            (Some(a), Some(b)) => Some(Expr::add(a, b)),
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (None, None) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::ast::VarId;
    use chef_ir::printer::print_expr;

    fn ctx_parts() -> (Expr, Expr) {
        let value = Expr::var("z", VarId(0), Type::Float(FloatTy::F64));
        let adjoint = Expr::var("_d_z", VarId(1), Type::Float(FloatTy::F64));
        (value, adjoint)
    }

    fn mk_ctx<'a>(value: &'a Expr, adjoint: &'a Expr, prec: FloatTy) -> ModelCtx<'a> {
        ModelCtx {
            var_name: "z",
            value,
            adjoint,
            target_prec: prec,
            is_element: false,
            in_loop: false,
            span: Span::DUMMY,
        }
    }

    #[test]
    fn taylor_uses_declared_epsilon() {
        let (v, a) = ctx_parts();
        let mut m = TaylorModel::declared();
        let e = m.assign_error(&mk_ctx(&v, &a, FloatTy::F32)).unwrap();
        let s = print_expr(&e);
        assert!(s.contains("fabs(z * _d_z)"), "{s}");
        assert!(s.contains(&format!("{:?}", FloatTy::F32.epsilon())), "{s}");
    }

    #[test]
    fn taylor_demotion_overrides_epsilon() {
        let (v, a) = ctx_parts();
        let mut m = TaylorModel::for_demotion(FloatTy::F16);
        let e = m.assign_error(&mk_ctx(&v, &a, FloatTy::F64)).unwrap();
        assert!(print_expr(&e).contains(&format!("{:?}", FloatTy::F16.epsilon())));
    }

    #[test]
    fn adapt_builds_the_paper_formula() {
        let (v, a) = ctx_parts();
        let mut m = AdaptModel::to_f32();
        let e = m.assign_error(&mk_ctx(&v, &a, FloatTy::F64)).unwrap();
        assert_eq!(print_expr(&e), "fabs(_d_z * (z - (float)z))");
    }

    #[test]
    fn approx_model_only_fires_on_mapped_vars() {
        let (v, a) = ctx_parts();
        let mut m = ApproxModel::new().with("q", Intrinsic::Exp, Intrinsic::FasterExp);
        assert!(m.assign_error(&mk_ctx(&v, &a, FloatTy::F64)).is_none());
        let mut m = ApproxModel::new().with("z", Intrinsic::Exp, Intrinsic::FasterExp);
        let e = m.assign_error(&mk_ctx(&v, &a, FloatTy::F64)).unwrap();
        assert_eq!(print_expr(&e), "fabs(_d_z * (exp(z) - fasterexp(z)))");
    }

    #[test]
    fn sum_model_adds_contributions() {
        let (v, a) = ctx_parts();
        let mut m = SumModel(TaylorModel::declared(), AdaptModel::to_f32());
        let e = m.assign_error(&mk_ctx(&v, &a, FloatTy::F64)).unwrap();
        let s = print_expr(&e);
        assert!(
            s.contains("fabs(z * _d_z)") && s.contains("(float)z"),
            "{s}"
        );
    }
}
