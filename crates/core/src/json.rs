//! A dependency-free JSON value type with a writer and parser.
//!
//! The workspace builds offline (no `serde`), so the experiment records in
//! [`crate::report`] and the bench harness's `BENCH_*.json` snapshots
//! serialize through this module instead. It covers the JSON the repo
//! produces: objects, arrays, strings, finite numbers, booleans and null;
//! non-finite floats are written as `null` like `serde_json` does.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null` (also the encoding of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (always carried as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An ordered array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` keeps key order deterministic.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String node from anything stringifiable.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Array of strings.
    pub fn str_arr<S: AsRef<str>>(items: impl IntoIterator<Item = S>) -> Json {
        Json::Arr(
            items
                .into_iter()
                .map(|s| Json::Str(s.as_ref().to_string()))
                .collect(),
        )
    }

    /// The value under `key`, when this is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Number payload (`None` for other node kinds).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array payload.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn to_string_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation (the
    /// `serde_json::to_string_pretty` look).
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => write_num(out, *v),
            Json::Str(s) => write_str(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(map) => {
                if map.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                        if indent.is_none() {
                            out.push(' ');
                        }
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_num(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse error with a byte offset.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset in the input.
    pub at: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        b: input.as_bytes(),
        at: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.b.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_string(),
            at: self.at,
        }
    }

    /// Reads the 4 hex digits of a `\u` escape; `self.at` is on the `u`
    /// and ends on the last digit.
    fn hex4(&mut self) -> Result<u32, JsonError> {
        if self.at + 4 >= self.b.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.b[self.at + 1..self.at + 5])
            .map_err(|_| self.err("bad \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.at += 4;
        Ok(code)
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), JsonError> {
        if self.peek() == Some(c) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, JsonError> {
        if self.b[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: a low surrogate must
                                // follow; combine into the code point.
                                if self.b.get(self.at + 1) != Some(&b'\\')
                                    || self.b.get(self.at + 2) != Some(&b'u')
                                {
                                    return Err(self.err("lone high surrogate"));
                                }
                                self.at += 2;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("lone low surrogate"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = &self.b[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.at]).unwrap();
        text.parse::<f64>().map(Json::Num).map_err(|_| JsonError {
            msg: format!("bad number `{text}`"),
            at: start,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_documents() {
        let doc = Json::obj([
            ("name", Json::str("arc\"len")),
            ("scales", Json::Arr(vec![Json::Num(10.0), Json::Num(2.5)])),
            ("oom", Json::Null),
            ("ok", Json::Bool(true)),
        ]);
        let pretty = doc.to_string_pretty();
        assert_eq!(parse(&pretty).unwrap(), doc);
        let compact = doc.to_string_compact();
        assert_eq!(parse(&compact).unwrap(), doc);
    }

    #[test]
    fn numbers_render_like_serde_json() {
        assert_eq!(Json::Num(1.11).to_string_compact(), "1.11");
        assert_eq!(Json::Num(42.0).to_string_compact(), "42");
        assert_eq!(Json::Num(3.24e-6).to_string_compact(), "0.00000324");
        assert_eq!(Json::Num(f64::NAN).to_string_compact(), "null");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("\"abc").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn surrogate_pairs_decode() {
        // Standard JSON encoding of U+1F600.
        let v = parse("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Json::Str("\u{1F600}".to_string()));
        // Lone surrogates are errors, not silent replacement chars.
        assert!(parse("\"\\ud83d\"").is_err());
        assert!(parse("\"\\ude00\"").is_err());
        assert!(parse("\"\\ud83d\\u0041\"").is_err());
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = Json::Str("line1\nline2\t\"q\"\\".into());
        let rendered = s.to_string_compact();
        assert_eq!(parse(&rendered).unwrap(), s);
    }
}
