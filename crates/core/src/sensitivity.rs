//! Per-iteration sensitivity profiling (paper §IV-4, Fig. 9).
//!
//! CHEF-FP's HPCCG study dumps the sensitivity `S_v = |v · v̄|` of selected
//! variables *per main-loop iteration*, revealing that all sensitivities
//! collapse after ~60 iterations — which motivates the loop-split
//! mixed-precision configuration (first 60 iterations in high precision,
//! the rest demoted).
//!
//! The profiler is an [`AdjointExtension`] that
//!
//! * appends a `double _sens_out[]` output parameter,
//! * maintains an iteration counter ticked by assignments to a designated
//!   *marker* variable (one assignment per outer-loop iteration, e.g.
//!   HPCCG's `rtrans`), and
//! * on every assignment to a tracked variable adds `|value · adjoint|`
//!   into `_sens_out[slot · max_ticks + tick]`.
//!
//! Because the hooks run in the *backward* sweep, tick 0 corresponds to
//! the **last** iteration; rows are reversed during extraction so the
//! profile reads forward.

use chef_ad::reverse::{
    reverse_diff_with, AdjointExtension, AssignCtx, FinalizeCtx, ReverseConfig,
};
use chef_exec::prelude::*;
use chef_ir::ast::*;
use chef_ir::types::{ElemTy, FloatTy, Type};

use crate::api::ChefError;

/// Profiler configuration.
#[derive(Clone, Debug)]
pub struct SensitivityConfig {
    /// Variables to track (scalar or array; arrays accumulate over their
    /// element stores).
    pub tracked: Vec<String>,
    /// Variable whose assignment marks an iteration boundary.
    pub tick_on: String,
    /// Maximum number of iterations recorded.
    pub max_ticks: usize,
}

/// The extracted profile: `matrix[v][t]` is the accumulated sensitivity of
/// tracked variable `v` at (forward) iteration `t`.
#[derive(Clone, Debug)]
pub struct SensitivityProfile {
    /// Tracked variable names (row order).
    pub vars: Vec<String>,
    /// Number of recorded iterations.
    pub ticks: usize,
    /// Row-major `vars.len() × ticks` sensitivities.
    pub matrix: Vec<Vec<f64>>,
}

impl SensitivityProfile {
    /// Rows normalized to their own maximum (the paper's heat-map scale).
    ///
    /// Non-finite sensitivities (an overflowed or NaN `|v · v̄|` on
    /// adversarial inputs) normalize to `1.0` — "maximally sensitive" —
    /// rather than poisoning the row max. A NaN that leaked into the
    /// scale would make `>= threshold` read false everywhere and
    /// [`split_point`](Self::split_point) report the variable as settled
    /// at the exact iterations where its error is unbounded.
    pub fn normalized(&self) -> Vec<Vec<f64>> {
        self.matrix
            .iter()
            .map(|row| {
                let m = row
                    .iter()
                    .cloned()
                    .filter(|v| v.is_finite())
                    .fold(0.0f64, f64::max);
                row.iter()
                    .map(|&v| {
                        if !v.is_finite() {
                            1.0
                        } else if m == 0.0 {
                            v
                        } else {
                            v / m
                        }
                    })
                    .collect()
            })
            .collect()
    }

    /// First iteration index after which every tracked variable's
    /// normalized sensitivity stays below `threshold` — the paper's
    /// "sensitivity drops below our threshold after almost 60 iterations"
    /// split point. Returns `None` if it never settles.
    pub fn split_point(&self, threshold: f64) -> Option<usize> {
        let norm = self.normalized();
        'outer: for t in 0..self.ticks {
            for row in &norm {
                if row[t..].iter().any(|&v| v >= threshold) {
                    continue 'outer;
                }
            }
            return Some(t);
        }
        None
    }

    /// Renders an ASCII heat map (rows = variables, columns = iterations,
    /// downsampled to `width` buckets).
    pub fn ascii_heatmap(&self, width: usize) -> String {
        const SHADES: [char; 5] = [' ', '.', ':', '#', '@'];
        let norm = self.normalized();
        let mut out = String::new();
        for (name, row) in self.vars.iter().zip(&norm) {
            let mut line = format!("{name:>8} |");
            let bucket = (self.ticks as f64 / width as f64).max(1.0);
            for b in 0..width.min(self.ticks) {
                let lo = (b as f64 * bucket) as usize;
                let hi = (((b + 1) as f64 * bucket) as usize).min(self.ticks);
                let v = row[lo..hi.max(lo + 1)]
                    .iter()
                    .cloned()
                    .fold(0.0f64, f64::max);
                let idx = ((v * (SHADES.len() - 1) as f64).round() as usize).min(SHADES.len() - 1);
                line.push(SHADES[idx]);
            }
            line.push('|');
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

struct Profiler {
    cfg: SensitivityConfig,
}

impl Profiler {
    fn slot(&self, name: &str) -> Option<usize> {
        self.cfg.tracked.iter().position(|t| t == name)
    }
}

/// Parameter/variable names used by the profiler.
const SENS_OUT: &str = "_sens_out";
const TICK: &str = "_sens_tick";

impl AdjointExtension for Profiler {
    fn extra_params(&self) -> Vec<Param> {
        vec![Param::array(SENS_OUT, ElemTy::Float(FloatTy::F64))]
    }

    fn on_assign(&mut self, ctx: &mut AssignCtx<'_>) -> Vec<Stmt> {
        let mut out = Vec::new();
        // Iteration marker: advance the tick counter. Only in-loop
        // assignments count — a declaration/initialization of the marker
        // outside the main loop is not an iteration boundary.
        if ctx.var_name == self.cfg.tick_on && ctx.in_loop {
            let tick_id = ensure_tick_var(ctx);
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: LValue::Var(VarRef::resolved(TICK, tick_id)),
                op: AssignOp::AddAssign,
                rhs: Expr::ilit(1),
            }));
        }
        if let Some(slot) = self.slot(&ctx.var_name) {
            let tick_id = ensure_tick_var(ctx);
            let arr_id = ctx.grad.param_id(SENS_OUT).expect("profiler param");
            let tick = || Expr::var(TICK, tick_id, Type::Int);
            // _sens_out[slot * max_ticks + tick] += fabs(value * adjoint)
            let index = Expr::add(Expr::ilit((slot * self.cfg.max_ticks) as i64), tick());
            let sens = Expr::call(
                Intrinsic::Fabs,
                vec![Expr::mul(ctx.value.clone(), ctx.adjoint.clone())],
            );
            let guarded = Stmt::synth(StmtKind::If {
                cond: Expr::binary(BinOp::Lt, tick(), Expr::ilit(self.cfg.max_ticks as i64)),
                then_branch: Block::of(vec![Stmt::synth(StmtKind::Assign {
                    lhs: LValue::Index {
                        base: VarRef::resolved(SENS_OUT, arr_id),
                        index,
                    },
                    op: AssignOp::AddAssign,
                    rhs: sens,
                })]),
                else_branch: None,
            });
            out.push(guarded);
        }
        out
    }

    fn on_finalize(&mut self, _ctx: &mut FinalizeCtx<'_>) -> Vec<Stmt> {
        Vec::new()
    }
}

/// Registers the `_sens_tick` counter once (hoisted `int _sens_tick = 0;`).
fn ensure_tick_var(ctx: &mut AssignCtx<'_>) -> VarId {
    if let Some((id, _)) = ctx.grad.vars_iter().find(|(_, v)| v.name == TICK) {
        return id;
    }
    let id = ctx.grad.add_var(TICK, Type::Int);
    ctx.hoisted.push(Stmt::synth(StmtKind::Decl {
        name: TICK.to_string(),
        id: Some(id),
        ty: Type::Int,
        size: None,
        init: Some(Expr::ilit(0)),
    }));
    id
}

/// A profiler compiled once and runnable over many argument sets.
struct CompiledProfiler {
    compiled: chef_exec::bytecode::CompiledFunction,
    /// (name, type) of every primal parameter, for adjoint-seed layout.
    primal_params: Vec<(String, Type)>,
    cfg: SensitivityConfig,
}

impl CompiledProfiler {
    fn build(
        program: &Program,
        func: &str,
        cfg: &SensitivityConfig,
    ) -> Result<CompiledProfiler, ChefError> {
        let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
        let primal = inlined
            .function(func)
            .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
        let mut profiler = Profiler { cfg: cfg.clone() };
        let rcfg = ReverseConfig::default();
        let mut grad = reverse_diff_with(primal, &rcfg, &mut profiler).map_err(ChefError::Ad)?;
        chef_passes::optimize_function(&mut grad, chef_passes::OptLevel::O2);
        let compiled = chef_exec::compile::compile_default(&grad).map_err(ChefError::Compile)?;
        Ok(CompiledProfiler {
            compiled,
            primal_params: primal
                .params
                .iter()
                .map(|p| (p.name.clone(), p.ty))
                .collect(),
            cfg: cfg.clone(),
        })
    }

    /// Appends adjoint seeds and the `_sens_out` buffer; returns the full
    /// VM argument vector and the index of the sensitivity buffer.
    fn build_vm_args(&self, primal_args: &[ArgValue]) -> (Vec<ArgValue>, usize) {
        let mut args: Vec<ArgValue> = primal_args.to_vec();
        for (i, (_, ty)) in self.primal_params.iter().enumerate() {
            match ty {
                Type::Float(_) => args.push(ArgValue::F(0.0)),
                Type::Array(ElemTy::Float(_)) => {
                    args.push(ArgValue::FArr(vec![0.0; primal_args[i].as_farr().len()]));
                }
                _ => {}
            }
        }
        let sens_at = args.len();
        args.push(ArgValue::FArr(vec![
            0.0;
            self.cfg.tracked.len()
                * self.cfg.max_ticks
        ]));
        (args, sens_at)
    }

    /// Extracts the profile from the flat `_sens_out` buffer. Ticks run
    /// backward (tick 0 = last iteration); rows are reversed so the
    /// profile reads forward.
    fn extract(&self, flat: &[f64]) -> SensitivityProfile {
        let cfg = &self.cfg;
        let used = (0..cfg.max_ticks)
            .rev()
            .find(|t| {
                cfg.tracked
                    .iter()
                    .enumerate()
                    .any(|(s, _)| flat[s * cfg.max_ticks + t] != 0.0)
            })
            .map_or(0, |t| t + 1);
        let matrix = cfg
            .tracked
            .iter()
            .enumerate()
            .map(|(s, _)| {
                let row = &flat[s * cfg.max_ticks..s * cfg.max_ticks + used];
                let mut row: Vec<f64> = row.to_vec();
                row.reverse();
                row
            })
            .collect();
        SensitivityProfile {
            vars: cfg.tracked.clone(),
            ticks: used,
            matrix,
        }
    }
}

/// Runs the sensitivity profiler over `func` on the given arguments.
pub fn profile_sensitivity(
    program: &Program,
    func: &str,
    cfg: &SensitivityConfig,
    primal_args: &[ArgValue],
    exec: &ExecOptions,
) -> Result<SensitivityProfile, ChefError> {
    let profiler = CompiledProfiler::build(program, func, cfg)?;
    let (args, sens_at) = profiler.build_vm_args(primal_args);
    let out = chef_exec::vm::run_with(&profiler.compiled, args, exec).map_err(ChefError::Trap)?;
    Ok(profiler.extract(out.args[sens_at].as_farr()))
}

/// Profiles `func` over many argument sets (e.g. a sweep of problem
/// scales or input distributions), compiling the instrumented adjoint
/// **once** and fanning the runs out over
/// [`chef_exec::vm::run_batch_parallel`]. Results keep the input order;
/// the first trapped run reports its error.
pub fn profile_sensitivity_batch(
    program: &Program,
    func: &str,
    cfg: &SensitivityConfig,
    arg_sets: &[Vec<ArgValue>],
    exec: &ExecOptions,
) -> Result<Vec<SensitivityProfile>, ChefError> {
    let profiler = CompiledProfiler::build(program, func, cfg)?;
    let mut sens_positions = Vec::with_capacity(arg_sets.len());
    let vm_args: Vec<Vec<ArgValue>> = arg_sets
        .iter()
        .map(|set| {
            let (args, sens_at) = profiler.build_vm_args(set);
            sens_positions.push(sens_at);
            args
        })
        .collect();
    chef_exec::vm::run_batch_parallel(&profiler.compiled, vm_args, exec, None)
        .into_iter()
        .zip(sens_positions)
        .map(|(res, sens_at)| {
            res.map(|out| profiler.extract(out.args[sens_at].as_farr()))
                .map_err(ChefError::Trap)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile(matrix: Vec<Vec<f64>>) -> SensitivityProfile {
        SensitivityProfile {
            vars: (0..matrix.len()).map(|i| format!("v{i}")).collect(),
            ticks: matrix[0].len(),
            matrix,
        }
    }

    #[test]
    fn nonfinite_sensitivities_saturate_instead_of_poisoning_the_scale() {
        let p = profile(vec![vec![f64::NAN, 4.0, f64::INFINITY, 1.0, 0.0]]);
        let norm = &p.normalized()[0];
        assert_eq!(norm, &[1.0, 1.0, 1.0, 0.25, 0.0]);
        // The NaN/Inf ticks count as "still sensitive": the split point
        // lands after them, not at iteration 0.
        assert_eq!(p.split_point(0.5), Some(3));
        // An all-non-finite row never settles.
        let q = profile(vec![vec![f64::NAN; 4]]);
        assert_eq!(q.split_point(0.5), None);
    }

    #[test]
    fn split_point_finds_the_first_settled_iteration() {
        let p = profile(vec![
            vec![1.0, 0.8, 0.1, 0.05, 0.01],
            vec![0.5, 1.0, 0.2, 0.04, 0.02],
        ]);
        // Normalized rows dip below 0.25 from tick 2 on (both rows).
        assert_eq!(p.split_point(0.25), Some(2));
        assert_eq!(p.split_point(0.001), None);
    }
}
