//! Serializable experiment records (consumed by the bench harness and
//! EXPERIMENTS.md generation).

use serde::{Deserialize, Serialize};

/// One row of the paper's Table I: a mixed-precision configuration and its
/// quality/performance outcome.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct MixedPrecisionRow {
    /// Benchmark name.
    pub benchmark: String,
    /// User threshold the configuration had to satisfy.
    pub threshold: f64,
    /// Measured |f64 − mixed| output difference.
    pub actual_error: f64,
    /// CHEF-FP's estimate for the chosen configuration.
    pub estimated_error: f64,
    /// Runtime speedup of the mixed variant over the original.
    pub speedup: f64,
    /// Names of the demoted variables.
    pub demoted: Vec<String>,
}

/// One analysis-performance sample: a point of Figs. 4–8.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AnalysisSample {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool (`app`, `chef-fp`, `adapt`).
    pub tool: String,
    /// Workload scale (iterations / points / z-dimension).
    pub scale: u64,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
    /// Peak analysis memory in bytes (`None` when the tool ran out of
    /// memory at this scale — the paper's missing ADAPT points).
    pub peak_bytes: Option<u64>,
}

/// One row of the paper's Table IV: an approximate-function configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ApproxRow {
    /// Configuration label.
    pub config: String,
    /// Average / maximum / accumulated actual error.
    pub actual: [f64; 3],
    /// Average / maximum / accumulated estimated error.
    pub estimated: [f64; 3],
    /// Speedup of the approximate variant.
    pub speedup: f64,
}

/// Writes any serializable report as pretty JSON.
pub fn to_json<T: Serialize>(value: &T) -> String {
    serde_json::to_string_pretty(value).expect("report serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_through_json() {
        let row = MixedPrecisionRow {
            benchmark: "arclen".into(),
            threshold: 1e-5,
            actual_error: 3.24e-6,
            estimated_error: 3.24e-6,
            speedup: 1.11,
            demoted: vec!["t1".into(), "t2".into()],
        };
        let json = to_json(&row);
        let back: MixedPrecisionRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back.benchmark, "arclen");
        assert_eq!(back.demoted.len(), 2);
    }
}
