//! Serializable experiment records (consumed by the bench harness and
//! EXPERIMENTS.md generation).
//!
//! Serialization goes through the workspace-local [`crate::json`] module
//! (the build is offline, so there is no `serde`); every record implements
//! [`Record`] with an explicit field mapping in both directions.

use crate::json::{parse, Json, JsonError};

/// A record that converts to and from a JSON object.
pub trait Record: Sized {
    /// The JSON representation.
    fn to_json_value(&self) -> Json;
    /// Rebuilds the record; `Err` carries the missing/mistyped field name.
    fn from_json_value(v: &Json) -> Result<Self, String>;
}

fn num(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing number `{key}`"))
}

fn string(v: &Json, key: &str) -> Result<String, String> {
    v.get(key)
        .and_then(Json::as_str)
        .map(str::to_string)
        .ok_or_else(|| format!("missing string `{key}`"))
}

/// One row of the paper's Table I: a mixed-precision configuration and its
/// quality/performance outcome.
#[derive(Clone, Debug)]
pub struct MixedPrecisionRow {
    /// Benchmark name.
    pub benchmark: String,
    /// User threshold the configuration had to satisfy.
    pub threshold: f64,
    /// Measured |f64 − mixed| output difference.
    pub actual_error: f64,
    /// CHEF-FP's estimate for the chosen configuration.
    pub estimated_error: f64,
    /// Runtime speedup of the mixed variant over the original.
    pub speedup: f64,
    /// Names of the demoted variables.
    pub demoted: Vec<String>,
}

impl Record for MixedPrecisionRow {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("threshold", Json::Num(self.threshold)),
            ("actual_error", Json::Num(self.actual_error)),
            ("estimated_error", Json::Num(self.estimated_error)),
            ("speedup", Json::Num(self.speedup)),
            ("demoted", Json::str_arr(&self.demoted)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        let demoted = v
            .get("demoted")
            .and_then(Json::as_arr)
            .ok_or("missing array `demoted`")?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or("non-string in `demoted`".to_string())
            })
            .collect::<Result<_, _>>()?;
        Ok(MixedPrecisionRow {
            benchmark: string(v, "benchmark")?,
            threshold: num(v, "threshold")?,
            actual_error: num(v, "actual_error")?,
            estimated_error: num(v, "estimated_error")?,
            speedup: num(v, "speedup")?,
            demoted,
        })
    }
}

/// One analysis-performance sample: a point of Figs. 4–8.
#[derive(Clone, Debug)]
pub struct AnalysisSample {
    /// Benchmark name.
    pub benchmark: String,
    /// Tool (`app`, `chef-fp`, `adapt`).
    pub tool: String,
    /// Workload scale (iterations / points / z-dimension).
    pub scale: u64,
    /// Wall-clock time in milliseconds.
    pub time_ms: f64,
    /// Peak analysis memory in bytes (`None` when the tool ran out of
    /// memory at this scale — the paper's missing ADAPT points).
    pub peak_bytes: Option<u64>,
}

impl Record for AnalysisSample {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("benchmark", Json::str(&self.benchmark)),
            ("tool", Json::str(&self.tool)),
            ("scale", Json::Num(self.scale as f64)),
            ("time_ms", Json::Num(self.time_ms)),
            (
                "peak_bytes",
                self.peak_bytes.map_or(Json::Null, |b| Json::Num(b as f64)),
            ),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        let peak_bytes = match v.get("peak_bytes") {
            Some(Json::Null) | None => None,
            Some(j) => Some(j.as_f64().ok_or("mistyped `peak_bytes`")? as u64),
        };
        Ok(AnalysisSample {
            benchmark: string(v, "benchmark")?,
            tool: string(v, "tool")?,
            scale: num(v, "scale")? as u64,
            time_ms: num(v, "time_ms")?,
            peak_bytes,
        })
    }
}

/// One row of the paper's Table IV: an approximate-function configuration.
#[derive(Clone, Debug)]
pub struct ApproxRow {
    /// Configuration label.
    pub config: String,
    /// Average / maximum / accumulated actual error.
    pub actual: [f64; 3],
    /// Average / maximum / accumulated estimated error.
    pub estimated: [f64; 3],
    /// Speedup of the approximate variant.
    pub speedup: f64,
}

impl Record for ApproxRow {
    fn to_json_value(&self) -> Json {
        let triple = |t: &[f64; 3]| Json::Arr(t.iter().map(|&v| Json::Num(v)).collect());
        Json::obj([
            ("config", Json::str(&self.config)),
            ("actual", triple(&self.actual)),
            ("estimated", triple(&self.estimated)),
            ("speedup", Json::Num(self.speedup)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        let triple = |key: &str| -> Result<[f64; 3], String> {
            let arr = v
                .get(key)
                .and_then(Json::as_arr)
                .ok_or(format!("missing array `{key}`"))?;
            if arr.len() != 3 {
                return Err(format!("`{key}` must have 3 entries"));
            }
            let mut out = [0.0; 3];
            for (slot, item) in out.iter_mut().zip(arr) {
                *slot = item.as_f64().ok_or(format!("non-number in `{key}`"))?;
            }
            Ok(out)
        };
        Ok(ApproxRow {
            config: string(v, "config")?,
            actual: triple("actual")?,
            estimated: triple("estimated")?,
            speedup: num(v, "speedup")?,
        })
    }
}

/// One row of the shadow-oracle comparison: CHEF-FP's *estimated* error
/// for a configuration next to the error the shadow-execution oracle
/// *measured* for it (the Table I estimated-vs-actual relationship as a
/// measured artifact; produced by `chef-shadow` / `repro --oracle`).
#[derive(Clone, Debug)]
pub struct EstimateQualityRow {
    /// Kernel (benchmark) name.
    pub kernel: String,
    /// User threshold the configuration was tuned for.
    pub threshold: f64,
    /// CHEF-FP's accumulated estimate for the configuration.
    pub estimated: f64,
    /// Ground-truth output error measured by the shadow oracle.
    pub measured: f64,
    /// Number of primal-vs-shadow control-flow splits the oracle observed
    /// while measuring (see `chef_exec::shadow::DivergencePoint`). When
    /// non-zero the measurement ran along a trace the high-precision
    /// program would not have taken, and the estimated-vs-measured band
    /// is meaningless for this row.
    pub divergence_count: u64,
    /// Per-trial faults (traps, panics, non-finite measurements) the
    /// producing pipeline isolated and retried while arriving at this
    /// configuration (`chef_tuner`'s `FaultSummary::total()`). 0 for
    /// direct oracle runs and clean tunes; non-zero rows were produced
    /// under degraded conditions (or deliberate fault injection) and
    /// still completed.
    pub fault_count: u64,
}

impl EstimateQualityRow {
    /// `true` when the oracle observed at least one control-flow split —
    /// the row's `measured` value is untrusted and order-of-magnitude
    /// gates should skip (but report) it.
    pub fn diverged(&self) -> bool {
        self.divergence_count > 0
    }
    /// `measured / estimated`, with both sides floored at `1e-300` so a
    /// zero-error configuration (nothing demoted, or exactly
    /// representable inputs) reports `1.0` instead of NaN.
    pub fn ratio(&self) -> f64 {
        let floor = 1e-300;
        self.measured.abs().max(floor) / self.estimated.abs().max(floor)
    }

    /// The paper's Table I relationship: estimate and measurement agree
    /// to within an order of magnitude (with an absolute floor so two
    /// ~zero errors compare equal).
    pub fn within_order_of_magnitude(&self) -> bool {
        let floor = 1e-15;
        let (e, m) = (self.estimated.abs(), self.measured.abs());
        m <= 10.0 * e + floor && e <= 10.0 * m + floor
    }

    /// Relative deviation of the estimate from the measurement, as a
    /// fraction (`|estimated − measured| / max(|measured|, 1e-300)`).
    pub fn rel_deviation(&self) -> f64 {
        (self.estimated - self.measured).abs() / self.measured.abs().max(1e-300)
    }
}

impl Record for EstimateQualityRow {
    fn to_json_value(&self) -> Json {
        Json::obj([
            ("kernel", Json::str(&self.kernel)),
            ("threshold", Json::Num(self.threshold)),
            ("estimated", Json::Num(self.estimated)),
            ("measured", Json::Num(self.measured)),
            ("ratio", Json::Num(self.ratio())),
            ("within_10x", Json::Bool(self.within_order_of_magnitude())),
            ("divergence_count", Json::Num(self.divergence_count as f64)),
            ("diverged", Json::Bool(self.diverged())),
            ("fault_count", Json::Num(self.fault_count as f64)),
        ])
    }

    fn from_json_value(v: &Json) -> Result<Self, String> {
        // `ratio`/`within_10x`/`diverged` are derived on write and
        // recomputed on read; `divergence_count` is absent in pre-oracle
        // snapshots and defaults to 0 (straight-line era: no divergence),
        // and `fault_count` likewise defaults to 0 in snapshots written
        // before the fault-isolation layer existed.
        let count = |key: &str| v.get(key).and_then(Json::as_f64).unwrap_or(0.0) as u64;
        Ok(EstimateQualityRow {
            kernel: string(v, "kernel")?,
            threshold: num(v, "threshold")?,
            estimated: num(v, "estimated")?,
            measured: num(v, "measured")?,
            divergence_count: count("divergence_count"),
            fault_count: count("fault_count"),
        })
    }
}

/// Encodes a [`chef_telemetry::TelemetrySnapshot`] as JSON: counters and
/// gauges as name→value objects, histograms as name→summary objects,
/// spans as an array of records (`parent` is `null` for roots). Metric
/// names are dynamic (registered at runtime), so this builds
/// [`Json::Obj`] maps directly instead of going through [`Record`].
pub fn telemetry_to_json(snap: &chef_telemetry::TelemetrySnapshot) -> Json {
    use std::collections::BTreeMap;
    let counters: BTreeMap<String, Json> = snap
        .counters
        .iter()
        .map(|c| (c.name.clone(), Json::Num(c.value as f64)))
        .collect();
    let gauges: BTreeMap<String, Json> = snap
        .gauges
        .iter()
        .map(|g| (g.name.clone(), Json::Num(g.value)))
        .collect();
    let histograms: BTreeMap<String, Json> = snap
        .histograms
        .iter()
        .map(|h| {
            let summary = Json::obj([
                ("count", Json::Num(h.count as f64)),
                ("sum", Json::Num(h.sum as f64)),
                ("min", Json::Num(h.min as f64)),
                ("max", Json::Num(h.max as f64)),
                ("p50", Json::Num(h.p50)),
                ("p95", Json::Num(h.p95)),
                ("p99", Json::Num(h.p99)),
            ]);
            (h.name.clone(), summary)
        })
        .collect();
    let spans: Vec<Json> = snap
        .spans
        .iter()
        .map(|s| {
            Json::obj([
                ("name", Json::str(s.name)),
                ("id", Json::Num(s.id as f64)),
                (
                    "parent",
                    s.parent.map_or(Json::Null, |p| Json::Num(p as f64)),
                ),
                ("thread", Json::Num(s.thread as f64)),
                ("start_ns", Json::Num(s.start_ns as f64)),
                ("end_ns", Json::Num(s.end_ns as f64)),
            ])
        })
        .collect();
    Json::obj([
        ("counters", Json::Obj(counters)),
        ("gauges", Json::Obj(gauges)),
        ("histograms", Json::Obj(histograms)),
        ("spans", Json::Arr(spans)),
        ("spans_dropped", Json::Num(snap.spans_dropped as f64)),
    ])
}

/// Writes any record as pretty JSON.
pub fn to_json<T: Record>(value: &T) -> String {
    value.to_json_value().to_string_pretty()
}

/// Reads a record back from JSON text.
pub fn from_json<T: Record>(text: &str) -> Result<T, JsonError> {
    let v = parse(text)?;
    T::from_json_value(&v).map_err(|msg| JsonError { msg, at: 0 })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_round_trip_through_json() {
        let row = MixedPrecisionRow {
            benchmark: "arclen".into(),
            threshold: 1e-5,
            actual_error: 3.24e-6,
            estimated_error: 3.24e-6,
            speedup: 1.11,
            demoted: vec!["t1".into(), "t2".into()],
        };
        let json = to_json(&row);
        let back: MixedPrecisionRow = from_json(&json).unwrap();
        assert_eq!(back.benchmark, "arclen");
        assert_eq!(back.demoted.len(), 2);
        assert_eq!(back.actual_error, 3.24e-6);
    }

    #[test]
    fn analysis_sample_oom_is_null() {
        let s = AnalysisSample {
            benchmark: "kmeans".into(),
            tool: "adapt".into(),
            scale: 100_000,
            time_ms: 12.5,
            peak_bytes: None,
        };
        let json = to_json(&s);
        assert!(json.contains("\"peak_bytes\": null"), "{json}");
        let back: AnalysisSample = from_json(&json).unwrap();
        assert_eq!(back.peak_bytes, None);
        assert_eq!(back.scale, 100_000);
    }

    #[test]
    fn estimate_quality_round_trips_and_classifies() {
        let row = EstimateQualityRow {
            kernel: "arclen".into(),
            threshold: 1e-5,
            estimated: 3.1e-6,
            measured: 2.4e-6,
            divergence_count: 0,
            fault_count: 0,
        };
        assert!(row.within_order_of_magnitude());
        assert!((row.ratio() - 2.4 / 3.1).abs() < 1e-12);
        let json = to_json(&row);
        assert!(json.contains("\"within_10x\": true"), "{json}");
        let back: EstimateQualityRow = from_json(&json).unwrap();
        assert_eq!(back.estimated, row.estimated);
        assert_eq!(back.measured, row.measured);
        // Order-of-magnitude violations are flagged...
        let bad = EstimateQualityRow {
            measured: 1.0,
            ..row.clone()
        };
        assert!(!bad.within_order_of_magnitude());
        // ...but two ~zero errors count as agreement (nothing demoted).
        let zero = EstimateQualityRow {
            kernel: "kmeans".into(),
            threshold: 1e-6,
            estimated: 0.0,
            measured: 0.0,
            divergence_count: 0,
            fault_count: 0,
        };
        assert!(zero.within_order_of_magnitude());
        assert_eq!(zero.ratio(), 1.0);
    }

    #[test]
    fn divergence_count_round_trips_and_flags() {
        let row = EstimateQualityRow {
            kernel: "threshold".into(),
            threshold: 1e-6,
            estimated: 1e-7,
            measured: 0.5,
            divergence_count: 3,
            fault_count: 2,
        };
        assert!(row.diverged());
        let json = to_json(&row);
        assert!(json.contains("\"divergence_count\": 3"), "{json}");
        assert!(json.contains("\"diverged\": true"), "{json}");
        let back: EstimateQualityRow = from_json(&json).unwrap();
        assert_eq!(back.divergence_count, 3);
        assert_eq!(back.fault_count, 2);
        // Pre-oracle snapshots without the field read back as 0.
        let legacy: EstimateQualityRow = from_json(
            "{\"kernel\": \"a\", \"threshold\": 1.0, \"estimated\": 1.0, \"measured\": 1.0}",
        )
        .unwrap();
        assert_eq!(legacy.divergence_count, 0);
        assert_eq!(
            legacy.fault_count, 0,
            "pre-fault-layer snapshots default to 0"
        );
        assert!(!legacy.diverged());
    }

    #[test]
    fn approx_row_round_trips() {
        let r = ApproxRow {
            config: "w/ fast exp".into(),
            actual: [1e-3, 2e-3, 3e-3],
            estimated: [1.1e-3, 2.1e-3, 3.1e-3],
            speedup: 2.4,
        };
        let back: ApproxRow = from_json(&to_json(&r)).unwrap();
        assert_eq!(back.actual, r.actual);
        assert_eq!(back.config, r.config);
    }
}
