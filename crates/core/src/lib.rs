//! # chef-core — CHEF-FP: AD-based floating-point error estimation
//!
//! The paper's primary contribution: a source-transformation framework
//! that injects **error-estimation code into generated adjoints**. The
//! pipeline (paper Fig. 3):
//!
//! ```text
//! KernelC ──chef-ad──▶ adjoint AST ◀─ callbacks ─ EstimationModule ── ErrorModel
//!             adjoint+EE AST ──chef-passes──▶ optimized ──chef-exec──▶
//!                         gradient + fp_error + per-variable attribution
//! ```
//!
//! * [`model`] — the `AssignError` formulas: Taylor (eq. 1), ADAPT
//!   (eq. 2), approximate-function (Algorithm 2), and user models;
//! * [`module`] — the Error Estimation Module that synthesizes
//!   accumulation code through `chef-ad`'s callback system;
//! * [`api`] — `estimate_error` / `ErrorEstimator::execute`, mirroring
//!   the paper's Listing 1;
//! * [`sensitivity`] — per-iteration sensitivity profiles and the
//!   loop-split discovery (Fig. 9).
//!
//! ```
//! use chef_core::prelude::*;
//! use chef_exec::prelude::ArgValue;
//!
//! let est = estimate_error_src(
//!     "float func(float x, float y) { float z; z = x + y; return z; }",
//!     "func",
//!     &EstimateOptions::default(),
//! ).unwrap();
//! let out = est.execute(&[ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)]).unwrap();
//! println!("Error in func: {}", out.fp_error);
//! ```

pub mod api;
pub mod json;
pub mod model;
pub mod module;
pub mod report;
pub mod sensitivity;

/// Convenience re-exports.
pub mod prelude {
    pub use crate::api::{
        estimate_error, estimate_error_src, estimate_error_src_with, estimate_error_with,
        ChefError, ErrorEstimator, EstimateOptions, EstimateOutcome,
    };
    pub use crate::model::{AdaptModel, ApproxModel, ErrorModel, ModelCtx, SumModel, TaylorModel};
    pub use crate::module::{EstimationModule, ModuleConfig, VarSlots};
    pub use crate::sensitivity::{
        profile_sensitivity, profile_sensitivity_batch, SensitivityConfig, SensitivityProfile,
    };
}

pub use prelude::*;
