//! End-to-end tests of the CHEF-FP estimation pipeline: estimates versus
//! ground-truth errors measured by actually running demoted / approximate
//! program variants on the VM.

use chef_core::prelude::*;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_ir::ast::{Intrinsic, VarId};
use chef_ir::parser::parse_program;
use chef_ir::typeck::check_program;
use chef_ir::types::FloatTy;

fn program(src: &str) -> chef_ir::ast::Program {
    let mut p = parse_program(src).unwrap();
    check_program(&mut p).unwrap();
    p
}

/// Runs `func` compiled with `precisions` and returns the result.
fn run_primal(
    p: &chef_ir::ast::Program,
    func: &str,
    precisions: PrecisionMap,
    args: Vec<ArgValue>,
) -> f64 {
    let inlined = chef_passes::inline_program(p).unwrap();
    let f = inlined.function(func).unwrap();
    let c = compile(
        f,
        &CompileOptions {
            precisions,
            ..Default::default()
        },
    )
    .unwrap();
    run(&c, args).unwrap().ret_f()
}

#[test]
fn listing1_minimal_demonstrator() {
    // Paper Listing 1, verbatim behaviour.
    let est = estimate_error_src(
        "float func(float x, float y) { float z; z = x + y; return z; }",
        "func",
        &EstimateOptions::default(),
    )
    .unwrap();
    let out = est
        .execute(&[ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)])
        .unwrap();
    // dx = dy = 1 for an addition.
    assert_eq!(out.gradient_f("x"), 1.0);
    assert_eq!(out.gradient_f("y"), 1.0);
    // The estimate must bound the actual f32-vs-f64 rounding error and
    // stay within a couple orders of magnitude of it.
    let exact = 1.95e-5_f64 + 1.37e-7_f64;
    let actual = (out.value - exact).abs();
    assert!(out.fp_error > 0.0);
    assert!(
        out.fp_error >= actual,
        "estimate {} < actual {actual}",
        out.fp_error
    );
    assert!(
        out.fp_error < actual.max(1e-15) * 1e3,
        "estimate {} too loose",
        out.fp_error
    );
}

#[test]
fn generated_source_shows_ee_code() {
    let est = estimate_error_src(
        "double f(double x) { double z = x * x; return z; }",
        "f",
        &EstimateOptions::default(),
    )
    .unwrap();
    let src = est.generated_source();
    assert!(src.contains("_fp_error +="), "{src}");
    assert!(src.contains("_d_x"), "{src}");
    assert!(src.contains("_primal_out ="), "{src}");
}

#[test]
fn adapt_model_estimate_bounds_actual_demotion_error() {
    // Polynomial kernel: demote everything to f32 and compare the ADAPT
    // estimate against the measured error.
    let src = "double horner(double x) {
        double acc = 0.3;
        acc = acc * x + 1.7;
        acc = acc * x + 0.9;
        acc = acc * x + 2.1;
        return acc;
    }";
    let p = program(src);
    let mut model = AdaptModel::to_f32();
    let est = estimate_error_with(&p, "horner", &mut model, &EstimateOptions::default()).unwrap();
    for &x in &[0.337, 1.881, -2.45, 0.0091] {
        let out = est.execute(&[ArgValue::F(x)]).unwrap();
        // Demote every variable (param x + acc).
        let mut pm = PrecisionMap::empty();
        pm.set(VarId(0), FloatTy::F32);
        pm.set(VarId(1), FloatTy::F32);
        let demoted = run_primal(&p, "horner", pm, vec![ArgValue::F(x)]);
        let actual = (demoted - out.value).abs();
        assert!(
            out.fp_error >= actual * 0.99,
            "x={x}: estimate {} < actual {actual}",
            out.fp_error
        );
        assert!(
            out.fp_error <= actual.max(1e-12) * 1e3,
            "x={x}: estimate {} is wildly loose vs {actual}",
            out.fp_error
        );
    }
}

#[test]
fn per_variable_attribution_identifies_the_hot_variable() {
    // `big` carries a large value through a sensitive path; `tiny` barely
    // matters. Attribution must rank big >> tiny.
    let src = "double f(double a) {
        double big = a * 1000.0;
        double tiny = a * 0.001;
        double r = big * big + tiny;
        return r;
    }";
    let p = program(src);
    let mut model = AdaptModel::to_f32();
    let est = estimate_error_with(&p, "f", &mut model, &EstimateOptions::default()).unwrap();
    let out = est.execute(&[ArgValue::F(1.234567890123)]).unwrap();
    let big = out.error_of("big");
    let tiny = out.error_of("tiny");
    assert!(big > tiny * 1e3, "big={big} tiny={tiny}");
    // Total includes every contribution.
    assert!(out.fp_error >= big);
}

#[test]
fn quantized_inputs_have_zero_adapt_error() {
    // The paper's k-Means insight: inputs that are exactly representable
    // in f32 contribute zero demotion error ("the error estimated for
    // attributes is 0").
    let src = "double f(double q, double w) {
        double s = q * 2.0 + w;
        return s;
    }";
    let p = program(src);
    let mut model = AdaptModel::to_f32();
    let est = estimate_error_with(&p, "f", &mut model, &EstimateOptions::default()).unwrap();
    // q is an exact f32 value; w is not.
    let q = 0.1234_f32 as f64;
    let w = 0.1234_f64 + 1e-12;
    let out = est.execute(&[ArgValue::F(q), ArgValue::F(w)]).unwrap();
    assert_eq!(out.error_of("q"), 0.0);
    assert!(out.error_of("w") > 0.0);
}

#[test]
fn approx_model_reproduces_algorithm2() {
    // v = exp(u) with u mapped to exp/fasterexp: the estimate must track
    // the measured FastApprox substitution error.
    let src = "double price(double u) {
        double v = exp(u) * 2.0 + 1.0;
        return v;
    }";
    let p = program(src);
    let mut model = ApproxModel::new().with("u", Intrinsic::Exp, Intrinsic::FasterExp);
    let est = estimate_error_with(&p, "price", &mut model, &EstimateOptions::default()).unwrap();
    for &u in &[0.1, 0.9, 1.7, -0.4] {
        let out = est.execute(&[ArgValue::F(u)]).unwrap();
        // Ground truth: run with exp replaced by fasterexp.
        let exec = ExecOptions {
            approx: ApproxConfig::exact().with("exp", fastapprox::registry::Grade::Faster),
            ..Default::default()
        };
        let inlined = chef_passes::inline_program(&p).unwrap();
        let c = chef_exec::compile::compile_default(inlined.function("price").unwrap()).unwrap();
        let approx_val = run_with(&c, vec![ArgValue::F(u)], &exec).unwrap().ret_f();
        let actual = (approx_val - out.value).abs();
        // Algorithm 2 weighs Δ with the adjoint of the *input* variable
        // (which includes f'), so the estimate overshoots by roughly
        // |f'(u)| = e^u; accept the same order of magnitude window.
        assert!(out.fp_error > 0.0, "u={u}");
        assert!(
            out.fp_error >= actual * 0.5,
            "u={u}: estimate {} vs actual {actual}",
            out.fp_error
        );
        assert!(
            out.fp_error <= actual.max(1e-9) * 50.0,
            "u={u}: estimate {} vs actual {actual}",
            out.fp_error
        );
    }
}

#[test]
fn taylor_estimate_scales_with_epsilon() {
    let src = "double f(double x) { double z = x * x + 1.0; return z; }";
    let p = program(src);
    let mut estimates = Vec::new();
    for ft in [FloatTy::F64, FloatTy::F32, FloatTy::F16] {
        let mut model = TaylorModel::for_demotion(ft);
        let est = estimate_error_with(&p, "f", &mut model, &EstimateOptions::default()).unwrap();
        let out = est.execute(&[ArgValue::F(1.7)]).unwrap();
        estimates.push(out.fp_error);
    }
    // Epsilon ratio f32/f64 = 2^29, f16/f32 = 2^13.
    assert!((estimates[1] / estimates[0] - 2f64.powi(29)).abs() < 1.0);
    assert!((estimates[2] / estimates[1] - 2f64.powi(13)).abs() < 1e-6);
}

#[test]
fn loop_kernel_estimates_grow_with_iterations() {
    // More iterations = more assignments = more accumulated estimate.
    let src = "double f(double x, int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) { s += x * 0.1; }
        return s;
    }";
    let p = program(src);
    let est = estimate_error(&p, "f", &EstimateOptions::default()).unwrap();
    let e10 = est
        .execute(&[ArgValue::F(1.0), ArgValue::I(10)])
        .unwrap()
        .fp_error;
    let e1000 = est
        .execute(&[ArgValue::F(1.0), ArgValue::I(1000)])
        .unwrap()
        .fp_error;
    assert!(e1000 > e10 * 10.0, "e10={e10} e1000={e1000}");
}

#[test]
fn array_kernel_with_input_error_loop() {
    let src = "double dot(double a[], double b[], int n) {
        double s = 0.0;
        for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
        return s;
    }";
    let p = program(src);
    let opts = EstimateOptions::default()
        .with_array_len("a", "n")
        .with_array_len("b", "n");
    let mut model = AdaptModel::to_f32();
    let est = estimate_error_with(&p, "dot", &mut model, &opts).unwrap();
    let a: Vec<f64> = (0..8).map(|i| 0.1 + i as f64 * 0.237).collect();
    let b: Vec<f64> = (0..8).map(|i| 1.7 - i as f64 * 0.119).collect();
    let out = est
        .execute(&[
            ArgValue::FArr(a.clone()),
            ArgValue::FArr(b.clone()),
            ArgValue::I(8),
        ])
        .unwrap();
    // Gradient sanity: d/da = b.
    assert_eq!(out.gradient_arr("a"), b.as_slice());
    // Demote both arrays + the accumulator and measure.
    let mut pm = PrecisionMap::empty();
    pm.set(VarId(0), FloatTy::F32);
    pm.set(VarId(1), FloatTy::F32);
    pm.set(VarId(3), FloatTy::F32); // s
    let demoted = run_primal(
        &p,
        "dot",
        pm,
        vec![ArgValue::FArr(a), ArgValue::FArr(b), ArgValue::I(8)],
    );
    let actual = (demoted - out.value).abs();
    // The value-demotion model (eq. 2) does not see the extra rounding of
    // the *f32 arithmetic* performed by the demoted program, so it can
    // undershoot by a small factor; it must stay the same order of
    // magnitude.
    assert!(
        out.fp_error >= actual * 0.25,
        "estimate {} < actual {actual}",
        out.fp_error
    );
    assert!(out.fp_error < actual.max(1e-12) * 1e4);
}

#[test]
fn sensitivity_profile_mechanics() {
    // s halves every iteration; the per-iteration sensitivity
    // |s_{i+1} * d(out)/d(s_{i+1})| = |x * 0.5^n| is constant across
    // iterations, which pins both ordering and values.
    let src = "double f(double x, int n) {
        double s = x;
        double marker = 0.0;
        for (int i = 0; i < n; i++) {
            marker = s;
            s = s * 0.5;
        }
        return s;
    }";
    let p = program(src);
    let cfg = SensitivityConfig {
        tracked: vec!["s".into()],
        tick_on: "marker".into(),
        max_ticks: 64,
    };
    let n = 10;
    let x = 3.0;
    let profile = profile_sensitivity(
        &p,
        "f",
        &cfg,
        &[ArgValue::F(x), ArgValue::I(n)],
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(profile.vars, vec!["s".to_string()]);
    // n in-loop records plus one from the `double s = x;` initialization.
    assert_eq!(profile.ticks, n as usize + 1);
    let expect = x * 0.5f64.powi(n as i32);
    for (t, v) in profile.matrix[0].iter().enumerate() {
        assert!((v - expect).abs() < 1e-12, "tick {t}: {v} vs {expect}");
    }
    // All-equal profile: normalization gives all ones; no split point
    // below 1.0 threshold.
    assert!(profile.split_point(0.5).is_none());
}

#[test]
fn sensitivity_split_point_detects_decay() {
    // A kernel whose sensitivity decays geometrically: out accumulates
    // w * s_i where s halves each iteration → late iterations matter less?
    // Inverted: early iterations' s values are larger, so build decay the
    // other way: sensitivity of updates decays with iteration index.
    let src = "double f(double x, int n) {
        double acc = 0.0;
        double w = 1.0;
        double marker = 0.0;
        for (int i = 0; i < n; i++) {
            marker = w;
            acc += w * x;
            w = w * 0.5;
        }
        return acc;
    }";
    let p = program(src);
    let cfg = SensitivityConfig {
        tracked: vec!["acc".into()],
        tick_on: "marker".into(),
        max_ticks: 128,
    };
    let profile = profile_sensitivity(
        &p,
        "f",
        &cfg,
        &[ArgValue::F(1.0), ArgValue::I(60)],
        &ExecOptions::default(),
    )
    .unwrap();
    assert_eq!(profile.ticks, 60);
    // acc converges to 2: late assignments have full adjoint 1 but the
    // *value* saturates — use the split on the tracked `w`-weighted
    // profile: acc_i = 2(1 - 0.5^{i+1}) grows then saturates; adjoint is
    // always 1, so sensitivity saturates at 2 — no decay here. Check
    // instead that the profile is monotonically non-decreasing and the
    // heatmap renders.
    let row = &profile.matrix[0];
    assert!(row.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    let art = profile.ascii_heatmap(40);
    assert!(art.contains("acc"), "{art}");
    assert!(profile.split_point(2.0).is_some()); // trivially below 2x max
}

#[test]
fn tbr_off_matches_tbr_on_estimates() {
    let src = "double f(double x) {
        double a = x * x;
        a = a + x;
        double b = a * 3.0;
        return b;
    }";
    let p = program(src);
    let mut outs = Vec::new();
    for tbr in [true, false] {
        let opts = EstimateOptions {
            tbr,
            ..Default::default()
        };
        let est = estimate_error(&p, "f", &opts).unwrap();
        let out = est.execute(&[ArgValue::F(0.77)]).unwrap();
        outs.push((out.fp_error, out.gradient_f("x"), out.value));
    }
    assert_eq!(outs[0], outs[1]);
}

#[test]
fn opt_levels_do_not_change_estimates() {
    use chef_passes::OptLevel;
    let src = "double f(double x, double y) {
        double p = (x + y) * (x + y);
        double q = (x + y) * 2.0;
        return p - q;
    }";
    let p = program(src);
    let mut outs = Vec::new();
    for lvl in [OptLevel::O0, OptLevel::O1, OptLevel::O2] {
        let opts = EstimateOptions {
            opt_level: lvl,
            ..Default::default()
        };
        let est = estimate_error(&p, "f", &opts).unwrap();
        let out = est.execute(&[ArgValue::F(1.3), ArgValue::F(-0.4)]).unwrap();
        outs.push((
            out.fp_error,
            out.gradient_f("x"),
            out.gradient_f("y"),
            out.value,
        ));
    }
    assert_eq!(outs[0], outs[1]);
    assert_eq!(outs[1], outs[2]);
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown function.
    assert!(matches!(
        estimate_error_src(
            "double f(double x) { return x; }",
            "nope",
            &Default::default()
        ),
        Err(ChefError::UnknownFunction(_))
    ));
    // Parse error.
    assert!(matches!(
        estimate_error_src("double f(double x) { return x }", "f", &Default::default()),
        Err(ChefError::Parse(_))
    ));
    // Type error.
    assert!(matches!(
        estimate_error_src("double f(double x) { return q; }", "f", &Default::default()),
        Err(ChefError::Typeck(_))
    ));
    // AD restriction.
    assert!(matches!(
        estimate_error_src("int f(int x) { return x; }", "f", &Default::default()),
        Err(ChefError::Ad(_))
    ));
}
