//! # chef-tuner — mixed-precision tuning on CHEF-FP estimates
//!
//! Implements the workflow of the paper's §III: analyze the sensitivity of
//! every variable with the ADAPT demotion model (eq. 2), then **greedily
//! demote the least-error variables** while the accumulated estimate stays
//! under the user threshold — "a mixed precision configuration is reached
//! when the accumulated error meets the threshold value". The chosen
//! configuration is validated by actually running the demoted program and
//! comparing against the full-precision result (paper Table I's
//! actual-vs-estimated columns).
//!
//! Two additions on top of the estimate-driven loop:
//!
//! * **Compiled-variant cache** ([`VariantCache`]): the greedy loop, the
//!   single-demotion sweep and repeated validations compile overlapping
//!   `PrecisionMap`s; a cache keyed by content hash (canonical source +
//!   options — [`chef_exec::store::content_key`]) shares the
//!   compilations and counts its hits (exposed on
//!   [`TuneResult::cache_hits`]), with an optional `CHEF_CACHE_DIR`
//!   disk tier that makes variants survive the process.
//! * **Oracle mode** ([`validate_with_oracle`], [`tune_with_oracle`]):
//!   instead of estimating, each candidate configuration is *measured* by
//!   the `chef-shadow` fused shadow pass — ground-truth output error in
//!   one run — and the greedy order can be re-ranked by the measured
//!   per-variable attribution.
//! * **Per-trial fault isolation** ([`FaultSummary`]): every trial (a
//!   greedy candidate, a validation config, the baseline, the estimation
//!   pass) is run under `catch_unwind`; a trap, a panic, or a non-finite
//!   measurement is retried once — escalating the instruction budget
//!   proportionally after `InstrBudgetExhausted`, but never past
//!   [`ESCALATION_CAP`] × the admitted budget — and a second fault
//!   quarantines that trial instead of aborting the tune.
//!   [`TuneResult::faults`] reports the counts; deterministic fault
//!   injection (explicit [`TunerConfig::fault_plan`] or the
//!   `CHEF_FAULT_SEED` environment toggle) exercises the whole layer.

use chef_core::prelude::*;
use chef_exec::arena::{MachineArena, ShadowMachineArena};
use chef_exec::compile::{compile, CompileError, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_ir::ast::{Function, Program, VarId};
use chef_ir::types::{FloatTy, Type};
use chef_shadow::{OracleOptions, ShadowReport};
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning configuration.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Maximum admissible estimated error.
    pub threshold: f64,
    /// Demotion target precision.
    pub target: FloatTy,
    /// Restrict demotion to these variables (`None` = all float variables).
    pub candidates: Option<Vec<String>>,
    /// Array parameter → length parameter pairings for input error terms.
    pub array_lens: HashMap<String, String>,
    /// Deterministic fault injection for every run this tuning session
    /// performs (see [`chef_exec::fault::FaultPlan`]). `None` falls back
    /// to the `CHEF_FAULT_SEED` / `CHEF_FAULT_KIND` environment plan, so
    /// the whole pipeline can be fault-tested without touching call
    /// sites; unset env leaves execution untouched.
    pub fault_plan: Option<FaultPlan>,
}

impl TunerConfig {
    /// A threshold-only configuration demoting to `float`.
    pub fn with_threshold(threshold: f64) -> Self {
        TunerConfig {
            threshold,
            target: FloatTy::F32,
            candidates: None,
            array_lens: HashMap::new(),
            fault_plan: None,
        }
    }

    /// Registers an array-length pairing (builder style).
    pub fn with_array_len(mut self, array: impl Into<String>, len: impl Into<String>) -> Self {
        self.array_lens.insert(array.into(), len.into());
        self
    }
}

/// The tuner's decision.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Variables chosen for demotion (selection order).
    pub demoted: Vec<String>,
    /// Accumulated estimate of the chosen set.
    pub estimated_error: f64,
    /// Every variable's estimated demotion error, ascending.
    pub per_variable: Vec<(String, f64)>,
    /// The precision map to compile the tuned variant with (keyed by the
    /// variable ids of the *inlined* function).
    pub config: PrecisionMap,
    /// The full-precision result on the profiling inputs.
    pub baseline_value: f64,
    /// Oracle-measured output error of the chosen configuration (only
    /// set by [`tune_with_oracle`]). For a trial admitted under
    /// [`DivergencePolicy::TwoRunValidate`] this is the two-run
    /// validation error, not the (untrusted) shadow measurement. `None`
    /// from [`tune_with_oracle`] when no trial was admitted *and* the
    /// empty starting configuration's own probe diverged (DD mode):
    /// nothing was measured on a trusted trace, and a two-run
    /// validation of the unchanged program would be vacuously zero.
    pub measured_error: Option<f64>,
    /// Compiled-variant cache hits observed during this tuning run (0
    /// when no cache was involved).
    pub cache_hits: u64,
    /// Greedy trials whose oracle run observed a primal-vs-shadow
    /// control-flow split and were therefore handled by the
    /// [`DivergencePolicy`] instead of the one-pass measurement (0 for
    /// estimate-only [`tune`]).
    pub divergent_trials: u64,
    /// Per-trial faults (traps, panics, non-finite measurements) the run
    /// isolated — injected or genuine. Every counted event was contained
    /// to one trial and retried; it either recovered or quarantined that
    /// trial, instead of aborting the tune.
    pub faults: FaultSummary,
}

/// Measured quality of a configuration.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Full-precision result.
    pub baseline: f64,
    /// Result under the demoted configuration.
    pub demoted: f64,
    /// `|baseline − demoted|`.
    pub actual_error: f64,
}

// ------------------------------------------------------------------------
// Per-trial fault isolation
// ------------------------------------------------------------------------

/// Counts of the per-trial faults a tuning or validation run isolated.
///
/// A *trial* is one configuration's compile + run (a greedy candidate, a
/// validation config, the baseline, the estimation pass). A *fault* is a
/// runtime trap, a panic, or a non-finite measured value. Every fault is
/// retried once — with a proportionally escalated instruction budget
/// when the trap was [`TrapKind::InstrBudgetExhausted`] — and the trial
/// is quarantined (dropped from consideration, never admitted) if the
/// retry faults again. Counters increment once per faulting attempt, so
/// a quarantined trial contributes two events.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FaultSummary {
    /// Attempts that trapped (budget, div-by-zero, OOB, injected, …).
    pub trapped: u64,
    /// Attempts that panicked (caught at the trial boundary).
    pub panicked: u64,
    /// Attempts whose measured value came back NaN/±Inf.
    pub nonfinite: u64,
    /// Retries performed (one per first-attempt fault).
    pub retried: u64,
    /// Trials whose retry completed cleanly.
    pub recovered: u64,
    /// Trials that faulted twice and were quarantined.
    pub quarantined: u64,
    /// Human-readable per-fault notes, capped at
    /// [`FaultSummary::MAX_DETAILS`] (the counters are never capped).
    pub details: Vec<String>,
}

impl FaultSummary {
    /// Cap on [`FaultSummary::details`] entries.
    pub const MAX_DETAILS: usize = 32;

    /// Total fault events (attempts that trapped, panicked, or measured
    /// non-finite).
    pub fn total(&self) -> u64 {
        self.trapped + self.panicked + self.nonfinite
    }

    /// `true` when no trial faulted.
    pub fn is_clean(&self) -> bool {
        self.total() == 0
    }

    /// Accumulates another run's counts (details kept up to the cap).
    pub fn merge(&mut self, other: &FaultSummary) {
        self.trapped += other.trapped;
        self.panicked += other.panicked;
        self.nonfinite += other.nonfinite;
        self.retried += other.retried;
        self.recovered += other.recovered;
        self.quarantined += other.quarantined;
        for d in &other.details {
            self.note(d.clone());
        }
    }

    fn note(&mut self, msg: String) {
        if self.details.len() < Self::MAX_DETAILS {
            self.details.push(msg);
        }
    }

    fn bump(&mut self, fault: &Fault) {
        // The registry mirrors every event the public counters see
        // (`bump` only runs at `run_trial`'s fault sites, never on
        // result-side `merge`), so `tuner.faults.*` is a process-wide
        // view over the same ground truth as `TuneResult::faults`.
        match fault {
            // A non-finite *trap* is still a non-finite event: an
            // injected NaN arms `trap_on_nonfinite` for its run, so it
            // surfaces here instead of as a raw measurement.
            Fault::Trap(t) if matches!(t.kind, TrapKind::NonFinite { .. }) => {
                self.nonfinite += 1;
                chef_telemetry::counter!("tuner.faults.nonfinite").inc();
            }
            Fault::Trap(_) => {
                self.trapped += 1;
                chef_telemetry::counter!("tuner.faults.trapped").inc();
            }
            Fault::Panic { .. } => {
                self.panicked += 1;
                chef_telemetry::counter!("tuner.faults.panicked").inc();
            }
            Fault::NonFinite(_) => {
                self.nonfinite += 1;
                chef_telemetry::counter!("tuner.faults.nonfinite").inc();
            }
        }
    }
}

/// Shared, thread-safe fault accumulator (trials run on scoped threads).
/// Recovers from poisoning: a panicking trial is itself a recorded
/// event, not a reason to lose the log.
#[derive(Default)]
struct FaultLog(Mutex<FaultSummary>);

impl FaultLog {
    fn with(&self, f: impl FnOnce(&mut FaultSummary)) {
        f(&mut self.0.lock().unwrap_or_else(|p| p.into_inner()));
    }

    fn into_summary(self) -> FaultSummary {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

/// One faulting attempt, classified.
enum Fault {
    Trap(Trap),
    Panic {
        payload: Box<dyn std::any::Any + Send>,
        msg: String,
    },
    NonFinite(f64),
}

impl Fault {
    fn describe(&self) -> String {
        match self {
            Fault::Trap(t) => format!("trap: {t}"),
            Fault::Panic { msg, .. } => format!("panic: {msg}"),
            Fault::NonFinite(v) => format!("non-finite measurement ({v})"),
        }
    }
}

/// What [`run_trial`] resolved a trial to.
enum TrialOutcome<T> {
    /// Completed cleanly (possibly after one retry).
    Done(T),
    /// Faulted twice: quarantined, with the second fault and — when the
    /// run itself completed but measured non-finite — its value.
    Faulted(Fault, Option<T>),
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// `exec` with its instruction budget raised to at least `floor` (a
/// retry after [`TrapKind::InstrBudgetExhausted`] escalates
/// proportionally to the count the trap carried). An unlimited budget
/// stays unlimited.
fn with_budget_floor(exec: &ExecOptions, floor: Option<u64>) -> ExecOptions {
    match floor {
        None => exec.clone(),
        Some(fl) => ExecOptions {
            max_instrs: exec.max_instrs.map(|b| b.max(fl)),
            ..exec.clone()
        },
    }
}

/// Hard ceiling on the [`TrapKind::InstrBudgetExhausted`] retry
/// escalation, as a multiple of the admission-time budget: a retry may
/// run with at most `ESCALATION_CAP ×` the budget the trial was admitted
/// with. Block-granular accounting lets a pathological kernel (one huge
/// straight-line block) overshoot its budget by an arbitrary factor, and
/// an uncapped "double the executed count" retry would then ratchet the
/// session far past what admission priced — the cap bounds a trial's
/// worst-case spend at `(1 + ESCALATION_CAP) ×` the admitted budget.
pub const ESCALATION_CAP: u64 = 2;

/// Runs one trial with fault isolation: a trap, a panic, or (when
/// `value_of` yields the trial's measurement) a non-finite value is
/// recorded in `log` and retried once; a second fault quarantines the
/// trial. Non-fault errors (compile, unknown function, …) propagate
/// unchanged — they are deterministic caller mistakes, not per-trial
/// weather. `attempt` receives the retry's instruction-budget floor,
/// escalated from the trap's executed count but never past
/// [`ESCALATION_CAP`] × `admitted` (the trial's admission-time
/// `max_instrs`).
fn run_trial<T>(
    log: &FaultLog,
    what: &dyn Fn() -> String,
    admitted: Option<u64>,
    attempt: &mut dyn FnMut(Option<u64>) -> Result<T, ChefError>,
    value_of: &dyn Fn(&T) -> Option<f64>,
) -> Result<TrialOutcome<T>, ChefError> {
    let _span = chef_telemetry::span("trial");
    let mut once = |floor: Option<u64>| -> Result<Result<T, (Fault, Option<T>)>, ChefError> {
        match catch_unwind(AssertUnwindSafe(|| attempt(floor))) {
            Ok(Ok(v)) => match value_of(&v) {
                Some(x) if !x.is_finite() => Ok(Err((Fault::NonFinite(x), Some(v)))),
                _ => Ok(Ok(v)),
            },
            Ok(Err(ChefError::Trap(t))) => Ok(Err((Fault::Trap(t), None))),
            Ok(Err(e)) => Err(e),
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                Ok(Err((Fault::Panic { payload, msg }, None)))
            }
        }
    };
    let (first, _) = match once(None)? {
        Ok(v) => return Ok(TrialOutcome::Done(v)),
        Err(f) => f,
    };
    let floor = match &first {
        Fault::Trap(t) => match t.kind {
            TrapKind::InstrBudgetExhausted { executed } => {
                let escalated = executed.saturating_mul(2);
                let cap = admitted.map(|b| b.saturating_mul(ESCALATION_CAP));
                Some(cap.map_or(escalated, |c| escalated.min(c)))
            }
            _ => None,
        },
        _ => None,
    };
    chef_telemetry::counter!("tuner.faults.retried").inc();
    log.with(|s| {
        s.bump(&first);
        s.retried += 1;
    });
    match once(floor)? {
        Ok(v) => {
            chef_telemetry::counter!("tuner.faults.recovered").inc();
            log.with(|s| {
                s.recovered += 1;
                s.note(format!(
                    "{}: {} — retried, recovered",
                    what(),
                    first.describe()
                ));
            });
            Ok(TrialOutcome::Done(v))
        }
        Err((second, v)) => {
            chef_telemetry::counter!("tuner.faults.quarantined").inc();
            log.with(|s| {
                s.bump(&second);
                s.quarantined += 1;
                s.note(format!(
                    "{}: {}; {} on retry — quarantined",
                    what(),
                    first.describe(),
                    second.describe()
                ));
            });
            Ok(TrialOutcome::Faulted(second, v))
        }
    }
}

/// Unwraps a trial whose value is the deliverable (validation runs, the
/// estimation pass): a persistently non-finite value is genuine data —
/// the program really computes it, and the caller reports it — while a
/// persistent trap or panic propagates exactly as it did before the
/// fault layer existed.
fn accept_or_propagate<T>(outcome: TrialOutcome<T>) -> Result<T, ChefError> {
    match outcome {
        TrialOutcome::Done(v) => Ok(v),
        TrialOutcome::Faulted(Fault::NonFinite(_), v) => {
            Ok(v.expect("a non-finite fault carries its value"))
        }
        TrialOutcome::Faulted(Fault::Trap(t), _) => Err(ChefError::Trap(t)),
        TrialOutcome::Faulted(Fault::Panic { payload, .. }, _) => resume_unwind(payload),
    }
}

/// The fault plan in effect for a session: an explicit plan wins,
/// otherwise the `CHEF_FAULT_SEED` environment plan (if set) applies.
fn resolved_fault(explicit: Option<&FaultPlan>) -> Option<FaultPlan> {
    explicit.cloned().or_else(chef_exec::fault::env_plan)
}

// ------------------------------------------------------------------------
// Compiled-variant cache
// ------------------------------------------------------------------------

/// The one cache key, in memory and on disk: the 128-bit content hash
/// of the variant's canonical source + compile options
/// ([`chef_exec::store::content_key`]). The previous key —
/// `(function name, sorted demotion entries)` — silently collided the
/// moment a cache outlived one program: two different programs sharing
/// a function name (and demotion set) would cross-hit and execute each
/// other's bytecode. Content addressing makes that structurally
/// impossible; the `same_name_different_program` regression test pins
/// it.
type VariantKey = ContentKey;

/// How many pending disk write-backs accumulate before they are flushed
/// inline. Small enough that a crashed process loses little work, large
/// enough that a greedy sweep isn't paying one fsync per candidate.
const WRITE_BACK_BATCH: usize = 8;

/// A cache of compiled mixed-precision variants keyed by content hash
/// ([`ContentKey`] — canonical source + options, never the function
/// name), bundled with the session's machine arenas.
///
/// The greedy loops and sweeps recompile overlapping `PrecisionMap`s —
/// the empty baseline on every validation call, the accepted
/// configuration of each greedy step, the single-demotion configs shared
/// between [`sweep_single_demotions`] and [`tune_with_oracle`]'s first
/// round. Shareable across calls (interior mutability; `Sync`) and —
/// because keys are content hashes — safely shareable across *programs*
/// and sessions.
///
/// Compiling hundreds of variants is only half the cost — each one also
/// runs. The embedded [`MachineArena`]s let every run of every variant
/// (plain validation and both shadow-oracle modes) share one set of
/// register-file/tape allocations, sized to the session maximum.
///
/// The table is **bounded**: past [`VariantCache::capacity`] entries, the
/// least-recently-used variant is evicted (counted in
/// [`VariantCache::evictions`] and the `tuner.cache.evictions` metric).
/// A long-lived server session sweeping many functions through one cache
/// therefore holds at most `capacity` compiled bodies, not an unbounded
/// history. The default capacity (512) is far above any single tune's
/// working set, so short sessions never evict and their hit/miss counts
/// are exact compile-savings figures.
///
/// ## Disk tier
///
/// Behind the bounded in-memory table sits an optional
/// [`chef_exec::store::DiskStore`] (enabled process-wide by
/// `CHEF_CACHE_DIR`, or per cache via [`VariantCache::with_store`]). A
/// memory miss probes the store first: a hit is decoded, revalidated
/// through `validate_function`, inserted into the memory tier, and
/// marked with a zero-length `compile.skipped` span — no
/// `compile`/`fuse`/`pack` work happens at all. A genuine miss compiles
/// and *enqueues* the variant for write-back; pending write-backs flush
/// every [`WRITE_BACK_BATCH`] compilations, on [`VariantCache::flush_disk`]
/// (the server's drain calls this), and on drop. [`VariantCache::misses`]
/// keeps meaning "compilations actually performed" — a disk hit is
/// neither a memory hit nor a miss; the store's own
/// `cache.disk.{hits,misses,writes,corrupt}` counters tell the disk
/// story.
pub struct VariantCache {
    inner: Mutex<HashMap<VariantKey, CachedVariant>>,
    capacity: usize,
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    disk: Option<Arc<DiskStore>>,
    pending: Mutex<Vec<(ContentKey, Arc<CompiledFunction>)>>,
    arena: MachineArena,
    shadow64: ShadowMachineArena<f64>,
    shadow_dd: ShadowMachineArena<chef_shadow::DD>,
}

struct CachedVariant {
    func: Arc<CompiledFunction>,
    last_used: u64,
}

/// Default [`VariantCache`] capacity: generous enough that a single
/// tuning session (hundreds of variants at most) never evicts.
pub const DEFAULT_CACHE_CAPACITY: usize = 512;

impl Default for VariantCache {
    fn default() -> Self {
        VariantCache::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl VariantCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        VariantCache::default()
    }

    /// An empty cache holding at most `capacity` compiled variants
    /// (minimum 1). Smaller capacities trade recompilation for memory —
    /// useful for servers admitting many concurrent sessions.
    pub fn with_capacity(capacity: usize) -> Self {
        VariantCache {
            inner: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            disk: DiskStore::from_env(),
            pending: Mutex::new(Vec::new()),
            arena: MachineArena::new(),
            shadow64: ShadowMachineArena::new(),
            shadow_dd: ShadowMachineArena::new(),
        }
    }

    /// Attaches an explicit disk tier (builder style), replacing the
    /// `CHEF_CACHE_DIR` default. The `AnalysisServer` uses this so all
    /// of its sessions share one configured store; tests use it to get
    /// a hermetic store regardless of the environment.
    pub fn with_store(mut self, store: Arc<DiskStore>) -> Self {
        self.disk = Some(store);
        self
    }

    /// Removes the disk tier (builder style): a purely in-memory cache
    /// even when `CHEF_CACHE_DIR` is set.
    pub fn without_store(mut self) -> Self {
        self.disk = None;
        self
    }

    /// The attached disk store, if any.
    pub fn store(&self) -> Option<&Arc<DiskStore>> {
        self.disk.as_ref()
    }

    /// Maximum number of compiled variants retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The session's plain-VM machine arena.
    pub fn arena(&self) -> &MachineArena {
        &self.arena
    }

    /// The session's `f64`-shadow machine arena.
    pub fn shadow64(&self) -> &ShadowMachineArena<f64> {
        &self.shadow64
    }

    /// The session's double-double-shadow machine arena.
    pub fn shadow_dd(&self) -> &ShadowMachineArena<chef_shadow::DD> {
        &self.shadow_dd
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of compilations performed (cache misses).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of variants evicted to stay within capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// The variant table, recovering from mutex poisoning: a panicking
    /// trial (injected or genuine) may die between lock and unlock, but
    /// the table's invariant — a map of fully-compiled variants — holds
    /// at every await-free point inside the critical sections, so the
    /// poisoned state is always a valid cache.
    fn table(&self) -> std::sync::MutexGuard<'_, HashMap<VariantKey, CachedVariant>> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// The next use-clock stamp. Relaxed is fine: the clock only orders
    /// evictions, and an occasionally stale ordering evicts a
    /// near-equally-old entry — never a correctness issue.
    fn stamp(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Number of cached variants.
    pub fn len(&self) -> usize {
        self.table().len()
    }

    /// `true` when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the compiled variant of `primal` under `pm`: memory tier,
    /// then disk tier (decode + revalidate, zero compilation), then a
    /// real compile (outside the lock; a racing miss keeps the first
    /// inserted variant) with a deferred disk write-back.
    pub fn get_or_compile(
        &self,
        primal: &Function,
        pm: &PrecisionMap,
    ) -> Result<Arc<CompiledFunction>, CompileError> {
        let opts = CompileOptions {
            precisions: pm.clone(),
            ..Default::default()
        };
        let key = content_key(primal, &opts);
        if let Some(hit) = self.table().get_mut(&key) {
            hit.last_used = self.stamp();
            self.hits.fetch_add(1, Ordering::Relaxed);
            chef_telemetry::counter!("tuner.cache.hits").inc();
            return Ok(hit.func.clone());
        }
        if let Some(store) = &self.disk {
            if let Some(func) = store.load(&key) {
                // A zero-length span marking a compilation the disk tier
                // made unnecessary — the warm-start signal `repro --smoke`
                // and the cache-reuse CI job assert on.
                drop(chef_telemetry::span("compile.skipped"));
                return Ok(self.insert(key, Arc::new(func)));
            }
        }
        let compiled = Arc::new(compile(primal, &opts)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        chef_telemetry::counter!("tuner.cache.misses").inc();
        if self.disk.is_some() {
            self.enqueue_write_back(key, compiled.clone());
        }
        Ok(self.insert(key, compiled))
    }

    /// Inserts `func` under `key` with a fresh use stamp (a racing
    /// insert keeps the incumbent) and evicts past capacity. Returns
    /// the variant now cached under `key`.
    fn insert(&self, key: VariantKey, func: Arc<CompiledFunction>) -> Arc<CompiledFunction> {
        let now = self.stamp();
        let mut table = self.table();
        // A racing miss may have inserted first; either way the variant
        // at `key` was just used, so it carries the fresh stamp — which
        // also shields it from the eviction scan below.
        let entry = table.entry(key).or_insert(CachedVariant {
            func,
            last_used: now,
        });
        entry.last_used = now;
        let func = entry.func.clone();
        while table.len() > self.capacity {
            let victim = table
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| *k)
                .expect("non-empty past capacity");
            table.remove(&victim);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            chef_telemetry::counter!("tuner.cache.evictions").inc();
        }
        func
    }

    /// Queues a freshly compiled variant for disk write-back, flushing
    /// inline once [`WRITE_BACK_BATCH`] are pending. The queue (not a
    /// synchronous write per compile) keeps the greedy loop's critical
    /// path free of fsyncs; durability hooks are [`flush_disk`], the
    /// server's drain, and [`Drop`].
    ///
    /// [`flush_disk`]: VariantCache::flush_disk
    fn enqueue_write_back(&self, key: ContentKey, func: Arc<CompiledFunction>) {
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        pending.push((key, func));
        if pending.len() >= WRITE_BACK_BATCH {
            let batch = std::mem::take(&mut *pending);
            drop(pending);
            self.write_back(batch);
        }
    }

    /// Flushes all pending disk write-backs; returns how many entries
    /// were written. A no-op without a disk tier (the queue is only fed
    /// when one is attached).
    pub fn flush_disk(&self) -> usize {
        let batch = {
            let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *pending)
        };
        self.write_back(batch)
    }

    fn write_back(&self, batch: Vec<(ContentKey, Arc<CompiledFunction>)>) -> usize {
        let Some(store) = &self.disk else { return 0 };
        batch
            .iter()
            .filter(|(key, func)| store.store(key, func))
            .count()
    }
}

impl Drop for VariantCache {
    /// Best-effort durability: whatever the write-back queue still
    /// holds goes to disk when the cache (session) ends.
    fn drop(&mut self) {
        self.flush_disk();
    }
}

// ------------------------------------------------------------------------
// Estimate-driven tuning (paper §III)
// ------------------------------------------------------------------------

/// The combined demotion model the tuner estimates with: representation
/// error (eq. 2) plus, for computed variables, the extra arithmetic
/// rounding at the lower precision (eq. 1 with the target epsilon).
struct TunerModel {
    adapt: AdaptModel,
    taylor: TaylorModel,
}

impl ErrorModel for TunerModel {
    fn name(&self) -> &'static str {
        "tuner"
    }
    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<chef_ir::ast::Expr> {
        match (self.adapt.assign_error(ctx), self.taylor.assign_error(ctx)) {
            (Some(a), Some(b)) => Some(chef_ir::ast::Expr::add(a, b)),
            (a, b) => a.or(b),
        }
    }
    fn input_error(
        &mut self,
        name: &str,
        value: &chef_ir::ast::Expr,
        adjoint: &chef_ir::ast::Expr,
        prec: FloatTy,
    ) -> Option<chef_ir::ast::Expr> {
        self.adapt.input_error(name, value, adjoint, prec)
    }
}

fn candidate_filter<'a>(cfg: &'a TunerConfig) -> impl Fn(&str) -> bool + 'a {
    move |name: &str| match &cfg.candidates {
        Some(c) => c.iter().any(|n| n == name),
        None => true,
    }
}

/// What one estimation pass yields: every candidate variable's
/// estimated demotion error (ascending), the full-precision result, and
/// the inlined program (so callers don't inline a second time).
type EstimateRanking = (Vec<(String, f64)>, f64, Program);

/// Runs the estimation pass once (see [`EstimateRanking`]). The
/// estimator's execution is one fault-isolated trial: a trap or panic is
/// retried once before propagating, and an injected fault (explicit plan
/// or `CHEF_FAULT_SEED`) is recovered without disturbing the ranking.
fn estimate_ranking(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
    log: &FaultLog,
) -> Result<EstimateRanking, ChefError> {
    let opts = EstimateOptions {
        array_lens: cfg.array_lens.clone(),
        ..Default::default()
    };
    let exec = ExecOptions {
        fault: resolved_fault(cfg.fault_plan.as_ref()),
        ..opts.exec.clone()
    };
    // Demoting a variable costs its representation error (eq. 2) *plus*,
    // for computed variables, the extra arithmetic rounding of the
    // operations now performed at the lower precision (eq. 1 with the
    // target epsilon). Inputs carry representation error only — they are
    // not computed, so a value that happens to be exactly representable
    // (the paper's quantized k-Means attributes) is free to demote.
    let mut model = TunerModel {
        adapt: AdaptModel::to(cfg.target),
        taylor: TaylorModel::for_demotion(cfg.target),
    };
    let est = estimate_error_with(program, func, &mut model, &opts)?;
    let out = accept_or_propagate(run_trial(
        log,
        &|| format!("estimate `{func}`"),
        exec.max_instrs,
        &mut |floor| {
            est.execute_with(args, &with_budget_floor(&exec, floor))
                .map_err(ChefError::Trap)
        },
        &|out: &EstimateOutcome| Some(out.value),
    )?)?;

    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let allowed = candidate_filter(cfg);
    let mut per_variable: Vec<(String, f64)> = primal
        .vars_iter()
        .filter(|(_, v)| v.ty.is_differentiable() && allowed(&v.name))
        .map(|(_, v)| (v.name.clone(), out.error_of(&v.name)))
        .collect();
    per_variable.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    Ok((per_variable, out.value, inlined))
}

/// Builds the `PrecisionMap` demoting `names` in the inlined `primal`.
fn config_for(primal: &Function, names: &[String], target: FloatTy) -> PrecisionMap {
    let mut config = PrecisionMap::empty();
    for (id, v) in primal.vars_iter() {
        if names.contains(&v.name) {
            if let Type::Float(_) | Type::Array(chef_ir::types::ElemTy::Float(_)) = v.ty {
                config.set(id, target);
            }
        }
    }
    config
}

/// Analyzes `func` on representative `args` and greedily selects a
/// demotion set under `cfg.threshold`.
pub fn tune(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<TuneResult, ChefError> {
    let log = FaultLog::default();
    let (per_variable, baseline_value, inlined) = estimate_ranking(program, func, args, cfg, &log)?;

    // Greedy selection under the threshold.
    let mut demoted = Vec::new();
    let mut acc = 0.0;
    for (name, err) in &per_variable {
        if acc + err <= cfg.threshold {
            acc += err;
            demoted.push(name.clone());
        }
    }
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let config = config_for(primal, &demoted, cfg.target);
    Ok(TuneResult {
        demoted,
        estimated_error: acc,
        per_variable,
        config,
        baseline_value,
        measured_error: None,
        cache_hits: 0,
        divergent_trials: 0,
        faults: log.into_summary(),
    })
}

// ------------------------------------------------------------------------
// Validation (two-run and oracle)
// ------------------------------------------------------------------------

/// Runs `func` at full precision and under `config`, reporting the actual
/// output difference.
pub fn validate(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
) -> Result<ValidationReport, ChefError> {
    validate_configs(program, func, args, std::slice::from_ref(config)).map(|mut v| v.remove(0))
}

/// Validates many candidate configurations against one full-precision
/// baseline run: each config is compiled and executed on its own thread
/// (scoped; the batch is embarrassingly parallel), results in input
/// order. This is the tuner's candidate-evaluation fast path — wall-clock
/// scales with the slowest candidate instead of the sum.
pub fn validate_configs(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    configs: &[PrecisionMap],
) -> Result<Vec<ValidationReport>, ChefError> {
    validate_configs_with(program, func, args, configs, None)
}

/// [`validate_configs`] with an optional shared [`VariantCache`]: the
/// baseline and every candidate compilation go through the cache, so
/// repeated validations of overlapping configurations compile each
/// variant once.
pub fn validate_configs_with(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    configs: &[PrecisionMap],
    cache: Option<&VariantCache>,
) -> Result<Vec<ValidationReport>, ChefError> {
    let log = FaultLog::default();
    validate_configs_impl(program, func, args, configs, cache, None, &log)
}

/// The fault-isolated body of [`validate_configs_with`]: each config
/// (and the baseline) is one trial — a trap or a panic is retried once
/// before propagating, so a transient or injected fault never discards
/// the batch, while a deterministic failure still errors as it always
/// did. A persistently non-finite result is data (the demoted program
/// really overflows) and is reported, after one retry absorbs any
/// injected NaN.
fn validate_configs_impl(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    configs: &[PrecisionMap],
    cache: Option<&VariantCache>,
    fault: Option<&FaultPlan>,
    log: &FaultLog,
) -> Result<Vec<ValidationReport>, ChefError> {
    let _span = chef_telemetry::span("validate");
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let exec = ExecOptions {
        fault: resolved_fault(fault),
        ..Default::default()
    };
    let compile_cfg = |pm: &PrecisionMap| -> Result<Arc<CompiledFunction>, ChefError> {
        match cache {
            Some(c) => c.get_or_compile(primal, pm).map_err(ChefError::Compile),
            None => compile(
                primal,
                &CompileOptions {
                    precisions: pm.clone(),
                    ..Default::default()
                },
            )
            .map(Arc::new)
            .map_err(ChefError::Compile),
        }
    };
    let run_cfg = |pm: &PrecisionMap, what: &dyn Fn() -> String| -> Result<f64, ChefError> {
        accept_or_propagate(run_trial(
            log,
            what,
            exec.max_instrs,
            &mut |floor| {
                let c = compile_cfg(pm)?;
                let e = with_budget_floor(&exec, floor);
                let out = match cache {
                    // Shared session: draw a pooled machine so every
                    // variant run in the session reuses the same buffers.
                    // A panicking run drops the guard mid-unwind and the
                    // arena discards the machine (see `chef_exec::arena`).
                    Some(cache) => cache.arena().checkout().run_reused(&c, args.to_vec(), &e),
                    None => chef_exec::vm::run_with(&c, args.to_vec(), &e),
                };
                out.map(|o| o.ret_f()).map_err(ChefError::Trap)
            },
            &|v: &f64| Some(*v),
        )?)
    };
    let baseline = run_cfg(&PrecisionMap::empty(), &|| format!("baseline `{func}`"))?;

    chef_exec::par::parallel_map(configs.iter().enumerate().collect(), None, |(i, pm)| {
        run_cfg(pm, &|| format!("validate `{func}` config #{i}")).map(|demoted| ValidationReport {
            baseline,
            demoted,
            actual_error: (baseline - demoted).abs(),
        })
    })
    .into_iter()
    .collect()
}

/// Measures `config` with the shadow-execution oracle: one fused pass
/// yields the ground-truth output error *and* the per-instruction /
/// per-variable attribution, instead of the demoted-vs-baseline pair of
/// [`validate`].
pub fn validate_with_oracle(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
    opts: &OracleOptions,
) -> Result<ShadowReport, ChefError> {
    chef_shadow::shadow_run(program, func, args, config, opts)
}

/// The paper's Table III study, generalized: demote each candidate
/// variable **on its own** and measure the actual output error, with the
/// candidates evaluated in parallel. Returns `(variable, report)` pairs
/// in candidate order.
pub fn sweep_single_demotions(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<Vec<(String, ValidationReport)>, ChefError> {
    sweep_single_demotions_with(program, func, args, cfg, None)
}

/// [`sweep_single_demotions`] through an optional shared [`VariantCache`]
/// (the single-variable configs are exactly the first greedy round of
/// [`tune_with_oracle`], so a shared cache de-duplicates those
/// compilations).
pub fn sweep_single_demotions_with(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
    cache: Option<&VariantCache>,
) -> Result<Vec<(String, ValidationReport)>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let allowed = candidate_filter(cfg);
    let mut names = Vec::new();
    let mut configs = Vec::new();
    for (id, v) in primal.vars_iter() {
        if v.ty.is_differentiable() && allowed(&v.name) {
            names.push(v.name.clone());
            configs.push(PrecisionMap::empty().with(id, cfg.target));
        }
    }
    let log = FaultLog::default();
    let reports = validate_configs_impl(
        program,
        func,
        args,
        &configs,
        cache,
        cfg.fault_plan.as_ref(),
        &log,
    )?;
    Ok(names.into_iter().zip(reports).collect())
}

// ------------------------------------------------------------------------
// Oracle-guided tuning
// ------------------------------------------------------------------------

/// How [`tune_with_oracle`] treats a trial configuration whose oracle
/// run observed a primal-vs-shadow control-flow split
/// ([`ShadowReport::diverged`]). A divergent run measured the error
/// along a trace the high-precision program would not have taken, so its
/// one-pass number is exactly as untrustworthy as the configuration is
/// interesting — it must not drive admission directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DivergencePolicy {
    /// Re-measure the divergent trial with the classic two-run
    /// validation (baseline run vs demoted run, both plain) and decide
    /// admission on that ground truth; the shadow number is discarded.
    /// This is the default — divergent configurations are re-ranked by
    /// two-run validation, not silently admitted or dropped.
    #[default]
    TwoRunValidate,
    /// Never admit a divergent configuration, whatever its error.
    Reject,
}

/// Options for [`tune_with_oracle`].
#[derive(Clone, Debug, Default)]
pub struct OracleTuneOptions {
    /// Shadow mode and VM options for the oracle runs.
    pub oracle: OracleOptions,
    /// Re-rank the greedy order by the *measured* per-variable
    /// attribution of an all-candidates-demoted shadow run (instead of
    /// the estimated order). Variables the measurement cannot separate
    /// keep their estimate order. Skipped (estimate order kept) when the
    /// all-candidates probe itself diverges: a divergent run's
    /// attribution describes the wrong trace.
    pub rerank_by_measured: bool,
    /// Treatment of divergent trial configurations.
    pub divergence_policy: DivergencePolicy,
}

impl OracleTuneOptions {
    /// Oracle tuning with measured re-ranking enabled.
    pub fn reranked() -> Self {
        OracleTuneOptions {
            rerank_by_measured: true,
            ..Default::default()
        }
    }
}

/// Greedy tuning against the shadow oracle: candidates are ranked by
/// estimate (optionally re-ranked by measured attribution), then added
/// one by one — each trial configuration compiled through `cache` and
/// **measured** by a fused shadow pass — while the measured output error
/// stays under `cfg.threshold`.
///
/// Unlike [`tune`], the returned configuration satisfies the threshold by
/// measurement ([`TuneResult::measured_error`]), not by estimate; the
/// estimate fields are still filled for comparison, and
/// [`TuneResult::cache_hits`] exposes the compilations the cache saved.
pub fn tune_with_oracle(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
    opts: &OracleTuneOptions,
    cache: &VariantCache,
) -> Result<TuneResult, ChefError> {
    let hits_before = cache.hits();
    let log = FaultLog::default();
    let (per_variable, baseline_value, inlined) = estimate_ranking(program, func, args, cfg, &log)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;

    // Exec options for every run of this session, with the fault plan
    // resolved (explicit oracle options > config plan > environment).
    let exec = ExecOptions {
        fault: opts
            .oracle
            .exec
            .fault
            .clone()
            .or_else(|| resolved_fault(cfg.fault_plan.as_ref())),
        ..opts.oracle.exec.clone()
    };

    // One pooled shadow machine per mode for the whole greedy loop —
    // drawn from the session cache's arenas, so the different compiled
    // variants (and any other tuning run sharing the cache) reuse the
    // same buffers. A panic mid-run leaves the machine stale, which is
    // fine: `run_reused` fully re-initializes it on the next call.
    let mut m64 = cache.shadow64().checkout();
    let mut mdd = cache.shadow_dd().checkout();
    let mut measure = |names: &[String], floor: Option<u64>| -> Result<ShadowReport, ChefError> {
        let _span = chef_telemetry::span("oracle_run");
        let pm = config_for(primal, names, cfg.target);
        let compiled = cache
            .get_or_compile(primal, &pm)
            .map_err(ChefError::Compile)?;
        let e = with_budget_floor(&exec, floor);
        let out = match opts.oracle.mode {
            chef_shadow::ShadowMode::F64 => m64.run_reused(&compiled, args.to_vec(), &e),
            chef_shadow::ShadowMode::DD => mdd.run_reused(&compiled, args.to_vec(), &e),
        }
        .map_err(ChefError::Trap)?;
        chef_shadow::report_from_outcome(&compiled, out)
    };
    // Every oracle measurement is a fault-isolated trial; a trial that
    // faults twice is quarantined (`None`) — never admitted, never
    // aborting the tune — and a non-finite measured error counts as a
    // fault, so a demoted config that overflows cannot poison the greedy
    // comparisons.
    let mut measure_isolated = |names: &[String]| -> Result<Option<ShadowReport>, ChefError> {
        let outcome = run_trial(
            &log,
            &|| format!("oracle trial `{func}` [{}]", names.join(", ")),
            exec.max_instrs,
            &mut |floor| measure(names, floor),
            &|rep: &ShadowReport| Some(rep.output_error),
        )?;
        Ok(match outcome {
            TrialOutcome::Done(rep) => Some(rep),
            TrialOutcome::Faulted(..) => None,
        })
    };

    // Two-run fallback for divergent trials: both sides run plain (no
    // shadow) through the cache and its machine arena. The baseline is
    // computed once, on first need.
    let mut baseline_run: Option<f64> = None;
    let run_plain = |pm: &PrecisionMap, what: &dyn Fn() -> String| -> Result<f64, ChefError> {
        accept_or_propagate(run_trial(
            &log,
            what,
            exec.max_instrs,
            &mut |floor| {
                let compiled = cache
                    .get_or_compile(primal, pm)
                    .map_err(ChefError::Compile)?;
                cache
                    .arena()
                    .checkout()
                    .run_reused(&compiled, args.to_vec(), &with_budget_floor(&exec, floor))
                    .map(|o| o.ret_f())
                    .map_err(ChefError::Trap)
            },
            &|v: &f64| Some(*v),
        )?)
    };
    let mut divergent_trials = 0u64;

    // Greedy order: estimated ascending, optionally re-ranked by the
    // measured attribution of one all-candidates shadow run.
    let mut order: Vec<(String, f64)> = per_variable.clone();
    if opts.rerank_by_measured && !order.is_empty() {
        let all: Vec<String> = order.iter().map(|(n, _)| n.clone()).collect();
        // A divergent (or quarantined) probe's attribution describes the
        // wrong trace — or no trace at all: keep the estimate order
        // instead of ranking by it.
        if let Some(rep) = measure_isolated(&all)? {
            if !rep.diverged() {
                // Stable sort: equal measured attributions keep the
                // estimate order.
                order.sort_by(|a, b| rep.error_of(&a.0).total_cmp(&rep.error_of(&b.0)));
            }
        }
    }

    // Measure the starting (empty) configuration rather than assuming
    // zero: in DD mode even the undemoted program has measurable error,
    // and `measured_error` must describe the *returned* configuration.
    // If that probe itself diverges (the undemoted program's own f64
    // rounding flips a branch against the DD shadow) there is no trusted
    // number for the empty config at all — a two-run validation of the
    // unchanged program is vacuously zero — so the result stays
    // unmeasured (`None`) unless a later trial is admitted.
    // A quarantined starting probe likewise leaves the empty config
    // unmeasured rather than failing the whole tune.
    let mut measured: Option<f64> = match measure_isolated(&[])? {
        Some(start) if start.diverged() => {
            divergent_trials += 1;
            chef_telemetry::counter!("tuner.trials.divergent").inc();
            None
        }
        Some(start) => Some(start.output_error),
        None => None,
    };

    // The trusted error of one trial: the one-pass oracle measurement
    // when the run was divergence-free, the policy's answer otherwise
    // (`None` = the trial may not be admitted — divergent-and-rejected
    // or quarantined by the fault layer).
    let mut trusted_error = |names: &[String],
                             baseline_run: &mut Option<f64>,
                             divergent_trials: &mut u64|
     -> Result<Option<f64>, ChefError> {
        let Some(rep) = measure_isolated(names)? else {
            return Ok(None);
        };
        if !rep.diverged() {
            return Ok(Some(rep.output_error));
        }
        *divergent_trials += 1;
        chef_telemetry::counter!("tuner.trials.divergent").inc();
        match opts.divergence_policy {
            DivergencePolicy::Reject => Ok(None),
            DivergencePolicy::TwoRunValidate => {
                let base = match *baseline_run {
                    Some(b) => b,
                    None => {
                        let b =
                            run_plain(&PrecisionMap::empty(), &|| format!("baseline `{func}`"))?;
                        *baseline_run = Some(b);
                        b
                    }
                };
                let demoted = run_plain(&config_for(primal, names, cfg.target), &|| {
                    format!("two-run trial `{func}` [{}]", names.join(", "))
                })?;
                Ok(Some((base - demoted).abs()))
            }
        }
    };

    let mut chosen: Vec<String> = Vec::new();
    let mut estimated = 0.0;
    for (name, est) in &order {
        let mut trial = chosen.clone();
        trial.push(name.clone());
        let Some(err) = trusted_error(&trial, &mut baseline_run, &mut divergent_trials)? else {
            continue; // divergent + Reject policy
        };
        if err <= cfg.threshold {
            chosen = trial;
            estimated += est;
            measured = Some(err);
        }
    }
    let config = config_for(primal, &chosen, cfg.target);
    Ok(TuneResult {
        demoted: chosen,
        estimated_error: estimated,
        per_variable,
        config,
        baseline_value,
        measured_error: measured,
        cache_hits: cache.hits() - hits_before,
        divergent_trials,
        faults: log.into_summary(),
    })
}

/// Finds the `VarId`s (in the inlined function) for a set of variable
/// names — convenience for building manual configurations (Table III's
/// one-variable-at-a-time study).
pub fn ids_of(program: &Program, func: &str, names: &[&str]) -> Result<Vec<VarId>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    Ok(primal
        .vars_iter()
        .filter(|(_, v)| names.contains(&v.name.as_str()))
        .map(|(id, _)| id)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        let mut p = chef_ir::parser::parse_program(src).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        p
    }

    #[test]
    fn demotes_low_sensitivity_variables_first() {
        // `noise` barely affects the result; `core` dominates it.
        let src = "double f(double a) {
            double noise = a * 1e-9;
            double core = a * 1000.0;
            double r = core * core + noise;
            return r;
        }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(1e-4);
        let res = tune(&p, "f", &[ArgValue::F(1.2345678901)], &cfg).unwrap();
        assert!(
            res.demoted.contains(&"noise".to_string()),
            "{:?}",
            res.demoted
        );
        assert!(
            !res.demoted.contains(&"core".to_string()),
            "{:?}",
            res.demoted
        );
        assert!(res.estimated_error <= 1e-4);
    }

    #[test]
    fn zero_threshold_demotes_only_zero_error_vars() {
        let src = "double f(double a) { double b = a * 3.0; return b; }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(0.0);
        let res = tune(&p, "f", &[ArgValue::F(0.1)], &cfg).unwrap();
        // 0.1*3 is not f32-exact: nothing demotable at zero threshold.
        assert!(res.demoted.is_empty(), "{:?}", res.demoted);
    }

    #[test]
    fn validation_confirms_threshold() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1); }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.37), ArgValue::I(100)];
        let cfg = TunerConfig::with_threshold(1e-4);
        let res = tune(&p, "f", &args, &cfg).unwrap();
        let report = validate(&p, "f", &args, &res.config).unwrap();
        assert!(
            report.actual_error <= 1e-4,
            "actual {} exceeds threshold; demoted {:?}",
            report.actual_error,
            res.demoted
        );
    }

    #[test]
    fn candidates_restriction_is_respected() {
        let src = "double f(double a) {
            double u = a + 0.125;
            double w = a * 7.0;
            return u * w;
        }";
        let p = program(src);
        let mut cfg = TunerConfig::with_threshold(1.0);
        cfg.candidates = Some(vec!["u".into()]);
        let res = tune(&p, "f", &[ArgValue::F(0.5)], &cfg).unwrap();
        assert_eq!(res.demoted, vec!["u".to_string()]);
    }

    #[test]
    fn validate_configs_matches_serial_validate() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1) * 0.5; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.41), ArgValue::I(200)];
        let ids = ids_of(&p, "f", &["s", "a"]).unwrap();
        let configs: Vec<PrecisionMap> = ids
            .iter()
            .map(|&id| PrecisionMap::empty().with(id, FloatTy::F32))
            .collect();
        let batch = validate_configs(&p, "f", &args, &configs).unwrap();
        for (cfg, report) in configs.iter().zip(&batch) {
            let serial = validate(&p, "f", &args, cfg).unwrap();
            assert_eq!(report.baseline.to_bits(), serial.baseline.to_bits());
            assert_eq!(report.demoted.to_bits(), serial.demoted.to_bits());
        }
    }

    #[test]
    fn single_demotion_sweep_covers_all_candidates() {
        let src = "double f(double a) {
            double u = a + 0.125;
            double w = a * 7.0;
            double r = u * w;
            return r;
        }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(1.0);
        let sweep = sweep_single_demotions(&p, "f", &[ArgValue::F(0.511)], &cfg).unwrap();
        let names: Vec<&str> = sweep.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"a")
                && names.contains(&"u")
                && names.contains(&"w")
                && names.contains(&"r"),
            "{names:?}"
        );
        // Each report agrees with a one-off validation.
        for (name, report) in &sweep {
            let ids = ids_of(&p, "f", &[name.as_str()]).unwrap();
            let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
            let one = validate(&p, "f", &[ArgValue::F(0.511)], &pm).unwrap();
            assert_eq!(
                report.actual_error.to_bits(),
                one.actual_error.to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn ids_of_resolves_names() {
        let src = "double f(double a) { double b = a; double c = b; return c; }";
        let p = program(src);
        let ids = ids_of(&p, "f", &["b", "c"]).unwrap();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn variant_cache_hits_on_repeated_configs_and_is_bit_identical() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1) * 0.5; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.29), ArgValue::I(100)];
        let ids = ids_of(&p, "f", &["s", "a", "i"]).unwrap();
        let configs: Vec<PrecisionMap> = ids
            .iter()
            .map(|&id| PrecisionMap::empty().with(id, FloatTy::F32))
            .collect();
        let cache = VariantCache::new().without_store();
        let first = validate_configs_with(&p, "f", &args, &configs, Some(&cache)).unwrap();
        let after_first = cache.misses();
        assert!(after_first >= 1 + configs.len() as u64 - 1); // baseline + variants
                                                              // Second pass over the same configs: baseline + variants all hit.
        let second = validate_configs_with(&p, "f", &args, &configs, Some(&cache)).unwrap();
        assert_eq!(cache.misses(), after_first, "no recompilation");
        assert!(cache.hits() > configs.len() as u64);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.demoted.to_bits(), b.demoted.to_bits());
        }
        // Uncached path agrees bit-for-bit with cached.
        let uncached = validate_configs(&p, "f", &args, &configs).unwrap();
        for (a, b) in first.iter().zip(&uncached) {
            assert_eq!(a.demoted.to_bits(), b.demoted.to_bits());
            assert_eq!(a.actual_error.to_bits(), b.actual_error.to_bits());
        }
    }

    #[test]
    fn oracle_validation_matches_two_run_validation() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += a * 0.4999 + 0.001; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.777), ArgValue::I(64)];
        let ids = ids_of(&p, "f", &["s"]).unwrap();
        let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
        let two_run = validate(&p, "f", &args, &pm).unwrap();
        let oracle = validate_with_oracle(&p, "f", &args, &pm, &OracleOptions::default()).unwrap();
        // No float-controlled branches: the shadow reproduces the
        // baseline bit-for-bit, so the measured error is identical.
        assert_eq!(oracle.shadow.to_bits(), two_run.baseline.to_bits());
        assert_eq!(oracle.primal.to_bits(), two_run.demoted.to_bits());
        assert_eq!(
            oracle.output_error.to_bits(),
            two_run.actual_error.to_bits()
        );
        assert!(!oracle.per_variable.is_empty());
    }

    #[test]
    fn divergent_trials_are_not_trusted_by_the_oracle_tuner() {
        // Demoting `s` flips the threshold branch (f32 sum of 100 × 0.01
        // lands below 1.0, the f64 shadow above), so the one-pass oracle
        // number describes the wrong trace. Under the default
        // `TwoRunValidate` policy the trial is re-measured by the classic
        // two-run validation; under `Reject` it is never admitted.
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + x; }
            double r = 0.0;
            if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
            return r;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.01), ArgValue::I(100)];
        // The oracle itself reports the divergence on the direct probe.
        let ids = ids_of(&p, "f", &["s"]).unwrap();
        let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
        let rep = validate_with_oracle(&p, "f", &args, &pm, &OracleOptions::default()).unwrap();
        assert!(rep.diverged(), "branch flip must be flagged");
        assert_eq!(rep.divergence_of("s"), rep.divergence_count);

        let mut cfg = TunerConfig::with_threshold(2.0); // two-run error ≈ 1.5 fits
        cfg.candidates = Some(vec!["s".into()]);
        let cache = VariantCache::new().without_store();
        let opts = OracleTuneOptions::default(); // TwoRunValidate
        let res = tune_with_oracle(&p, "f", &args, &cfg, &opts, &cache).unwrap();
        assert!(res.divergent_trials >= 1, "{res:?}");
        assert_eq!(res.demoted, vec!["s".to_string()]);
        // The reported measurement is the two-run ground truth, not the
        // (untrusted) shadow number.
        let two_run = validate(&p, "f", &args, &res.config).unwrap();
        assert_eq!(
            res.measured_error.unwrap().to_bits(),
            two_run.actual_error.to_bits()
        );
        assert_ne!(
            res.measured_error.unwrap().to_bits(),
            rep.output_error.to_bits(),
            "the divergent one-pass number must not be what admission used"
        );

        // Reject policy: the divergent configuration is never admitted.
        let reject = OracleTuneOptions {
            divergence_policy: DivergencePolicy::Reject,
            ..Default::default()
        };
        let res = tune_with_oracle(&p, "f", &args, &cfg, &reject, &cache).unwrap();
        assert!(res.demoted.is_empty(), "{:?}", res.demoted);
        assert!(res.divergent_trials >= 1);
    }

    /// An inert fault plan (period 0 never fires): explicitly opts a
    /// run out of any ambient `CHEF_FAULT_SEED` plan, so the reference
    /// ("clean") runs of the injection tests stay clean even under the
    /// CI fault matrix.
    fn no_injection() -> chef_exec::fault::FaultPlan {
        chef_exec::fault::FaultPlan::new(None, 0, 0, 1)
    }

    /// A straight-line kernel with 8 demotion candidates (no branches,
    /// so the oracle can never diverge and every trial is exactly one
    /// fault-plan draw).
    fn eight_var_kernel() -> Program {
        program(
            "double f(double a) {
                double v0 = a * 1.0000001;
                double v1 = a + 0.5;
                double v2 = v0 * v1;
                double v3 = a * 1e-8;
                double v4 = v1 + 0.25;
                double v5 = v2 * 0.999;
                double s = v0 + v1 + v2 + v3 + v4 + v5;
                return s;
            }",
        )
    }

    #[test]
    fn a_hundred_trial_fault_injected_tune_completes_with_exact_counts() {
        use chef_exec::fault::{FaultKind, FaultPlan};
        let p = eight_var_kernel();
        let args = vec![ArgValue::F(0.73)];
        let mut cfg = TunerConfig::with_threshold(1e-3);
        cfg.fault_plan = Some(no_injection());

        // Reference: the same tune with no faults injected.
        let clean_cache = VariantCache::new().without_store();
        let reference = tune_with_oracle(
            &p,
            "f",
            &args,
            &cfg,
            &OracleTuneOptions::reranked(),
            &clean_cache,
        )
        .unwrap();
        assert!(reference.faults.is_clean(), "{:?}", reference.faults);
        assert!(!reference.demoted.is_empty());

        // Mixed plan: every third draw fires, cycling trap → panic →
        // NaN. Period 3 means a retry draw can never fire, so every
        // fault recovers and the tune's *result* is unaffected.
        let (period, phase) = (3u64, 1u64);
        let plan = FaultPlan::new(None, period, phase, 1);
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.fault_plan = Some(plan.clone());

        let cache = VariantCache::new().without_store();
        let mut total = FaultSummary::default();
        let mut tunes = 0u64;
        while plan.draws() < 100 {
            let res = tune_with_oracle(
                &p,
                "f",
                &args,
                &faulted_cfg,
                &OracleTuneOptions::reranked(),
                &cache,
            )
            .unwrap();
            assert_eq!(res.demoted, reference.demoted, "faults changed the result");
            assert_eq!(
                res.measured_error.unwrap().to_bits(),
                reference.measured_error.unwrap().to_bits()
            );
            total.merge(&res.faults);
            tunes += 1;
        }
        assert!(tunes >= 5, "expected many tunes, got {tunes}");

        // Replay the schedule: the counters must match the fires
        // *exactly* — every injected fault surfaced as a recorded,
        // recovered trial fault, none were double-counted or lost.
        let draws = plan.draws();
        assert!(draws >= 100);
        let (mut trap, mut panic, mut nan) = (0u64, 0u64, 0u64);
        for n in 0..draws {
            if n % period == phase {
                match (n / period) % 3 {
                    0 => trap += 1,
                    1 => panic += 1,
                    _ => nan += 1,
                }
            }
        }
        let fires = trap + panic + nan;
        assert!(fires >= 30, "schedule fired {fires} times");
        assert_eq!(total.trapped, trap);
        assert_eq!(total.panicked, panic);
        assert_eq!(total.nonfinite, nan);
        assert_eq!(total.retried, fires);
        assert_eq!(total.recovered, fires);
        assert_eq!(total.quarantined, 0);
        assert!(!total.details.is_empty());
        assert!(total.details.len() <= FaultSummary::MAX_DETAILS);

        // The cache survived every injected panic: a final clean tune
        // over it compiles nothing new and still matches the reference.
        let misses = cache.misses();
        let after =
            tune_with_oracle(&p, "f", &args, &cfg, &OracleTuneOptions::reranked(), &cache).unwrap();
        assert_eq!(cache.misses(), misses, "cache unusable after faults");
        assert!(after.cache_hits > 0);
        assert_eq!(after.demoted, reference.demoted);
        assert!(after.faults.is_clean());

        // Kind-pinned plans attribute every fire to the right counter.
        for (kind, pick) in [
            (FaultKind::Trap, 0usize),
            (FaultKind::Panic, 1),
            (FaultKind::Nan, 2),
        ] {
            let pinned = FaultPlan::new(Some(kind), 2, 0, 1);
            let mut c = cfg.clone();
            c.fault_plan = Some(pinned.clone());
            let res = tune_with_oracle(
                &p,
                "f",
                &args,
                &c,
                &OracleTuneOptions::reranked(),
                &VariantCache::new().without_store(),
            )
            .unwrap();
            assert_eq!(res.demoted, reference.demoted);
            let fired = pinned.draws().div_ceil(2);
            let counts = [
                res.faults.trapped,
                res.faults.panicked,
                res.faults.nonfinite,
            ];
            assert_eq!(counts[pick], fired, "{kind:?}: {:?}", res.faults);
            assert_eq!(res.faults.total(), fired);
        }
    }

    #[test]
    fn plain_tune_isolates_injected_faults_in_the_estimation_pass() {
        use chef_exec::fault::FaultPlan;
        let p = eight_var_kernel();
        let args = vec![ArgValue::F(0.29)];
        let mut cfg = TunerConfig::with_threshold(1e-3);
        cfg.fault_plan = Some(no_injection());
        let reference = tune(&p, "f", &args, &cfg).unwrap();
        assert!(reference.faults.is_clean());

        let plan = FaultPlan::new(None, 2, 0, 1);
        let mut faulted = cfg.clone();
        faulted.fault_plan = Some(plan.clone());
        let mut seen = FaultSummary::default();
        while plan.draws() < 6 {
            let res = tune(&p, "f", &args, &faulted).unwrap();
            assert_eq!(res.demoted, reference.demoted);
            assert_eq!(
                res.estimated_error.to_bits(),
                reference.estimated_error.to_bits()
            );
            seen.merge(&res.faults);
        }
        // Phase 0, period 2: the first draw of every tune fires and the
        // retry recovers.
        assert_eq!(seen.total(), seen.recovered);
        assert!(seen.total() >= 3, "{seen:?}");
        assert_eq!(seen.quarantined, 0);
    }

    #[test]
    fn variant_cache_recovers_from_mutex_poisoning() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let src = "double f(double a) { double b = a * 3.0; return b; }";
        let p = program(src);
        let args = vec![ArgValue::F(0.4)];
        let cache = VariantCache::new().without_store();
        let first =
            validate_configs_with(&p, "f", &args, &[PrecisionMap::empty()], Some(&cache)).unwrap();
        // Poison the table's mutex the hard way.
        let r = catch_unwind(AssertUnwindSafe(|| {
            let _g = cache.inner.lock().unwrap();
            panic!("poison");
        }));
        assert!(r.is_err());
        assert!(cache.inner.is_poisoned());
        // Every entry point still works and the cached variants survive.
        assert!(!cache.is_empty());
        let misses = cache.misses();
        let again =
            validate_configs_with(&p, "f", &args, &[PrecisionMap::empty()], Some(&cache)).unwrap();
        assert_eq!(cache.misses(), misses, "poisoning must not evict");
        assert_eq!(again[0].demoted.to_bits(), first[0].demoted.to_bits());
    }

    #[test]
    fn a_persistently_trapping_config_is_quarantined_not_fatal() {
        use chef_exec::fault::{FaultKind, FaultPlan};
        let p = eight_var_kernel();
        let args = vec![ArgValue::F(0.5)];
        let mut cfg = TunerConfig::with_threshold(1e-3);
        // Period 1 fires on *every* draw — the retry faults again, so
        // every trial quarantines. The tune must still complete (with
        // nothing admitted) instead of propagating the trap.
        cfg.fault_plan = Some(FaultPlan::new(Some(FaultKind::Trap), 1, 0, 1));
        let res = tune_with_oracle(
            &p,
            "f",
            &args,
            &cfg,
            &OracleTuneOptions::default(),
            &VariantCache::new().without_store(),
        );
        // The estimation pass propagates its persistent trap (a
        // deterministic failure of the foundation is still an error)…
        assert!(matches!(res, Err(ChefError::Trap(_))), "{res:?}");

        // …but when only the *oracle trials* fault persistently, the
        // greedy loop quarantines each one and completes empty-handed.
        let mut clean_est = TunerConfig::with_threshold(1e-3);
        clean_est.fault_plan = Some(no_injection());
        let opts = OracleTuneOptions {
            oracle: OracleOptions {
                exec: ExecOptions {
                    fault: Some(FaultPlan::new(Some(FaultKind::Trap), 1, 0, 1)),
                    ..Default::default()
                },
                ..Default::default()
            },
            ..Default::default()
        };
        let res = tune_with_oracle(
            &p,
            "f",
            &args,
            &clean_est,
            &opts,
            &VariantCache::new().without_store(),
        )
        .unwrap();
        assert!(res.demoted.is_empty(), "{:?}", res.demoted);
        assert_eq!(res.measured_error, None);
        assert!(res.faults.quarantined >= 9, "{:?}", res.faults); // start + 8 trials
        assert_eq!(res.faults.recovered, 0);
    }

    /// The telemetry registry mirrors the fault counters and survives
    /// the panicking-trial paths from the fault layer: a mixed-plan
    /// tune injects worker panics (which poison any mutex held across
    /// the unwind), yet `chef_telemetry::snapshot()` keeps working and
    /// every `tuner.faults.*` counter advances by at least this tune's
    /// own `FaultSummary` counts. Deltas use `>=` because the registry
    /// is process-global and other tests in this binary increment it
    /// concurrently.
    #[test]
    fn telemetry_registry_survives_fault_injected_trials() {
        use chef_exec::fault::FaultPlan;
        let p = eight_var_kernel();
        let args = vec![ArgValue::F(0.61)];
        let mut cfg = TunerConfig::with_threshold(1e-3);
        // Mixed plan, period 3: draws 1, 4, 7, … fire, cycling
        // trap → panic → NaN, so a panic is injected by draw 4.
        let plan = FaultPlan::new(None, 3, 1, 1);
        cfg.fault_plan = Some(plan.clone());

        let before = chef_telemetry::snapshot();
        let cache = VariantCache::new().without_store();
        let mut total = FaultSummary::default();
        while plan.draws() < 40 {
            let res =
                tune_with_oracle(&p, "f", &args, &cfg, &OracleTuneOptions::reranked(), &cache)
                    .unwrap();
            total.merge(&res.faults);
        }
        assert!(
            total.panicked >= 1,
            "plan never injected a panic: {total:?}"
        );
        assert!(total.trapped >= 1, "{total:?}");
        assert!(total.nonfinite >= 1, "{total:?}");

        let after = chef_telemetry::snapshot();
        let delta = |name: &str| after.counter(name).saturating_sub(before.counter(name));
        assert!(delta("tuner.faults.trapped") >= total.trapped);
        assert!(delta("tuner.faults.panicked") >= total.panicked);
        assert!(delta("tuner.faults.nonfinite") >= total.nonfinite);
        assert!(delta("tuner.faults.retried") >= total.retried);
        assert!(delta("tuner.faults.recovered") >= total.recovered);
        assert!(delta("tuner.cache.misses") >= 1, "first tune misses");
        assert!(delta("tuner.cache.hits") >= 1, "later tunes hit");
    }

    #[test]
    fn oracle_tuning_meets_threshold_by_measurement_and_reports_cache_hits() {
        let src = "double f(double a, int n) {
            double lo = a * 1e-7;
            double mid = a + 0.5;
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += mid * 1.0001 + lo; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.41), ArgValue::I(50)];
        let cfg = TunerConfig::with_threshold(1e-4);
        let cache = VariantCache::new().without_store();
        let res =
            tune_with_oracle(&p, "f", &args, &cfg, &OracleTuneOptions::reranked(), &cache).unwrap();
        // The threshold holds by *measurement* (and re-validates two-run).
        let measured = res.measured_error.expect("oracle tuning measures");
        assert!(measured <= 1e-4, "{measured}");
        let check = validate(&p, "f", &args, &res.config).unwrap();
        assert!(check.actual_error <= 1e-4, "{}", check.actual_error);
        assert!(!res.demoted.is_empty(), "{:?}", res.per_variable);
        // A second oracle tuning over the same cache compiles nothing
        // new: every greedy-step compilation is a per-run cache hit.
        let misses_before = cache.misses();
        let res2 =
            tune_with_oracle(&p, "f", &args, &cfg, &OracleTuneOptions::reranked(), &cache).unwrap();
        assert_eq!(cache.misses(), misses_before);
        assert!(res2.cache_hits > 0);
        assert!(res2.cache_hits >= res.cache_hits);
        assert_eq!(res2.demoted, res.demoted);
    }

    #[test]
    fn retry_escalation_is_capped_by_the_admitted_budget() {
        // A "kernel" needing 50 instructions under an admitted budget of
        // 10: block-granular accounting lets the first attempt overshoot
        // arbitrarily before trapping with its executed count, and the
        // retry runs with the escalated floor.
        let needs: u64 = 50;
        let admitted: u64 = 10;
        let mut attempt = |floor: Option<u64>| -> Result<f64, ChefError> {
            let budget = floor.unwrap_or(admitted);
            if budget >= needs {
                Ok(1.0)
            } else {
                Err(ChefError::Trap(Trap {
                    kind: TrapKind::InstrBudgetExhausted { executed: needs },
                    pc: 7,
                    span: chef_ir::span::Span::DUMMY,
                }))
            }
        };
        // Uncapped (no admitted budget): the floor doubles the executed
        // count (100 ≥ 50) and the retry recovers.
        let log = FaultLog::default();
        let out = run_trial(
            &log,
            &|| "uncapped".to_string(),
            None,
            &mut attempt,
            &|v: &f64| Some(*v),
        )
        .unwrap();
        assert!(matches!(out, TrialOutcome::Done(_)));
        // Capped: min(2·50, ESCALATION_CAP·10) = 20 < 50 — the retry
        // traps again and the trial is quarantined instead of ratcheting
        // the session past what admission priced.
        let log = FaultLog::default();
        let out = run_trial(
            &log,
            &|| "capped".to_string(),
            Some(admitted),
            &mut attempt,
            &|v: &f64| Some(*v),
        )
        .unwrap();
        match out {
            TrialOutcome::Faulted(Fault::Trap(t), _) => {
                assert!(matches!(t.kind, TrapKind::InstrBudgetExhausted { .. }));
            }
            TrialOutcome::Done(_) => panic!("capped retry must not recover"),
            TrialOutcome::Faulted(..) => panic!("expected a budget trap"),
        }
        let mut quarantined = 0;
        log.with(|s| quarantined = s.quarantined);
        assert_eq!(quarantined, 1);
    }

    #[test]
    fn variant_cache_evicts_least_recently_used_past_capacity() {
        let src = "double f(double a) {
            double u = a + 1.0;
            double w = a * 2.0;
            double r = u * w;
            return r;
        }";
        let p = program(src);
        let inlined = chef_passes::inline_program(&p).unwrap();
        let f = inlined.function("f").unwrap();
        let ids = ids_of(&p, "f", &["u", "w", "r"]).unwrap();
        let (pm_u, pm_w, pm_r) = (
            PrecisionMap::empty().with(ids[0], FloatTy::F32),
            PrecisionMap::empty().with(ids[1], FloatTy::F32),
            PrecisionMap::empty().with(ids[2], FloatTy::F32),
        );
        let cache = VariantCache::with_capacity(2).without_store();
        cache.get_or_compile(f, &pm_u).unwrap(); // miss
        cache.get_or_compile(f, &pm_w).unwrap(); // miss
        cache.get_or_compile(f, &pm_u).unwrap(); // hit — freshens `u`
        cache.get_or_compile(f, &pm_r).unwrap(); // miss → evicts `w`
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 2);
        let misses = cache.misses();
        cache.get_or_compile(f, &pm_u).unwrap();
        assert_eq!(cache.misses(), misses, "`u` was freshened, not evicted");
        cache.get_or_compile(f, &pm_w).unwrap();
        assert_eq!(cache.misses(), misses + 1, "`w` was the LRU victim");
        assert_eq!(cache.evictions(), 2, "recompiling `w` evicted `r`");
    }
}
