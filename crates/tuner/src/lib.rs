//! # chef-tuner — mixed-precision tuning on CHEF-FP estimates
//!
//! Implements the workflow of the paper's §III: analyze the sensitivity of
//! every variable with the ADAPT demotion model (eq. 2), then **greedily
//! demote the least-error variables** while the accumulated estimate stays
//! under the user threshold — "a mixed precision configuration is reached
//! when the accumulated error meets the threshold value". The chosen
//! configuration is validated by actually running the demoted program and
//! comparing against the full-precision result (paper Table I's
//! actual-vs-estimated columns).

use chef_core::prelude::*;
use chef_exec::compile::{compile, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_ir::ast::{Program, VarId};
use chef_ir::types::{FloatTy, Type};
use std::collections::HashMap;

/// Tuning configuration.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Maximum admissible estimated error.
    pub threshold: f64,
    /// Demotion target precision.
    pub target: FloatTy,
    /// Restrict demotion to these variables (`None` = all float variables).
    pub candidates: Option<Vec<String>>,
    /// Array parameter → length parameter pairings for input error terms.
    pub array_lens: HashMap<String, String>,
}

impl TunerConfig {
    /// A threshold-only configuration demoting to `float`.
    pub fn with_threshold(threshold: f64) -> Self {
        TunerConfig {
            threshold,
            target: FloatTy::F32,
            candidates: None,
            array_lens: HashMap::new(),
        }
    }

    /// Registers an array-length pairing (builder style).
    pub fn with_array_len(mut self, array: impl Into<String>, len: impl Into<String>) -> Self {
        self.array_lens.insert(array.into(), len.into());
        self
    }
}

/// The tuner's decision.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Variables chosen for demotion (ascending estimated error).
    pub demoted: Vec<String>,
    /// Accumulated estimate of the chosen set.
    pub estimated_error: f64,
    /// Every variable's estimated demotion error, ascending.
    pub per_variable: Vec<(String, f64)>,
    /// The precision map to compile the tuned variant with (keyed by the
    /// variable ids of the *inlined* function).
    pub config: PrecisionMap,
    /// The full-precision result on the profiling inputs.
    pub baseline_value: f64,
}

/// Measured quality of a configuration.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Full-precision result.
    pub baseline: f64,
    /// Result under the demoted configuration.
    pub demoted: f64,
    /// `|baseline − demoted|`.
    pub actual_error: f64,
}

/// Analyzes `func` on representative `args` and greedily selects a
/// demotion set under `cfg.threshold`.
pub fn tune(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<TuneResult, ChefError> {
    let opts = EstimateOptions {
        array_lens: cfg.array_lens.clone(),
        ..Default::default()
    };
    // Demoting a variable costs its representation error (eq. 2) *plus*,
    // for computed variables, the extra arithmetic rounding of the
    // operations now performed at the lower precision (eq. 1 with the
    // target epsilon). Inputs carry representation error only — they are
    // not computed, so a value that happens to be exactly representable
    // (the paper's quantized k-Means attributes) is free to demote.
    struct TunerModel {
        adapt: AdaptModel,
        taylor: TaylorModel,
    }
    impl ErrorModel for TunerModel {
        fn name(&self) -> &'static str {
            "tuner"
        }
        fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<chef_ir::ast::Expr> {
            match (self.adapt.assign_error(ctx), self.taylor.assign_error(ctx)) {
                (Some(a), Some(b)) => Some(chef_ir::ast::Expr::add(a, b)),
                (a, b) => a.or(b),
            }
        }
        fn input_error(
            &mut self,
            name: &str,
            value: &chef_ir::ast::Expr,
            adjoint: &chef_ir::ast::Expr,
            prec: FloatTy,
        ) -> Option<chef_ir::ast::Expr> {
            self.adapt.input_error(name, value, adjoint, prec)
        }
    }
    let mut model = TunerModel {
        adapt: AdaptModel::to(cfg.target),
        taylor: TaylorModel::for_demotion(cfg.target),
    };
    let est = estimate_error_with(program, func, &mut model, &opts)?;
    let out = est.execute(args).map_err(ChefError::Trap)?;

    // Candidate variables with their estimates, ascending.
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let allowed = |name: &str| match &cfg.candidates {
        Some(c) => c.iter().any(|n| n == name),
        None => true,
    };
    let mut per_variable: Vec<(String, f64)> = primal
        .vars_iter()
        .filter(|(_, v)| v.ty.is_differentiable() && allowed(&v.name))
        .map(|(_, v)| (v.name.clone(), out.error_of(&v.name)))
        .collect();
    per_variable.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));

    // Greedy selection under the threshold.
    let mut demoted = Vec::new();
    let mut acc = 0.0;
    for (name, err) in &per_variable {
        if acc + err <= cfg.threshold {
            acc += err;
            demoted.push(name.clone());
        }
    }
    // Build the PrecisionMap over the inlined function's variable ids.
    let mut config = PrecisionMap::empty();
    for (id, v) in primal.vars_iter() {
        if demoted.contains(&v.name) {
            if let Type::Float(_) | Type::Array(chef_ir::types::ElemTy::Float(_)) = v.ty {
                config.set(id, cfg.target);
            }
        }
    }
    Ok(TuneResult {
        demoted,
        estimated_error: acc,
        per_variable,
        config,
        baseline_value: out.value,
    })
}

/// Runs `func` at full precision and under `config`, reporting the actual
/// output difference.
pub fn validate(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
) -> Result<ValidationReport, ChefError> {
    validate_configs(program, func, args, std::slice::from_ref(config)).map(|mut v| v.remove(0))
}

/// Validates many candidate configurations against one full-precision
/// baseline run: each config is compiled and executed on its own thread
/// (scoped; the batch is embarrassingly parallel), results in input
/// order. This is the tuner's candidate-evaluation fast path — wall-clock
/// scales with the slowest candidate instead of the sum.
pub fn validate_configs(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    configs: &[PrecisionMap],
) -> Result<Vec<ValidationReport>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let run_cfg = |pm: &PrecisionMap| -> Result<f64, ChefError> {
        let c = compile(
            primal,
            &CompileOptions {
                precisions: pm.clone(),
                ..Default::default()
            },
        )
        .map_err(ChefError::Compile)?;
        chef_exec::vm::run(&c, args.to_vec())
            .map(|o| o.ret_f())
            .map_err(ChefError::Trap)
    };
    let baseline = run_cfg(&PrecisionMap::empty())?;

    chef_exec::par::parallel_map(configs.iter().collect(), None, |pm| {
        run_cfg(pm).map(|demoted| ValidationReport {
            baseline,
            demoted,
            actual_error: (baseline - demoted).abs(),
        })
    })
    .into_iter()
    .collect()
}

/// The paper's Table III study, generalized: demote each candidate
/// variable **on its own** and measure the actual output error, with the
/// candidates evaluated in parallel. Returns `(variable, report)` pairs
/// in candidate order.
pub fn sweep_single_demotions(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<Vec<(String, ValidationReport)>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let allowed = |name: &str| match &cfg.candidates {
        Some(c) => c.iter().any(|n| n == name),
        None => true,
    };
    let mut names = Vec::new();
    let mut configs = Vec::new();
    for (id, v) in primal.vars_iter() {
        if v.ty.is_differentiable() && allowed(&v.name) {
            names.push(v.name.clone());
            configs.push(PrecisionMap::empty().with(id, cfg.target));
        }
    }
    let reports = validate_configs(program, func, args, &configs)?;
    Ok(names.into_iter().zip(reports).collect())
}

/// Finds the `VarId`s (in the inlined function) for a set of variable
/// names — convenience for building manual configurations (Table III's
/// one-variable-at-a-time study).
pub fn ids_of(program: &Program, func: &str, names: &[&str]) -> Result<Vec<VarId>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    Ok(primal
        .vars_iter()
        .filter(|(_, v)| names.contains(&v.name.as_str()))
        .map(|(id, _)| id)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        let mut p = chef_ir::parser::parse_program(src).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        p
    }

    #[test]
    fn demotes_low_sensitivity_variables_first() {
        // `noise` barely affects the result; `core` dominates it.
        let src = "double f(double a) {
            double noise = a * 1e-9;
            double core = a * 1000.0;
            double r = core * core + noise;
            return r;
        }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(1e-4);
        let res = tune(&p, "f", &[ArgValue::F(1.2345678901)], &cfg).unwrap();
        assert!(
            res.demoted.contains(&"noise".to_string()),
            "{:?}",
            res.demoted
        );
        assert!(
            !res.demoted.contains(&"core".to_string()),
            "{:?}",
            res.demoted
        );
        assert!(res.estimated_error <= 1e-4);
    }

    #[test]
    fn zero_threshold_demotes_only_zero_error_vars() {
        let src = "double f(double a) { double b = a * 3.0; return b; }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(0.0);
        let res = tune(&p, "f", &[ArgValue::F(0.1)], &cfg).unwrap();
        // 0.1*3 is not f32-exact: nothing demotable at zero threshold.
        assert!(res.demoted.is_empty(), "{:?}", res.demoted);
    }

    #[test]
    fn validation_confirms_threshold() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1); }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.37), ArgValue::I(100)];
        let cfg = TunerConfig::with_threshold(1e-4);
        let res = tune(&p, "f", &args, &cfg).unwrap();
        let report = validate(&p, "f", &args, &res.config).unwrap();
        assert!(
            report.actual_error <= 1e-4,
            "actual {} exceeds threshold; demoted {:?}",
            report.actual_error,
            res.demoted
        );
    }

    #[test]
    fn candidates_restriction_is_respected() {
        let src = "double f(double a) {
            double u = a + 0.125;
            double w = a * 7.0;
            return u * w;
        }";
        let p = program(src);
        let mut cfg = TunerConfig::with_threshold(1.0);
        cfg.candidates = Some(vec!["u".into()]);
        let res = tune(&p, "f", &[ArgValue::F(0.5)], &cfg).unwrap();
        assert_eq!(res.demoted, vec!["u".to_string()]);
    }

    #[test]
    fn validate_configs_matches_serial_validate() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1) * 0.5; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.41), ArgValue::I(200)];
        let ids = ids_of(&p, "f", &["s", "a"]).unwrap();
        let configs: Vec<PrecisionMap> = ids
            .iter()
            .map(|&id| PrecisionMap::empty().with(id, FloatTy::F32))
            .collect();
        let batch = validate_configs(&p, "f", &args, &configs).unwrap();
        for (cfg, report) in configs.iter().zip(&batch) {
            let serial = validate(&p, "f", &args, cfg).unwrap();
            assert_eq!(report.baseline.to_bits(), serial.baseline.to_bits());
            assert_eq!(report.demoted.to_bits(), serial.demoted.to_bits());
        }
    }

    #[test]
    fn single_demotion_sweep_covers_all_candidates() {
        let src = "double f(double a) {
            double u = a + 0.125;
            double w = a * 7.0;
            double r = u * w;
            return r;
        }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(1.0);
        let sweep = sweep_single_demotions(&p, "f", &[ArgValue::F(0.511)], &cfg).unwrap();
        let names: Vec<&str> = sweep.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"a")
                && names.contains(&"u")
                && names.contains(&"w")
                && names.contains(&"r"),
            "{names:?}"
        );
        // Each report agrees with a one-off validation.
        for (name, report) in &sweep {
            let ids = ids_of(&p, "f", &[name.as_str()]).unwrap();
            let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
            let one = validate(&p, "f", &[ArgValue::F(0.511)], &pm).unwrap();
            assert_eq!(
                report.actual_error.to_bits(),
                one.actual_error.to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn ids_of_resolves_names() {
        let src = "double f(double a) { double b = a; double c = b; return c; }";
        let p = program(src);
        let ids = ids_of(&p, "f", &["b", "c"]).unwrap();
        assert_eq!(ids.len(), 2);
    }
}
