//! # chef-tuner — mixed-precision tuning on CHEF-FP estimates
//!
//! Implements the workflow of the paper's §III: analyze the sensitivity of
//! every variable with the ADAPT demotion model (eq. 2), then **greedily
//! demote the least-error variables** while the accumulated estimate stays
//! under the user threshold — "a mixed precision configuration is reached
//! when the accumulated error meets the threshold value". The chosen
//! configuration is validated by actually running the demoted program and
//! comparing against the full-precision result (paper Table I's
//! actual-vs-estimated columns).
//!
//! Two additions on top of the estimate-driven loop:
//!
//! * **Compiled-variant cache** ([`VariantCache`]): the greedy loop, the
//!   single-demotion sweep and repeated validations compile overlapping
//!   `PrecisionMap`s; a cache keyed by the canonical demotion set shares
//!   the compilations and counts its hits (exposed on
//!   [`TuneResult::cache_hits`]).
//! * **Oracle mode** ([`validate_with_oracle`], [`tune_with_oracle`]):
//!   instead of estimating, each candidate configuration is *measured* by
//!   the `chef-shadow` fused shadow pass — ground-truth output error in
//!   one run — and the greedy order can be re-ranked by the measured
//!   per-variable attribution.

use chef_core::prelude::*;
use chef_exec::arena::{MachineArena, ShadowMachineArena};
use chef_exec::compile::{compile, CompileError, CompileOptions, PrecisionMap};
use chef_exec::prelude::*;
use chef_ir::ast::{Function, Program, VarId};
use chef_ir::types::{FloatTy, Type};
use chef_shadow::{OracleOptions, ShadowReport};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Tuning configuration.
#[derive(Clone, Debug)]
pub struct TunerConfig {
    /// Maximum admissible estimated error.
    pub threshold: f64,
    /// Demotion target precision.
    pub target: FloatTy,
    /// Restrict demotion to these variables (`None` = all float variables).
    pub candidates: Option<Vec<String>>,
    /// Array parameter → length parameter pairings for input error terms.
    pub array_lens: HashMap<String, String>,
}

impl TunerConfig {
    /// A threshold-only configuration demoting to `float`.
    pub fn with_threshold(threshold: f64) -> Self {
        TunerConfig {
            threshold,
            target: FloatTy::F32,
            candidates: None,
            array_lens: HashMap::new(),
        }
    }

    /// Registers an array-length pairing (builder style).
    pub fn with_array_len(mut self, array: impl Into<String>, len: impl Into<String>) -> Self {
        self.array_lens.insert(array.into(), len.into());
        self
    }
}

/// The tuner's decision.
#[derive(Clone, Debug)]
pub struct TuneResult {
    /// Variables chosen for demotion (selection order).
    pub demoted: Vec<String>,
    /// Accumulated estimate of the chosen set.
    pub estimated_error: f64,
    /// Every variable's estimated demotion error, ascending.
    pub per_variable: Vec<(String, f64)>,
    /// The precision map to compile the tuned variant with (keyed by the
    /// variable ids of the *inlined* function).
    pub config: PrecisionMap,
    /// The full-precision result on the profiling inputs.
    pub baseline_value: f64,
    /// Oracle-measured output error of the chosen configuration (only
    /// set by [`tune_with_oracle`]). For a trial admitted under
    /// [`DivergencePolicy::TwoRunValidate`] this is the two-run
    /// validation error, not the (untrusted) shadow measurement. `None`
    /// from [`tune_with_oracle`] when no trial was admitted *and* the
    /// empty starting configuration's own probe diverged (DD mode):
    /// nothing was measured on a trusted trace, and a two-run
    /// validation of the unchanged program would be vacuously zero.
    pub measured_error: Option<f64>,
    /// Compiled-variant cache hits observed during this tuning run (0
    /// when no cache was involved).
    pub cache_hits: u64,
    /// Greedy trials whose oracle run observed a primal-vs-shadow
    /// control-flow split and were therefore handled by the
    /// [`DivergencePolicy`] instead of the one-pass measurement (0 for
    /// estimate-only [`tune`]).
    pub divergent_trials: u64,
}

/// Measured quality of a configuration.
#[derive(Clone, Debug)]
pub struct ValidationReport {
    /// Full-precision result.
    pub baseline: f64,
    /// Result under the demoted configuration.
    pub demoted: f64,
    /// `|baseline − demoted|`.
    pub actual_error: f64,
}

// ------------------------------------------------------------------------
// Compiled-variant cache
// ------------------------------------------------------------------------

type VariantKey = (String, Vec<(VarId, FloatTy)>);

/// A cache of compiled mixed-precision variants keyed by the canonical
/// demotion set (plus the function name), bundled with the session's
/// machine arenas.
///
/// The greedy loops and sweeps recompile overlapping `PrecisionMap`s —
/// the empty baseline on every validation call, the accepted
/// configuration of each greedy step, the single-demotion configs shared
/// between [`sweep_single_demotions`] and [`tune_with_oracle`]'s first
/// round. Shareable across calls (interior mutability; `Sync`), scoped
/// to **one program**: variable ids in the key are only meaningful for
/// the inlined function they came from.
///
/// Compiling hundreds of variants is only half the cost — each one also
/// runs. The embedded [`MachineArena`]s let every run of every variant
/// (plain validation and both shadow-oracle modes) share one set of
/// register-file/tape allocations, sized to the session maximum.
#[derive(Default)]
pub struct VariantCache {
    inner: Mutex<HashMap<VariantKey, Arc<CompiledFunction>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    arena: MachineArena,
    shadow64: ShadowMachineArena<f64>,
    shadow_dd: ShadowMachineArena<chef_shadow::DD>,
}

impl VariantCache {
    /// An empty cache.
    pub fn new() -> Self {
        VariantCache::default()
    }

    /// The session's plain-VM machine arena.
    pub fn arena(&self) -> &MachineArena {
        &self.arena
    }

    /// The session's `f64`-shadow machine arena.
    pub fn shadow64(&self) -> &ShadowMachineArena<f64> {
        &self.shadow64
    }

    /// The session's double-double-shadow machine arena.
    pub fn shadow_dd(&self) -> &ShadowMachineArena<chef_shadow::DD> {
        &self.shadow_dd
    }

    /// Number of cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of compilations performed (cache misses).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of cached variants.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache lock").len()
    }

    /// `true` when nothing has been compiled yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns the compiled variant of `primal` under `pm`, compiling on
    /// first use (compilation happens outside the lock; a racing miss
    /// keeps the first inserted variant).
    pub fn get_or_compile(
        &self,
        primal: &Function,
        pm: &PrecisionMap,
    ) -> Result<Arc<CompiledFunction>, CompileError> {
        let key = (primal.name.clone(), pm.sorted_entries());
        if let Some(hit) = self.inner.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(hit.clone());
        }
        let compiled = Arc::new(compile(
            primal,
            &CompileOptions {
                precisions: pm.clone(),
                ..Default::default()
            },
        )?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        Ok(self
            .inner
            .lock()
            .expect("cache lock")
            .entry(key)
            .or_insert(compiled)
            .clone())
    }
}

// ------------------------------------------------------------------------
// Estimate-driven tuning (paper §III)
// ------------------------------------------------------------------------

/// The combined demotion model the tuner estimates with: representation
/// error (eq. 2) plus, for computed variables, the extra arithmetic
/// rounding at the lower precision (eq. 1 with the target epsilon).
struct TunerModel {
    adapt: AdaptModel,
    taylor: TaylorModel,
}

impl ErrorModel for TunerModel {
    fn name(&self) -> &'static str {
        "tuner"
    }
    fn assign_error(&mut self, ctx: &ModelCtx<'_>) -> Option<chef_ir::ast::Expr> {
        match (self.adapt.assign_error(ctx), self.taylor.assign_error(ctx)) {
            (Some(a), Some(b)) => Some(chef_ir::ast::Expr::add(a, b)),
            (a, b) => a.or(b),
        }
    }
    fn input_error(
        &mut self,
        name: &str,
        value: &chef_ir::ast::Expr,
        adjoint: &chef_ir::ast::Expr,
        prec: FloatTy,
    ) -> Option<chef_ir::ast::Expr> {
        self.adapt.input_error(name, value, adjoint, prec)
    }
}

fn candidate_filter<'a>(cfg: &'a TunerConfig) -> impl Fn(&str) -> bool + 'a {
    move |name: &str| match &cfg.candidates {
        Some(c) => c.iter().any(|n| n == name),
        None => true,
    }
}

/// What one estimation pass yields: every candidate variable's
/// estimated demotion error (ascending), the full-precision result, and
/// the inlined program (so callers don't inline a second time).
type EstimateRanking = (Vec<(String, f64)>, f64, Program);

/// Runs the estimation pass once (see [`EstimateRanking`]).
fn estimate_ranking(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<EstimateRanking, ChefError> {
    let opts = EstimateOptions {
        array_lens: cfg.array_lens.clone(),
        ..Default::default()
    };
    // Demoting a variable costs its representation error (eq. 2) *plus*,
    // for computed variables, the extra arithmetic rounding of the
    // operations now performed at the lower precision (eq. 1 with the
    // target epsilon). Inputs carry representation error only — they are
    // not computed, so a value that happens to be exactly representable
    // (the paper's quantized k-Means attributes) is free to demote.
    let mut model = TunerModel {
        adapt: AdaptModel::to(cfg.target),
        taylor: TaylorModel::for_demotion(cfg.target),
    };
    let est = estimate_error_with(program, func, &mut model, &opts)?;
    let out = est.execute(args).map_err(ChefError::Trap)?;

    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let allowed = candidate_filter(cfg);
    let mut per_variable: Vec<(String, f64)> = primal
        .vars_iter()
        .filter(|(_, v)| v.ty.is_differentiable() && allowed(&v.name))
        .map(|(_, v)| (v.name.clone(), out.error_of(&v.name)))
        .collect();
    per_variable.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    Ok((per_variable, out.value, inlined))
}

/// Builds the `PrecisionMap` demoting `names` in the inlined `primal`.
fn config_for(primal: &Function, names: &[String], target: FloatTy) -> PrecisionMap {
    let mut config = PrecisionMap::empty();
    for (id, v) in primal.vars_iter() {
        if names.contains(&v.name) {
            if let Type::Float(_) | Type::Array(chef_ir::types::ElemTy::Float(_)) = v.ty {
                config.set(id, target);
            }
        }
    }
    config
}

/// Analyzes `func` on representative `args` and greedily selects a
/// demotion set under `cfg.threshold`.
pub fn tune(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<TuneResult, ChefError> {
    let (per_variable, baseline_value, inlined) = estimate_ranking(program, func, args, cfg)?;

    // Greedy selection under the threshold.
    let mut demoted = Vec::new();
    let mut acc = 0.0;
    for (name, err) in &per_variable {
        if acc + err <= cfg.threshold {
            acc += err;
            demoted.push(name.clone());
        }
    }
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let config = config_for(primal, &demoted, cfg.target);
    Ok(TuneResult {
        demoted,
        estimated_error: acc,
        per_variable,
        config,
        baseline_value,
        measured_error: None,
        cache_hits: 0,
        divergent_trials: 0,
    })
}

// ------------------------------------------------------------------------
// Validation (two-run and oracle)
// ------------------------------------------------------------------------

/// Runs `func` at full precision and under `config`, reporting the actual
/// output difference.
pub fn validate(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
) -> Result<ValidationReport, ChefError> {
    validate_configs(program, func, args, std::slice::from_ref(config)).map(|mut v| v.remove(0))
}

/// Validates many candidate configurations against one full-precision
/// baseline run: each config is compiled and executed on its own thread
/// (scoped; the batch is embarrassingly parallel), results in input
/// order. This is the tuner's candidate-evaluation fast path — wall-clock
/// scales with the slowest candidate instead of the sum.
pub fn validate_configs(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    configs: &[PrecisionMap],
) -> Result<Vec<ValidationReport>, ChefError> {
    validate_configs_with(program, func, args, configs, None)
}

/// [`validate_configs`] with an optional shared [`VariantCache`]: the
/// baseline and every candidate compilation go through the cache, so
/// repeated validations of overlapping configurations compile each
/// variant once.
pub fn validate_configs_with(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    configs: &[PrecisionMap],
    cache: Option<&VariantCache>,
) -> Result<Vec<ValidationReport>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let compile_cfg = |pm: &PrecisionMap| -> Result<Arc<CompiledFunction>, ChefError> {
        match cache {
            Some(c) => c.get_or_compile(primal, pm).map_err(ChefError::Compile),
            None => compile(
                primal,
                &CompileOptions {
                    precisions: pm.clone(),
                    ..Default::default()
                },
            )
            .map(Arc::new)
            .map_err(ChefError::Compile),
        }
    };
    let run_cfg = |pm: &PrecisionMap| -> Result<f64, ChefError> {
        let c = compile_cfg(pm)?;
        let out = match cache {
            // Shared session: draw a pooled machine so every variant run
            // in the session reuses the same buffers.
            Some(cache) => {
                cache
                    .arena()
                    .checkout()
                    .run_reused(&c, args.to_vec(), &ExecOptions::default())
            }
            None => chef_exec::vm::run(&c, args.to_vec()),
        };
        out.map(|o| o.ret_f()).map_err(ChefError::Trap)
    };
    let baseline = run_cfg(&PrecisionMap::empty())?;

    chef_exec::par::parallel_map(configs.iter().collect(), None, |pm| {
        run_cfg(pm).map(|demoted| ValidationReport {
            baseline,
            demoted,
            actual_error: (baseline - demoted).abs(),
        })
    })
    .into_iter()
    .collect()
}

/// Measures `config` with the shadow-execution oracle: one fused pass
/// yields the ground-truth output error *and* the per-instruction /
/// per-variable attribution, instead of the demoted-vs-baseline pair of
/// [`validate`].
pub fn validate_with_oracle(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    config: &PrecisionMap,
    opts: &OracleOptions,
) -> Result<ShadowReport, ChefError> {
    chef_shadow::shadow_run(program, func, args, config, opts)
}

/// The paper's Table III study, generalized: demote each candidate
/// variable **on its own** and measure the actual output error, with the
/// candidates evaluated in parallel. Returns `(variable, report)` pairs
/// in candidate order.
pub fn sweep_single_demotions(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
) -> Result<Vec<(String, ValidationReport)>, ChefError> {
    sweep_single_demotions_with(program, func, args, cfg, None)
}

/// [`sweep_single_demotions`] through an optional shared [`VariantCache`]
/// (the single-variable configs are exactly the first greedy round of
/// [`tune_with_oracle`], so a shared cache de-duplicates those
/// compilations).
pub fn sweep_single_demotions_with(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
    cache: Option<&VariantCache>,
) -> Result<Vec<(String, ValidationReport)>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    let allowed = candidate_filter(cfg);
    let mut names = Vec::new();
    let mut configs = Vec::new();
    for (id, v) in primal.vars_iter() {
        if v.ty.is_differentiable() && allowed(&v.name) {
            names.push(v.name.clone());
            configs.push(PrecisionMap::empty().with(id, cfg.target));
        }
    }
    let reports = validate_configs_with(program, func, args, &configs, cache)?;
    Ok(names.into_iter().zip(reports).collect())
}

// ------------------------------------------------------------------------
// Oracle-guided tuning
// ------------------------------------------------------------------------

/// How [`tune_with_oracle`] treats a trial configuration whose oracle
/// run observed a primal-vs-shadow control-flow split
/// ([`ShadowReport::diverged`]). A divergent run measured the error
/// along a trace the high-precision program would not have taken, so its
/// one-pass number is exactly as untrustworthy as the configuration is
/// interesting — it must not drive admission directly.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DivergencePolicy {
    /// Re-measure the divergent trial with the classic two-run
    /// validation (baseline run vs demoted run, both plain) and decide
    /// admission on that ground truth; the shadow number is discarded.
    /// This is the default — divergent configurations are re-ranked by
    /// two-run validation, not silently admitted or dropped.
    #[default]
    TwoRunValidate,
    /// Never admit a divergent configuration, whatever its error.
    Reject,
}

/// Options for [`tune_with_oracle`].
#[derive(Clone, Debug, Default)]
pub struct OracleTuneOptions {
    /// Shadow mode and VM options for the oracle runs.
    pub oracle: OracleOptions,
    /// Re-rank the greedy order by the *measured* per-variable
    /// attribution of an all-candidates-demoted shadow run (instead of
    /// the estimated order). Variables the measurement cannot separate
    /// keep their estimate order. Skipped (estimate order kept) when the
    /// all-candidates probe itself diverges: a divergent run's
    /// attribution describes the wrong trace.
    pub rerank_by_measured: bool,
    /// Treatment of divergent trial configurations.
    pub divergence_policy: DivergencePolicy,
}

impl OracleTuneOptions {
    /// Oracle tuning with measured re-ranking enabled.
    pub fn reranked() -> Self {
        OracleTuneOptions {
            rerank_by_measured: true,
            ..Default::default()
        }
    }
}

/// Greedy tuning against the shadow oracle: candidates are ranked by
/// estimate (optionally re-ranked by measured attribution), then added
/// one by one — each trial configuration compiled through `cache` and
/// **measured** by a fused shadow pass — while the measured output error
/// stays under `cfg.threshold`.
///
/// Unlike [`tune`], the returned configuration satisfies the threshold by
/// measurement ([`TuneResult::measured_error`]), not by estimate; the
/// estimate fields are still filled for comparison, and
/// [`TuneResult::cache_hits`] exposes the compilations the cache saved.
pub fn tune_with_oracle(
    program: &Program,
    func: &str,
    args: &[ArgValue],
    cfg: &TunerConfig,
    opts: &OracleTuneOptions,
    cache: &VariantCache,
) -> Result<TuneResult, ChefError> {
    let hits_before = cache.hits();
    let (per_variable, baseline_value, inlined) = estimate_ranking(program, func, args, cfg)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;

    // One pooled shadow machine per mode for the whole greedy loop —
    // drawn from the session cache's arenas, so the different compiled
    // variants (and any other tuning run sharing the cache) reuse the
    // same buffers.
    let mut m64 = cache.shadow64().checkout();
    let mut mdd = cache.shadow_dd().checkout();
    let mut measure = |names: &[String]| -> Result<ShadowReport, ChefError> {
        let pm = config_for(primal, names, cfg.target);
        let compiled = cache
            .get_or_compile(primal, &pm)
            .map_err(ChefError::Compile)?;
        let out = match opts.oracle.mode {
            chef_shadow::ShadowMode::F64 => {
                m64.run_reused(&compiled, args.to_vec(), &opts.oracle.exec)
            }
            chef_shadow::ShadowMode::DD => {
                mdd.run_reused(&compiled, args.to_vec(), &opts.oracle.exec)
            }
        }
        .map_err(ChefError::Trap)?;
        chef_shadow::report_from_outcome(&compiled, out)
    };

    // Two-run fallback for divergent trials: both sides run plain (no
    // shadow) through the cache and its machine arena. The baseline is
    // computed once, on first need.
    let mut baseline_run: Option<f64> = None;
    let run_plain = |pm: &PrecisionMap| -> Result<f64, ChefError> {
        let compiled = cache
            .get_or_compile(primal, pm)
            .map_err(ChefError::Compile)?;
        cache
            .arena()
            .checkout()
            .run_reused(&compiled, args.to_vec(), &opts.oracle.exec)
            .map(|o| o.ret_f())
            .map_err(ChefError::Trap)
    };
    let mut divergent_trials = 0u64;

    // Greedy order: estimated ascending, optionally re-ranked by the
    // measured attribution of one all-candidates shadow run.
    let mut order: Vec<(String, f64)> = per_variable.clone();
    if opts.rerank_by_measured && !order.is_empty() {
        let all: Vec<String> = order.iter().map(|(n, _)| n.clone()).collect();
        let rep = measure(&all)?;
        // A divergent probe's attribution describes the wrong trace:
        // keep the estimate order instead of ranking by it.
        if !rep.diverged() {
            // Stable sort: equal measured attributions keep the estimate
            // order.
            order.sort_by(|a, b| rep.error_of(&a.0).total_cmp(&rep.error_of(&b.0)));
        }
    }

    // Measure the starting (empty) configuration rather than assuming
    // zero: in DD mode even the undemoted program has measurable error,
    // and `measured_error` must describe the *returned* configuration.
    // If that probe itself diverges (the undemoted program's own f64
    // rounding flips a branch against the DD shadow) there is no trusted
    // number for the empty config at all — a two-run validation of the
    // unchanged program is vacuously zero — so the result stays
    // unmeasured (`None`) unless a later trial is admitted.
    let start = measure(&[])?;
    let mut measured: Option<f64> = if start.diverged() {
        divergent_trials += 1;
        None
    } else {
        Some(start.output_error)
    };

    // The trusted error of one trial: the one-pass oracle measurement
    // when the run was divergence-free, the policy's answer otherwise
    // (`None` = the trial may not be admitted).
    let mut trusted_error = |names: &[String],
                             baseline_run: &mut Option<f64>,
                             divergent_trials: &mut u64|
     -> Result<Option<f64>, ChefError> {
        let rep = measure(names)?;
        if !rep.diverged() {
            return Ok(Some(rep.output_error));
        }
        *divergent_trials += 1;
        match opts.divergence_policy {
            DivergencePolicy::Reject => Ok(None),
            DivergencePolicy::TwoRunValidate => {
                let base = match *baseline_run {
                    Some(b) => b,
                    None => {
                        let b = run_plain(&PrecisionMap::empty())?;
                        *baseline_run = Some(b);
                        b
                    }
                };
                let demoted = run_plain(&config_for(primal, names, cfg.target))?;
                Ok(Some((base - demoted).abs()))
            }
        }
    };

    let mut chosen: Vec<String> = Vec::new();
    let mut estimated = 0.0;
    for (name, est) in &order {
        let mut trial = chosen.clone();
        trial.push(name.clone());
        let Some(err) = trusted_error(&trial, &mut baseline_run, &mut divergent_trials)? else {
            continue; // divergent + Reject policy
        };
        if err <= cfg.threshold {
            chosen = trial;
            estimated += est;
            measured = Some(err);
        }
    }
    let config = config_for(primal, &chosen, cfg.target);
    Ok(TuneResult {
        demoted: chosen,
        estimated_error: estimated,
        per_variable,
        config,
        baseline_value,
        measured_error: measured,
        cache_hits: cache.hits() - hits_before,
        divergent_trials,
    })
}

/// Finds the `VarId`s (in the inlined function) for a set of variable
/// names — convenience for building manual configurations (Table III's
/// one-variable-at-a-time study).
pub fn ids_of(program: &Program, func: &str, names: &[&str]) -> Result<Vec<VarId>, ChefError> {
    let inlined = chef_passes::inline_program(program).map_err(ChefError::Inline)?;
    let primal = inlined
        .function(func)
        .ok_or_else(|| ChefError::UnknownFunction(func.to_string()))?;
    Ok(primal
        .vars_iter()
        .filter(|(_, v)| names.contains(&v.name.as_str()))
        .map(|(id, _)| id)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(src: &str) -> Program {
        let mut p = chef_ir::parser::parse_program(src).unwrap();
        chef_ir::typeck::check_program(&mut p).unwrap();
        p
    }

    #[test]
    fn demotes_low_sensitivity_variables_first() {
        // `noise` barely affects the result; `core` dominates it.
        let src = "double f(double a) {
            double noise = a * 1e-9;
            double core = a * 1000.0;
            double r = core * core + noise;
            return r;
        }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(1e-4);
        let res = tune(&p, "f", &[ArgValue::F(1.2345678901)], &cfg).unwrap();
        assert!(
            res.demoted.contains(&"noise".to_string()),
            "{:?}",
            res.demoted
        );
        assert!(
            !res.demoted.contains(&"core".to_string()),
            "{:?}",
            res.demoted
        );
        assert!(res.estimated_error <= 1e-4);
    }

    #[test]
    fn zero_threshold_demotes_only_zero_error_vars() {
        let src = "double f(double a) { double b = a * 3.0; return b; }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(0.0);
        let res = tune(&p, "f", &[ArgValue::F(0.1)], &cfg).unwrap();
        // 0.1*3 is not f32-exact: nothing demotable at zero threshold.
        assert!(res.demoted.is_empty(), "{:?}", res.demoted);
    }

    #[test]
    fn validation_confirms_threshold() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1); }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.37), ArgValue::I(100)];
        let cfg = TunerConfig::with_threshold(1e-4);
        let res = tune(&p, "f", &args, &cfg).unwrap();
        let report = validate(&p, "f", &args, &res.config).unwrap();
        assert!(
            report.actual_error <= 1e-4,
            "actual {} exceeds threshold; demoted {:?}",
            report.actual_error,
            res.demoted
        );
    }

    #[test]
    fn candidates_restriction_is_respected() {
        let src = "double f(double a) {
            double u = a + 0.125;
            double w = a * 7.0;
            return u * w;
        }";
        let p = program(src);
        let mut cfg = TunerConfig::with_threshold(1.0);
        cfg.candidates = Some(vec!["u".into()]);
        let res = tune(&p, "f", &[ArgValue::F(0.5)], &cfg).unwrap();
        assert_eq!(res.demoted, vec!["u".to_string()]);
    }

    #[test]
    fn validate_configs_matches_serial_validate() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1) * 0.5; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.41), ArgValue::I(200)];
        let ids = ids_of(&p, "f", &["s", "a"]).unwrap();
        let configs: Vec<PrecisionMap> = ids
            .iter()
            .map(|&id| PrecisionMap::empty().with(id, FloatTy::F32))
            .collect();
        let batch = validate_configs(&p, "f", &args, &configs).unwrap();
        for (cfg, report) in configs.iter().zip(&batch) {
            let serial = validate(&p, "f", &args, cfg).unwrap();
            assert_eq!(report.baseline.to_bits(), serial.baseline.to_bits());
            assert_eq!(report.demoted.to_bits(), serial.demoted.to_bits());
        }
    }

    #[test]
    fn single_demotion_sweep_covers_all_candidates() {
        let src = "double f(double a) {
            double u = a + 0.125;
            double w = a * 7.0;
            double r = u * w;
            return r;
        }";
        let p = program(src);
        let cfg = TunerConfig::with_threshold(1.0);
        let sweep = sweep_single_demotions(&p, "f", &[ArgValue::F(0.511)], &cfg).unwrap();
        let names: Vec<&str> = sweep.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"a")
                && names.contains(&"u")
                && names.contains(&"w")
                && names.contains(&"r"),
            "{names:?}"
        );
        // Each report agrees with a one-off validation.
        for (name, report) in &sweep {
            let ids = ids_of(&p, "f", &[name.as_str()]).unwrap();
            let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
            let one = validate(&p, "f", &[ArgValue::F(0.511)], &pm).unwrap();
            assert_eq!(
                report.actual_error.to_bits(),
                one.actual_error.to_bits(),
                "{name}"
            );
        }
    }

    #[test]
    fn ids_of_resolves_names() {
        let src = "double f(double a) { double b = a; double c = b; return c; }";
        let p = program(src);
        let ids = ids_of(&p, "f", &["b", "c"]).unwrap();
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn variant_cache_hits_on_repeated_configs_and_is_bit_identical() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += sin(a + i * 0.1) * 0.5; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.29), ArgValue::I(100)];
        let ids = ids_of(&p, "f", &["s", "a", "i"]).unwrap();
        let configs: Vec<PrecisionMap> = ids
            .iter()
            .map(|&id| PrecisionMap::empty().with(id, FloatTy::F32))
            .collect();
        let cache = VariantCache::new();
        let first = validate_configs_with(&p, "f", &args, &configs, Some(&cache)).unwrap();
        let after_first = cache.misses();
        assert!(after_first >= 1 + configs.len() as u64 - 1); // baseline + variants
                                                              // Second pass over the same configs: baseline + variants all hit.
        let second = validate_configs_with(&p, "f", &args, &configs, Some(&cache)).unwrap();
        assert_eq!(cache.misses(), after_first, "no recompilation");
        assert!(cache.hits() > configs.len() as u64);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.demoted.to_bits(), b.demoted.to_bits());
        }
        // Uncached path agrees bit-for-bit with cached.
        let uncached = validate_configs(&p, "f", &args, &configs).unwrap();
        for (a, b) in first.iter().zip(&uncached) {
            assert_eq!(a.demoted.to_bits(), b.demoted.to_bits());
            assert_eq!(a.actual_error.to_bits(), b.actual_error.to_bits());
        }
    }

    #[test]
    fn oracle_validation_matches_two_run_validation() {
        let src = "double f(double a, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += a * 0.4999 + 0.001; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.777), ArgValue::I(64)];
        let ids = ids_of(&p, "f", &["s"]).unwrap();
        let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
        let two_run = validate(&p, "f", &args, &pm).unwrap();
        let oracle = validate_with_oracle(&p, "f", &args, &pm, &OracleOptions::default()).unwrap();
        // No float-controlled branches: the shadow reproduces the
        // baseline bit-for-bit, so the measured error is identical.
        assert_eq!(oracle.shadow.to_bits(), two_run.baseline.to_bits());
        assert_eq!(oracle.primal.to_bits(), two_run.demoted.to_bits());
        assert_eq!(
            oracle.output_error.to_bits(),
            two_run.actual_error.to_bits()
        );
        assert!(!oracle.per_variable.is_empty());
    }

    #[test]
    fn divergent_trials_are_not_trusted_by_the_oracle_tuner() {
        // Demoting `s` flips the threshold branch (f32 sum of 100 × 0.01
        // lands below 1.0, the f64 shadow above), so the one-pass oracle
        // number describes the wrong trace. Under the default
        // `TwoRunValidate` policy the trial is re-measured by the classic
        // two-run validation; under `Reject` it is never admitted.
        let src = "double f(double x, int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s = s + x; }
            double r = 0.0;
            if (s < 1.0) { r = s * 2.0; } else { r = s * 0.5; }
            return r;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.01), ArgValue::I(100)];
        // The oracle itself reports the divergence on the direct probe.
        let ids = ids_of(&p, "f", &["s"]).unwrap();
        let pm = PrecisionMap::empty().with(ids[0], FloatTy::F32);
        let rep = validate_with_oracle(&p, "f", &args, &pm, &OracleOptions::default()).unwrap();
        assert!(rep.diverged(), "branch flip must be flagged");
        assert_eq!(rep.divergence_of("s"), rep.divergence_count);

        let mut cfg = TunerConfig::with_threshold(2.0); // two-run error ≈ 1.5 fits
        cfg.candidates = Some(vec!["s".into()]);
        let cache = VariantCache::new();
        let opts = OracleTuneOptions::default(); // TwoRunValidate
        let res = tune_with_oracle(&p, "f", &args, &cfg, &opts, &cache).unwrap();
        assert!(res.divergent_trials >= 1, "{res:?}");
        assert_eq!(res.demoted, vec!["s".to_string()]);
        // The reported measurement is the two-run ground truth, not the
        // (untrusted) shadow number.
        let two_run = validate(&p, "f", &args, &res.config).unwrap();
        assert_eq!(
            res.measured_error.unwrap().to_bits(),
            two_run.actual_error.to_bits()
        );
        assert_ne!(
            res.measured_error.unwrap().to_bits(),
            rep.output_error.to_bits(),
            "the divergent one-pass number must not be what admission used"
        );

        // Reject policy: the divergent configuration is never admitted.
        let reject = OracleTuneOptions {
            divergence_policy: DivergencePolicy::Reject,
            ..Default::default()
        };
        let res = tune_with_oracle(&p, "f", &args, &cfg, &reject, &cache).unwrap();
        assert!(res.demoted.is_empty(), "{:?}", res.demoted);
        assert!(res.divergent_trials >= 1);
    }

    #[test]
    fn oracle_tuning_meets_threshold_by_measurement_and_reports_cache_hits() {
        let src = "double f(double a, int n) {
            double lo = a * 1e-7;
            double mid = a + 0.5;
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += mid * 1.0001 + lo; }
            return s;
        }";
        let p = program(src);
        let args = vec![ArgValue::F(0.41), ArgValue::I(50)];
        let cfg = TunerConfig::with_threshold(1e-4);
        let cache = VariantCache::new();
        let res =
            tune_with_oracle(&p, "f", &args, &cfg, &OracleTuneOptions::reranked(), &cache).unwrap();
        // The threshold holds by *measurement* (and re-validates two-run).
        let measured = res.measured_error.expect("oracle tuning measures");
        assert!(measured <= 1e-4, "{measured}");
        let check = validate(&p, "f", &args, &res.config).unwrap();
        assert!(check.actual_error <= 1e-4, "{}", check.actual_error);
        assert!(!res.demoted.is_empty(), "{:?}", res.per_variable);
        // A second oracle tuning over the same cache compiles nothing
        // new: every greedy-step compilation is a per-run cache hit.
        let misses_before = cache.misses();
        let res2 =
            tune_with_oracle(&p, "f", &args, &cfg, &OracleTuneOptions::reranked(), &cache).unwrap();
        assert_eq!(cache.misses(), misses_before);
        assert!(res2.cache_hits > 0);
        assert!(res2.cache_hits >= res.cache_hits);
        assert_eq!(res2.demoted, res.demoted);
    }
}
