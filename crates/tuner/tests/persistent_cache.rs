//! Regression and warm-start coverage for the content-addressed
//! variant cache.
//!
//! `same_name_different_program` pins the key-collision bugfix: the old
//! `(name, sorted_entries)` key treated two *different* programs that
//! both define `f` with an identical precision map as the same variant,
//! so a long-lived cache (an `AnalysisServer` session, or the disk
//! store) could hand session B a function compiled from session A's
//! source. The content hash keys on the canonical printed body, so the
//! collision is structurally impossible.

use chef_exec::prelude::*;
use chef_exec::store::{content_key, DiskStore};
use chef_ir::types::FloatTy;
use chef_tuner::{ids_of, VariantCache};
use std::sync::Arc;

fn inlined_f(src: &str) -> chef_ir::ast::Function {
    let mut p = chef_ir::parser::parse_program(src).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let inlined = chef_passes::inline_program(&p).unwrap();
    inlined.function("f").unwrap().clone()
}

fn run_f64(func: &CompiledFunction, args: Vec<ArgValue>) -> f64 {
    match run(func, args).unwrap().ret {
        Some(Value::F(v)) => v,
        other => panic!("expected float, got {other:?}"),
    }
}

#[test]
fn same_name_different_program() {
    // Two programs, one shared function name, two different bodies.
    let doubler = inlined_f("double f(double x) { return x * 2.0; }");
    let tripler = inlined_f("double f(double x) { return x * 3.0; }");

    // The content keys must differ even though name and precision map
    // (empty in both) are identical — this is what the old
    // `(name, sorted_entries)` key got wrong.
    let opts = CompileOptions::default();
    assert_ne!(
        content_key(&doubler, &opts),
        content_key(&tripler, &opts),
        "distinct bodies must never share a cache key"
    );

    // A shared cache must not cross-hit between them.
    let cache = VariantCache::new().without_store();
    let pm = PrecisionMap::empty();
    let a = cache.get_or_compile(&doubler, &pm).unwrap();
    let b = cache.get_or_compile(&tripler, &pm).unwrap();
    assert_eq!(cache.misses(), 2, "second program must compile, not hit");
    assert_eq!(cache.hits(), 0);
    assert_eq!(run_f64(&a, vec![ArgValue::F(21.0)]), 42.0);
    assert_eq!(
        run_f64(&b, vec![ArgValue::F(21.0)]),
        63.0,
        "a cross-hit would return the doubler's 42.0 here"
    );

    // Re-requesting each now hits its own entry.
    cache.get_or_compile(&doubler, &pm).unwrap();
    cache.get_or_compile(&tripler, &pm).unwrap();
    assert_eq!(cache.misses(), 2);
    assert_eq!(cache.hits(), 2);
}

#[test]
fn warm_start_loads_every_variant_without_compiling() {
    let src = "double f(double a, int n) {
        double s = 0.0;
        double t = 1.0;
        for (int i = 0; i < n; i++) { s += sin(a + i * 0.1) * t; }
        return s;
    }";
    let mut p = chef_ir::parser::parse_program(src).unwrap();
    chef_ir::typeck::check_program(&mut p).unwrap();
    let primal = {
        let inlined = chef_passes::inline_program(&p).unwrap();
        inlined.function("f").unwrap().clone()
    };
    let ids = ids_of(&p, "f", &["s", "t"]).unwrap();
    let configs = vec![
        PrecisionMap::empty(),
        PrecisionMap::empty().with(ids[0], FloatTy::F32),
        PrecisionMap::empty()
            .with(ids[0], FloatTy::F32)
            .with(ids[1], FloatTy::BF16),
    ];
    let args = || vec![ArgValue::F(0.37), ArgValue::I(40)];

    let dir = std::env::temp_dir().join(format!("chef-tuner-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold: compile every config through a store-backed cache, flush.
    let cold_store = Arc::new(DiskStore::open(&dir).unwrap());
    let cold_cache = VariantCache::new().with_store(Arc::clone(&cold_store));
    let mut cold_bits = Vec::new();
    for pm in &configs {
        let f = cold_cache.get_or_compile(&primal, pm).unwrap();
        cold_bits.push(run_f64(&f, args()).to_bits());
    }
    assert_eq!(cold_cache.misses() as usize, configs.len());
    cold_cache.flush_disk();
    assert_eq!(cold_store.writes() as usize, configs.len());

    // Warm: a fresh cache + fresh store handle on the same directory.
    // Tag this thread's span ring so the zero-compile-span assertion
    // cannot be confused by tests running concurrently on other
    // threads.
    drop(chef_telemetry::span("test.warm_phase"));
    let my_thread = {
        let snap = chef_telemetry::snapshot();
        snap.spans_named("test.warm_phase")
            .last()
            .map(|s| s.thread)
            .unwrap()
    };
    let compiles_before = count_thread_spans("compile", my_thread);
    let skipped_before = count_thread_spans("compile.skipped", my_thread);

    let warm_store = Arc::new(DiskStore::open(&dir).unwrap());
    let warm_cache = VariantCache::new().with_store(Arc::clone(&warm_store));
    for (pm, &bits) in configs.iter().zip(&cold_bits) {
        let f = warm_cache.get_or_compile(&primal, pm).unwrap();
        assert_eq!(
            run_f64(&f, args()).to_bits(),
            bits,
            "disk-loaded variant must be bit-identical to its compile"
        );
    }
    assert_eq!(warm_cache.misses(), 0, "warm start must not compile");
    assert_eq!(warm_store.hits() as usize, configs.len());
    assert_eq!(warm_store.misses(), 0);
    assert_eq!(warm_store.corrupt(), 0);
    assert_eq!(
        count_thread_spans("compile", my_thread),
        compiles_before,
        "zero compile spans during the warm phase"
    );
    assert_eq!(
        count_thread_spans("compile.skipped", my_thread) - skipped_before,
        configs.len(),
        "every warm lookup must record a compile.skipped marker"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn count_thread_spans(name: &str, thread: u64) -> usize {
    chef_telemetry::snapshot()
        .spans
        .iter()
        .filter(|s| s.name == name && s.thread == thread)
        .count()
}
