//! Property tests: accuracy envelopes of the FastApprox ports hold across
//! their whole documented domains (not just the unit tests' spot checks).

use fastapprox::*;
use proptest::prelude::*;

fn rel_err(approx: f32, exact: f64) -> f64 {
    if exact == 0.0 {
        approx.abs() as f64
    } else {
        ((approx as f64 - exact) / exact).abs()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn fastlog2_envelope(x in 1e-30f32..1e30) {
        prop_assert!(rel_err(fastlog2(x), (x as f64).log2()).min(
            (fastlog2(x) as f64 - (x as f64).log2()).abs()) < 3e-4);
    }

    #[test]
    fn fastpow2_envelope(p in -80f32..80.0) {
        prop_assert!(rel_err(fastpow2(p), (p as f64).exp2()) < 4e-4, "p={p}");
    }

    #[test]
    fn fastexp_envelope(p in -60f32..60.0) {
        prop_assert!(rel_err(fastexp(p), (p as f64).exp()) < 4e-4, "p={p}");
    }

    #[test]
    fn fasterexp_envelope(p in -40f32..40.0) {
        // The coarse grade stays within a few percent.
        prop_assert!(rel_err(fasterexp(p), (p as f64).exp()) < 6e-2, "p={p}");
    }

    #[test]
    fn fastsqrt_envelope(x in 1e-20f32..1e20) {
        prop_assert!(rel_err(fastsqrt(x), (x as f64).sqrt()) < 2e-3, "x={x}");
    }

    #[test]
    fn fastpow_envelope(x in 0.01f32..100.0, p in -4f32..4.0) {
        prop_assert!(rel_err(fastpow(x, p), (x as f64).powf(p as f64)) < 5e-3,
            "x={x} p={p}");
    }

    #[test]
    fn exp_log_inverse(x in 0.01f32..1e4) {
        let rt = fastexp(fastlog(x));
        prop_assert!(rel_err(rt, x as f64) < 2e-3, "x={x} rt={rt}");
    }

    #[test]
    fn exp_is_positive_and_monotone(a in -50f32..50.0, b in -50f32..50.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(fastexp(lo) > 0.0);
        // Allow equality: nearby inputs may round to the same bit pattern.
        prop_assert!(fastexp(lo) <= fastexp(hi) * (1.0 + 1e-3), "{lo} {hi}");
    }

    #[test]
    fn normcdf_envelope(x in -6f32..6.0) {
        let exact = erf::normcdf64(x as f64);
        prop_assert!((fastnormcdf(x) as f64 - exact).abs() < 2.5e-2, "x={x}");
        prop_assert!((0.0..=1.0).contains(&fastnormcdf(x)));
    }

    #[test]
    fn erf64_is_odd_and_bounded(x in -5f64..5.0) {
        prop_assert!((erf::erf64(x) + erf::erf64(-x)).abs() < 1e-12);
        prop_assert!(erf::erf64(x).abs() <= 1.0);
    }

    #[test]
    fn erfc64_complement(x in -5f64..5.0) {
        prop_assert!((erf::erf64(x) + erf::erfc64(x) - 1.0).abs() < 1e-11, "x={x}");
    }

    #[test]
    fn registry_gap_matches_direct_difference(x in 0.1f64..50.0) {
        use fastapprox::registry::{lookup, Grade};
        let e = lookup("exp").unwrap();
        let gap = e.gap(Grade::Fast, x);
        let direct = x.exp() - fastapprox::wide::fastexp64(x);
        prop_assert_eq!(gap, direct);
    }
}
