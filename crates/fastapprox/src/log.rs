//! Approximate binary and natural logarithms.
//!
//! The `fast*` variants decompose the IEEE 754 representation into
//! exponent and mantissa and correct the mantissa's contribution with a
//! small rational function; the `faster*` variants read the entire float
//! representation as an integer — the classic "logarithm is the exponent
//! field" trick.

/// ln(2), used to convert between log2 and ln.
const LN2: f32 = 0.693_147_18;

/// Approximate `log2(x)` — Mineiro's `fastlog2`.
///
/// Accurate to roughly `±3e-4` relative over normal positive inputs.
/// Negative inputs and zero produce meaningless values (like the C
/// original, no domain checking is performed).
#[inline]
pub fn fastlog2(x: f32) -> f32 {
    let vx = x.to_bits();
    let mx = f32::from_bits((vx & 0x007F_FFFF) | 0x3f00_0000);
    let y = vx as f32 * 1.192_092_9e-7;
    y - 124.225_52 - 1.498_030_3 * mx - 1.725_88 / (0.352_088_72 + mx)
}

/// Crude `log2(x)` — Mineiro's `fasterlog2` (exponent-field read).
///
/// Error up to a few percent; the "fast math at any cost" grade.
#[inline]
pub fn fasterlog2(x: f32) -> f32 {
    x.to_bits() as f32 * 1.192_092_9e-7 - 126.942_695
}

/// Approximate natural logarithm via [`fastlog2`].
#[inline]
pub fn fastlog(x: f32) -> f32 {
    LN2 * fastlog2(x)
}

/// Crude natural logarithm via [`fasterlog2`].
#[inline]
pub fn fasterlog(x: f32) -> f32 {
    LN2 * fasterlog2(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f32, exact: f32) -> f32 {
        ((approx - exact) / exact).abs()
    }

    #[test]
    fn fastlog2_accuracy_over_decades() {
        for e in -20..20 {
            let x = 2.0f32.powi(e) * 1.37;
            let exact = x.log2();
            assert!(
                (fastlog2(x) - exact).abs() < 2e-4 * exact.abs().max(1.0),
                "x={x}: {} vs {exact}",
                fastlog2(x)
            );
        }
    }

    #[test]
    fn fastlog2_exact_at_powers_of_two_scale() {
        // Not bit-exact, but very close at powers of two.
        assert!((fastlog2(1.0) - 0.0).abs() < 1e-3);
        assert!((fastlog2(2.0) - 1.0).abs() < 1e-3);
        assert!((fastlog2(1024.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn fasterlog2_percent_level() {
        for e in [-10i32, -3, 0, 3, 10] {
            let x = 2.0f32.powi(e) * 1.61;
            assert!((fasterlog2(x) - x.log2()).abs() < 0.1, "x={x}");
        }
    }

    #[test]
    fn fastlog_matches_ln() {
        for &x in &[0.01f32, 0.5, 1.0, 2.718_281_7, 100.0, 1e6] {
            assert!(
                rel_err(fastlog(x), x.ln()).min((fastlog(x) - x.ln()).abs()) < 2e-3,
                "x={x}"
            );
        }
    }

    #[test]
    fn fast_grades_order() {
        // fastlog should be closer to ln than fasterlog (generically).
        let mut fast_worse = 0;
        for i in 1..200 {
            let x = i as f32 * 0.37;
            let exact = x.ln();
            if (fastlog(x) - exact).abs() > (fasterlog(x) - exact).abs() {
                fast_worse += 1;
            }
        }
        assert!(
            fast_worse < 20,
            "fastlog worse than fasterlog on {fast_worse}/199 points"
        );
    }
}
