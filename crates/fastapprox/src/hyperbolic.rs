//! Approximate sigmoid and tanh (logistic-family helpers from FastApprox).

use crate::exp::{fasterexp, fastexp};

/// Approximate logistic sigmoid `1 / (1 + e^-x)` — Mineiro's
/// `fastsigmoid`.
#[inline]
pub fn fastsigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fastexp(-x))
}

/// Crude logistic sigmoid via [`fasterexp`].
#[inline]
pub fn fastersigmoid(x: f32) -> f32 {
    1.0 / (1.0 + fasterexp(-x))
}

/// Approximate `tanh(x)` as `2·sigmoid(2x) − 1` — Mineiro's `fasttanh`.
#[inline]
pub fn fasttanh(x: f32) -> f32 {
    -1.0 + 2.0 / (1.0 + fastexp(-2.0 * x))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fastsigmoid_tracks_reference() {
        for i in -40..=40 {
            let x = i as f32 * 0.25;
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!((fastsigmoid(x) - exact).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn fasttanh_tracks_reference() {
        for i in -30..=30 {
            let x = i as f32 * 0.2;
            assert!((fasttanh(x) - x.tanh()).abs() < 1e-3, "x={x}");
        }
    }

    #[test]
    fn sigmoid_range_and_symmetry() {
        for i in -20..=20 {
            let x = i as f32 * 0.5;
            let v = fastsigmoid(x);
            assert!((0.0..=1.0).contains(&v));
            assert!((v + fastsigmoid(-x) - 1.0).abs() < 2e-3);
        }
    }

    #[test]
    fn fastersigmoid_is_coarser() {
        let mut coarser = 0;
        for i in -20..=20 {
            let x = i as f32 * 0.3;
            let exact = 1.0 / (1.0 + (-x).exp());
            if (fastersigmoid(x) - exact).abs() >= (fastsigmoid(x) - exact).abs() {
                coarser += 1;
            }
        }
        assert!(coarser >= 35, "{coarser}/41");
    }
}
