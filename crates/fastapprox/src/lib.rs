//! # fastapprox — approximate transcendental functions
//!
//! A Rust port of Paul Mineiro's *FastApprox* library (2011), the
//! approximate math library the CHEF-FP paper substitutes for the standard
//! C math library in its Black-Scholes case study (paper §IV-5, Table IV).
//!
//! The functions come in two accuracy grades, following the original:
//!
//! * **`fast*`** — a bit-twiddling decomposition plus a small rational
//!   correction; relative error around `1e-5`..`1e-4`.
//! * **`faster*`** — the raw bit-twiddling trick only; relative error
//!   around `1e-2`. These are the "Fast exp" configurations of Table IV
//!   that trade much more accuracy for speed.
//!
//! All functions operate on `f32` like the C originals; `f64`-in/out
//! wrappers (used by the KernelC VM, which stores all floats as `f64`)
//! live in the [`wide`] module. The [`registry`] module maps intrinsic
//! names to exact/approximate implementation pairs, which is how the
//! approximation-error model of `chef-core` (paper Algorithm 2) evaluates
//! `f(x) − f̃(x)`.

pub mod erf;
pub mod exp;
pub mod hyperbolic;
pub mod log;
pub mod pow;
pub mod registry;
pub mod sqrt;
pub mod wide;

pub use erf::{fasterf, fasterfc, fastnormcdf};
pub use exp::{fasterexp, fasterpow2, fastexp, fastpow2};
pub use hyperbolic::{fastsigmoid, fasttanh};
pub use log::{fasterlog, fasterlog2, fastlog, fastlog2};
pub use pow::fastpow;
pub use sqrt::{fasterrsqrt, fastsqrt};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_reexports_work() {
        assert!((fastexp(1.0) - std::f32::consts::E).abs() < 1e-3);
        assert!((fastlog(std::f32::consts::E) - 1.0).abs() < 1e-3);
        assert!((fastsqrt(4.0) - 2.0).abs() < 1e-2);
    }
}
