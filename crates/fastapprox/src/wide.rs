//! `f64`-in/out wrappers over the `f32` approximations.
//!
//! The KernelC VM stores every float as `f64` and simulates narrower
//! precisions by rounding on assignment, so its approximate-intrinsic
//! table needs `fn(f64) -> f64` entry points. Each wrapper narrows the
//! argument to `f32` (exactly what calling the C library from a double
//! context does), applies the `f32` approximation and widens the result.

use crate::{
    erf, exp::fasterexp, fastexp, fastlog, fastnormcdf, fastpow, fastsqrt, fasttanh, log::fasterlog,
};

/// `fastexp` on doubles.
pub fn fastexp64(x: f64) -> f64 {
    fastexp(x as f32) as f64
}

/// `fasterexp` on doubles (the Table IV "Fast exp" configuration).
pub fn fasterexp64(x: f64) -> f64 {
    fasterexp(x as f32) as f64
}

/// `fastlog` on doubles.
pub fn fastlog64(x: f64) -> f64 {
    fastlog(x as f32) as f64
}

/// `fasterlog` on doubles.
pub fn fasterlog64(x: f64) -> f64 {
    fasterlog(x as f32) as f64
}

/// `fastsqrt` on doubles.
pub fn fastsqrt64(x: f64) -> f64 {
    fastsqrt(x as f32) as f64
}

/// `fastpow` on doubles.
pub fn fastpow64(x: f64, p: f64) -> f64 {
    fastpow(x as f32, p as f32) as f64
}

/// `fasterf` on doubles.
pub fn fasterf64(x: f64) -> f64 {
    erf::fasterf(x as f32) as f64
}

/// `fasterfc` on doubles.
pub fn fasterfc64(x: f64) -> f64 {
    erf::fasterfc(x as f32) as f64
}

/// `fastnormcdf` on doubles.
pub fn fastnormcdf64(x: f64) -> f64 {
    fastnormcdf(x as f32) as f64
}

/// `fasttanh` on doubles.
pub fn fasttanh64(x: f64) -> f64 {
    fasttanh(x as f32) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrappers_agree_with_f32_versions() {
        assert_eq!(fastexp64(1.25), fastexp(1.25) as f64);
        assert_eq!(fastlog64(7.5), fastlog(7.5) as f64);
        assert_eq!(fastsqrt64(3.0), fastsqrt(3.0) as f64);
        assert_eq!(fastpow64(2.0, 0.5), fastpow(2.0, 0.5) as f64);
    }

    #[test]
    fn wrappers_are_close_to_std() {
        assert!((fastexp64(2.0) - 2.0f64.exp()).abs() / 2.0f64.exp() < 1e-3);
        assert!((fastlog64(10.0) - 10.0f64.ln()).abs() < 1e-3);
        assert!((fastnormcdf64(0.5) - erf::normcdf64(0.5)).abs() < 2e-2);
    }
}
