//! Approximate base-2 and natural exponentials.
//!
//! Inverse of the log tricks: build the IEEE 754 bit pattern whose
//! exponent field encodes the integer part of `p` and correct the
//! fractional part with a rational term (`fast*`) or nothing (`faster*`).

/// log2(e), used to convert `exp` into `pow2`.
const LOG2_E: f32 = 1.442_695;

/// Approximate `2^p` — Mineiro's `fastpow2`.
///
/// Relative error around `1e-4` for `p` in the normal range. Inputs below
/// `-126` are clamped (the result would be subnormal/zero anyway).
#[inline]
pub fn fastpow2(p: f32) -> f32 {
    let offset: f32 = if p < 0.0 { 1.0 } else { 0.0 };
    let clipp = if p < -126.0 { -126.0 } else { p };
    let w = clipp as i32;
    let z = clipp - w as f32 + offset;
    let bits = ((1u64 << 23) as f32
        * (clipp + 121.274_055 + 27.728_024 / (4.842_525_5 - z) - 1.490_129_1 * z))
        as u32;
    f32::from_bits(bits)
}

/// Crude `2^p` — Mineiro's `fasterpow2` (exponent-field write).
#[inline]
pub fn fasterpow2(p: f32) -> f32 {
    let clipp = if p < -126.0 { -126.0 } else { p };
    let bits = ((1u64 << 23) as f32 * (clipp + 126.942_695)) as u32;
    f32::from_bits(bits)
}

/// Approximate `e^p` via [`fastpow2`].
#[inline]
pub fn fastexp(p: f32) -> f32 {
    fastpow2(LOG2_E * p)
}

/// Crude `e^p` via [`fasterpow2`]. This is the "Fast exp" of the paper's
/// Table IV second configuration — markedly larger error, larger speedup.
#[inline]
pub fn fasterexp(p: f32) -> f32 {
    fasterpow2(LOG2_E * p)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f32, exact: f32) -> f32 {
        ((approx - exact) / exact).abs()
    }

    #[test]
    fn fastpow2_accuracy() {
        for i in -60..60 {
            let p = i as f32 * 0.31;
            assert!(rel_err(fastpow2(p), p.exp2()) < 3e-4, "p={p}");
        }
    }

    #[test]
    fn fasterpow2_percent_level() {
        for i in -20..20 {
            let p = i as f32 * 0.77;
            assert!(rel_err(fasterpow2(p), p.exp2()) < 6e-2, "p={p}");
        }
    }

    #[test]
    fn fastexp_accuracy() {
        for &p in &[-10.0f32, -1.0, -0.1, 0.0, 0.1, 1.0, 5.0, 20.0] {
            assert!(rel_err(fastexp(p), p.exp()) < 3e-4, "p={p}");
        }
    }

    #[test]
    fn fasterexp_is_coarser_than_fastexp() {
        let mut coarser = 0;
        let mut total = 0;
        for i in -50..50 {
            let p = i as f32 * 0.13;
            let exact = p.exp();
            total += 1;
            if rel_err(fasterexp(p), exact) >= rel_err(fastexp(p), exact) {
                coarser += 1;
            }
        }
        assert!(coarser * 10 >= total * 9, "{coarser}/{total}");
    }

    #[test]
    fn deep_negative_inputs_clamp_to_tiny() {
        assert!(fastpow2(-500.0) < 1e-35);
        assert!(fasterpow2(-500.0) < 1e-35);
        assert!(fastexp(-400.0) < 1e-35);
    }

    #[test]
    fn log_exp_round_trip() {
        use crate::log::fastlog2;
        for &x in &[0.5f32, 1.0, 3.7, 128.0, 1e4] {
            let rt = fastpow2(fastlog2(x));
            assert!(rel_err(rt, x) < 1e-3, "x={x} rt={rt}");
        }
    }
}
