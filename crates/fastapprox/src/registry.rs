//! Exact/approximate implementation pairs, keyed by intrinsic name.
//!
//! The paper's Algorithm 2 needs, for a variable feeding a function call,
//! `EVAL(fName, x) − EVALAPPROX(fName, x)` — the pointwise gap between the
//! standard math function and its FastApprox replacement. This registry is
//! that lookup table, shared by:
//!
//! * the KernelC VM (`chef-exec`), which consults it when a kernel is
//!   executed in "approximate intrinsics" mode, and
//! * the approximation error model (`chef-core`), which consults it to
//!   synthesize the `Δ = f(x) − f̃(x)` term.

use crate::wide;

/// A unary real function usable as an intrinsic implementation.
pub type UnaryFn = fn(f64) -> f64;

/// One exact/approximate pair for a named unary intrinsic.
#[derive(Clone, Copy)]
pub struct ApproxEntry {
    /// Intrinsic name as it appears in KernelC source (e.g. `"exp"`).
    pub name: &'static str,
    /// The exact (standard library) implementation.
    pub exact: UnaryFn,
    /// The `fast*` grade approximation.
    pub fast: UnaryFn,
    /// The `faster*` grade approximation (falls back to `fast` where the
    /// original library has no coarser variant).
    pub faster: UnaryFn,
}

/// Accuracy grade to select from an [`ApproxEntry`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Grade {
    /// The `fast*` functions (~1e-4 relative error).
    #[default]
    Fast,
    /// The `faster*` functions (~1e-2 relative error).
    Faster,
}

fn exact_exp(x: f64) -> f64 {
    x.exp()
}
fn exact_log(x: f64) -> f64 {
    x.ln()
}
fn exact_sqrt(x: f64) -> f64 {
    x.sqrt()
}
fn exact_tanh(x: f64) -> f64 {
    x.tanh()
}
fn exact_erf(x: f64) -> f64 {
    crate::erf::erf64(x)
}
fn exact_erfc(x: f64) -> f64 {
    crate::erf::erfc64(x)
}
fn exact_normcdf(x: f64) -> f64 {
    crate::erf::normcdf64(x)
}

/// All unary intrinsics with FastApprox replacements.
pub const ENTRIES: &[ApproxEntry] = &[
    ApproxEntry {
        name: "exp",
        exact: exact_exp,
        fast: wide::fastexp64,
        faster: wide::fasterexp64,
    },
    ApproxEntry {
        name: "log",
        exact: exact_log,
        fast: wide::fastlog64,
        faster: wide::fasterlog64,
    },
    ApproxEntry {
        name: "sqrt",
        exact: exact_sqrt,
        fast: wide::fastsqrt64,
        faster: wide::fastsqrt64,
    },
    ApproxEntry {
        name: "tanh",
        exact: exact_tanh,
        fast: wide::fasttanh64,
        faster: wide::fasttanh64,
    },
    ApproxEntry {
        name: "erf",
        exact: exact_erf,
        fast: wide::fasterf64,
        faster: wide::fasterf64,
    },
    ApproxEntry {
        name: "erfc",
        exact: exact_erfc,
        fast: wide::fasterfc64,
        faster: wide::fasterfc64,
    },
    ApproxEntry {
        name: "normcdf",
        exact: exact_normcdf,
        fast: wide::fastnormcdf64,
        faster: wide::fastnormcdf64,
    },
];

/// Looks up the entry for an intrinsic name, if it has an approximation.
pub fn lookup(name: &str) -> Option<&'static ApproxEntry> {
    ENTRIES.iter().find(|e| e.name == name)
}

impl ApproxEntry {
    /// Selects the implementation for `grade`.
    pub fn approx(&self, grade: Grade) -> UnaryFn {
        match grade {
            Grade::Fast => self.fast,
            Grade::Faster => self.faster,
        }
    }

    /// The pointwise approximation gap `exact(x) − approx(x)` — the `Δ` of
    /// the paper's Algorithm 2, line 4.
    pub fn gap(&self, grade: Grade, x: f64) -> f64 {
        (self.exact)(x) - (self.approx(grade))(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_finds_known_entries() {
        for name in ["exp", "log", "sqrt", "normcdf"] {
            assert!(lookup(name).is_some(), "{name}");
        }
        assert!(lookup("sin").is_none());
    }

    #[test]
    fn gap_is_small_for_fast_grade() {
        let e = lookup("exp").unwrap();
        let gap = e.gap(Grade::Fast, 1.0).abs();
        assert!(gap < 1e-3, "{gap}");
        // Relative gap for faster grade is larger (on most inputs).
        let coarse = e.gap(Grade::Faster, 1.0).abs();
        assert!(coarse > gap, "fast {gap} vs faster {coarse}");
    }

    #[test]
    fn exact_functions_are_std() {
        let e = lookup("log").unwrap();
        assert_eq!((e.exact)(std::f64::consts::E), 1.0);
        let s = lookup("sqrt").unwrap();
        assert_eq!((s.exact)(9.0), 3.0);
    }
}
