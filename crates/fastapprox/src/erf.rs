//! Approximate error function and the standard normal CDF.
//!
//! `fasterfc` follows Mineiro's logistic-style approximation
//! `erfc(x) ≈ 2 / (1 + 2^(k·x))` with `k = 3.3509633149424609`; the normal
//! CDF — the `CNDF` at the heart of Black-Scholes — is derived from it.

use crate::exp::fastpow2;

/// Mineiro's constant for the `erfc` logistic approximation.
const K_ERFC: f32 = 3.350_963_3;

/// `1/sqrt(2)` as `f32`.
const FRAC_1_SQRT_2: f32 = 0.707_106_77;

/// Approximate complementary error function — Mineiro's `fasterfc`.
///
/// Absolute error below `~1e-2`; good enough for the "how wrong does the
/// option price get" studies of Table IV.
#[inline]
pub fn fasterfc(x: f32) -> f32 {
    2.0 / (1.0 + fastpow2(K_ERFC * x))
}

/// Approximate error function via [`fasterfc`].
#[inline]
pub fn fasterf(x: f32) -> f32 {
    1.0 - fasterfc(x)
}

/// Approximate standard normal CDF: `Φ(x) = erfc(−x/√2) / 2`.
#[inline]
pub fn fastnormcdf(x: f32) -> f32 {
    0.5 * fasterfc(-x * FRAC_1_SQRT_2)
}

/// Reference (exact-grade) `erf` for `f64`, used as the "standard library"
/// semantic in the VM and the error models. Abramowitz & Stegun 7.1.26 has
/// only ~1e-7 accuracy, so we use the Chebyshev-style expansion from
/// Numerical Recipes (`erfc` accurate to ~1.2e-7 relative) refined with a
/// high-order rational kernel; for our purposes (an exact counterpart to
/// `fasterf`'s 1e-2 error) double-precision `libm`-grade accuracy is not
/// required, but we still provide ~1e-15 via the W. J. Cody split.
pub fn erf64(x: f64) -> f64 {
    // Cody-style rational approximations on |x| <= 0.46875, mid, and tail.
    let ax = x.abs();
    if ax <= 0.46875 {
        // erf(x) = x * P(x^2)/Q(x^2)
        const P: [f64; 5] = [
            3.209377589138469472562e3,
            3.774852376853020208137e2,
            1.138641541510501556495e2,
            3.161123743870565596947e0,
            1.857777061846031526730e-1,
        ];
        const Q: [f64; 4] = [
            2.844236833439170622273e3,
            1.282616526077372275645e3,
            2.440246379344441733056e2,
            2.360129095234412093499e1,
        ];
        let z = x * x;
        let num = (((P[4] * z + P[3]) * z + P[2]) * z + P[1]) * z + P[0];
        let den = (((z + Q[3]) * z + Q[2]) * z + Q[1]) * z + Q[0];
        return x * num / den;
    }
    let ec = erfc64(ax);
    let v = 1.0 - ec;
    if x < 0.0 {
        -v
    } else {
        v
    }
}

/// Reference `erfc` for `f64` (Cody rational approximations).
pub fn erfc64(x: f64) -> f64 {
    let ax = x.abs();
    if ax <= 0.46875 {
        return 1.0 - erf64(x);
    }
    let v = if ax <= 4.0 {
        // erfc(x) = exp(-x^2) * P(x)/Q(x)
        const P: [f64; 9] = [
            1.23033935479799725272e3,
            2.05107837782607146532e3,
            1.71204761263407058314e3,
            8.81952221241769090411e2,
            2.98635138197400131132e2,
            6.61191906371416294775e1,
            8.88314979438837594118e0,
            5.64188496988670089180e-1,
            2.15311535474403846343e-8,
        ];
        const Q: [f64; 8] = [
            1.23033935480374942043e3,
            3.43936767414372163696e3,
            4.36261909014324715820e3,
            3.29079923573345962678e3,
            1.62138957456669018874e3,
            5.37181101862009857509e2,
            1.17693950891312499305e2,
            1.57449261107098347253e1,
        ];
        let mut num = P[8] * ax;
        let mut den = ax;
        for i in (1..8).rev() {
            num = (num + P[i]) * ax;
            den = (den + Q[i]) * ax;
        }
        (num + P[0]) / (den + Q[0]) * (-ax * ax).exp()
    } else {
        // Tail: erfc(x) ~ exp(-x^2)/(x*sqrt(pi)) * (1 + R(1/x^2))
        const P: [f64; 6] = [
            -6.58749161529837803157e-4,
            -1.60837851487422766278e-2,
            -1.25781726111229246204e-1,
            -3.60344899949804439429e-1,
            -3.05326634961232344035e-1,
            -1.63153871373020978498e-2,
        ];
        const Q: [f64; 5] = [
            2.33520497626869185443e-3,
            6.05183413124413191178e-2,
            5.27905102951428412248e-1,
            1.87295284992346047209e0,
            2.56852019228982242072e0,
        ];
        let z = 1.0 / (ax * ax);
        let num = ((((P[0] * z + P[1]) * z + P[2]) * z + P[3]) * z + P[4]) * z + P[5];
        let den = ((((z + Q[0]) * z + Q[1]) * z + Q[2]) * z + Q[3]) * z + Q[4];
        let r = z * num / den;
        ((-ax * ax).exp() / ax) * (1.0 / std::f64::consts::PI.sqrt() + r)
    };
    if x < 0.0 {
        2.0 - v
    } else {
        v
    }
}

/// Reference standard normal CDF for `f64`: `Φ(x) = erfc(−x/√2)/2`.
pub fn normcdf64(x: f64) -> f64 {
    0.5 * erfc64(-x * std::f64::consts::FRAC_1_SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf64_reference_values() {
        // Values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (-1.0, -0.8427007929497149),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            let got = erf64(x);
            assert!((got - want).abs() < 1e-9, "erf({x}) = {got}, want {want}");
        }
    }

    #[test]
    fn erfc64_complements_erf64() {
        for i in -40..=40 {
            let x = i as f64 * 0.1;
            assert!((erf64(x) + erfc64(x) - 1.0).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn erfc64_tail_positive_and_small() {
        let v = erfc64(5.0);
        assert!(v > 0.0 && v < 2e-12, "{v}");
        let v = erfc64(8.0);
        assert!(v > 0.0 && v < 2e-28, "{v}");
    }

    #[test]
    fn normcdf64_reference_values() {
        let cases = [
            (0.0, 0.5),
            (1.0, 0.8413447460685429),
            (-1.0, 0.15865525393145707),
            (1.959963984540054, 0.975),
        ];
        for (x, want) in cases {
            assert!((normcdf64(x) - want).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn fasterfc_tracks_reference() {
        for i in -25..=25 {
            let x = i as f32 * 0.1;
            let exact = erfc64(x as f64) as f32;
            // Mineiro's logistic erfc has a max absolute error of ~0.022
            // near |x| ≈ 1.5.
            assert!((fasterfc(x) - exact).abs() < 3e-2, "x={x}");
        }
    }

    #[test]
    fn fastnormcdf_symmetry_and_range() {
        for i in -30..=30 {
            let x = i as f32 * 0.2;
            let v = fastnormcdf(x);
            assert!((0.0..=1.0).contains(&v));
            assert!((v + fastnormcdf(-x) - 1.0).abs() < 2e-2, "x={x}");
        }
    }

    #[test]
    fn fastnormcdf_tracks_reference() {
        for i in -20..=20 {
            let x = i as f32 * 0.25;
            let exact = normcdf64(x as f64) as f32;
            assert!((fastnormcdf(x) - exact).abs() < 1.5e-2, "x={x}");
        }
    }
}
