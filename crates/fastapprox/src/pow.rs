//! Approximate `x^p` as `2^(p·log2 x)`.

use crate::exp::fastpow2;
use crate::log::fastlog2;

/// Approximate `x^p` — Mineiro's `fastpow`.
///
/// Valid for `x > 0`; error compounds from [`fastlog2`] and [`fastpow2`],
/// typically below `1e-3` relative for moderate `p`.
#[inline]
pub fn fastpow(x: f32, p: f32) -> f32 {
    fastpow2(p * fastlog2(x))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f32, exact: f32) -> f32 {
        ((approx - exact) / exact).abs()
    }

    #[test]
    fn fastpow_matches_powf() {
        for &(x, p) in &[
            (2.0f32, 3.0f32),
            (10.0, 0.5),
            (0.37, 2.2),
            (100.0, -1.5),
            (1.0, 7.0),
            (5.5, 0.0),
        ] {
            assert!(rel_err(fastpow(x, p), x.powf(p)) < 2e-3, "x={x} p={p}");
        }
    }

    #[test]
    fn fastpow_square_root_special_case() {
        for i in 1..100 {
            let x = i as f32 * 0.73;
            assert!(rel_err(fastpow(x, 0.5), x.sqrt()) < 1e-3, "x={x}");
        }
    }

    #[test]
    fn fastpow_identity_exponent() {
        for &x in &[0.1f32, 1.0, 42.0] {
            assert!(rel_err(fastpow(x, 1.0), x) < 1e-3);
        }
    }
}
