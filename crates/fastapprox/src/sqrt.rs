//! Approximate square roots.
//!
//! FastApprox does not ship a dedicated `sqrt`; like the paper's
//! Black-Scholes configuration ("approximate versions of the log and sqrt
//! functions") we build it from the `pow2`/`log2` machinery, plus the
//! classic Quake III inverse-square-root for completeness.

use crate::exp::fastpow2;
use crate::log::fastlog2;

/// Approximate `sqrt(x)` as `2^(0.5·log2 x)`.
///
/// Relative error below `1e-3` for positive normal `x`.
#[inline]
pub fn fastsqrt(x: f32) -> f32 {
    fastpow2(0.5 * fastlog2(x))
}

/// The Quake III fast inverse square root (one Newton step).
///
/// Included because it is the canonical bit-twiddling approximation and a
/// useful extra data point for approximation-error studies; relative error
/// below `2e-3`.
#[inline]
pub fn fasterrsqrt(x: f32) -> f32 {
    let i = x.to_bits();
    let i = 0x5f37_59df_u32.wrapping_sub(i >> 1);
    let y = f32::from_bits(i);
    // One Newton-Raphson iteration: y = y * (1.5 - 0.5*x*y*y)
    y * (1.5 - 0.5 * x * y * y)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_err(approx: f32, exact: f32) -> f32 {
        ((approx - exact) / exact).abs()
    }

    #[test]
    fn fastsqrt_accuracy() {
        for i in 1..=1000 {
            let x = i as f32 * 0.317;
            assert!(rel_err(fastsqrt(x), x.sqrt()) < 1e-3, "x={x}");
        }
    }

    #[test]
    fn fastsqrt_across_magnitudes() {
        for e in -18..18 {
            let x = 10.0f32.powi(e) * 2.3;
            assert!(rel_err(fastsqrt(x), x.sqrt()) < 1e-3, "x={x}");
        }
    }

    #[test]
    fn fasterrsqrt_accuracy() {
        for i in 1..=1000 {
            let x = i as f32 * 0.11;
            assert!(rel_err(fasterrsqrt(x), 1.0 / x.sqrt()) < 2e-3, "x={x}");
        }
    }

    #[test]
    fn rsqrt_times_x_is_sqrt() {
        let x = 42.0f32;
        assert!(rel_err(x * fasterrsqrt(x), x.sqrt()) < 2e-3);
    }
}
