//! Gradient correctness: reverse mode vs forward mode vs finite
//! differences, on hand-written kernels and on random generated programs.

use chef_ad::forward::forward_diff;
use chef_ad::reverse::{reverse_diff, reverse_diff_with, NoExtension, ReverseConfig};
use chef_exec::prelude::*;
use chef_ir::ast::Function;
use chef_ir::parser::parse_program;
use chef_ir::typeck::check_program;
use chef_passes::testgen::{generate, GenConfig};

fn checked(src: &str) -> Function {
    let mut p = parse_program(src).unwrap();
    check_program(&mut p).unwrap();
    let p = chef_passes::inline_program(&p).unwrap();
    p.functions.into_iter().next_back().unwrap()
}

fn run_f(func: &Function, args: Vec<ArgValue>) -> f64 {
    let c = compile_default(func).unwrap();
    let opts = ExecOptions {
        max_instrs: Some(50_000_000),
        ..Default::default()
    };
    run_with(&c, args, &opts).unwrap().ret_f()
}

/// Runs the generated gradient and returns the adjoints of the float
/// scalar params (in order) plus the adjoint arrays of float array params.
fn run_grad(grad: &Function, primal_args: &[ArgValue]) -> Vec<ArgValue> {
    let c = compile_default(grad).unwrap();
    let mut args: Vec<ArgValue> = primal_args.to_vec();
    for (i, a) in primal_args.iter().enumerate() {
        match a {
            ArgValue::F(_) => args.push(ArgValue::F(0.0)),
            ArgValue::FArr(v) => args.push(ArgValue::FArr(vec![0.0; v.len()])),
            _ => {}
        }
        let _ = i;
    }
    let opts = ExecOptions {
        max_instrs: Some(50_000_000),
        ..Default::default()
    };
    let out = run_with(&c, args, &opts).unwrap();
    out.args[primal_args.len()..].to_vec()
}

fn fd_gradient(func: &Function, args: &[ArgValue], which: usize) -> f64 {
    let x = args[which].as_f();
    let h = (1e-6 * x.abs()).max(1e-8);
    let mut hi = args.to_vec();
    hi[which] = ArgValue::F(x + h);
    let mut lo = args.to_vec();
    lo[which] = ArgValue::F(x - h);
    (run_f(func, hi) - run_f(func, lo)) / (2.0 * h)
}

fn close(a: f64, b: f64, rel: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= rel * scale
}

#[test]
fn product_rule() {
    let f = checked("double f(double x, double y) { double z = x * y; return z; }");
    let grad = reverse_diff(&f).unwrap();
    let out = run_grad(&grad, &[ArgValue::F(3.0), ArgValue::F(5.0)]);
    assert_eq!(out[0], ArgValue::F(5.0)); // dz/dx = y
    assert_eq!(out[1], ArgValue::F(3.0)); // dz/dy = x
}

#[test]
fn chain_rule_through_intrinsics() {
    let f = checked("double f(double x) { return sin(x * x); }");
    let grad = reverse_diff(&f).unwrap();
    let x = 0.7;
    let out = run_grad(&grad, &[ArgValue::F(x)]);
    let expect = (x * x).cos() * 2.0 * x;
    assert!(
        close(out[0].as_f(), expect, 1e-12),
        "{:?} vs {expect}",
        out[0]
    );
}

#[test]
fn overwrites_and_self_reference() {
    // v assigned twice, second time reading itself.
    let f = checked("double f(double x, double y) { double v = x * x; v = v * y; return v; }");
    let grad = reverse_diff(&f).unwrap();
    let (x, y) = (1.3, -2.1);
    let out = run_grad(&grad, &[ArgValue::F(x), ArgValue::F(y)]);
    assert!(close(out[0].as_f(), 2.0 * x * y, 1e-12));
    assert!(close(out[1].as_f(), x * x, 1e-12));
}

#[test]
fn loop_gradient_arclength_shape() {
    // The paper's Arc Length kernel shape: accumulation in a loop with
    // sqrt of sums.
    let src = "double arclen(double amp, int n) {
        double h = 3.141592653589793 / n;
        double t1 = 0.0;
        double s1 = 0.0;
        double prev = 0.0;
        for (int i = 1; i <= n; i++) {
            double t2 = i * h;
            double y = amp * sin(t2);
            double dy = y - prev;
            s1 += sqrt(h * h + dy * dy);
            prev = y;
            t1 = t2;
        }
        return s1;
    }";
    let f = checked(src);
    let grad = reverse_diff(&f).unwrap();
    let args = [ArgValue::F(1.5), ArgValue::I(64)];
    let out = run_grad(&grad, &args);
    let fd = fd_gradient(&f, &args, 0);
    assert!(
        close(out[0].as_f(), fd, 1e-5),
        "ad {} vs fd {fd}",
        out[0].as_f()
    );
}

#[test]
fn branch_gradient() {
    let f = checked(
        "double f(double x) {
            double r = 0.0;
            if (x > 1.0) { r = x * x; } else { r = 3.0 * x; }
            return r;
        }",
    );
    let grad = reverse_diff(&f).unwrap();
    let out = run_grad(&grad, &[ArgValue::F(2.0)]);
    assert_eq!(out[0], ArgValue::F(4.0));
    let out = run_grad(&grad, &[ArgValue::F(0.5)]);
    assert_eq!(out[0], ArgValue::F(3.0));
}

#[test]
fn array_gradient_dot_product() {
    let f = checked(
        "double dot(double a[], double b[], int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { s += a[i] * b[i]; }
            return s;
        }",
    );
    let grad = reverse_diff(&f).unwrap();
    let a = vec![1.0, 2.0, 3.0];
    let b = vec![4.0, 5.0, 6.0];
    let out = run_grad(
        &grad,
        &[
            ArgValue::FArr(a.clone()),
            ArgValue::FArr(b.clone()),
            ArgValue::I(3),
        ],
    );
    assert_eq!(out[0].as_farr(), b.as_slice()); // d/da = b
    assert_eq!(out[1].as_farr(), a.as_slice()); // d/db = a
}

#[test]
fn array_overwrite_gradient() {
    // Elements are overwritten in a second loop; push/pop of elements must
    // restore them for the adjoint of the first loop.
    let f = checked(
        "double f(double a[], int n) {
            double s = 0.0;
            for (int i = 0; i < n; i++) { a[i] = a[i] * a[i]; }
            for (int i = 0; i < n; i++) { s += a[i]; }
            return s;
        }",
    );
    let grad = reverse_diff(&f).unwrap();
    let a = vec![1.5, -2.0, 0.5];
    let out = run_grad(&grad, &[ArgValue::FArr(a.clone()), ArgValue::I(3)]);
    let expect: Vec<f64> = a.iter().map(|x| 2.0 * x).collect();
    assert_eq!(out[0].as_farr(), expect.as_slice());
}

#[test]
fn while_loop_gradient() {
    let f = checked(
        "double f(double x) {
            double v = x;
            while (v < 100.0) { v = v * 2.0; }
            return v;
        }",
    );
    let grad = reverse_diff(&f).unwrap();
    let x = 3.0; // 3 -> 6 -> 12 -> 24 -> 48 -> 96 -> 192: 6 doublings
    let out = run_grad(&grad, &[ArgValue::F(x)]);
    assert_eq!(out[0], ArgValue::F(64.0));
}

#[test]
fn fabs_and_minmax_gradients() {
    let f =
        checked("double f(double x, double y) { return fabs(x) + fmax(x, y) + fmin(x * y, y); }");
    let grad = reverse_diff(&f).unwrap();
    for &(x, y) in &[(2.0, 1.0), (-2.0, 1.0), (0.5, 3.0)] {
        let args = [ArgValue::F(x), ArgValue::F(y)];
        let out = run_grad(&grad, &args);
        let fdx = fd_gradient(&f, &args, 0);
        let fdy = fd_gradient(&f, &args, 1);
        assert!(
            close(out[0].as_f(), fdx, 1e-5),
            "x={x},y={y}: {} vs {fdx}",
            out[0].as_f()
        );
        assert!(
            close(out[1].as_f(), fdy, 1e-5),
            "x={x},y={y}: {} vs {fdy}",
            out[1].as_f()
        );
    }
}

#[test]
fn pow_gradient() {
    let f = checked("double f(double x, double y) { return pow(x, y); }");
    let grad = reverse_diff(&f).unwrap();
    let (x, y) = (2.5, 1.7);
    let out = run_grad(&grad, &[ArgValue::F(x), ArgValue::F(y)]);
    assert!(close(out[0].as_f(), y * x.powf(y - 1.0), 1e-12));
    assert!(close(out[1].as_f(), x.powf(y) * x.ln(), 1e-12));
}

#[test]
fn reverse_matches_forward_mode_on_random_programs() {
    let cfg = GenConfig::default();
    let exec_opts = ExecOptions {
        max_instrs: Some(5_000_000),
        ..Default::default()
    };
    let mut tested = 0;
    for seed in 0..120 {
        let g = generate(seed, &cfg);
        let args = vec![
            ArgValue::F(g.float_args[0]),
            ArgValue::F(g.float_args[1]),
            ArgValue::I(g.int_arg),
        ];
        let grad = match reverse_diff(&g.function) {
            Ok(gr) => gr,
            Err(e) => panic!("seed {seed}: reverse failed: {e}\n{}", g.source),
        };
        let gc = compile_default(&grad).unwrap();
        let mut gargs = args.clone();
        gargs.push(ArgValue::F(0.0));
        gargs.push(ArgValue::F(0.0));
        let gout = match run_with(&gc, gargs, &exec_opts) {
            Ok(o) => o,
            Err(t) => panic!("seed {seed}: grad trapped: {t}\n{}", g.source),
        };
        let (rx, ry) = (gout.args[3].as_f(), gout.args[4].as_f());
        // Forward mode as the oracle (same arithmetic, independent code
        // path).
        for (wrt, rev_val) in [("x", rx), ("y", ry)] {
            let fwd = forward_diff(&g.function, wrt).unwrap();
            let fc = compile_default(&fwd).unwrap();
            let fout = run_with(&fc, args.clone(), &exec_opts).unwrap().ret_f();
            assert!(
                close(rev_val, fout, 1e-9) || (rev_val.is_nan() && fout.is_nan()),
                "seed {seed} wrt {wrt}: reverse {rev_val} vs forward {fout}\n{}",
                g.source
            );
        }
        tested += 1;
    }
    assert!(tested > 100);
}

#[test]
fn tbr_and_full_push_agree() {
    let cfg_gen = GenConfig::default();
    let tbr_on = ReverseConfig {
        tbr: true,
        ..Default::default()
    };
    let tbr_off = ReverseConfig {
        tbr: false,
        ..Default::default()
    };
    let exec_opts = ExecOptions {
        max_instrs: Some(5_000_000),
        ..Default::default()
    };
    for seed in 200..260 {
        let g = generate(seed, &cfg_gen);
        let args = vec![
            ArgValue::F(g.float_args[0]),
            ArgValue::F(g.float_args[1]),
            ArgValue::I(g.int_arg),
        ];
        let mut results = Vec::new();
        let mut peaks = Vec::new();
        for cfg in [&tbr_on, &tbr_off] {
            let grad = reverse_diff_with(&g.function, cfg, &mut NoExtension).unwrap();
            let c = compile_default(&grad).unwrap();
            let mut gargs = args.clone();
            gargs.push(ArgValue::F(0.0));
            gargs.push(ArgValue::F(0.0));
            let out = run_with(&c, gargs, &exec_opts).unwrap();
            results.push((out.args[3].as_f(), out.args[4].as_f()));
            peaks.push(out.stats.tape_peak_bytes);
        }
        assert_eq!(results[0], results[1], "seed {seed}\n{}", g.source);
        assert!(
            peaks[0] <= peaks[1],
            "seed {seed}: TBR tape {} > full tape {}",
            peaks[0],
            peaks[1]
        );
    }
}

#[test]
fn tbr_reduces_tape_on_straight_line_code() {
    let f = checked(
        "double f(double x) {
            double a = x * x;
            double b = a + 1.0;
            double c = b * a;
            return c;
        }",
    );
    let tbr = reverse_diff_with(
        &f,
        &ReverseConfig {
            tbr: true,
            ..Default::default()
        },
        &mut NoExtension,
    )
    .unwrap();
    let c = compile_default(&tbr).unwrap();
    let out = run_with(
        &c,
        vec![ArgValue::F(2.0), ArgValue::F(0.0)],
        &ExecOptions::default(),
    )
    .unwrap();
    // Single-assignment locals never read before their assignment: no
    // pushes at all.
    assert_eq!(
        out.stats.tape_total_pushes, 0,
        "pushes: {}",
        out.stats.tape_total_pushes
    );
    assert_eq!(
        out.args[1],
        ArgValue::F(2.0 * 2.0 * (2.0 * 2.0) + (2.0 * 2.0 + 1.0) * 2.0 * 2.0)
    );
}

#[test]
fn listing1_signature_convention() {
    // Paper Listing 1: df.execute(x, y, &dx, &dy, fp_error) — without an
    // extension the signature is (x, y, &_d_x, &_d_y).
    let f = checked("float func(float x, float y) { float z; z = x + y; return z; }");
    let grad = reverse_diff(&f).unwrap();
    let names: Vec<_> = grad.params.iter().map(|p| p.name.as_str()).collect();
    assert_eq!(names, vec!["x", "y", "_d_x", "_d_y"]);
    let out = run_grad(&grad, &[ArgValue::F(1.95e-5), ArgValue::F(1.37e-7)]);
    assert_eq!(out[0], ArgValue::F(1.0));
    assert_eq!(out[1], ArgValue::F(1.0));
}

#[test]
fn generated_code_optimizes_and_still_matches() {
    // The CHEF-FP pipeline optimizes generated adjoints; optimization must
    // not change gradients.
    for seed in 300..340 {
        let g = generate(seed, &GenConfig::default());
        let args = vec![
            ArgValue::F(g.float_args[0]),
            ArgValue::F(g.float_args[1]),
            ArgValue::I(g.int_arg),
        ];
        let grad = reverse_diff(&g.function).unwrap();
        let mut opt = grad.clone();
        chef_passes::optimize_function(&mut opt, chef_passes::OptLevel::O2);
        let exec_opts = ExecOptions {
            max_instrs: Some(5_000_000),
            ..Default::default()
        };
        let mut gargs = args.clone();
        gargs.push(ArgValue::F(0.0));
        gargs.push(ArgValue::F(0.0));
        let a = run_with(&compile_default(&grad).unwrap(), gargs.clone(), &exec_opts).unwrap();
        let b = run_with(&compile_default(&opt).unwrap(), gargs, &exec_opts).unwrap();
        let (a3, a4) = (a.args[3].as_f(), a.args[4].as_f());
        let (b3, b4) = (b.args[3].as_f(), b.args[4].as_f());
        assert!(
            (a3 == b3 || (a3.is_nan() && b3.is_nan()))
                && (a4 == b4 || (a4.is_nan() && b4.is_nan())),
            "seed {seed}: ({a3},{a4}) vs ({b3},{b4})\n{}",
            g.source
        );
    }
}

#[test]
fn unsupported_shapes_report_errors() {
    use chef_ad::reverse::AdError;
    let f = checked("int f(int n) { return n; }");
    assert!(matches!(reverse_diff(&f), Err(AdError::NonFloatReturn)));

    let f = checked("double f(double x) { if (x > 0.0) { return x; } return -x; }");
    assert!(matches!(reverse_diff(&f), Err(AdError::EarlyReturn { .. })));

    let f = checked("double f(double x) { double y = x; }");
    assert!(matches!(
        reverse_diff(&f),
        Err(AdError::MissingTrailingReturn)
    ));
}
