//! Reverse-mode (adjoint) source transformation — the Clad substrate.
//!
//! Implements the transformation of the paper's Fig. 2 with the
//! operational-semantics rules S1–S4 (§III-C): the generated function
//! contains a **forward sweep** (the primal computation, with
//! `Push(out(Li))` tape records for every to-be-restored location) and a
//! **backward sweep** (adjoint accumulation in reverse statement order,
//! restoring state with `Pop(out(Li))`).
//!
//! The extension mechanism mirrors Clad's callback system (paper §III-D):
//! an [`AdjointExtension`] can append parameters to the generated
//! signature, hoist declarations, and receives an [`AssignCtx`] for every
//! differentiable assignment — exactly the `AssignError` hook of rule S2 —
//! plus a [`FinalizeCtx`] at the end (rule S1's `FinalizeEE`). CHEF-FP's
//! error-estimation module (`chef-core`) is implemented as such an
//! extension; the AD machinery itself knows nothing about FP errors.
//!
//! Generated functions follow the Clad signature convention of Listing 1:
//! `void f_grad(<primal params>, <adjoint outs>, <extension params>)`,
//! where each float scalar parameter `x` gains `double &_d_x` and each
//! float array parameter `a` gains `double _d_a[]`.

use crate::activity::{assigned_in, is_diff, reads_of, UsageInfo};
use crate::derivatives::{min_max_select, pow_derivatives, unary_derivative};
use chef_ir::ast::*;
use chef_ir::span::Span;
use chef_ir::types::{ElemTy, FloatTy, Type};
use chef_ir::visit::{walk_expr, walk_expr_mut, MutVisitor, Visitor};
use std::collections::{HashMap, HashSet};

/// Configuration of the reverse transformation.
#[derive(Clone, Debug)]
pub struct ReverseConfig {
    /// Run the to-be-recorded analysis; `false` pushes every assignment
    /// (the ablation baseline for the tape-size experiments).
    pub tbr: bool,
    /// Suffix appended to the primal name (default `_grad`).
    pub suffix: String,
}

impl Default for ReverseConfig {
    fn default() -> Self {
        ReverseConfig {
            tbr: true,
            suffix: "_grad".into(),
        }
    }
}

/// Errors the transformation can report.
#[derive(Clone, Debug, PartialEq)]
pub enum AdError {
    /// The primal must return a float scalar.
    NonFloatReturn,
    /// The primal must end with a single trailing `return expr;`.
    MissingTrailingReturn,
    /// `return` in a non-trailing position.
    EarlyReturn {
        /// Where.
        span: Span,
    },
    /// User calls must be inlined first.
    UserCall {
        /// Callee name.
        name: String,
        /// Call site.
        span: Span,
    },
    /// Local arrays must be declared at the top level of the body.
    NestedArrayDecl {
        /// Where.
        span: Span,
    },
    /// Anything else.
    Unsupported {
        /// Description.
        msg: String,
        /// Where.
        span: Span,
    },
}

impl std::fmt::Display for AdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdError::NonFloatReturn => write!(f, "function must return a float scalar"),
            AdError::MissingTrailingReturn => {
                write!(f, "function must end with `return <expr>;`")
            }
            AdError::EarlyReturn { .. } => write!(f, "early returns are not supported"),
            AdError::UserCall { name, .. } => {
                write!(f, "call to `{name}` must be inlined before differentiation")
            }
            AdError::NestedArrayDecl { .. } => {
                write!(f, "local arrays must be declared at the top level")
            }
            AdError::Unsupported { msg, .. } => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for AdError {}

/// Context handed to [`AdjointExtension::on_assign`] — one differentiable
/// assignment in the backward sweep, with everything an error model needs
/// (paper Listing 2/3: the name, the value, and its adjoint).
pub struct AssignCtx<'a> {
    /// The function being generated; use [`Function::add_var`] for fresh
    /// temporaries.
    pub grad: &'a mut Function,
    /// Statements to emit once at the top of the generated body
    /// (accumulator declarations etc.).
    pub hoisted: &'a mut Vec<Stmt>,
    /// Source-level name of the assigned variable.
    pub var_name: String,
    /// Id (in the generated function) of the assigned variable.
    pub var: VarId,
    /// Reads the just-assigned value (valid at the emission point in the
    /// backward sweep — the pop discipline guarantees the post-assignment
    /// value).
    pub value: Expr,
    /// Reads the adjoint of this assignment's result (before it is zeroed
    /// and redistributed).
    pub adjoint: Expr,
    /// Declared precision of the assigned location.
    pub target_prec: FloatTy,
    /// `true` for array-element stores.
    pub is_element: bool,
    /// `true` when the assignment sits inside at least one loop.
    pub in_loop: bool,
    /// Source span of the assignment.
    pub span: Span,
}

/// One differentiable input in [`FinalizeCtx`].
pub struct InputInfo {
    /// Parameter name.
    pub name: String,
    /// Parameter id in the generated function.
    pub var: VarId,
    /// Adjoint (gradient) parameter id in the generated function.
    pub d_var: VarId,
    /// Declared precision.
    pub prec: FloatTy,
    /// `true` for array parameters (`var`/`d_var` are arrays then).
    pub is_array: bool,
}

/// Context handed to [`AdjointExtension::on_finalize`] (rule S1's
/// `FinalizeEE`).
pub struct FinalizeCtx<'a> {
    /// The function being generated.
    pub grad: &'a mut Function,
    /// Statements hoisted to the top of the body.
    pub hoisted: &'a mut Vec<Stmt>,
    /// All differentiable inputs with their adjoints.
    pub inputs: Vec<InputInfo>,
    /// Reads the primal result value.
    pub result: Expr,
}

/// Clad-style extension: subscribes to events of the adjoint generation.
pub trait AdjointExtension {
    /// Extra parameters appended to the generated signature (e.g. the
    /// `double &_fp_error` output of CHEF-FP).
    fn extra_params(&self) -> Vec<Param> {
        Vec::new()
    }

    /// Called for every differentiable assignment during the backward
    /// sweep; returned statements are inserted *before* the adjoint of the
    /// assignment is redistributed (rule S2's `AssignError`).
    fn on_assign(&mut self, _ctx: &mut AssignCtx<'_>) -> Vec<Stmt> {
        Vec::new()
    }

    /// Called once at the end of the backward sweep (rule S1's
    /// `FinalizeEE`).
    fn on_finalize(&mut self, _ctx: &mut FinalizeCtx<'_>) -> Vec<Stmt> {
        Vec::new()
    }
}

/// The do-nothing extension: plain gradient generation.
pub struct NoExtension;

impl AdjointExtension for NoExtension {}

/// Differentiates `primal` in reverse mode with default configuration and
/// no extension.
pub fn reverse_diff(primal: &Function) -> Result<Function, AdError> {
    reverse_diff_with(primal, &ReverseConfig::default(), &mut NoExtension)
}

/// Differentiates `primal` in reverse mode.
///
/// The primal must be checked, inlined (no user calls), return a float
/// scalar, and end with a single trailing `return`.
pub fn reverse_diff_with(
    primal: &Function,
    cfg: &ReverseConfig,
    ext: &mut dyn AdjointExtension,
) -> Result<Function, AdError> {
    // ---- validation ----
    if !matches!(primal.ret, Type::Float(_)) {
        return Err(AdError::NonFloatReturn);
    }
    validate_no_user_calls(&primal.body)?;
    let Some(Stmt {
        kind: StmtKind::Return(Some(ret_expr)),
        ..
    }) = primal.body.stmts.last()
    else {
        return Err(AdError::MissingTrailingReturn);
    };
    for s in &primal.body.stmts[..primal.body.stmts.len() - 1] {
        if let Some(span) = find_return(s) {
            return Err(AdError::EarlyReturn { span });
        }
    }

    // ---- build the shell ----
    let mut grad = Function {
        name: format!("{}{}", primal.name, cfg.suffix),
        params: Vec::new(),
        ret: Type::Void,
        body: Block::empty(),
        span: Span::DUMMY,
        vars: Vec::new(),
    };
    let mut used_names: HashSet<String> = primal.vars.iter().map(|v| v.name.clone()).collect();
    let mut fresh_name = move |base: String| -> String {
        if used_names.insert(base.clone()) {
            return base;
        }
        for k in 1.. {
            let cand = format!("{base}@{k}");
            if used_names.insert(cand.clone()) {
                return cand;
            }
        }
        unreachable!()
    };

    // Original parameters keep their ids 0..n.
    let mut primal_map: Vec<VarId> = Vec::with_capacity(primal.vars.len());
    for p in &primal.params {
        let id = grad.add_var(p.name.clone(), p.ty);
        grad.vars[id.index()].is_param = true;
        grad.params.push(Param {
            name: p.name.clone(),
            id: Some(id),
            ..p.clone()
        });
        primal_map.push(id);
    }
    // Adjoint parameters for differentiable inputs.
    let mut adjoint_of: HashMap<VarId, AdjTarget> = HashMap::new();
    let mut inputs: Vec<InputInfo> = Vec::new();
    for (i, p) in primal.params.iter().enumerate() {
        match p.ty {
            Type::Float(ft) => {
                let name = fresh_name(format!("_d_{}", p.name));
                let id = grad.add_var(name.clone(), Type::Float(FloatTy::F64));
                grad.vars[id.index()].is_param = true;
                grad.params
                    .push(Param::by_ref(name.clone(), Type::Float(FloatTy::F64)));
                grad.params.last_mut().unwrap().id = Some(id);
                adjoint_of.insert(primal_map[i], AdjTarget::Scalar(id, name.clone()));
                inputs.push(InputInfo {
                    name: p.name.clone(),
                    var: primal_map[i],
                    d_var: id,
                    prec: ft,
                    is_array: false,
                });
            }
            Type::Array(ElemTy::Float(ft)) => {
                let name = fresh_name(format!("_d_{}", p.name));
                let id = grad.add_var(name.clone(), Type::Array(ElemTy::Float(FloatTy::F64)));
                grad.vars[id.index()].is_param = true;
                grad.params
                    .push(Param::array(name.clone(), ElemTy::Float(FloatTy::F64)));
                grad.params.last_mut().unwrap().id = Some(id);
                adjoint_of.insert(primal_map[i], AdjTarget::Array(id, name.clone()));
                inputs.push(InputInfo {
                    name: p.name.clone(),
                    var: primal_map[i],
                    d_var: id,
                    prec: ft,
                    is_array: true,
                });
            }
            _ => {}
        }
    }
    // Extension parameters.
    for mut p in ext.extra_params() {
        let name = fresh_name(p.name.clone());
        let id = grad.add_var(name.clone(), p.ty);
        grad.vars[id.index()].is_param = true;
        p.name = name;
        p.id = Some(id);
        grad.params.push(p);
    }
    // Primal locals become locals of the gradient (hoisted), plus adjoint
    // shadows for differentiable ones.
    let mut hoisted: Vec<Stmt> = Vec::new();
    let mut local_array_sizes: HashMap<VarId, ()> = HashMap::new();
    for (vid, info) in primal.vars_iter() {
        if info.is_param {
            continue;
        }
        let id = grad.add_var(info.name.clone(), info.ty);
        primal_map.push(id);
        debug_assert_eq!(primal_map.len() - 1, vid.index());
        match info.ty {
            Type::Float(_) | Type::Int | Type::Bool => {
                hoisted.push(decl_stmt(&grad, id, None));
            }
            Type::Array(_) => {
                // Allocated at its original (top-level) site in the
                // forward sweep.
                local_array_sizes.insert(id, ());
            }
            Type::Void => unreachable!(),
        }
        if is_diff(info.ty) {
            let name = fresh_name(format!("_d_{}", info.name));
            match info.ty {
                Type::Float(_) => {
                    let did = grad.add_var(name.clone(), Type::Float(FloatTy::F64));
                    hoisted.push(decl_stmt_init(&grad, did, Expr::flit(0.0)));
                    adjoint_of.insert(id, AdjTarget::Scalar(did, name));
                }
                Type::Array(_) => {
                    let did = grad.add_var(name.clone(), Type::Array(ElemTy::Float(FloatTy::F64)));
                    adjoint_of.insert(id, AdjTarget::Array(did, name));
                }
                _ => unreachable!(),
            }
        }
    }

    // ---- prepare the remapped, canonicalized body ----
    let mut body = primal.body.clone();
    body.stmts.pop(); // the trailing return (validated above)
    let mut ret_expr = ret_expr.clone();
    let mut remap = Remap {
        map: &primal_map,
        grad: &grad,
    };
    for s in &mut body.stmts {
        remap.visit_stmt_mut(s);
    }
    remap.visit_expr_mut(&mut ret_expr);
    canonicalize_block(&mut body);

    let usage = UsageInfo::analyze(&body);

    // ---- transform ----
    let mut rev = Rev {
        grad,
        usage,
        cfg,
        ext,
        adjoint_of,
        hoisted,
        fresh: 0,
        loop_depth: 0,
        top_level: true,
    };
    let (fwd, bwd) = rev.xform_block(&body)?;

    // Seed and return handling.
    let ret_name = {
        let f = |b: String| {
            // fresh name against grad's current var table
            let mut k = 0usize;
            loop {
                let cand = if k == 0 {
                    b.clone()
                } else {
                    format!("{b}@{k}")
                };
                if !rev.grad.vars.iter().any(|v| v.name == cand) {
                    return cand;
                }
                k += 1;
            }
        };
        f("_result".to_string())
    };
    let ret_id = rev
        .grad
        .add_var(ret_name.clone(), Type::Float(FloatTy::F64));
    let seed_name = {
        let mut k = 0usize;
        loop {
            let cand = if k == 0 {
                "_d_result".to_string()
            } else {
                format!("_d_result@{k}")
            };
            if !rev.grad.vars.iter().any(|v| v.name == cand) {
                break cand;
            }
            k += 1;
        }
    };
    let seed_id = rev
        .grad
        .add_var(seed_name.clone(), Type::Float(FloatTy::F64));

    let tail_fwd: Vec<Stmt> = vec![
        decl_stmt_init_named(ret_id, &ret_name, ret_expr.clone()),
        decl_stmt_init_named(seed_id, &seed_name, Expr::flit(1.0)),
    ];

    let mut head_bwd: Vec<Stmt> = Vec::new();
    // The return is itself an assignment (`_result = e`): give the
    // extension its AssignError hook unless it is a plain variable copy
    // (no new rounding happens on an exact copy at equal-or-wider
    // precision).
    let seed_read = Expr::var(&seed_name, seed_id, Type::Float(FloatTy::F64));
    let is_plain_copy = matches!(ret_expr.kind, ExprKind::Var(_));
    if !is_plain_copy {
        let ret_prec = match primal.ret {
            Type::Float(ft) => ft,
            _ => FloatTy::F64,
        };
        let mut ctx = AssignCtx {
            grad: &mut rev.grad,
            hoisted: &mut rev.hoisted,
            var_name: ret_name.clone(),
            var: ret_id,
            value: Expr::var(&ret_name, ret_id, Type::Float(FloatTy::F64)),
            adjoint: seed_read.clone(),
            target_prec: ret_prec,
            is_element: false,
            in_loop: false,
            span: Span::DUMMY,
        };
        head_bwd.extend(rev.ext.on_assign(&mut ctx));
    }
    rev.rev_expr(&ret_expr, seed_read, &mut head_bwd)?;

    // Finalize (rule S1).
    let mut fin_stmts = {
        let mut ctx = FinalizeCtx {
            grad: &mut rev.grad,
            hoisted: &mut rev.hoisted,
            inputs,
            result: Expr::var(&ret_name, ret_id, Type::Float(FloatTy::F64)),
        };
        rev.ext.on_finalize(&mut ctx)
    };

    // ---- assemble ----
    let mut stmts = Vec::new();
    stmts.append(&mut rev.hoisted);
    stmts.extend(fwd);
    stmts.extend(tail_fwd);
    stmts.extend(head_bwd);
    stmts.extend(bwd);
    stmts.append(&mut fin_stmts);
    let mut grad = rev.grad;
    grad.body = Block::of(stmts);
    Ok(grad)
}

/// Where a variable's adjoint lives.
#[derive(Clone, Debug)]
enum AdjTarget {
    Scalar(VarId, Symbol),
    Array(VarId, Symbol),
}

fn decl_stmt(grad: &Function, id: VarId, init: Option<Expr>) -> Stmt {
    let info = grad.var(id);
    Stmt::synth(StmtKind::Decl {
        name: info.name.clone(),
        id: Some(id),
        ty: info.ty,
        size: None,
        init,
    })
}

fn decl_stmt_init(grad: &Function, id: VarId, init: Expr) -> Stmt {
    decl_stmt(grad, id, Some(init))
}

fn decl_stmt_init_named(id: VarId, name: &str, init: Expr) -> Stmt {
    Stmt::synth(StmtKind::Decl {
        name: name.to_string(),
        id: Some(id),
        ty: Type::Float(FloatTy::F64),
        size: None,
        init: Some(init),
    })
}

fn validate_no_user_calls(b: &Block) -> Result<(), AdError> {
    struct V(Option<(String, Span)>);
    impl Visitor for V {
        fn visit_expr(&mut self, e: &Expr) {
            if let ExprKind::Call {
                callee: Callee::Func(n),
                ..
            } = &e.kind
            {
                if self.0.is_none() {
                    self.0 = Some((n.clone(), e.span));
                }
            }
            walk_expr(self, e);
        }
    }
    let mut v = V(None);
    v.visit_block(b);
    match v.0 {
        Some((name, span)) => Err(AdError::UserCall { name, span }),
        None => Ok(()),
    }
}

fn find_return(s: &Stmt) -> Option<Span> {
    struct V(Option<Span>);
    impl Visitor for V {
        fn visit_stmt(&mut self, s: &Stmt) {
            if matches!(s.kind, StmtKind::Return(_)) && self.0.is_none() {
                self.0 = Some(s.span);
            }
            chef_ir::visit::walk_stmt(self, s);
        }
    }
    let mut v = V(None);
    v.visit_stmt(s);
    v.0
}

/// Rewrites primal [`VarId`]s into the gradient function's ids.
struct Remap<'a> {
    map: &'a [VarId],
    grad: &'a Function,
}

impl Remap<'_> {
    fn remap_ref(&self, v: &mut VarRef) {
        if let Some(id) = v.id {
            let nid = self.map[id.index()];
            v.id = Some(nid);
            v.name = self.grad.var(nid).name.clone();
        }
    }
}

impl MutVisitor for Remap<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        match &mut e.kind {
            ExprKind::Var(v) => self.remap_ref(v),
            ExprKind::Index { base, index } => {
                self.remap_ref(base);
                self.visit_expr_mut(index);
            }
            _ => walk_expr_mut(self, e),
        }
    }

    fn visit_lvalue_mut(&mut self, lv: &mut LValue) {
        match lv {
            LValue::Var(v) => self.remap_ref(v),
            LValue::Index { base, index } => {
                self.remap_ref(base);
                self.visit_expr_mut(index);
            }
        }
    }

    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        if let StmtKind::Decl {
            id: Some(id), name, ..
        } = &mut s.kind
        {
            let nid = self.map[id.index()];
            *id = nid;
            *name = self.grad.var(nid).name.clone();
        }
        chef_ir::visit::walk_stmt_mut(self, s);
    }
}

/// Rewrites compound assignments `v op= e` into `v = v op (e)` so the
/// transformation only sees plain assignments.
pub(crate) fn canonicalize_block(b: &mut Block) {
    struct C;
    impl MutVisitor for C {
        fn visit_stmt_mut(&mut self, s: &mut Stmt) {
            chef_ir::visit::walk_stmt_mut(self, s);
            if let StmtKind::Assign { lhs, op, rhs } = &mut s.kind {
                if let Some(bop) = op.binop() {
                    let lty = rhs
                        .ty
                        .and_then(|rty| lhs_type(lhs).and_then(|l| Type::promote(l, rty)))
                        .or_else(|| lhs_type(lhs));
                    let read = lhs.to_expr(lhs_type(lhs).unwrap_or(Type::Float(FloatTy::F64)));
                    let mut new_rhs = Expr::new(
                        ExprKind::Binary {
                            op: bop,
                            lhs: Box::new(read),
                            rhs: Box::new(rhs.clone()),
                        },
                        rhs.span,
                    );
                    new_rhs.ty = lty;
                    *op = AssignOp::Assign;
                    *rhs = new_rhs;
                }
            }
        }
    }
    fn lhs_type(lv: &LValue) -> Option<Type> {
        // The lvalue type is recoverable from the stored expression types
        // only indirectly; the remapped refs carry no type. We rely on the
        // rhs/promotion fallback above; reading with F64 is sound for the
        // adjoint math (values are exact reads).
        match lv {
            LValue::Var(_) | LValue::Index { .. } => None,
        }
    }
    C.visit_block_mut(b);
}

struct Rev<'a> {
    grad: Function,
    usage: UsageInfo,
    cfg: &'a ReverseConfig,
    ext: &'a mut dyn AdjointExtension,
    adjoint_of: HashMap<VarId, AdjTarget>,
    hoisted: Vec<Stmt>,
    fresh: usize,
    loop_depth: usize,
    top_level: bool,
}

impl Rev<'_> {
    fn fresh_local(&mut self, base: &str, ty: Type) -> (VarId, String) {
        let name = format!("{base}{}", self.fresh);
        self.fresh += 1;
        let id = self.grad.add_var(name.clone(), ty);
        (id, name)
    }

    fn adjoint_lvalue(&self, lhs: &LValue) -> Option<LValue> {
        let base = lhs.var().id?;
        match (self.adjoint_of.get(&base)?, lhs) {
            (AdjTarget::Scalar(id, name), LValue::Var(_)) => {
                Some(LValue::Var(VarRef::resolved(name.clone(), *id)))
            }
            (AdjTarget::Array(id, name), LValue::Index { index, .. }) => Some(LValue::Index {
                base: VarRef::resolved(name.clone(), *id),
                index: index.clone(),
            }),
            _ => None,
        }
    }

    fn var_type(&self, id: VarId) -> Type {
        self.grad.var(id).ty
    }

    fn lhs_scalar_type(&self, lhs: &LValue) -> Type {
        match lhs {
            LValue::Var(v) => self.var_type(v.vid()),
            LValue::Index { base, .. } => match self.var_type(base.vid()) {
                Type::Array(ElemTy::Float(ft)) => Type::Float(ft),
                Type::Array(ElemTy::Int) => Type::Int,
                other => other,
            },
        }
    }

    fn xform_block(&mut self, b: &Block) -> Result<(Vec<Stmt>, Vec<Stmt>), AdError> {
        let mut fwd = Vec::new();
        let mut per_stmt_bwd: Vec<Vec<Stmt>> = Vec::new();
        for s in &b.stmts {
            let (f, bw) = self.xform_stmt(s)?;
            fwd.extend(f);
            per_stmt_bwd.push(bw);
        }
        let mut bwd = Vec::new();
        for bw in per_stmt_bwd.into_iter().rev() {
            bwd.extend(bw);
        }
        Ok((fwd, bwd))
    }

    fn xform_stmt(&mut self, s: &Stmt) -> Result<(Vec<Stmt>, Vec<Stmt>), AdError> {
        match &s.kind {
            StmtKind::Decl {
                id,
                size: Some(size),
                ty,
                name,
                ..
            } => {
                if !self.top_level || self.loop_depth > 0 {
                    return Err(AdError::NestedArrayDecl { span: s.span });
                }
                let id = id.expect("remapped");
                let mut fwd = vec![Stmt::synth(StmtKind::Decl {
                    name: name.clone(),
                    id: Some(id),
                    ty: *ty,
                    size: Some(size.clone()),
                    init: None,
                })];
                if let Some(AdjTarget::Array(did, dname)) = self.adjoint_of.get(&id).cloned() {
                    fwd.push(Stmt::synth(StmtKind::Decl {
                        name: dname,
                        id: Some(did),
                        ty: Type::Array(ElemTy::Float(FloatTy::F64)),
                        size: Some(size.clone()),
                        init: None,
                    }));
                }
                Ok((fwd, vec![]))
            }
            StmtKind::Decl { id, init, .. } => {
                // Scalar decl: the variable is hoisted; an initializer
                // becomes a plain assignment.
                match init {
                    Some(e) => {
                        let id = id.expect("remapped");
                        let lhs = LValue::Var(VarRef::resolved(self.grad.var(id).name.clone(), id));
                        self.xform_assign(&lhs, e, s.span)
                    }
                    None => Ok((vec![], vec![])),
                }
            }
            StmtKind::Assign { lhs, op, rhs } => {
                debug_assert_eq!(*op, AssignOp::Assign, "canonicalized");
                self.xform_assign(lhs, rhs, s.span)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let (cid, cname) = self.fresh_local("_cond", Type::Bool);
                self.hoisted.push(decl_stmt(&self.grad, cid, None));
                let saved_top = self.top_level;
                self.top_level = false;
                let (tf, tb) = self.xform_block(then_branch)?;
                let (ef, eb) = match else_branch {
                    Some(eb) => self.xform_block(eb)?,
                    None => (vec![], vec![]),
                };
                self.top_level = saved_top;
                let cvar = |ty| Expr::var(&cname, cid, ty);
                // The condition is pushed *after* the taken branch has
                // executed so it sits above the branch body's own pushes —
                // the backward sweep must pop it first to know which
                // branch to unwind (LIFO discipline of Fig. 2).
                let fwd = vec![
                    Stmt::synth(StmtKind::Assign {
                        lhs: LValue::Var(VarRef::resolved(cname.clone(), cid)),
                        op: AssignOp::Assign,
                        rhs: cond.clone(),
                    }),
                    Stmt::synth(StmtKind::If {
                        cond: cvar(Type::Bool),
                        then_branch: Block::of(tf),
                        else_branch: Some(Block::of(ef)),
                    }),
                    Stmt::synth(StmtKind::TapePush(cvar(Type::Bool))),
                ];
                let bwd = vec![
                    Stmt::synth(StmtKind::TapePop(LValue::Var(VarRef::resolved(
                        cname.clone(),
                        cid,
                    )))),
                    Stmt::synth(StmtKind::If {
                        cond: cvar(Type::Bool),
                        then_branch: Block::of(tb),
                        else_branch: Some(Block::of(eb)),
                    }),
                ];
                Ok((fwd, bwd))
            }
            StmtKind::While { cond, body } => {
                self.xform_loop(None, cond.clone(), None, body, s.span)
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let cond = cond
                    .clone()
                    .unwrap_or_else(|| Expr::typed(ExprKind::BoolLit(true), Type::Bool));
                self.xform_loop(init.as_deref(), cond, step.as_deref(), body, s.span)
            }
            StmtKind::Block(b) => {
                let saved_top = self.top_level;
                self.top_level = false;
                let r = self.xform_block(b);
                self.top_level = saved_top;
                r
            }
            StmtKind::ExprStmt(e) => {
                // Pure expression statement: keep in the forward sweep for
                // fidelity; contributes nothing to the adjoint.
                Ok((vec![Stmt::synth(StmtKind::ExprStmt(e.clone()))], vec![]))
            }
            StmtKind::Return(_) => Err(AdError::EarlyReturn { span: s.span }),
            StmtKind::TapePush(_) | StmtKind::TapePop(_) => Err(AdError::Unsupported {
                msg: "tape ops in primal".into(),
                span: s.span,
            }),
        }
    }

    /// The generic loop transformation (correct for all loop shapes):
    ///
    /// ```text
    /// fwd:  fwd(init); _cnt = 0;
    ///       while (cond) { fwd(body); fwd(step); _cnt = _cnt + 1; }
    ///       __tape_push(_cnt);
    /// bwd:  __tape_pop(_cnt);
    ///       for (_j = 0; _j < _cnt; _j = _j + 1) { bwd(step); bwd(body) }
    ///       bwd(init);
    /// ```
    ///
    /// Per-iteration state (including induction variables) is restored by
    /// the ordinary push/pop discipline of the body/step assignments —
    /// assignments inside loops always record (see `UsageInfo`).
    fn xform_loop(
        &mut self,
        init: Option<&Stmt>,
        cond: Expr,
        step: Option<&Stmt>,
        body: &Block,
        _span: Span,
    ) -> Result<(Vec<Stmt>, Vec<Stmt>), AdError> {
        let (init_fwd, init_bwd) = match init {
            Some(i) => self.xform_stmt(i)?,
            None => (vec![], vec![]),
        };
        self.loop_depth += 1;
        let saved_top = self.top_level;
        self.top_level = false;
        let (mut body_fwd, body_bwd) = self.xform_block(body)?;
        let (step_fwd, step_bwd) = match step {
            Some(st) => self.xform_stmt(st)?,
            None => (vec![], vec![]),
        };
        self.top_level = saved_top;
        self.loop_depth -= 1;

        let (cnt_id, cnt_name) = self.fresh_local("_cnt", Type::Int);
        self.hoisted.push(decl_stmt(&self.grad, cnt_id, None));
        let cnt_lv = || LValue::Var(VarRef::resolved(cnt_name.clone(), cnt_id));
        let cnt_rd = || Expr::var(&cnt_name, cnt_id, Type::Int);

        body_fwd.extend(step_fwd);
        body_fwd.push(Stmt::synth(StmtKind::Assign {
            lhs: cnt_lv(),
            op: AssignOp::Assign,
            rhs: Expr::add(cnt_rd(), Expr::ilit(1)),
        }));

        let mut fwd = init_fwd;
        fwd.push(Stmt::synth(StmtKind::Assign {
            lhs: cnt_lv(),
            op: AssignOp::Assign,
            rhs: Expr::ilit(0),
        }));
        fwd.push(Stmt::synth(StmtKind::While {
            cond,
            body: Block::of(body_fwd),
        }));
        fwd.push(Stmt::synth(StmtKind::TapePush(cnt_rd())));

        let (j_id, j_name) = self.fresh_local("_j", Type::Int);
        let j_rd = || Expr::var(&j_name, j_id, Type::Int);
        let mut rev_body = step_bwd;
        rev_body.extend(body_bwd);
        let mut bwd = vec![Stmt::synth(StmtKind::TapePop(cnt_lv()))];
        bwd.push(Stmt::synth(StmtKind::For {
            init: Some(Box::new(Stmt::synth(StmtKind::Decl {
                name: j_name.clone(),
                id: Some(j_id),
                ty: Type::Int,
                size: None,
                init: Some(Expr::ilit(0)),
            }))),
            cond: Some(Expr::binary(BinOp::Lt, j_rd(), cnt_rd())),
            step: Some(Box::new(Stmt::synth(StmtKind::Assign {
                lhs: LValue::Var(VarRef::resolved(j_name.clone(), j_id)),
                op: AssignOp::Assign,
                rhs: Expr::add(j_rd(), Expr::ilit(1)),
            }))),
            body: Block::of(rev_body),
        }));
        bwd.extend(init_bwd);
        Ok((fwd, bwd))
    }

    fn xform_assign(
        &mut self,
        lhs: &LValue,
        rhs: &Expr,
        span: Span,
    ) -> Result<(Vec<Stmt>, Vec<Stmt>), AdError> {
        let target = lhs.var().vid();
        let lhs_ty = self.lhs_scalar_type(lhs);
        let mut self_reads = reads_of(rhs);
        if let LValue::Index { index, .. } = lhs {
            self_reads.extend(reads_of(index));
        }
        let reads_self = self_reads.contains(&target) || matches!(lhs, LValue::Index { .. });
        let needs_push = if self.cfg.tbr {
            self.usage
                .needs_push(target, reads_self, self.loop_depth > 0)
        } else {
            true
        };

        let mut fwd = Vec::new();
        if needs_push {
            fwd.push(Stmt::synth(StmtKind::TapePush(lhs.to_expr(lhs_ty))));
        }
        fwd.push(Stmt::synth(StmtKind::Assign {
            lhs: lhs.clone(),
            op: AssignOp::Assign,
            rhs: rhs.clone(),
        }));

        let mut bwd = Vec::new();
        let diff = is_diff(lhs_ty) && self.adjoint_lvalue(lhs).is_some();
        if diff {
            let adj_lv = self.adjoint_lvalue(lhs).expect("checked above");
            let adj_read = adj_lv.to_expr(Type::Float(FloatTy::F64));
            // (a) extension hook — sees the post-assignment value and the
            //     un-redistributed adjoint.
            let prec = match lhs_ty {
                Type::Float(ft) => ft,
                _ => FloatTy::F64,
            };
            let mut ctx = AssignCtx {
                grad: &mut self.grad,
                hoisted: &mut self.hoisted,
                var_name: lhs.var().name.clone(),
                var: target,
                value: lhs.to_expr(lhs_ty),
                adjoint: adj_read.clone(),
                target_prec: prec,
                is_element: matches!(lhs, LValue::Index { .. }),
                in_loop: self.loop_depth > 0,
                span,
            };
            bwd.extend(self.ext.on_assign(&mut ctx));
            // (b) capture and reset the adjoint.
            let (t_id, t_name) = self.fresh_local("_r", Type::Float(FloatTy::F64));
            self.hoisted.push(decl_stmt(&self.grad, t_id, None));
            bwd.push(Stmt::synth(StmtKind::Assign {
                lhs: LValue::Var(VarRef::resolved(t_name.clone(), t_id)),
                op: AssignOp::Assign,
                rhs: adj_read,
            }));
            bwd.push(Stmt::synth(StmtKind::Assign {
                lhs: adj_lv,
                op: AssignOp::Assign,
                rhs: Expr::flit(0.0),
            }));
            // (c) restore the overwritten value.
            if needs_push {
                bwd.push(Stmt::synth(StmtKind::TapePop(lhs.clone())));
            }
            // (d) redistribute.
            let seed = Expr::var(&t_name, t_id, Type::Float(FloatTy::F64));
            self.rev_expr(rhs, seed, &mut bwd)?;
        } else if needs_push {
            bwd.push(Stmt::synth(StmtKind::TapePop(lhs.clone())));
        }
        Ok((fwd, bwd))
    }

    /// Emits adjoint updates for every differentiable read in `e`, seeded
    /// with `seed` (rule S2's `Expr` derivative emission).
    fn rev_expr(&mut self, e: &Expr, seed: Expr, out: &mut Vec<Stmt>) -> Result<(), AdError> {
        if !has_diff_reads(e, &self.grad) {
            return Ok(());
        }
        match &e.kind {
            ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_) => Ok(()),
            ExprKind::Var(v) => {
                if let Some(AdjTarget::Scalar(id, name)) = self.adjoint_of.get(&v.vid()).cloned() {
                    out.push(Stmt::synth(StmtKind::Assign {
                        lhs: LValue::Var(VarRef::resolved(name, id)),
                        op: AssignOp::AddAssign,
                        rhs: seed,
                    }));
                }
                Ok(())
            }
            ExprKind::Index { base, index } => {
                if let Some(AdjTarget::Array(id, name)) = self.adjoint_of.get(&base.vid()).cloned()
                {
                    out.push(Stmt::synth(StmtKind::Assign {
                        lhs: LValue::Index {
                            base: VarRef::resolved(name, id),
                            index: (**index).clone(),
                        },
                        op: AssignOp::AddAssign,
                        rhs: seed,
                    }));
                }
                Ok(())
            }
            ExprKind::Unary {
                op: UnOp::Neg,
                operand,
            } => self.rev_expr(operand, Expr::neg(seed), out),
            ExprKind::Unary { op: UnOp::Not, .. } => Ok(()),
            ExprKind::Binary { op, lhs, rhs } => match op {
                BinOp::Add => {
                    self.rev_expr(lhs, seed.clone(), out)?;
                    self.rev_expr(rhs, seed, out)
                }
                BinOp::Sub => {
                    self.rev_expr(lhs, seed.clone(), out)?;
                    self.rev_expr(rhs, Expr::neg(seed), out)
                }
                BinOp::Mul => {
                    if has_diff_reads(lhs, &self.grad) {
                        self.rev_expr(lhs, Expr::mul(seed.clone(), (**rhs).clone()), out)?;
                    }
                    if has_diff_reads(rhs, &self.grad) {
                        self.rev_expr(rhs, Expr::mul(seed, (**lhs).clone()), out)?;
                    }
                    Ok(())
                }
                BinOp::Div => {
                    if has_diff_reads(lhs, &self.grad) {
                        self.rev_expr(lhs, Expr::div(seed.clone(), (**rhs).clone()), out)?;
                    }
                    if has_diff_reads(rhs, &self.grad) {
                        // d/db (a/b) = -a/b²
                        let b2 = Expr::mul((**rhs).clone(), (**rhs).clone());
                        let s = Expr::neg(Expr::div(Expr::mul(seed, (**lhs).clone()), b2));
                        self.rev_expr(rhs, s, out)?;
                    }
                    Ok(())
                }
                // Comparisons/logic yield no float flow.
                _ => Ok(()),
            },
            ExprKind::Call {
                callee: Callee::Intrinsic(i),
                args,
            } => {
                match i {
                    Intrinsic::Fabs => {
                        // Branch on sign (a.e. derivative ±1).
                        let a = &args[0];
                        let mut pos = Vec::new();
                        self.rev_expr(a, seed.clone(), &mut pos)?;
                        let mut neg = Vec::new();
                        self.rev_expr(a, Expr::neg(seed), &mut neg)?;
                        out.push(Stmt::synth(StmtKind::If {
                            cond: Expr::binary(BinOp::Ge, a.clone(), Expr::flit(0.0)),
                            then_branch: Block::of(pos),
                            else_branch: Some(Block::of(neg)),
                        }));
                        Ok(())
                    }
                    Intrinsic::Fmin | Intrinsic::Fmax => {
                        let (a, b) = (&args[0], &args[1]);
                        let mut first = Vec::new();
                        self.rev_expr(a, seed.clone(), &mut first)?;
                        let mut second = Vec::new();
                        self.rev_expr(b, seed, &mut second)?;
                        out.push(Stmt::synth(StmtKind::If {
                            cond: min_max_select(*i, a, b),
                            then_branch: Block::of(first),
                            else_branch: Some(Block::of(second)),
                        }));
                        Ok(())
                    }
                    Intrinsic::Pow => {
                        let (da, db) = pow_derivatives(&args[0], &args[1]);
                        if has_diff_reads(&args[0], &self.grad) {
                            self.rev_expr(&args[0], Expr::mul(seed.clone(), da), out)?;
                        }
                        if has_diff_reads(&args[1], &self.grad) {
                            self.rev_expr(&args[1], Expr::mul(seed, db), out)?;
                        }
                        Ok(())
                    }
                    _ => {
                        debug_assert_eq!(i.arity(), 1);
                        match unary_derivative(*i, &args[0]) {
                            Some(d) => self.rev_expr(&args[0], Expr::mul(seed, d), out),
                            None => Ok(()), // floor/ceil: zero derivative
                        }
                    }
                }
            }
            ExprKind::Call {
                callee: Callee::Func(name),
                ..
            } => Err(AdError::UserCall {
                name: name.clone(),
                span: e.span,
            }),
            ExprKind::Cast { ty, expr } => match ty {
                Type::Float(_) => self.rev_expr(expr, seed, out),
                _ => Ok(()),
            },
        }
    }
}

/// `true` if the expression reads any float variable or element.
fn has_diff_reads(e: &Expr, grad: &Function) -> bool {
    struct V<'a> {
        grad: &'a Function,
        found: bool,
    }
    impl Visitor for V<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Var(v) => {
                    if let Some(id) = v.id {
                        if is_diff(self.grad.var(id).ty) {
                            self.found = true;
                        }
                    }
                }
                ExprKind::Index { base, index } => {
                    if let Some(id) = base.id {
                        if is_diff(self.grad.var(id).ty) {
                            self.found = true;
                        }
                    }
                    self.visit_expr(index);
                }
                ExprKind::Cast { ty: Type::Int, .. } => {
                    // Float reads truncated to int carry no derivative.
                }
                _ => walk_expr(self, e),
            }
        }
    }
    let mut v = V { grad, found: false };
    v.visit_expr(e);
    v.found
}

/// Quick sanity helper used by tests: all variables assigned anywhere in
/// the generated body (exported for white-box assertions).
pub fn generated_assigned_vars(f: &Function) -> HashSet<VarId> {
    assigned_in(&f.body)
}
