//! Dataflow analyses feeding the reverse-mode transformation.
//!
//! * **Activity / differentiability** — the paper's `isDiff` predicate
//!   (rule S2): a location participates in derivative propagation iff it
//!   is float-typed.
//! * **To-be-recorded (TBR)** — decides which assignments must push the
//!   target's old value onto the tape (`Push(out(Li))` of Fig. 2). Clad's
//!   TBR analysis is what keeps the CHEF-FP tape small compared to a
//!   runtime-taping tool that records every operation; this module
//!   implements a sound, conservative version:
//!
//!   an assignment to `v` needs a push **unless** all of the following
//!   hold — `v` is assigned exactly once in the function, the assignment
//!   is not inside any loop, `v` does not appear on its own right-hand
//!   side, and no statement at an earlier position reads `v` (an earlier
//!   reader's adjoint runs *later* in the backward sweep and needs the
//!   pre-assignment value).

use chef_ir::ast::*;
use chef_ir::visit::{walk_expr, Visitor};
use std::collections::{HashMap, HashSet};

/// Read/write facts about one function body, positions in forward
/// execution (DFS) order.
#[derive(Debug, Default)]
pub struct UsageInfo {
    /// First position at which each variable is read.
    pub first_read: HashMap<VarId, usize>,
    /// First position at which each variable is assigned.
    pub first_assign: HashMap<VarId, usize>,
    /// Number of assignments to each variable (loop bodies count once
    /// statically; `in_loop` captures the dynamic repetition).
    pub assign_count: HashMap<VarId, usize>,
    /// Variables assigned anywhere inside a loop body.
    pub assigned_in_loop: HashSet<VarId>,
    /// Total number of positions (statements visited).
    pub positions: usize,
}

impl UsageInfo {
    /// Analyzes a function body.
    pub fn analyze(body: &Block) -> UsageInfo {
        let mut a = Analyzer {
            info: UsageInfo::default(),
            pos: 0,
            loop_depth: 0,
        };
        a.visit_block(body);
        a.info.positions = a.pos;
        a.info
    }

    /// Whether an assignment to `target` (which `reads_self` if the
    /// variable occurs in its own RHS or index expression) must record the
    /// old value. Position-free and sound: a push is skipped only for
    /// loop-free single assignments whose target has no reader at an
    /// earlier position (an earlier reader's adjoint runs *later* in the
    /// backward sweep and would observe the wrong value).
    pub fn needs_push(&self, target: VarId, reads_self: bool, in_loop: bool) -> bool {
        if in_loop || self.assigned_in_loop.contains(&target) {
            return true;
        }
        if reads_self {
            return true;
        }
        if self.assign_count.get(&target).copied().unwrap_or(0) > 1 {
            return true;
        }
        match (self.first_read.get(&target), self.first_assign.get(&target)) {
            (Some(&read), Some(&assign)) => read <= assign,
            (None, _) => false,
            (Some(_), None) => true,
        }
    }
}

struct Analyzer {
    info: UsageInfo,
    pos: usize,
    loop_depth: usize,
}

impl Analyzer {
    fn note_read(&mut self, id: VarId) {
        self.info.first_read.entry(id).or_insert(self.pos);
    }

    fn note_assign(&mut self, id: VarId) {
        *self.info.assign_count.entry(id).or_insert(0) += 1;
        self.info.first_assign.entry(id).or_insert(self.pos);
        if self.loop_depth > 0 {
            self.info.assigned_in_loop.insert(id);
        }
    }
}

impl Visitor for Analyzer {
    fn visit_expr(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Var(v) => {
                if let Some(id) = v.id {
                    self.note_read(id);
                }
            }
            ExprKind::Index { base, index } => {
                if let Some(id) = base.id {
                    self.note_read(id);
                }
                self.visit_expr(index);
            }
            _ => walk_expr(self, e),
        }
    }

    fn visit_stmt(&mut self, s: &Stmt) {
        self.pos += 1;
        match &s.kind {
            StmtKind::Assign { lhs, op, rhs } => {
                // Compound assignments read the target.
                if op.binop().is_some() {
                    if let Some(id) = lhs.var().id {
                        self.note_read(id);
                    }
                }
                if let LValue::Index { base, index } = lhs {
                    // Element writes leave other elements intact: reading
                    // any element later still needs the array restored, so
                    // treat the write as both a read and a write of the
                    // array for TBR purposes.
                    if let Some(id) = base.id {
                        self.note_read(id);
                    }
                    self.visit_expr(index);
                }
                self.visit_expr(rhs);
                if let Some(id) = lhs.var().id {
                    self.note_assign(id);
                }
            }
            StmtKind::Decl { id, init, size, .. } => {
                if let Some(e) = size {
                    self.visit_expr(e);
                }
                if let Some(e) = init {
                    self.visit_expr(e);
                }
                if let (Some(id), Some(_)) = (id, init) {
                    self.note_assign(*id);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                if let Some(i) = init {
                    self.visit_stmt(i);
                }
                self.loop_depth += 1;
                if let Some(c) = cond {
                    self.visit_expr(c);
                }
                self.visit_block(body);
                if let Some(st) = step {
                    self.visit_stmt(st);
                }
                self.loop_depth -= 1;
            }
            StmtKind::While { cond, body } => {
                self.loop_depth += 1;
                self.visit_expr(cond);
                self.visit_block(body);
                self.loop_depth -= 1;
            }
            _ => chef_ir::visit::walk_stmt(self, s),
        }
    }
}

/// The `isDiff` predicate of rule S2: float scalars and float arrays
/// carry derivatives; ints and bools do not.
pub fn is_diff(ty: chef_ir::types::Type) -> bool {
    ty.is_differentiable()
}

/// Collects the set of variables assigned anywhere in a block (used for
/// canonical-loop validation).
pub fn assigned_in(b: &Block) -> HashSet<VarId> {
    struct W(HashSet<VarId>);
    impl Visitor for W {
        fn visit_stmt(&mut self, s: &Stmt) {
            match &s.kind {
                StmtKind::Assign { lhs, .. } | StmtKind::TapePop(lhs) => {
                    if let Some(id) = lhs.var().id {
                        self.0.insert(id);
                    }
                }
                StmtKind::Decl { id: Some(id), .. } => {
                    self.0.insert(*id);
                }
                _ => {}
            }
            chef_ir::visit::walk_stmt(self, s);
        }
    }
    let mut w = W(HashSet::new());
    w.visit_block(b);
    w.0
}

/// Collects the variables read by an expression.
pub fn reads_of(e: &Expr) -> HashSet<VarId> {
    let mut v = Vec::new();
    chef_ir::visit::vars_read_in_expr(e, &mut v);
    v.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::parser::parse_program;
    use chef_ir::typeck::check_program;

    fn analyze(src: &str) -> (UsageInfo, Function) {
        let mut p = parse_program(src).unwrap();
        check_program(&mut p).unwrap();
        let f = p.functions.pop().unwrap();
        (UsageInfo::analyze(&f.body), f)
    }

    fn vid(f: &Function, name: &str) -> VarId {
        f.vars_iter()
            .find(|(_, v)| v.name == name)
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn single_assignment_never_read_before_skips_push() {
        let (info, f) = analyze("double f(double x) { double z; z = x * x; return z; }");
        let z = vid(&f, "z");
        // z assigned once at pos 2 (decl pos 1 has no init), read at pos 3.
        let assigned_once = info.assign_count[&z] == 1;
        assert!(assigned_once);
        assert!(!info.needs_push(z, false, false));
    }

    #[test]
    fn self_reference_forces_push() {
        let (info, f) = analyze("double f(double x) { double z = x; z = z * 2.0; return z; }");
        let z = vid(&f, "z");
        assert!(info.needs_push(z, true, false));
    }

    #[test]
    fn reassignment_forces_push() {
        let (info, f) = analyze("double f(double x) { double z = x; z = x * 2.0; return z; }");
        let z = vid(&f, "z");
        assert!(info.assign_count[&z] > 1);
        assert!(info.needs_push(z, false, false));
    }

    #[test]
    fn earlier_reader_forces_push() {
        let (info, f) = analyze(
            "double f(double x) { double y = x * x; double z = y + 1.0; y = 0.5; return z * y; }",
        );
        let y = vid(&f, "y");
        // y is assigned twice → push anyway; but the key fact is that the
        // read of y at the z-decl precedes the reassignment.
        assert!(info.needs_push(y, false, false));
    }

    #[test]
    fn loop_assignments_always_push() {
        let (info, f) = analyze(
            "double f(int n) { double s = 0.0; for (int i = 0; i < n; i++) { s += 1.0; } return s; }",
        );
        let s = vid(&f, "s");
        assert!(info.assigned_in_loop.contains(&s));
        assert!(info.needs_push(s, false, true));
        assert!(info.needs_push(s, false, false)); // sticky via the set
    }

    #[test]
    fn is_diff_matches_types() {
        use chef_ir::types::{ElemTy, FloatTy, Type};
        assert!(is_diff(Type::Float(FloatTy::F32)));
        assert!(is_diff(Type::Array(ElemTy::Float(FloatTy::F64))));
        assert!(!is_diff(Type::Int));
        assert!(!is_diff(Type::Array(ElemTy::Int)));
    }
}
