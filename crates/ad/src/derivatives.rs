//! Symbolic derivative rules for KernelC intrinsics.
//!
//! Given the argument expressions of an intrinsic call, these builders
//! produce the KernelC expression for the partial derivative with respect
//! to each argument. They are shared by the reverse transformation (which
//! multiplies them into seeds) and the forward transformation (which
//! multiplies them into tangents).
//!
//! Non-differentiable points follow the almost-everywhere convention used
//! by AD tools: `fabs' = sign` (0 chosen at 0 via the `x >= 0` branch),
//! `floor' = ceil' = 0`, and `fmin`/`fmax` differentiate into the selected
//! branch (handled with an `if` in the caller, see
//! [`min_max_select`]).

use chef_ir::ast::{BinOp, Expr, ExprKind, Intrinsic};
use chef_ir::types::{FloatTy, Type};

/// `2/sqrt(pi)`, the prefactor of `erf'`.
const TWO_OVER_SQRT_PI: f64 = 1.128_379_167_095_512_6;
/// `1/sqrt(2*pi)`, the standard normal density prefactor.
const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
/// `ln 2`.
const LN_2: f64 = std::f64::consts::LN_2;

fn f64ty() -> Type {
    Type::Float(FloatTy::F64)
}

/// Derivative of a unary intrinsic at `a` (an expression that reads the
/// argument value in the current program state).
///
/// Returns `None` for intrinsics with zero derivative almost everywhere
/// (`floor`, `ceil`) so callers can skip the adjoint update entirely.
pub fn unary_derivative(i: Intrinsic, a: &Expr) -> Option<Expr> {
    let a = || {
        let mut e = a.clone();
        // Derivative arithmetic happens in f64 regardless of the primal's
        // storage precision; adjoints are full precision.
        e.ty = Some(f64ty());
        e
    };
    Some(match i {
        Intrinsic::Sin => Expr::call(Intrinsic::Cos, vec![a()]),
        Intrinsic::Cos => Expr::neg(Expr::call(Intrinsic::Sin, vec![a()])),
        Intrinsic::Tan => {
            // 1 / cos(a)^2
            let c = Expr::call(Intrinsic::Cos, vec![a()]);
            Expr::div(Expr::flit(1.0), Expr::mul(c.clone(), c))
        }
        Intrinsic::Exp => Expr::call(Intrinsic::Exp, vec![a()]),
        Intrinsic::Log => Expr::div(Expr::flit(1.0), a()),
        Intrinsic::Exp2 => Expr::mul(Expr::call(Intrinsic::Exp2, vec![a()]), Expr::flit(LN_2)),
        Intrinsic::Log2 => Expr::div(Expr::flit(1.0), Expr::mul(a(), Expr::flit(LN_2))),
        Intrinsic::Sqrt => Expr::div(Expr::flit(0.5), Expr::call(Intrinsic::Sqrt, vec![a()])),
        Intrinsic::Erf => {
            // 2/sqrt(pi) * exp(-a^2)
            let sq = Expr::mul(a(), a());
            Expr::mul(
                Expr::flit(TWO_OVER_SQRT_PI),
                Expr::call(Intrinsic::Exp, vec![Expr::neg(sq)]),
            )
        }
        Intrinsic::Erfc => {
            let sq = Expr::mul(a(), a());
            Expr::neg(Expr::mul(
                Expr::flit(TWO_OVER_SQRT_PI),
                Expr::call(Intrinsic::Exp, vec![Expr::neg(sq)]),
            ))
        }
        Intrinsic::NormCdf => {
            // φ(a) = exp(-a²/2)/√(2π)
            let half_sq = Expr::mul(Expr::flit(0.5), Expr::mul(a(), a()));
            Expr::mul(
                Expr::flit(INV_SQRT_2PI),
                Expr::call(Intrinsic::Exp, vec![Expr::neg(half_sq)]),
            )
        }
        Intrinsic::Tanh => {
            // 1 - tanh(a)^2
            let t = Expr::call(Intrinsic::Tanh, vec![a()]);
            Expr::sub(Expr::flit(1.0), Expr::mul(t.clone(), t))
        }
        Intrinsic::Sinh => Expr::call(Intrinsic::Cosh, vec![a()]),
        Intrinsic::Cosh => Expr::call(Intrinsic::Sinh, vec![a()]),
        Intrinsic::Atan => {
            // 1 / (1 + a^2)
            Expr::div(
                Expr::flit(1.0),
                Expr::add(Expr::flit(1.0), Expr::mul(a(), a())),
            )
        }
        Intrinsic::Fabs => {
            // sign(a): handled by callers as a branch would be cleaner,
            // but an expression form keeps single-statement updates:
            // a >= 0 ? 1 : -1 has no ternary in KernelC, so we use
            // the smooth-free trick  fabs(a)/a  is invalid at 0; instead
            // callers should use `fabs_sign` below. For the generic path
            // we return `a / fabs(a)` guarded by callers for a != 0 being
            // almost-everywhere.
            Expr::div(a(), Expr::call(Intrinsic::Fabs, vec![a()]))
        }
        Intrinsic::Floor | Intrinsic::Ceil => return None,
        // FastApprox functions differentiate through their exact
        // counterparts (the approximation error is treated as a
        // perturbation, not as part of the derivative — same convention
        // ADAPT uses for approximate library calls).
        Intrinsic::FastExp | Intrinsic::FasterExp => Expr::call(Intrinsic::Exp, vec![a()]),
        Intrinsic::FastLog => Expr::div(Expr::flit(1.0), a()),
        Intrinsic::FastSqrt => Expr::div(Expr::flit(0.5), Expr::call(Intrinsic::Sqrt, vec![a()])),
        Intrinsic::FastNormCdf => {
            let half_sq = Expr::mul(Expr::flit(0.5), Expr::mul(a(), a()));
            Expr::mul(
                Expr::flit(INV_SQRT_2PI),
                Expr::call(Intrinsic::Exp, vec![Expr::neg(half_sq)]),
            )
        }
        Intrinsic::Pow | Intrinsic::Fmin | Intrinsic::Fmax => {
            panic!("{} is binary; use binary_derivatives", i.name())
        }
    })
}

/// Partial derivatives `(∂/∂a, ∂/∂b)` of `pow(a, b)`:
/// `(b·a^(b−1), a^b·ln a)`.
pub fn pow_derivatives(a: &Expr, b: &Expr) -> (Expr, Expr) {
    let mut af = a.clone();
    af.ty = Some(f64ty());
    let mut bf = b.clone();
    bf.ty = Some(f64ty());
    let da = Expr::mul(
        bf.clone(),
        Expr::call(
            Intrinsic::Pow,
            vec![af.clone(), Expr::sub(bf.clone(), Expr::flit(1.0))],
        ),
    );
    let db = Expr::mul(
        Expr::call(Intrinsic::Pow, vec![af.clone(), bf]),
        Expr::call(Intrinsic::Log, vec![af]),
    );
    (da, db)
}

/// The select condition for `fmin`/`fmax` reverse flow: returns the
/// boolean expression that is `true` when the *first* argument is the one
/// selected (ties go to the first argument, matching
/// `f64::min`/`f64::max` adjoint conventions closely enough a.e.).
pub fn min_max_select(i: Intrinsic, a: &Expr, b: &Expr) -> Expr {
    let op = match i {
        Intrinsic::Fmin => BinOp::Le,
        Intrinsic::Fmax => BinOp::Ge,
        other => panic!("{} is not fmin/fmax", other.name()),
    };
    Expr::binary(op, a.clone(), b.clone())
}

/// `true` when an expression is a literal (used to prune trivial adjoint
/// updates like `d += seed * 0`).
pub fn is_zero_literal(e: &Expr) -> bool {
    matches!(e.kind, ExprKind::FloatLit(v) if v == 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chef_ir::ast::VarId;
    use chef_ir::printer::print_expr;

    fn x() -> Expr {
        Expr::var("x", VarId(0), f64ty())
    }

    #[test]
    fn simple_rules_print_correctly() {
        assert_eq!(
            print_expr(&unary_derivative(Intrinsic::Sin, &x()).unwrap()),
            "cos(x)"
        );
        assert_eq!(
            print_expr(&unary_derivative(Intrinsic::Exp, &x()).unwrap()),
            "exp(x)"
        );
        assert_eq!(
            print_expr(&unary_derivative(Intrinsic::Log, &x()).unwrap()),
            "1.0 / x"
        );
        assert_eq!(
            print_expr(&unary_derivative(Intrinsic::Sqrt, &x()).unwrap()),
            "0.5 / sqrt(x)"
        );
    }

    #[test]
    fn floor_ceil_have_zero_derivative() {
        assert!(unary_derivative(Intrinsic::Floor, &x()).is_none());
        assert!(unary_derivative(Intrinsic::Ceil, &x()).is_none());
    }

    #[test]
    fn pow_rule() {
        let (da, db) = pow_derivatives(&x(), &Expr::flit(3.0));
        assert_eq!(print_expr(&da), "3.0 * pow(x, 3.0 - 1.0)");
        assert_eq!(print_expr(&db), "pow(x, 3.0) * log(x)");
    }

    #[test]
    fn minmax_select_conditions() {
        let s = min_max_select(Intrinsic::Fmin, &x(), &Expr::flit(2.0));
        assert_eq!(print_expr(&s), "x <= 2.0");
        let s = min_max_select(Intrinsic::Fmax, &x(), &Expr::flit(2.0));
        assert_eq!(print_expr(&s), "x >= 2.0");
    }

    #[test]
    fn every_unary_intrinsic_has_a_rule_or_zero() {
        for i in Intrinsic::ALL {
            if i.arity() == 1 {
                // Must not panic.
                let _ = unary_derivative(i, &x());
            }
        }
    }
}
