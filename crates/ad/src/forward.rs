//! Forward-mode (tangent/pushforward) source transformation.
//!
//! Generates `double f_dfwd_x(<params>)` computing `∂f/∂x` by propagating
//! tangents alongside the primal — the "pushforward operator" mode of the
//! paper's §II-B. No tape is needed: control flow is preserved verbatim
//! and tangent statements ride along each primal statement.
//!
//! Forward mode is used here as an independent oracle for the reverse
//! transformation (both must agree to rounding error) and for the
//! ablation benchmarks; CHEF-FP itself runs on the adjoint mode, which
//! provides all input sensitivities in one sweep.

use crate::activity::is_diff;
use crate::derivatives::{pow_derivatives, unary_derivative};
use crate::reverse::AdError;
use chef_ir::ast::*;
use chef_ir::span::Span;
use chef_ir::types::{ElemTy, FloatTy, Type};
use chef_ir::visit::{walk_expr_mut, MutVisitor};
use std::collections::HashMap;

/// Differentiates `primal` forward-mode with respect to the parameter
/// named `wrt`.
///
/// Restrictions: checked + inlined primal, float scalar return, `wrt`
/// must be a float scalar parameter, and float *array parameters* are not
/// supported (their tangent storage has no known extent); local float
/// arrays are fine.
pub fn forward_diff(primal: &Function, wrt: &str) -> Result<Function, AdError> {
    if !matches!(primal.ret, Type::Float(_)) {
        return Err(AdError::NonFloatReturn);
    }
    let wrt_id = primal.param_id(wrt).ok_or_else(|| AdError::Unsupported {
        msg: format!("no parameter `{wrt}`"),
        span: Span::DUMMY,
    })?;
    if !matches!(primal.vars[wrt_id.index()].ty, Type::Float(_)) {
        return Err(AdError::Unsupported {
            msg: format!("parameter `{wrt}` is not a float scalar"),
            span: Span::DUMMY,
        });
    }
    for p in &primal.params {
        if matches!(p.ty, Type::Array(ElemTy::Float(_))) {
            return Err(AdError::Unsupported {
                msg: "float array parameters are not supported in forward mode".into(),
                span: p.span,
            });
        }
    }

    let mut out = Function {
        name: format!("{}_dfwd_{}", primal.name, wrt),
        params: primal.params.clone(),
        ret: Type::Float(FloatTy::F64),
        body: Block::empty(),
        span: Span::DUMMY,
        vars: Vec::new(),
    };
    // Vars: params first (same ids), then locals, then tangents.
    let mut map: Vec<VarId> = Vec::new();
    for p in &primal.params {
        let id = out.add_var(p.name.clone(), p.ty);
        out.vars[id.index()].is_param = true;
        map.push(id);
    }
    for (i, p) in out.params.iter_mut().enumerate() {
        p.id = Some(VarId(i as u32));
    }
    let mut hoisted: Vec<Stmt> = Vec::new();
    for (vid, info) in primal.vars_iter() {
        if info.is_param {
            continue;
        }
        let id = out.add_var(info.name.clone(), info.ty);
        map.push(id);
        debug_assert_eq!(map.len() - 1, vid.index());
        match info.ty {
            Type::Array(_) => {} // allocated at its site
            _ => hoisted.push(Stmt::synth(StmtKind::Decl {
                name: info.name.clone(),
                id: Some(id),
                ty: info.ty,
                size: None,
                init: None,
            })),
        }
    }
    // Tangent shadows for every differentiable variable.
    let mut tangent: HashMap<VarId, (VarId, String)> = HashMap::new();
    for (vid, info) in primal.vars_iter() {
        if !is_diff(info.ty) {
            continue;
        }
        let new_id = map[vid.index()];
        let tname = format!("_t_{}", info.name);
        match info.ty {
            Type::Float(_) => {
                let tid = out.add_var(tname.clone(), Type::Float(FloatTy::F64));
                let seed = if vid == wrt_id { 1.0 } else { 0.0 };
                hoisted.push(Stmt::synth(StmtKind::Decl {
                    name: tname.clone(),
                    id: Some(tid),
                    ty: Type::Float(FloatTy::F64),
                    size: None,
                    init: Some(Expr::flit(seed)),
                }));
                tangent.insert(new_id, (tid, tname));
            }
            Type::Array(_) => {
                let tid = out.add_var(tname.clone(), Type::Array(ElemTy::Float(FloatTy::F64)));
                tangent.insert(new_id, (tid, tname));
            }
            _ => unreachable!(),
        }
    }

    // Remap the body.
    let mut body = primal.body.clone();
    let mut remap = RemapIds {
        map: &map,
        names: &out,
    };
    for s in &mut body.stmts {
        remap.visit_stmt_mut(s);
    }
    crate::reverse::canonicalize_block(&mut body);

    let mut fw = Fwd {
        out,
        tangent,
        fresh: 0,
    };
    let mut stmts = hoisted;
    fw.block_into(&body, &mut stmts)?;
    let mut out = fw.out;
    out.body = Block::of(stmts);
    Ok(out)
}

struct RemapIds<'a> {
    map: &'a [VarId],
    names: &'a Function,
}

impl RemapIds<'_> {
    fn fix(&self, v: &mut VarRef) {
        if let Some(id) = v.id {
            let nid = self.map[id.index()];
            v.id = Some(nid);
            v.name = self.names.var(nid).name.clone();
        }
    }
}

impl MutVisitor for RemapIds<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        match &mut e.kind {
            ExprKind::Var(v) => self.fix(v),
            ExprKind::Index { base, index } => {
                self.fix(base);
                self.visit_expr_mut(index);
            }
            _ => walk_expr_mut(self, e),
        }
    }

    fn visit_lvalue_mut(&mut self, lv: &mut LValue) {
        match lv {
            LValue::Var(v) => self.fix(v),
            LValue::Index { base, index } => {
                self.fix(base);
                self.visit_expr_mut(index);
            }
        }
    }

    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        if let StmtKind::Decl {
            id: Some(id), name, ..
        } = &mut s.kind
        {
            let nid = self.map[id.index()];
            *id = nid;
            *name = self.names.var(nid).name.clone();
        }
        chef_ir::visit::walk_stmt_mut(self, s);
    }
}

struct Fwd {
    out: Function,
    tangent: HashMap<VarId, (VarId, String)>,
    fresh: usize,
}

impl Fwd {
    fn fresh_f64(&mut self, base: &str) -> (VarId, String) {
        let name = format!("{base}{}", self.fresh);
        self.fresh += 1;
        let id = self.out.add_var(name.clone(), Type::Float(FloatTy::F64));
        (id, name)
    }

    fn block_into(&mut self, b: &Block, out: &mut Vec<Stmt>) -> Result<(), AdError> {
        for s in &b.stmts {
            self.stmt_into(s, out)?;
        }
        Ok(())
    }

    fn block(&mut self, b: &Block) -> Result<Block, AdError> {
        let mut stmts = Vec::new();
        self.block_into(b, &mut stmts)?;
        Ok(Block::of(stmts))
    }

    fn stmt_into(&mut self, s: &Stmt, out: &mut Vec<Stmt>) -> Result<(), AdError> {
        match &s.kind {
            StmtKind::Decl {
                id,
                size: Some(size),
                ty,
                name,
                ..
            } => {
                let id = id.expect("remapped");
                out.push(Stmt::synth(StmtKind::Decl {
                    name: name.clone(),
                    id: Some(id),
                    ty: *ty,
                    size: Some(size.clone()),
                    init: None,
                }));
                if let Some((tid, tname)) = self.tangent.get(&id).cloned() {
                    out.push(Stmt::synth(StmtKind::Decl {
                        name: tname,
                        id: Some(tid),
                        ty: Type::Array(ElemTy::Float(FloatTy::F64)),
                        size: Some(size.clone()),
                        init: None,
                    }));
                }
                Ok(())
            }
            StmtKind::Decl { id, init, .. } => {
                if let Some(e) = init {
                    let id = id.expect("remapped");
                    let lhs = LValue::Var(VarRef::resolved(self.out.var(id).name.clone(), id));
                    self.assign_into(&lhs, e, out)?;
                }
                Ok(())
            }
            StmtKind::Assign { lhs, op, rhs } => {
                debug_assert_eq!(*op, AssignOp::Assign, "canonicalized");
                self.assign_into(lhs, rhs, out)
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let t = self.block(then_branch)?;
                let e = match else_branch {
                    Some(b) => Some(self.block(b)?),
                    None => None,
                };
                out.push(Stmt::synth(StmtKind::If {
                    cond: cond.clone(),
                    then_branch: t,
                    else_branch: e,
                }));
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let b = self.block(body)?;
                out.push(Stmt::synth(StmtKind::While {
                    cond: cond.clone(),
                    body: b,
                }));
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                let mut pre = Vec::new();
                if let Some(i) = init {
                    self.stmt_into(i, &mut pre)?;
                }
                // The init may have produced tangent statements; keep the
                // loop headerless (while-style) to stay a single construct.
                out.extend(pre);
                let mut b = self.block(body)?;
                if let Some(st) = step {
                    self.stmt_into(st, &mut b.stmts)?;
                }
                let cond = cond
                    .clone()
                    .unwrap_or_else(|| Expr::typed(ExprKind::BoolLit(true), Type::Bool));
                out.push(Stmt::synth(StmtKind::While { cond, body: b }));
                Ok(())
            }
            StmtKind::Return(Some(e)) => {
                let tangent = self.tangent_of(e, out)?;
                out.push(Stmt::synth(StmtKind::Return(Some(tangent))));
                Ok(())
            }
            StmtKind::Return(None) => Err(AdError::MissingTrailingReturn),
            StmtKind::Block(b) => {
                let inner = self.block(b)?;
                out.push(Stmt::synth(StmtKind::Block(inner)));
                Ok(())
            }
            StmtKind::ExprStmt(e) => {
                out.push(Stmt::synth(StmtKind::ExprStmt(e.clone())));
                Ok(())
            }
            StmtKind::TapePush(_) | StmtKind::TapePop(_) => Err(AdError::Unsupported {
                msg: "tape ops in primal".into(),
                span: s.span,
            }),
        }
    }

    fn assign_into(
        &mut self,
        lhs: &LValue,
        rhs: &Expr,
        out: &mut Vec<Stmt>,
    ) -> Result<(), AdError> {
        let target = lhs.var().vid();
        let lhs_ty = self.out.var(target).ty;
        let diff = is_diff(lhs_ty);
        if diff && self.tangent.contains_key(&target) {
            // Tangent first (reads pre-assignment values), then primal,
            // then commit the tangent.
            let te = self.tangent_of(rhs, out)?;
            let (tmp_id, tmp_name) = self.fresh_f64("_tt");
            out.push(Stmt::synth(StmtKind::Decl {
                name: tmp_name.clone(),
                id: Some(tmp_id),
                ty: Type::Float(FloatTy::F64),
                size: None,
                init: Some(te),
            }));
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: lhs.clone(),
                op: AssignOp::Assign,
                rhs: rhs.clone(),
            }));
            let (tid, tname) = self.tangent[&target].clone();
            let tlhs = match lhs {
                LValue::Var(_) => LValue::Var(VarRef::resolved(tname, tid)),
                LValue::Index { index, .. } => LValue::Index {
                    base: VarRef::resolved(tname, tid),
                    index: index.clone(),
                },
            };
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: tlhs,
                op: AssignOp::Assign,
                rhs: Expr::var(&tmp_name, tmp_id, Type::Float(FloatTy::F64)),
            }));
        } else {
            out.push(Stmt::synth(StmtKind::Assign {
                lhs: lhs.clone(),
                op: AssignOp::Assign,
                rhs: rhs.clone(),
            }));
        }
        Ok(())
    }

    /// Builds the tangent expression of `e`, emitting helper statements
    /// (branch-resolved signs/selects) into `out`.
    fn tangent_of(&mut self, e: &Expr, out: &mut Vec<Stmt>) -> Result<Expr, AdError> {
        Ok(match &e.kind {
            ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_) => Expr::flit(0.0),
            ExprKind::Var(v) => match self.tangent.get(&v.vid()) {
                Some((tid, tname)) => Expr::var(tname, *tid, Type::Float(FloatTy::F64)),
                None => Expr::flit(0.0),
            },
            ExprKind::Index { base, index } => match self.tangent.get(&base.vid()) {
                Some((tid, tname)) => {
                    Expr::index(tname, *tid, (**index).clone(), Type::Float(FloatTy::F64))
                }
                None => Expr::flit(0.0),
            },
            ExprKind::Unary {
                op: UnOp::Neg,
                operand,
            } => Expr::neg(self.tangent_of(operand, out)?),
            ExprKind::Unary { op: UnOp::Not, .. } => Expr::flit(0.0),
            ExprKind::Binary { op, lhs, rhs } => {
                let (a, b) = (lhs, rhs);
                match op {
                    BinOp::Add => Expr::add(self.tangent_of(a, out)?, self.tangent_of(b, out)?),
                    BinOp::Sub => Expr::sub(self.tangent_of(a, out)?, self.tangent_of(b, out)?),
                    BinOp::Mul => {
                        let ta = self.tangent_of(a, out)?;
                        let tb = self.tangent_of(b, out)?;
                        Expr::add(Expr::mul(ta, (**b).clone()), Expr::mul((**a).clone(), tb))
                    }
                    BinOp::Div => {
                        let ta = self.tangent_of(a, out)?;
                        let tb = self.tangent_of(b, out)?;
                        // ta/b - a*tb/b²
                        Expr::sub(
                            Expr::div(ta, (**b).clone()),
                            Expr::div(
                                Expr::mul((**a).clone(), tb),
                                Expr::mul((**b).clone(), (**b).clone()),
                            ),
                        )
                    }
                    _ => Expr::flit(0.0),
                }
            }
            ExprKind::Call {
                callee: Callee::Intrinsic(i),
                args,
            } => match i {
                Intrinsic::Fabs => {
                    let ta = self.tangent_of(&args[0], out)?;
                    let (sid, sname) = self.fresh_f64("_sign");
                    out.push(Stmt::synth(StmtKind::Decl {
                        name: sname.clone(),
                        id: Some(sid),
                        ty: Type::Float(FloatTy::F64),
                        size: None,
                        init: Some(Expr::flit(1.0)),
                    }));
                    out.push(Stmt::synth(StmtKind::If {
                        cond: Expr::binary(BinOp::Lt, args[0].clone(), Expr::flit(0.0)),
                        then_branch: Block::of(vec![Stmt::synth(StmtKind::Assign {
                            lhs: LValue::Var(VarRef::resolved(sname.clone(), sid)),
                            op: AssignOp::Assign,
                            rhs: Expr::flit(-1.0),
                        })]),
                        else_branch: None,
                    }));
                    Expr::mul(Expr::var(&sname, sid, Type::Float(FloatTy::F64)), ta)
                }
                Intrinsic::Fmin | Intrinsic::Fmax => {
                    let ta = self.tangent_of(&args[0], out)?;
                    let tb = self.tangent_of(&args[1], out)?;
                    let (wid, wname) = self.fresh_f64("_sel");
                    out.push(Stmt::synth(StmtKind::Decl {
                        name: wname.clone(),
                        id: Some(wid),
                        ty: Type::Float(FloatTy::F64),
                        size: None,
                        init: Some(tb),
                    }));
                    out.push(Stmt::synth(StmtKind::If {
                        cond: crate::derivatives::min_max_select(*i, &args[0], &args[1]),
                        then_branch: Block::of(vec![Stmt::synth(StmtKind::Assign {
                            lhs: LValue::Var(VarRef::resolved(wname.clone(), wid)),
                            op: AssignOp::Assign,
                            rhs: ta,
                        })]),
                        else_branch: None,
                    }));
                    Expr::var(&wname, wid, Type::Float(FloatTy::F64))
                }
                Intrinsic::Pow => {
                    let ta = self.tangent_of(&args[0], out)?;
                    let tb = self.tangent_of(&args[1], out)?;
                    let (da, db) = pow_derivatives(&args[0], &args[1]);
                    Expr::add(Expr::mul(da, ta), Expr::mul(db, tb))
                }
                _ => {
                    let ta = self.tangent_of(&args[0], out)?;
                    match unary_derivative(*i, &args[0]) {
                        Some(d) => Expr::mul(d, ta),
                        None => Expr::flit(0.0),
                    }
                }
            },
            ExprKind::Call {
                callee: Callee::Func(name),
                ..
            } => {
                return Err(AdError::UserCall {
                    name: name.clone(),
                    span: e.span,
                })
            }
            ExprKind::Cast { ty, expr } => match ty {
                Type::Float(_) => self.tangent_of(expr, out)?,
                _ => Expr::flit(0.0),
            },
        })
    }
}
