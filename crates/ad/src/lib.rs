//! # chef-ad — source-transformation automatic differentiation for KernelC
//!
//! This crate is the **Clad substrate** of the CHEF-FP reproduction: a
//! compile-time (source transformation) AD engine over the KernelC AST,
//! implementing the adjoint-accumulation transformation of the paper's
//! Fig. 2 together with the extension (callback) mechanism of §III-D that
//! CHEF-FP's error-estimation module plugs into.
//!
//! * [`reverse`] — the adjoint mode: forward sweep with TBR-pruned tape
//!   pushes, backward sweep with pops, per-assignment extension hooks
//!   (`AssignError`, rule S2) and a finalize hook (`FinalizeEE`, rule S1);
//! * [`forward`] — the pushforward (tangent) mode, used as an oracle;
//! * [`activity`] — `isDiff` and the to-be-recorded analysis;
//! * [`derivatives`] — symbolic derivative rules for intrinsics.
//!
//! ```
//! use chef_ir::prelude::*;
//! use chef_ad::reverse::reverse_diff;
//!
//! let mut p = parse_program(
//!     "double f(double x, double y) { double z = x * y; return z; }").unwrap();
//! check_program(&mut p).unwrap();
//! let grad = reverse_diff(p.function("f").unwrap()).unwrap();
//! // void f_grad(double x, double y, double &_d_x, double &_d_y)
//! assert_eq!(grad.name, "f_grad");
//! assert_eq!(grad.params.len(), 4);
//! ```

pub mod activity;
pub mod derivatives;
pub mod forward;
pub mod reverse;

pub use forward::forward_diff;
pub use reverse::{
    reverse_diff, reverse_diff_with, AdError, AdjointExtension, AssignCtx, FinalizeCtx, InputInfo,
    NoExtension, ReverseConfig,
};
