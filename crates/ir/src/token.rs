//! Token definitions for the KernelC lexer.

use crate::span::Span;
use std::fmt;

/// A lexical token: a [`TokenKind`] plus the [`Span`] it came from.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Where in the source it was found.
    pub span: Span,
}

/// Keywords recognized by KernelC.
///
/// The set mirrors the C subset that numeric kernels use — exactly the
/// constructs Clad differentiates in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Keyword {
    /// `half` — IEEE 754 binary16.
    Half,
    /// `bfloat` — bfloat16 (truncated binary32).
    Bfloat,
    /// `float` — IEEE 754 binary32.
    Float,
    /// `double` — IEEE 754 binary64.
    Double,
    /// `int` — 64-bit signed integer.
    Int,
    /// `bool` — boolean.
    Bool,
    /// `void` — function return type only.
    Void,
    /// `if`
    If,
    /// `else`
    Else,
    /// `for`
    For,
    /// `while`
    While,
    /// `return`
    Return,
    /// `true`
    True,
    /// `false`
    False,
}

impl Keyword {
    /// Lexeme of the keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            Keyword::Half => "half",
            Keyword::Bfloat => "bfloat",
            Keyword::Float => "float",
            Keyword::Double => "double",
            Keyword::Int => "int",
            Keyword::Bool => "bool",
            Keyword::Void => "void",
            Keyword::If => "if",
            Keyword::Else => "else",
            Keyword::For => "for",
            Keyword::While => "while",
            Keyword::Return => "return",
            Keyword::True => "true",
            Keyword::False => "false",
        }
    }

    /// Maps an identifier-like lexeme to a keyword, if it is one.
    pub fn from_str(s: &str) -> Option<Keyword> {
        Some(match s {
            "half" => Keyword::Half,
            "bfloat" => Keyword::Bfloat,
            "float" => Keyword::Float,
            "double" => Keyword::Double,
            "int" => Keyword::Int,
            "bool" => Keyword::Bool,
            "void" => Keyword::Void,
            "if" => Keyword::If,
            "else" => Keyword::Else,
            "for" => Keyword::For,
            "while" => Keyword::While,
            "return" => Keyword::Return,
            "true" => Keyword::True,
            "false" => Keyword::False,
            _ => return None,
        })
    }
}

/// The different kinds of tokens KernelC produces.
#[derive(Clone, Debug, PartialEq)]
pub enum TokenKind {
    /// An identifier such as `x`, `attributes`, `_d_sum`.
    Ident(String),
    /// A floating-point literal (always stored as `f64`).
    FloatLit(f64),
    /// An integer literal.
    IntLit(i64),
    /// A keyword.
    Kw(Keyword),

    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `=`
    Eq,
    /// `+=`
    PlusEq,
    /// `-=`
    MinusEq,
    /// `*=`
    StarEq,
    /// `/=`
    SlashEq,
    /// `==`
    EqEq,
    /// `!=`
    BangEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AmpAmp,
    /// `||`
    PipePipe,
    /// `!`
    Bang,
    /// `&` (reference qualifier on parameters)
    Amp,
    /// `++`
    PlusPlus,
    /// `--`
    MinusMinus,

    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Short human-readable description used in parse error messages.
    pub fn describe(&self) -> String {
        match self {
            TokenKind::Ident(s) => format!("identifier `{s}`"),
            TokenKind::FloatLit(v) => format!("float literal `{v}`"),
            TokenKind::IntLit(v) => format!("integer literal `{v}`"),
            TokenKind::Kw(k) => format!("keyword `{}`", k.as_str()),
            TokenKind::Eof => "end of input".to_string(),
            other => format!("`{}`", other.punct_str()),
        }
    }

    fn punct_str(&self) -> &'static str {
        match self {
            TokenKind::Plus => "+",
            TokenKind::Minus => "-",
            TokenKind::Star => "*",
            TokenKind::Slash => "/",
            TokenKind::Percent => "%",
            TokenKind::Eq => "=",
            TokenKind::PlusEq => "+=",
            TokenKind::MinusEq => "-=",
            TokenKind::StarEq => "*=",
            TokenKind::SlashEq => "/=",
            TokenKind::EqEq => "==",
            TokenKind::BangEq => "!=",
            TokenKind::Lt => "<",
            TokenKind::Le => "<=",
            TokenKind::Gt => ">",
            TokenKind::Ge => ">=",
            TokenKind::AmpAmp => "&&",
            TokenKind::PipePipe => "||",
            TokenKind::Bang => "!",
            TokenKind::Amp => "&",
            TokenKind::PlusPlus => "++",
            TokenKind::MinusMinus => "--",
            TokenKind::LParen => "(",
            TokenKind::RParen => ")",
            TokenKind::LBrace => "{",
            TokenKind::RBrace => "}",
            TokenKind::LBracket => "[",
            TokenKind::RBracket => "]",
            TokenKind::Comma => ",",
            TokenKind::Semi => ";",
            _ => "?",
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.describe())
    }
}
