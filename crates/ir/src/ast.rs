//! The KernelC abstract syntax tree.
//!
//! This AST plays the role Clang's AST plays for Clad: it is the typed,
//! source-located representation on which the AD transformation
//! ([`chef-ad`]), the optimization passes ([`chef-passes`]) and the error
//! estimation module ([`chef-core`]) all operate.
//!
//! Two node kinds exist only in *generated* code and are never produced by
//! the parser: [`StmtKind::TapePush`] and [`StmtKind::TapePop`]. They are
//! the `Push(out(Li))` / `Pop(out(Li))` operations of the paper's Fig. 2 —
//! the LIFO state-restoration mechanism of the adjoint's forward and
//! backward sweeps.

use crate::span::Span;
use crate::types::{ElemTy, FloatTy, Type};
use std::fmt;

/// Variable names. Plain strings: KernelC programs are small enough that
/// interning buys nothing over clarity.
pub type Symbol = String;

/// A unique variable identity within one function, assigned by the type
/// checker. Parameters come first (`0..#params`), then locals in
/// declaration order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

impl VarId {
    /// The index as `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// A reference to a variable by name, resolved to a [`VarId`] by typeck.
#[derive(Clone, Debug, PartialEq)]
pub struct VarRef {
    /// Source-level name.
    pub name: Symbol,
    /// Resolved identity (`None` before type checking).
    pub id: Option<VarId>,
    /// Where the reference appears.
    pub span: Span,
}

impl VarRef {
    /// An unresolved reference (parser output / builder input).
    pub fn new(name: impl Into<Symbol>, span: Span) -> Self {
        VarRef {
            name: name.into(),
            id: None,
            span,
        }
    }

    /// A resolved reference (used by generated code).
    pub fn resolved(name: impl Into<Symbol>, id: VarId) -> Self {
        VarRef {
            name: name.into(),
            id: Some(id),
            span: Span::DUMMY,
        }
    }

    /// The resolved id; panics if typeck has not run.
    pub fn vid(&self) -> VarId {
        self.id
            .unwrap_or_else(|| panic!("variable `{}` not resolved", self.name))
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation `-x`.
    Neg,
    /// Logical not `!b`.
    Not,
}

/// Binary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%` (integers only)
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    And,
    /// `||` (short-circuit)
    Or,
}

impl BinOp {
    /// `true` for `+ - * / %`.
    pub fn is_arith(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Rem
        )
    }

    /// `true` for comparison operators.
    pub fn is_cmp(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }

    /// `true` for `&&`/`||`.
    pub fn is_logic(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }

    /// Operator lexeme.
    pub fn as_str(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::Eq => "==",
            BinOp::Ne => "!=",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "&&",
            BinOp::Or => "||",
        }
    }
}

/// Built-in math functions.
///
/// Each intrinsic has an exact semantic (the Rust `std` math function) and,
/// where the FastApprox library provides one, an approximate counterpart
/// used by the approximation-error analysis (paper §IV-5, Algorithm 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Intrinsic {
    /// `sin(x)`
    Sin,
    /// `cos(x)`
    Cos,
    /// `tan(x)`
    Tan,
    /// `exp(x)`
    Exp,
    /// `log(x)` (natural)
    Log,
    /// `exp2(x)`
    Exp2,
    /// `log2(x)`
    Log2,
    /// `sqrt(x)`
    Sqrt,
    /// `pow(x, y)`
    Pow,
    /// `fabs(x)`
    Fabs,
    /// `floor(x)`
    Floor,
    /// `ceil(x)`
    Ceil,
    /// `fmin(x, y)`
    Fmin,
    /// `fmax(x, y)`
    Fmax,
    /// `erf(x)`
    Erf,
    /// `erfc(x)`
    Erfc,
    /// `normcdf(x)` — standard normal CDF (the CNDF of Black-Scholes)
    NormCdf,
    /// `tanh(x)`
    Tanh,
    /// `sinh(x)`
    Sinh,
    /// `cosh(x)`
    Cosh,
    /// `atan(x)`
    Atan,
    /// `fastexp(x)` — FastApprox `e^x` (~1e-4 relative error)
    FastExp,
    /// `fasterexp(x)` — FastApprox coarse `e^x` (~1e-2 relative error)
    FasterExp,
    /// `fastlog(x)` — FastApprox natural log
    FastLog,
    /// `fastsqrt(x)` — FastApprox square root
    FastSqrt,
    /// `fastnormcdf(x)` — FastApprox standard normal CDF
    FastNormCdf,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::Pow | Intrinsic::Fmin | Intrinsic::Fmax => 2,
            _ => 1,
        }
    }

    /// Source-level name.
    pub fn name(self) -> &'static str {
        match self {
            Intrinsic::Sin => "sin",
            Intrinsic::Cos => "cos",
            Intrinsic::Tan => "tan",
            Intrinsic::Exp => "exp",
            Intrinsic::Log => "log",
            Intrinsic::Exp2 => "exp2",
            Intrinsic::Log2 => "log2",
            Intrinsic::Sqrt => "sqrt",
            Intrinsic::Pow => "pow",
            Intrinsic::Fabs => "fabs",
            Intrinsic::Floor => "floor",
            Intrinsic::Ceil => "ceil",
            Intrinsic::Fmin => "fmin",
            Intrinsic::Fmax => "fmax",
            Intrinsic::Erf => "erf",
            Intrinsic::Erfc => "erfc",
            Intrinsic::NormCdf => "normcdf",
            Intrinsic::Tanh => "tanh",
            Intrinsic::Sinh => "sinh",
            Intrinsic::Cosh => "cosh",
            Intrinsic::Atan => "atan",
            Intrinsic::FastExp => "fastexp",
            Intrinsic::FasterExp => "fasterexp",
            Intrinsic::FastLog => "fastlog",
            Intrinsic::FastSqrt => "fastsqrt",
            Intrinsic::FastNormCdf => "fastnormcdf",
        }
    }

    /// Looks an intrinsic up by source name.
    pub fn from_name(s: &str) -> Option<Intrinsic> {
        Some(match s {
            "sin" => Intrinsic::Sin,
            "cos" => Intrinsic::Cos,
            "tan" => Intrinsic::Tan,
            "exp" => Intrinsic::Exp,
            "log" => Intrinsic::Log,
            "exp2" => Intrinsic::Exp2,
            "log2" => Intrinsic::Log2,
            "sqrt" => Intrinsic::Sqrt,
            "pow" => Intrinsic::Pow,
            "fabs" => Intrinsic::Fabs,
            "floor" => Intrinsic::Floor,
            "ceil" => Intrinsic::Ceil,
            "fmin" => Intrinsic::Fmin,
            "fmax" => Intrinsic::Fmax,
            "erf" => Intrinsic::Erf,
            "erfc" => Intrinsic::Erfc,
            "normcdf" => Intrinsic::NormCdf,
            "tanh" => Intrinsic::Tanh,
            "sinh" => Intrinsic::Sinh,
            "cosh" => Intrinsic::Cosh,
            "atan" => Intrinsic::Atan,
            "fastexp" => Intrinsic::FastExp,
            "fasterexp" => Intrinsic::FasterExp,
            "fastlog" => Intrinsic::FastLog,
            "fastsqrt" => Intrinsic::FastSqrt,
            "fastnormcdf" => Intrinsic::FastNormCdf,
            _ => return None,
        })
    }

    /// All intrinsics (for exhaustive testing).
    pub const ALL: [Intrinsic; 26] = [
        Intrinsic::Sin,
        Intrinsic::Cos,
        Intrinsic::Tan,
        Intrinsic::Exp,
        Intrinsic::Log,
        Intrinsic::Exp2,
        Intrinsic::Log2,
        Intrinsic::Sqrt,
        Intrinsic::Pow,
        Intrinsic::Fabs,
        Intrinsic::Floor,
        Intrinsic::Ceil,
        Intrinsic::Fmin,
        Intrinsic::Fmax,
        Intrinsic::Erf,
        Intrinsic::Erfc,
        Intrinsic::NormCdf,
        Intrinsic::Tanh,
        Intrinsic::Sinh,
        Intrinsic::Cosh,
        Intrinsic::Atan,
        Intrinsic::FastExp,
        Intrinsic::FasterExp,
        Intrinsic::FastLog,
        Intrinsic::FastSqrt,
        Intrinsic::FastNormCdf,
    ];
}

/// Call target: a built-in math intrinsic or a user-defined function.
#[derive(Clone, Debug, PartialEq)]
pub enum Callee {
    /// Built-in math function.
    Intrinsic(Intrinsic),
    /// User-defined function in the same [`Program`].
    Func(Symbol),
}

impl Callee {
    /// Name of the target for printing/diagnostics.
    pub fn name(&self) -> &str {
        match self {
            Callee::Intrinsic(i) => i.name(),
            Callee::Func(s) => s,
        }
    }
}

/// An expression node: kind, source span, and the type filled in by typeck.
#[derive(Clone, Debug, PartialEq)]
pub struct Expr {
    /// What the expression is.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
    /// Type, populated by the type checker (or by generated-code builders).
    pub ty: Option<Type>,
}

/// Expression kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum ExprKind {
    /// Floating literal (stored as f64, typed `double` by default).
    FloatLit(f64),
    /// Integer literal.
    IntLit(i64),
    /// Boolean literal.
    BoolLit(bool),
    /// Variable read.
    Var(VarRef),
    /// Array element read `a[i]`.
    Index {
        /// The array variable.
        base: VarRef,
        /// Element index (int-typed).
        index: Box<Expr>,
    },
    /// Unary operation.
    Unary {
        /// The operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
    },
    /// Binary operation.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Call to an intrinsic or user function.
    Call {
        /// The target.
        callee: Callee,
        /// Arguments.
        args: Vec<Expr>,
    },
    /// Value cast `(float)x` — rounds to the target precision and back.
    /// Central to the ADAPT error model `x̄ · (x − (float)x)` (eq. 2).
    Cast {
        /// Target type (must be a scalar type).
        ty: Type,
        /// Operand.
        expr: Box<Expr>,
    },
}

impl Expr {
    /// Creates an untyped expression node.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr {
            kind,
            span,
            ty: None,
        }
    }

    /// Creates a typed expression node (generated code).
    pub fn typed(kind: ExprKind, ty: Type) -> Self {
        Expr {
            kind,
            span: Span::DUMMY,
            ty: Some(ty),
        }
    }

    /// The checked type; panics if typeck has not run over this node.
    pub fn type_of(&self) -> Type {
        self.ty
            .unwrap_or_else(|| panic!("untyped expression: {:?}", self.kind))
    }

    /// Float literal helper (typed `double`).
    pub fn flit(v: f64) -> Expr {
        Expr::typed(ExprKind::FloatLit(v), Type::Float(FloatTy::F64))
    }

    /// Int literal helper.
    pub fn ilit(v: i64) -> Expr {
        Expr::typed(ExprKind::IntLit(v), Type::Int)
    }

    /// Variable-read helper for resolved ids (generated code).
    pub fn var(name: impl Into<Symbol>, id: VarId, ty: Type) -> Expr {
        Expr::typed(ExprKind::Var(VarRef::resolved(name, id)), ty)
    }

    /// Array-read helper for resolved ids (generated code).
    pub fn index(name: impl Into<Symbol>, id: VarId, idx: Expr, elem: Type) -> Expr {
        Expr::typed(
            ExprKind::Index {
                base: VarRef::resolved(name, id),
                index: Box::new(idx),
            },
            elem,
        )
    }

    /// Binary-op helper; result type via promotion (panics on non-numeric).
    pub fn binary(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        let ty = if op.is_arith() {
            Type::promote(lhs.type_of(), rhs.type_of())
                .unwrap_or_else(|| panic!("bad promote {:?} {:?}", lhs.ty, rhs.ty))
        } else {
            Type::Bool
        };
        Expr::typed(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            ty,
        )
    }

    /// `lhs + rhs`
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Add, lhs, rhs)
    }

    /// `lhs - rhs`
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Sub, lhs, rhs)
    }

    /// `lhs * rhs`
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Mul, lhs, rhs)
    }

    /// `lhs / rhs`
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        Expr::binary(BinOp::Div, lhs, rhs)
    }

    /// `-operand`
    pub fn neg(operand: Expr) -> Expr {
        let ty = operand.type_of();
        Expr::typed(
            ExprKind::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
            },
            ty,
        )
    }

    /// Intrinsic call helper; result is the promoted float type of the
    /// arguments (intrinsics operate on floats).
    pub fn call(i: Intrinsic, args: Vec<Expr>) -> Expr {
        debug_assert_eq!(args.len(), i.arity(), "intrinsic {} arity", i.name());
        let ty = args
            .iter()
            .map(Expr::type_of)
            .reduce(|a, b| Type::promote(a, b).unwrap_or(Type::Float(FloatTy::F64)))
            .unwrap_or(Type::Float(FloatTy::F64));
        let ty = if ty.is_float() {
            ty
        } else {
            Type::Float(FloatTy::F64)
        };
        Expr::typed(
            ExprKind::Call {
                callee: Callee::Intrinsic(i),
                args,
            },
            ty,
        )
    }

    /// Cast helper.
    pub fn cast(ty: Type, e: Expr) -> Expr {
        Expr::typed(
            ExprKind::Cast {
                ty,
                expr: Box::new(e),
            },
            ty,
        )
    }

    /// `true` if the expression is a literal.
    pub fn is_lit(&self) -> bool {
        matches!(
            self.kind,
            ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_)
        )
    }

    /// If the expression is a float or int literal, returns its numeric
    /// value as `f64`.
    pub fn as_number(&self) -> Option<f64> {
        match self.kind {
            ExprKind::FloatLit(v) => Some(v),
            ExprKind::IntLit(v) => Some(v as f64),
            _ => None,
        }
    }
}

/// Assignable location: a scalar variable or an array element.
#[derive(Clone, Debug, PartialEq)]
pub enum LValue {
    /// Scalar variable.
    Var(VarRef),
    /// Array element `a[i]`.
    Index {
        /// The array variable.
        base: VarRef,
        /// Element index expression.
        index: Expr,
    },
}

impl LValue {
    /// The variable being written (the array itself for element writes).
    pub fn var(&self) -> &VarRef {
        match self {
            LValue::Var(v) => v,
            LValue::Index { base, .. } => base,
        }
    }

    /// Mutable access to the written variable.
    pub fn var_mut(&mut self) -> &mut VarRef {
        match self {
            LValue::Var(v) => v,
            LValue::Index { base, .. } => base,
        }
    }

    /// Span of the whole lvalue.
    pub fn span(&self) -> Span {
        match self {
            LValue::Var(v) => v.span,
            LValue::Index { base, index } => base.span.to(index.span),
        }
    }

    /// Reads this lvalue as an expression of type `ty`.
    pub fn to_expr(&self, ty: Type) -> Expr {
        match self {
            LValue::Var(v) => Expr::typed(ExprKind::Var(v.clone()), ty),
            LValue::Index { base, index } => Expr::typed(
                ExprKind::Index {
                    base: base.clone(),
                    index: Box::new(index.clone()),
                },
                ty,
            ),
        }
    }
}

/// Compound-assignment operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
}

impl AssignOp {
    /// The underlying binary operator for compound assignments.
    pub fn binop(self) -> Option<BinOp> {
        match self {
            AssignOp::Assign => None,
            AssignOp::AddAssign => Some(BinOp::Add),
            AssignOp::SubAssign => Some(BinOp::Sub),
            AssignOp::MulAssign => Some(BinOp::Mul),
            AssignOp::DivAssign => Some(BinOp::Div),
        }
    }

    /// Lexeme.
    pub fn as_str(self) -> &'static str {
        match self {
            AssignOp::Assign => "=",
            AssignOp::AddAssign => "+=",
            AssignOp::SubAssign => "-=",
            AssignOp::MulAssign => "*=",
            AssignOp::DivAssign => "/=",
        }
    }
}

/// A statement node.
#[derive(Clone, Debug, PartialEq)]
pub struct Stmt {
    /// What the statement is.
    pub kind: StmtKind,
    /// Source location.
    pub span: Span,
}

impl Stmt {
    /// Creates a statement with a real span.
    pub fn new(kind: StmtKind, span: Span) -> Self {
        Stmt { kind, span }
    }

    /// Creates a synthesized (generated) statement.
    pub fn synth(kind: StmtKind) -> Self {
        Stmt {
            kind,
            span: Span::DUMMY,
        }
    }
}

/// Statement kinds.
#[derive(Clone, Debug, PartialEq)]
pub enum StmtKind {
    /// Variable declaration, optionally array-sized and/or initialized:
    /// `double x = e;`, `double r[n];`, `int k;`.
    Decl {
        /// Declared name.
        name: Symbol,
        /// Resolved id (filled by typeck).
        id: Option<VarId>,
        /// Declared type (array types come from the `[size]` suffix).
        ty: Type,
        /// Array length expression for local arrays.
        size: Option<Expr>,
        /// Scalar initializer.
        init: Option<Expr>,
    },
    /// Assignment `lhs op rhs`.
    Assign {
        /// Target location.
        lhs: LValue,
        /// `=`, `+=`, …
        op: AssignOp,
        /// Right-hand side.
        rhs: Expr,
    },
    /// Conditional.
    If {
        /// Condition (bool).
        cond: Expr,
        /// Then-branch.
        then_branch: Block,
        /// Optional else-branch.
        else_branch: Option<Block>,
    },
    /// C-style `for (init; cond; step) body`.
    For {
        /// Init statement (decl or assignment), if any.
        init: Option<Box<Stmt>>,
        /// Loop condition, if any (absent = infinite).
        cond: Option<Expr>,
        /// Step statement, if any.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Block,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `return e;` / `return;`
    Return(Option<Expr>),
    /// A nested block `{ … }`.
    Block(Block),
    /// Expression statement (a call evaluated for effect).
    ExprStmt(Expr),
    /// Generated: push a scalar value onto the runtime tape
    /// (`Push(out(Li))` of Fig. 2).
    TapePush(Expr),
    /// Generated: pop the top of the tape into a location
    /// (`Pop(out(Li))` of Fig. 2).
    TapePop(LValue),
}

/// A `{ … }` sequence of statements.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Block {
    /// The statements, in order.
    pub stmts: Vec<Stmt>,
    /// Source span of the whole block.
    pub span: Span,
}

impl Block {
    /// Creates a block from statements (synthesized span).
    pub fn of(stmts: Vec<Stmt>) -> Self {
        Block {
            stmts,
            span: Span::DUMMY,
        }
    }

    /// An empty block.
    pub fn empty() -> Self {
        Block::default()
    }
}

/// A function parameter.
#[derive(Clone, Debug, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: Symbol,
    /// Resolved id (filled by typeck; params get the first ids).
    pub id: Option<VarId>,
    /// Parameter type. Arrays are always passed by reference.
    pub ty: Type,
    /// `true` for `double &x` scalar out-parameters (used by generated
    /// gradients for `_d_x` outputs and the `_fp_error` accumulator).
    pub by_ref: bool,
    /// Source location.
    pub span: Span,
}

impl Param {
    /// Scalar by-value parameter.
    pub fn scalar(name: impl Into<Symbol>, ty: Type) -> Self {
        Param {
            name: name.into(),
            id: None,
            ty,
            by_ref: false,
            span: Span::DUMMY,
        }
    }

    /// Scalar by-reference (out) parameter.
    pub fn by_ref(name: impl Into<Symbol>, ty: Type) -> Self {
        Param {
            name: name.into(),
            id: None,
            ty,
            by_ref: true,
            span: Span::DUMMY,
        }
    }

    /// Array parameter (always by reference).
    pub fn array(name: impl Into<Symbol>, elem: ElemTy) -> Self {
        Param {
            name: name.into(),
            id: None,
            ty: Type::Array(elem),
            by_ref: true,
            span: Span::DUMMY,
        }
    }
}

/// Metadata for one variable of a function, indexed by [`VarId`].
/// Built by the type checker; generated code extends it.
#[derive(Clone, Debug, PartialEq)]
pub struct VarInfo {
    /// Source-level name (unique per function after typeck renaming).
    pub name: Symbol,
    /// The variable's type.
    pub ty: Type,
    /// `true` if the variable is a parameter.
    pub is_param: bool,
    /// Declaration site.
    pub span: Span,
}

/// A KernelC function.
#[derive(Clone, Debug, PartialEq)]
pub struct Function {
    /// Function name.
    pub name: Symbol,
    /// Parameters in order.
    pub params: Vec<Param>,
    /// Return type.
    pub ret: Type,
    /// Body.
    pub body: Block,
    /// Source location of the whole definition.
    pub span: Span,
    /// Variable table indexed by [`VarId`]; empty before typeck.
    pub vars: Vec<VarInfo>,
}

impl Function {
    /// Looks up variable metadata by id. Panics on out-of-range ids.
    pub fn var(&self, id: VarId) -> &VarInfo {
        &self.vars[id.index()]
    }

    /// Number of parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Registers a fresh (generated) variable and returns its id.
    pub fn add_var(&mut self, name: impl Into<Symbol>, ty: Type) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: name.into(),
            ty,
            is_param: false,
            span: Span::DUMMY,
        });
        id
    }

    /// Iterator over `(VarId, &VarInfo)` pairs.
    pub fn vars_iter(&self) -> impl Iterator<Item = (VarId, &VarInfo)> {
        self.vars
            .iter()
            .enumerate()
            .map(|(i, v)| (VarId(i as u32), v))
    }

    /// Finds a parameter's resolved [`VarId`] by name.
    pub fn param_id(&self, name: &str) -> Option<VarId> {
        self.params
            .iter()
            .find(|p| p.name == name)
            .and_then(|p| p.id)
    }
}

/// A whole translation unit: a set of functions.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Program {
    /// Functions in definition order.
    pub functions: Vec<Function>,
}

impl Program {
    /// Creates a program from a list of functions.
    pub fn of(functions: Vec<Function>) -> Self {
        Program { functions }
    }

    /// Finds a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Finds a function by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intrinsic_name_round_trip() {
        for i in Intrinsic::ALL {
            assert_eq!(Intrinsic::from_name(i.name()), Some(i));
        }
        assert_eq!(Intrinsic::from_name("nosuch"), None);
    }

    #[test]
    fn intrinsic_arities() {
        assert_eq!(Intrinsic::Pow.arity(), 2);
        assert_eq!(Intrinsic::Fmin.arity(), 2);
        assert_eq!(Intrinsic::Sin.arity(), 1);
    }

    #[test]
    fn expr_builders_type_correctly() {
        let x = Expr::var("x", VarId(0), Type::Float(FloatTy::F64));
        let y = Expr::var("y", VarId(1), Type::Float(FloatTy::F32));
        let s = Expr::add(x, y);
        assert_eq!(s.type_of(), Type::Float(FloatTy::F64));
        let c = Expr::binary(BinOp::Lt, s.clone(), Expr::flit(1.0));
        assert_eq!(c.type_of(), Type::Bool);
        let call = Expr::call(Intrinsic::Sqrt, vec![s]);
        assert_eq!(call.type_of(), Type::Float(FloatTy::F64));
    }

    #[test]
    fn assign_op_binop_mapping() {
        assert_eq!(AssignOp::Assign.binop(), None);
        assert_eq!(AssignOp::AddAssign.binop(), Some(BinOp::Add));
        assert_eq!(AssignOp::DivAssign.binop(), Some(BinOp::Div));
    }

    #[test]
    fn lvalue_to_expr_round_trip() {
        let lv = LValue::Var(VarRef::resolved("x", VarId(3)));
        let e = lv.to_expr(Type::Float(FloatTy::F64));
        match e.kind {
            ExprKind::Var(v) => assert_eq!(v.id, Some(VarId(3))),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn function_var_registration() {
        let mut f = Function {
            name: "f".into(),
            params: vec![],
            ret: Type::Void,
            body: Block::empty(),
            span: Span::DUMMY,
            vars: vec![],
        };
        let a = f.add_var("a", Type::Float(FloatTy::F64));
        let b = f.add_var("b", Type::Int);
        assert_eq!(a, VarId(0));
        assert_eq!(b, VarId(1));
        assert_eq!(f.var(b).ty, Type::Int);
    }
}
