//! Name resolution and type checking for KernelC.
//!
//! The checker resolves every [`VarRef`] to a [`VarId`], fills in the `ty`
//! field of every expression, builds the per-function variable table
//! ([`Function::vars`]), and enforces the (deliberately strict) typing
//! rules:
//!
//! * conditions are `bool` (comparisons/logical operators produce `bool`);
//! * `%` is integer-only; `&&`/`||`/`!` are bool-only;
//! * implicit numeric conversion widens only (`int → float`, narrower float
//!   → wider float at use sites); narrowing happens either at *assignment*
//!   (that is where rounding error enters — the paper's error models hook
//!   assignments) or through an explicit cast such as `(float)x`;
//! * arrays are indexed by `int` and cannot be assigned wholesale;
//! * user calls must match the callee's signature; intrinsics their arity.
//!
//! Shadowing is legal; shadowed variables are renamed (`x`, `x@1`, …) so
//! that every [`VarInfo::name`] in a checked function is unique — the AD
//! transformation and the printer rely on this.

use crate::ast::*;
use crate::diag::{Diagnostic, Diagnostics};
use crate::types::{ElemTy, Type};
use std::collections::HashMap;

/// Signature of a function: parameter types and return type.
#[derive(Clone, Debug, PartialEq)]
pub struct Signature {
    /// Parameter types in order (with by-ref flags).
    pub params: Vec<(Type, bool)>,
    /// Return type.
    pub ret: Type,
}

/// Type-checks a whole program in place.
///
/// On success every expression is typed and every variable resolved; on
/// failure the program is left partially annotated and all diagnostics are
/// returned.
pub fn check_program(program: &mut Program) -> Result<(), Diagnostics> {
    let mut diags = Diagnostics::new();
    // Pass 1: collect signatures (allows forward references, like C
    // prototypes).
    let mut sigs: HashMap<Symbol, Signature> = HashMap::new();
    for f in &program.functions {
        if Intrinsic::from_name(&f.name).is_some() {
            diags.push(Diagnostic::error(
                format!("function `{}` shadows a built-in intrinsic", f.name),
                f.span,
            ));
        }
        if sigs
            .insert(
                f.name.clone(),
                Signature {
                    params: f.params.iter().map(|p| (p.ty, p.by_ref)).collect(),
                    ret: f.ret,
                },
            )
            .is_some()
        {
            diags.push(Diagnostic::error(
                format!("duplicate function `{}`", f.name),
                f.span,
            ));
        }
    }
    // Pass 2: check each function body.
    for f in &mut program.functions {
        let mut ck = Checker::new(&sigs, f.ret, &mut diags);
        ck.check_function(f);
    }
    diags.into_result()
}

/// Type-checks a single function against an empty program context
/// (no user calls allowed). Convenience for tests and builders.
pub fn check_function(f: &mut Function) -> Result<(), Diagnostics> {
    let mut diags = Diagnostics::new();
    let sigs = HashMap::new();
    let mut ck = Checker::new(&sigs, f.ret, &mut diags);
    ck.check_function(f);
    diags.into_result()
}

struct Checker<'a> {
    sigs: &'a HashMap<Symbol, Signature>,
    ret: Type,
    diags: &'a mut Diagnostics,
    scopes: Vec<HashMap<Symbol, VarId>>,
    vars: Vec<VarInfo>,
    name_counts: HashMap<Symbol, u32>,
}

impl<'a> Checker<'a> {
    fn new(sigs: &'a HashMap<Symbol, Signature>, ret: Type, diags: &'a mut Diagnostics) -> Self {
        Checker {
            sigs,
            ret,
            diags,
            scopes: vec![HashMap::new()],
            vars: Vec::new(),
            name_counts: HashMap::new(),
        }
    }

    fn error(&mut self, msg: impl Into<String>, span: crate::span::Span) {
        self.diags.push(Diagnostic::error(msg, span));
    }

    fn declare(
        &mut self,
        name: &Symbol,
        ty: Type,
        is_param: bool,
        span: crate::span::Span,
    ) -> VarId {
        let count = self.name_counts.entry(name.clone()).or_insert(0);
        let unique = if *count == 0 {
            name.clone()
        } else {
            format!("{name}@{count}")
        };
        *count += 1;
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarInfo {
            name: unique,
            ty,
            is_param,
            span,
        });
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.clone(), id);
        id
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn resolve(&mut self, v: &mut VarRef) -> Option<VarId> {
        match self.lookup(&v.name) {
            Some(id) => {
                v.id = Some(id);
                Some(id)
            }
            None => {
                self.error(format!("unknown variable `{}`", v.name), v.span);
                None
            }
        }
    }

    fn check_function(&mut self, f: &mut Function) {
        for p in &mut f.params {
            if self.scopes[0].contains_key(&p.name) {
                self.error(format!("duplicate parameter `{}`", p.name), p.span);
            }
            p.id = Some(self.declare(&p.name.clone(), p.ty, true, p.span));
        }
        self.check_block(&mut f.body);
        f.vars = std::mem::take(&mut self.vars);
    }

    fn check_block(&mut self, b: &mut Block) {
        self.scopes.push(HashMap::new());
        for s in &mut b.stmts {
            self.check_stmt(s);
        }
        self.scopes.pop();
    }

    fn check_stmt(&mut self, s: &mut Stmt) {
        let span = s.span;
        match &mut s.kind {
            StmtKind::Decl {
                name,
                id,
                ty,
                size,
                init,
            } => {
                if let Some(sz) = size {
                    if let Some(t) = self.check_expr(sz) {
                        if t != Type::Int {
                            self.error(format!("array size must be `int`, found `{t}`"), sz.span);
                        }
                    }
                }
                if let Some(e) = init {
                    let t = self.check_expr(e);
                    if let Some(t) = t {
                        self.check_assignable(*ty, t, e.span);
                    }
                }
                *id = Some(self.declare(&name.clone(), *ty, false, span));
            }
            StmtKind::Assign { lhs, op, rhs } => {
                let lty = self.check_lvalue(lhs);
                let rty = self.check_expr(rhs);
                if let (Some(lty), Some(rty)) = (lty, rty) {
                    if let Type::Array(_) = lty {
                        self.error("cannot assign to a whole array; assign elements", span);
                        return;
                    }
                    if op.binop() == Some(BinOp::Rem) && lty != Type::Int {
                        self.error("`%=` requires integer operands", span);
                    }
                    self.check_assignable(lty, rty, rhs.span);
                    if *op != AssignOp::Assign && !lty.is_numeric_scalar() {
                        self.error(
                            format!("compound assignment requires a numeric target, found `{lty}`"),
                            span,
                        );
                    }
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                self.check_bool(cond);
                self.check_block(then_branch);
                if let Some(e) = else_branch {
                    self.check_block(e);
                }
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                // The for-header introduces a scope for its init declaration.
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.check_stmt(i);
                }
                if let Some(c) = cond {
                    self.check_bool(c);
                }
                if let Some(st) = step {
                    self.check_stmt(st);
                }
                self.check_block(body);
                self.scopes.pop();
            }
            StmtKind::While { cond, body } => {
                self.check_bool(cond);
                self.check_block(body);
            }
            StmtKind::Return(e) => match (e, self.ret) {
                (None, Type::Void) => {}
                (None, other) => {
                    self.error(format!("function returns `{other}`, missing value"), span)
                }
                (Some(e), ret) => {
                    if ret == Type::Void {
                        self.error("void function cannot return a value", e.span);
                    } else if let Some(t) = self.check_expr(e) {
                        self.check_assignable(ret, t, e.span);
                    }
                }
            },
            StmtKind::Block(b) => self.check_block(b),
            StmtKind::ExprStmt(e) => {
                self.check_expr(e);
            }
            StmtKind::TapePush(_) | StmtKind::TapePop(_) => {
                self.error("tape operations cannot appear in source programs", span);
            }
        }
    }

    /// Narrowing at assignment is legal (that is where rounding occurs);
    /// only category mismatches are errors.
    fn check_assignable(&mut self, lhs: Type, rhs: Type, span: crate::span::Span) {
        let ok = matches!(
            (lhs, rhs),
            (Type::Float(_), Type::Float(_) | Type::Int)
                | (Type::Int, Type::Int)
                | (Type::Bool, Type::Bool)
        );
        if !ok {
            self.error(format!("cannot assign `{rhs}` to `{lhs}`"), span);
        }
    }

    fn check_bool(&mut self, e: &mut Expr) {
        if let Some(t) = self.check_expr(e) {
            if t != Type::Bool {
                self.error(format!("condition must be `bool`, found `{t}`"), e.span);
            }
        }
    }

    fn check_lvalue(&mut self, lv: &mut LValue) -> Option<Type> {
        match lv {
            LValue::Var(v) => {
                let id = self.resolve(v)?;
                Some(self.vars[id.index()].ty)
            }
            LValue::Index { base, index } => {
                let id = self.resolve(base)?;
                let bty = self.vars[id.index()].ty;
                if let Some(ity) = self.check_expr(index) {
                    if ity != Type::Int {
                        self.error(
                            format!("array index must be `int`, found `{ity}`"),
                            index.span,
                        );
                    }
                }
                match bty {
                    Type::Array(ElemTy::Float(ft)) => Some(Type::Float(ft)),
                    Type::Array(ElemTy::Int) => Some(Type::Int),
                    other => {
                        self.error(format!("cannot index into `{other}`"), base.span);
                        None
                    }
                }
            }
        }
    }

    fn check_expr(&mut self, e: &mut Expr) -> Option<Type> {
        let ty = self.check_expr_inner(e)?;
        e.ty = Some(ty);
        Some(ty)
    }

    fn check_expr_inner(&mut self, e: &mut Expr) -> Option<Type> {
        let span = e.span;
        match &mut e.kind {
            ExprKind::FloatLit(_) => Some(Type::Float(crate::types::FloatTy::F64)),
            ExprKind::IntLit(_) => Some(Type::Int),
            ExprKind::BoolLit(_) => Some(Type::Bool),
            ExprKind::Var(v) => {
                let id = self.resolve(v)?;
                Some(self.vars[id.index()].ty)
            }
            ExprKind::Index { base, index } => {
                let id = self.resolve(base)?;
                let bty = self.vars[id.index()].ty;
                if let Some(ity) = self.check_expr(index) {
                    if ity != Type::Int {
                        self.error(
                            format!("array index must be `int`, found `{ity}`"),
                            index.span,
                        );
                    }
                }
                match bty {
                    Type::Array(ElemTy::Float(ft)) => Some(Type::Float(ft)),
                    Type::Array(ElemTy::Int) => Some(Type::Int),
                    other => {
                        self.error(format!("cannot index into `{other}`"), base.span);
                        None
                    }
                }
            }
            ExprKind::Unary { op, operand } => {
                let t = self.check_expr(operand)?;
                match op {
                    UnOp::Neg => {
                        if t.is_numeric_scalar() {
                            Some(t)
                        } else {
                            self.error(format!("cannot negate `{t}`"), span);
                            None
                        }
                    }
                    UnOp::Not => {
                        if t == Type::Bool {
                            Some(Type::Bool)
                        } else {
                            self.error(format!("`!` requires `bool`, found `{t}`"), span);
                            None
                        }
                    }
                }
            }
            ExprKind::Binary { op, lhs, rhs } => {
                let lt = self.check_expr(lhs);
                let rt = self.check_expr(rhs);
                let (lt, rt) = (lt?, rt?);
                if op.is_logic() {
                    if lt != Type::Bool || rt != Type::Bool {
                        self.error(
                            format!(
                                "`{}` requires `bool` operands, found `{lt}` and `{rt}`",
                                op.as_str()
                            ),
                            span,
                        );
                        return None;
                    }
                    return Some(Type::Bool);
                }
                if *op == BinOp::Rem {
                    if lt != Type::Int || rt != Type::Int {
                        self.error(
                            format!("`%` requires `int` operands, found `{lt}` and `{rt}`"),
                            span,
                        );
                        return None;
                    }
                    return Some(Type::Int);
                }
                match Type::promote(lt, rt) {
                    Some(t) => {
                        if op.is_cmp() {
                            Some(Type::Bool)
                        } else {
                            Some(t)
                        }
                    }
                    None => {
                        self.error(
                            format!("invalid operands to `{}`: `{lt}` and `{rt}`", op.as_str()),
                            span,
                        );
                        None
                    }
                }
            }
            ExprKind::Call { callee, args } => {
                let arg_tys: Vec<Option<Type>> =
                    args.iter_mut().map(|a| self.check_expr(a)).collect();
                match callee {
                    Callee::Intrinsic(i) => {
                        if args.len() != i.arity() {
                            self.error(
                                format!(
                                    "`{}` expects {} argument(s), found {}",
                                    i.name(),
                                    i.arity(),
                                    args.len()
                                ),
                                span,
                            );
                            return None;
                        }
                        let mut result = Type::Float(crate::types::FloatTy::F32);
                        for t in arg_tys.iter().flatten() {
                            if !t.is_numeric_scalar() {
                                self.error(
                                    format!(
                                        "`{}` requires numeric arguments, found `{t}`",
                                        i.name()
                                    ),
                                    span,
                                );
                                return None;
                            }
                            if let Type::Float(_) = t {
                                result = Type::promote(result, *t).unwrap_or(result);
                            }
                        }
                        // Intrinsics on pure-int arguments compute in double.
                        if !result.is_float() {
                            result = Type::Float(crate::types::FloatTy::F64);
                        }
                        // Minimum precision for math intrinsics is f32; an
                        // all-int call yields f64 (C's math.h behaviour).
                        if arg_tys.iter().flatten().all(|t| *t == Type::Int) {
                            result = Type::Float(crate::types::FloatTy::F64);
                        }
                        Some(result)
                    }
                    Callee::Func(name) => {
                        let sig = match self.sigs.get(name.as_str()) {
                            Some(s) => s.clone(),
                            None => {
                                self.error(format!("unknown function `{name}`"), span);
                                return None;
                            }
                        };
                        if args.len() != sig.params.len() {
                            self.error(
                                format!(
                                    "`{name}` expects {} argument(s), found {}",
                                    sig.params.len(),
                                    args.len()
                                ),
                                span,
                            );
                            return None;
                        }
                        for ((pty, by_ref), (arg, aty)) in
                            sig.params.iter().zip(args.iter().zip(arg_tys.iter()))
                        {
                            let Some(aty) = aty else { continue };
                            if *by_ref || matches!(pty, Type::Array(_)) {
                                // By-ref arguments must be lvalues of the
                                // exact type.
                                let is_lvalue =
                                    matches!(arg.kind, ExprKind::Var(_) | ExprKind::Index { .. });
                                if !is_lvalue {
                                    self.error(
                                        "by-reference argument must be a variable or element",
                                        arg.span,
                                    );
                                } else if aty != pty {
                                    self.error(
                                        format!(
                                            "by-reference argument type `{aty}` must match `{pty}`"
                                        ),
                                        arg.span,
                                    );
                                }
                            } else {
                                match (pty, aty) {
                                    (Type::Float(_), Type::Float(_) | Type::Int) => {}
                                    (a, b) if *a == *b => {}
                                    _ => self
                                        .error(format!("cannot pass `{aty}` as `{pty}`"), arg.span),
                                }
                            }
                        }
                        Some(sig.ret)
                    }
                }
            }
            ExprKind::Cast { ty, expr } => {
                let t = self.check_expr(expr)?;
                let ok = matches!(
                    (*ty, t),
                    (Type::Float(_), Type::Float(_))
                        | (Type::Float(_), Type::Int)
                        | (Type::Int, Type::Float(_))
                        | (Type::Int, Type::Int)
                );
                if !ok {
                    self.error(format!("cannot cast `{t}` to `{ty}`"), span);
                    return None;
                }
                Some(*ty)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::types::FloatTy;

    fn check(src: &str) -> Result<Program, Diagnostics> {
        let mut p = parse_program(src).expect("parse");
        check_program(&mut p)?;
        Ok(p)
    }

    #[test]
    fn resolves_variables_and_types() {
        let p = check("float func(float x, float y) { float z; z = x + y; return z; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.vars.len(), 3);
        assert!(f.vars[0].is_param);
        assert_eq!(f.vars[2].name, "z");
        match &f.body.stmts[1].kind {
            StmtKind::Assign { rhs, .. } => {
                // x: f32 + y: f32 promotes to f32.
                assert_eq!(rhs.ty, Some(Type::Float(FloatTy::F32)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn float_literals_are_double() {
        let p = check("float f(float x) { float y = x * 2.0; return y; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Decl { init: Some(e), .. } => {
                // f32 * double-literal promotes to f64 (C semantics).
                assert_eq!(e.ty, Some(Type::Float(FloatTy::F64)));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn shadowing_renames() {
        let p =
            check("void f() { double x = 1.0; { double x = 2.0; x = 3.0; } x = 4.0; }").unwrap();
        let f = &p.functions[0];
        let names: Vec<_> = f.vars.iter().map(|v| v.name.as_str()).collect();
        assert_eq!(names, vec!["x", "x@1"]);
    }

    #[test]
    fn rejects_unknown_variable() {
        assert!(check("void f() { x = 1.0; }").is_err());
    }

    #[test]
    fn rejects_bad_condition_type() {
        assert!(check("void f(int n) { if (n) { } }").is_err());
        assert!(check("void f(double x) { while (x) { } }").is_err());
    }

    #[test]
    fn rejects_rem_on_floats() {
        assert!(check("void f(double x) { double y = x % 2.0; }").is_err());
    }

    #[test]
    fn rejects_whole_array_assignment() {
        assert!(check("void f(double a[], double b[]) { a = b; }").is_err());
    }

    #[test]
    fn rejects_non_int_index() {
        assert!(check("void f(double a[], double x) { a[x] = 1.0; }").is_err());
    }

    #[test]
    fn rejects_wrong_intrinsic_arity() {
        assert!(check("void f(double x) { double y = pow(x); }").is_err());
        assert!(check("void f(double x) { double y = sin(x, x); }").is_err());
    }

    #[test]
    fn user_calls_check_signature() {
        assert!(check(
            "double g(double a) { return a * a; }
             double f(double x) { return g(x) + g(2.0 * x); }"
        )
        .is_ok());
        assert!(check(
            "double g(double a) { return a; }
             double f(double x) { return g(x, x); }"
        )
        .is_err());
        assert!(check("double f(double x) { return nosuch(x); }").is_err());
    }

    #[test]
    fn forward_references_allowed() {
        assert!(check(
            "double f(double x) { return g(x); }
             double g(double a) { return a * a; }"
        )
        .is_ok());
    }

    #[test]
    fn by_ref_argument_must_be_lvalue() {
        assert!(check(
            "void g(double &out) { out = 1.0; }
             void f() { double x = 0.0; g(x); }"
        )
        .is_ok());
        assert!(check(
            "void g(double &out) { out = 1.0; }
             void f() { g(1.0 + 2.0); }"
        )
        .is_err());
    }

    #[test]
    fn rejects_duplicate_function() {
        assert!(check("void f() { } void f() { }").is_err());
    }

    #[test]
    fn rejects_shadowing_intrinsic_name() {
        assert!(check("double sin(double x) { return x; }").is_err());
    }

    #[test]
    fn int_to_float_assignment_ok_float_to_int_rejected() {
        assert!(check("void f(int n) { double x = n; }").is_ok());
        assert!(check("void f(double x) { int n = x; }").is_err());
        assert!(check("void f(double x) { int n = (int)x; }").is_ok());
    }

    #[test]
    fn return_type_checked() {
        assert!(check("double f() { return; }").is_err());
        assert!(check("void f() { return 1.0; }").is_err());
        assert!(check("int f() { return 3; }").is_ok());
    }

    #[test]
    fn narrowing_assignment_is_legal() {
        // Assigning a double expression into a float variable is exactly
        // where the paper's rounding error enters; it must type-check.
        assert!(check("void f(double x) { float y = x * x; }").is_ok());
    }
}
