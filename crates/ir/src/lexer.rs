//! Hand-written lexer for KernelC.
//!
//! Produces a flat token stream with spans; comments (`// …` and `/* … */`)
//! and whitespace are skipped. Numeric literals follow C syntax: an integer
//! literal becomes [`TokenKind::IntLit`]; the presence of a decimal point,
//! an exponent or an `f` suffix makes it a [`TokenKind::FloatLit`].

use crate::diag::Diagnostic;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};

/// Streaming lexer over a source string.
pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    /// Lexes the whole input, returning tokens (terminated by `Eof`) or the
    /// first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, Diagnostic> {
        let mut out = Vec::new();
        loop {
            let tok = self.next_token()?;
            let is_eof = tok.kind == TokenKind::Eof;
            out.push(tok);
            if is_eof {
                return Ok(out);
            }
        }
    }

    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let b = self.peek();
        self.pos += 1;
        b
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.pos += 1;
                }
                b'/' if self.peek2() == b'/' => {
                    while self.pos < self.src.len() && self.peek() != b'\n' {
                        self.pos += 1;
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        if self.pos >= self.src.len() {
                            return Err(Diagnostic::error(
                                "unterminated block comment",
                                Span::new(start as u32, self.pos as u32),
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.pos += 2;
                            break;
                        }
                        self.pos += 1;
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn next_token(&mut self) -> Result<Token, Diagnostic> {
        self.skip_trivia()?;
        let lo = self.pos as u32;
        if self.pos >= self.src.len() {
            return Ok(Token {
                kind: TokenKind::Eof,
                span: Span::new(lo, lo),
            });
        }
        let c = self.peek();
        let kind = match c {
            b'a'..=b'z' | b'A'..=b'Z' | b'_' => return self.lex_ident(lo),
            b'0'..=b'9' => return self.lex_number(lo),
            b'.' if self.peek2().is_ascii_digit() => return self.lex_number(lo),
            b'+' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::PlusEq
                    }
                    b'+' => {
                        self.bump();
                        TokenKind::PlusPlus
                    }
                    _ => TokenKind::Plus,
                }
            }
            b'-' => {
                self.bump();
                match self.peek() {
                    b'=' => {
                        self.bump();
                        TokenKind::MinusEq
                    }
                    b'-' => {
                        self.bump();
                        TokenKind::MinusMinus
                    }
                    _ => TokenKind::Minus,
                }
            }
            b'*' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::StarEq
                } else {
                    TokenKind::Star
                }
            }
            b'/' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::SlashEq
                } else {
                    TokenKind::Slash
                }
            }
            b'%' => {
                self.bump();
                TokenKind::Percent
            }
            b'=' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::EqEq
                } else {
                    TokenKind::Eq
                }
            }
            b'!' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::BangEq
                } else {
                    TokenKind::Bang
                }
            }
            b'<' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::Le
                } else {
                    TokenKind::Lt
                }
            }
            b'>' => {
                self.bump();
                if self.peek() == b'=' {
                    self.bump();
                    TokenKind::Ge
                } else {
                    TokenKind::Gt
                }
            }
            b'&' => {
                self.bump();
                if self.peek() == b'&' {
                    self.bump();
                    TokenKind::AmpAmp
                } else {
                    TokenKind::Amp
                }
            }
            b'|' => {
                self.bump();
                if self.peek() == b'|' {
                    self.bump();
                    TokenKind::PipePipe
                } else {
                    return Err(Diagnostic::error(
                        "unexpected character `|` (did you mean `||`?)",
                        Span::new(lo, lo + 1),
                    ));
                }
            }
            b'(' => {
                self.bump();
                TokenKind::LParen
            }
            b')' => {
                self.bump();
                TokenKind::RParen
            }
            b'{' => {
                self.bump();
                TokenKind::LBrace
            }
            b'}' => {
                self.bump();
                TokenKind::RBrace
            }
            b'[' => {
                self.bump();
                TokenKind::LBracket
            }
            b']' => {
                self.bump();
                TokenKind::RBracket
            }
            b',' => {
                self.bump();
                TokenKind::Comma
            }
            b';' => {
                self.bump();
                TokenKind::Semi
            }
            other => {
                return Err(Diagnostic::error(
                    format!("unexpected character `{}`", other as char),
                    Span::new(lo, lo + 1),
                ))
            }
        };
        Ok(Token {
            kind,
            span: Span::new(lo, self.pos as u32),
        })
    }

    fn lex_ident(&mut self, lo: u32) -> Result<Token, Diagnostic> {
        while matches!(self.peek(), b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_') {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.src[lo as usize..self.pos])
            .expect("identifier bytes are ASCII");
        let span = Span::new(lo, self.pos as u32);
        let kind = match Keyword::from_str(text) {
            Some(kw) => TokenKind::Kw(kw),
            None => TokenKind::Ident(text.to_string()),
        };
        Ok(Token { kind, span })
    }

    fn lex_number(&mut self, lo: u32) -> Result<Token, Diagnostic> {
        let mut is_float = false;
        while self.peek().is_ascii_digit() {
            self.pos += 1;
        }
        if self.peek() == b'.' && self.peek2() != b'.' {
            is_float = true;
            self.pos += 1;
            while self.peek().is_ascii_digit() {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), b'e' | b'E') {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), b'+' | b'-') {
                self.pos += 1;
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.pos += 1;
                }
            } else {
                // Not an exponent after all (e.g. `1e` followed by ident).
                self.pos = save;
            }
        }
        let mut text_end = self.pos;
        if matches!(self.peek(), b'f' | b'F') {
            // C float suffix: accept and treat as a float literal.
            is_float = true;
            self.pos += 1;
            text_end = self.pos - 1;
        }
        let text =
            std::str::from_utf8(&self.src[lo as usize..text_end]).expect("number bytes are ASCII");
        let span = Span::new(lo, self.pos as u32);
        if is_float {
            let v: f64 = text
                .parse()
                .map_err(|_| Diagnostic::error(format!("invalid float literal `{text}`"), span))?;
            Ok(Token {
                kind: TokenKind::FloatLit(v),
                span,
            })
        } else {
            let v: i64 = text.parse().map_err(|_| {
                Diagnostic::error(format!("integer literal `{text}` out of range"), span)
            })?;
            Ok(Token {
                kind: TokenKind::IntLit(v),
                span,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_assignment() {
        use TokenKind::*;
        assert_eq!(
            kinds("z = x + y;"),
            vec![
                Ident("z".into()),
                Eq,
                Ident("x".into()),
                Plus,
                Ident("y".into()),
                Semi,
                Eof
            ]
        );
    }

    #[test]
    fn lexes_keywords_and_types() {
        use TokenKind::*;
        assert_eq!(
            kinds("double half float int bool if else for while return"),
            vec![
                Kw(Keyword::Double),
                Kw(Keyword::Half),
                Kw(Keyword::Float),
                Kw(Keyword::Int),
                Kw(Keyword::Bool),
                Kw(Keyword::If),
                Kw(Keyword::Else),
                Kw(Keyword::For),
                Kw(Keyword::While),
                Kw(Keyword::Return),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 3.25 1e-3 2.5e+2 7f .5"),
            vec![
                IntLit(42),
                FloatLit(3.25),
                FloatLit(1e-3),
                FloatLit(2.5e2),
                FloatLit(7.0),
                FloatLit(0.5),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_compound_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("+= -= *= /= == != <= >= && || ++ --"),
            vec![
                PlusEq, MinusEq, StarEq, SlashEq, EqEq, BangEq, Le, Ge, AmpAmp, PipePipe, PlusPlus,
                MinusMinus, Eof
            ]
        );
    }

    #[test]
    fn skips_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("x // line comment\n/* block\ncomment */ y"),
            vec![Ident("x".into()), Ident("y".into()), Eof]
        );
    }

    #[test]
    fn rejects_unknown_char() {
        assert!(Lexer::new("x @ y").tokenize().is_err());
    }

    #[test]
    fn rejects_unterminated_block_comment() {
        assert!(Lexer::new("/* never ends").tokenize().is_err());
    }

    #[test]
    fn spans_are_accurate() {
        let toks = Lexer::new("ab + cd").tokenize().unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(3, 4));
        assert_eq!(toks[2].span, Span::new(5, 7));
    }

    #[test]
    fn exponent_without_digits_is_not_float() {
        use TokenKind::*;
        // `1e` should lex as IntLit(1) followed by Ident("e").
        assert_eq!(kinds("1e"), vec![IntLit(1), Ident("e".into()), Eof]);
    }
}
