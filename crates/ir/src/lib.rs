//! # chef-ir — the KernelC language
//!
//! KernelC is a small, typed, C-like language covering exactly the
//! constructs HPC numeric kernels are written in: scalar floats at four
//! precisions (`half`, `bfloat`, `float`, `double`), 64-bit `int`s,
//! `bool`s, 1-D arrays, assignments (plain and compound), `if`/`for`/
//! `while` control flow, and calls to math intrinsics or other KernelC
//! functions.
//!
//! This crate plays the role that **Clang's AST** plays for Clad in the
//! CHEF-FP paper: it is the typed, source-located program representation
//! that the AD transformation (`chef-ad`), the optimizer (`chef-passes`),
//! the error-estimation module (`chef-core`) and the execution engine
//! (`chef-exec`) all share.
//!
//! ## Quick tour
//!
//! ```
//! use chef_ir::prelude::*;
//!
//! let src = "
//!     float func(float x, float y) {
//!         float z;
//!         z = x + y;
//!         return z;
//!     }";
//! let mut program = parse_program(src).unwrap();
//! check_program(&mut program).unwrap();
//! let f = program.function("func").unwrap();
//! assert_eq!(f.arity(), 2);
//! println!("{}", print_function(f));
//! ```

pub mod ast;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod printer;
pub mod span;
pub mod token;
pub mod typeck;
pub mod types;
pub mod visit;

/// Convenience re-exports of the most commonly used items.
pub mod prelude {
    pub use crate::ast::{
        AssignOp, BinOp, Block, Callee, Expr, ExprKind, Function, Intrinsic, LValue, Param,
        Program, Stmt, StmtKind, Symbol, UnOp, VarId, VarInfo, VarRef,
    };
    pub use crate::diag::{Diagnostic, Diagnostics, Severity};
    pub use crate::parser::{parse_expr, parse_program};
    pub use crate::printer::{print_expr, print_function, print_program, print_stmt};
    pub use crate::span::{SourceMap, Span};
    pub use crate::typeck::{check_function, check_program, Signature};
    pub use crate::types::{ElemTy, FloatTy, Type};
}

pub use prelude::*;
