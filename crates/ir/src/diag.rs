//! Diagnostics: errors and warnings with source locations.

use crate::span::{SourceMap, Span};
use std::fmt;

/// Severity of a diagnostic.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// A hard error; compilation cannot proceed.
    Error,
    /// A warning; compilation proceeds.
    Warning,
}

/// A single compiler diagnostic with message and primary span.
#[derive(Clone, Debug, PartialEq)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Human-readable message.
    pub message: String,
    /// Primary source span.
    pub span: Span,
    /// Optional secondary notes (message + span pairs).
    pub notes: Vec<(String, Span)>,
}

impl Diagnostic {
    /// Creates an error diagnostic.
    pub fn error(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Creates a warning diagnostic.
    pub fn warning(message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            notes: Vec::new(),
        }
    }

    /// Attaches a secondary note.
    pub fn with_note(mut self, message: impl Into<String>, span: Span) -> Self {
        self.notes.push((message.into(), span));
        self
    }

    /// Renders the diagnostic against a source map, e.g.
    /// `error: unknown variable `q` at kernel.kc:3:5`.
    pub fn render(&self, sm: &SourceMap) -> String {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        let mut out = format!("{sev}: {} at {}", self.message, sm.display(self.span));
        for (msg, span) in &self.notes {
            out.push_str(&format!("\n  note: {msg} at {}", sm.display(*span)));
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(f, "{sev}: {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// A collection of diagnostics produced by a compiler phase.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    /// All diagnostics in emission order.
    pub items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// Returns `true` if any error-severity diagnostic was recorded.
    pub fn has_errors(&self) -> bool {
        self.items.iter().any(|d| d.severity == Severity::Error)
    }

    /// Number of recorded diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no diagnostics were recorded.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Renders all diagnostics, one per line.
    pub fn render(&self, sm: &SourceMap) -> String {
        self.items
            .iter()
            .map(|d| d.render(sm))
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Converts to `Result`: `Err(self)` if any errors, otherwise `Ok(())`.
    pub fn into_result(self) -> Result<(), Diagnostics> {
        if self.has_errors() {
            Err(self)
        } else {
            Ok(())
        }
    }
}

impl fmt::Display for Diagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.items.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for Diagnostics {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_location_and_notes() {
        let sm = SourceMap::new("k.kc", "x = y;\nz = w;");
        let d = Diagnostic::error("unknown variable `w`", Span::new(11, 12))
            .with_note("declared here", Span::new(0, 1));
        let r = d.render(&sm);
        assert!(r.contains("k.kc:2:5"), "{r}");
        assert!(r.contains("note: declared here"), "{r}");
    }

    #[test]
    fn diagnostics_error_detection() {
        let mut ds = Diagnostics::new();
        assert!(!ds.has_errors());
        ds.push(Diagnostic::warning("w", Span::DUMMY));
        assert!(!ds.has_errors());
        assert!(ds.clone().into_result().is_ok());
        ds.push(Diagnostic::error("e", Span::DUMMY));
        assert!(ds.has_errors());
        assert!(ds.into_result().is_err());
    }
}
