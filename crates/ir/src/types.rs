//! The KernelC type system.
//!
//! KernelC models exactly the data HPC kernels manipulate: scalar floats at
//! one of four IEEE-style precisions, 64-bit integers, booleans, and 1-D
//! arrays of scalars. The [`FloatTy`] precision lattice is the heart of the
//! mixed-precision analysis: demoting a variable means lowering its
//! [`FloatTy`], and the error models quantify what that costs.

use std::fmt;

/// Floating-point precision of a scalar or array element.
///
/// Ordered from lowest to highest precision; `Ord` follows that order so the
/// tuner can compare precisions directly.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatTy {
    /// IEEE 754 binary16 (`half`): 11-bit significand.
    F16,
    /// bfloat16 (`bfloat`): 8-bit significand, f32 exponent range.
    BF16,
    /// IEEE 754 binary32 (`float`): 24-bit significand.
    F32,
    /// IEEE 754 binary64 (`double`): 53-bit significand.
    F64,
}

impl FloatTy {
    /// Machine epsilon: the maximum relative representation error due to
    /// rounding, `2^-(p)` where `p` is the number of stored significand
    /// bits. This is the `ε_m` of the paper's default error model
    /// `A_f = |ε_m · x · f'(x)|` (eq. 1).
    pub fn epsilon(self) -> f64 {
        match self {
            // binary16: 10 stored bits -> ulp 2^-10, eps = 2^-11 (round-to-nearest)
            FloatTy::F16 => (2.0f64).powi(-11),
            // bfloat16: 7 stored bits -> eps = 2^-8
            FloatTy::BF16 => (2.0f64).powi(-8),
            // binary32: 23 stored bits -> eps = 2^-24
            FloatTy::F32 => (2.0f64).powi(-24),
            // binary64: 52 stored bits -> eps = 2^-53
            FloatTy::F64 => (2.0f64).powi(-53),
        }
    }

    /// Number of stored significand bits (excluding the implicit leading 1).
    pub fn mantissa_bits(self) -> u32 {
        match self {
            FloatTy::F16 => 10,
            FloatTy::BF16 => 7,
            FloatTy::F32 => 23,
            FloatTy::F64 => 52,
        }
    }

    /// Width of the representation in bytes (used for memory-traffic
    /// accounting in the mixed-precision speedup model).
    pub fn byte_width(self) -> usize {
        match self {
            FloatTy::F16 | FloatTy::BF16 => 2,
            FloatTy::F32 => 4,
            FloatTy::F64 => 8,
        }
    }

    /// The KernelC keyword for this precision.
    pub fn keyword(self) -> &'static str {
        match self {
            FloatTy::F16 => "half",
            FloatTy::BF16 => "bfloat",
            FloatTy::F32 => "float",
            FloatTy::F64 => "double",
        }
    }

    /// The next precision *below* this one (demotion target), or `None`
    /// for the lowest.
    pub fn demoted(self) -> Option<FloatTy> {
        match self {
            FloatTy::F64 => Some(FloatTy::F32),
            FloatTy::F32 => Some(FloatTy::F16),
            FloatTy::BF16 | FloatTy::F16 => None,
        }
    }

    /// All precisions, lowest first.
    pub const ALL: [FloatTy; 4] = [FloatTy::F16, FloatTy::BF16, FloatTy::F32, FloatTy::F64];
}

impl fmt::Display for FloatTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Element type of an array (floats or integers).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElemTy {
    /// Floating-point elements at the given precision.
    Float(FloatTy),
    /// 64-bit signed integer elements (index arrays, row pointers, …).
    Int,
}

impl fmt::Display for ElemTy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElemTy::Float(ft) => write!(f, "{ft}"),
            ElemTy::Int => f.write_str("int"),
        }
    }
}

/// A KernelC type.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Type {
    /// A floating-point scalar.
    Float(FloatTy),
    /// A 64-bit signed integer.
    Int,
    /// A boolean.
    Bool,
    /// A 1-D array with the given element type; length is a runtime
    /// property of the value, not the type.
    Array(ElemTy),
    /// The unit/void type (function returns only).
    Void,
}

impl Type {
    /// `true` for `Float(_)` scalars.
    pub fn is_float(self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// `true` for scalar numeric types (float or int).
    pub fn is_numeric_scalar(self) -> bool {
        matches!(self, Type::Float(_) | Type::Int)
    }

    /// The float precision, if this is a float scalar or float array.
    pub fn float_ty(self) -> Option<FloatTy> {
        match self {
            Type::Float(ft) | Type::Array(ElemTy::Float(ft)) => Some(ft),
            _ => None,
        }
    }

    /// `true` if values of this type participate in differentiation
    /// (the `isDiff` notion of the paper's rule S2 applies to locations of
    /// these types).
    pub fn is_differentiable(self) -> bool {
        matches!(self, Type::Float(_) | Type::Array(ElemTy::Float(_)))
    }

    /// Result type of a binary arithmetic operation on `a` and `b`
    /// following C-like promotion: the wider float wins; int op int = int;
    /// int promotes to the float operand's precision.
    pub fn promote(a: Type, b: Type) -> Option<Type> {
        match (a, b) {
            (Type::Float(x), Type::Float(y)) => Some(Type::Float(x.max(y))),
            (Type::Float(x), Type::Int) | (Type::Int, Type::Float(x)) => Some(Type::Float(x)),
            (Type::Int, Type::Int) => Some(Type::Int),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Float(ft) => write!(f, "{ft}"),
            Type::Int => f.write_str("int"),
            Type::Bool => f.write_str("bool"),
            Type::Array(e) => write!(f, "{e}[]"),
            Type::Void => f.write_str("void"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epsilon_values_match_ieee() {
        assert_eq!(FloatTy::F64.epsilon(), f64::EPSILON / 2.0);
        assert_eq!(FloatTy::F32.epsilon(), (f32::EPSILON / 2.0) as f64);
        assert_eq!(FloatTy::F16.epsilon(), 2.0f64.powi(-11));
        assert_eq!(FloatTy::BF16.epsilon(), 2.0f64.powi(-8));
    }

    #[test]
    fn precision_ordering() {
        assert!(FloatTy::F16 < FloatTy::BF16);
        assert!(FloatTy::BF16 < FloatTy::F32);
        assert!(FloatTy::F32 < FloatTy::F64);
    }

    #[test]
    fn demotion_chain() {
        assert_eq!(FloatTy::F64.demoted(), Some(FloatTy::F32));
        assert_eq!(FloatTy::F32.demoted(), Some(FloatTy::F16));
        assert_eq!(FloatTy::F16.demoted(), None);
    }

    #[test]
    fn promotion_rules() {
        use Type::*;
        assert_eq!(
            Type::promote(Float(FloatTy::F32), Float(FloatTy::F64)),
            Some(Float(FloatTy::F64))
        );
        assert_eq!(
            Type::promote(Int, Float(FloatTy::F32)),
            Some(Float(FloatTy::F32))
        );
        assert_eq!(Type::promote(Int, Int), Some(Int));
        assert_eq!(Type::promote(Bool, Int), None);
    }

    #[test]
    fn differentiability() {
        assert!(Type::Float(FloatTy::F64).is_differentiable());
        assert!(Type::Array(ElemTy::Float(FloatTy::F32)).is_differentiable());
        assert!(!Type::Int.is_differentiable());
        assert!(!Type::Array(ElemTy::Int).is_differentiable());
        assert!(!Type::Bool.is_differentiable());
    }
}
