//! Recursive-descent parser for KernelC.
//!
//! Grammar (C-subset, matching what Clad differentiates in the paper):
//!
//! ```text
//! program  := function*
//! function := type IDENT '(' params? ')' block
//! param    := type '&'? IDENT ('[' ']')?
//! block    := '{' stmt* '}'
//! stmt     := decl ';' | assign ';' | if | for | while
//!           | 'return' expr? ';' | block | expr ';'
//! decl     := type IDENT ('[' expr ']')? ('=' expr)?
//! assign   := lvalue ('=' | '+=' | '-=' | '*=' | '/=') expr
//!           | lvalue '++' | lvalue '--'
//! expr     := precedence-climbing over || && cmp + - * / % unary postfix
//! cast     := '(' type ')' unary
//! ```

use crate::ast::*;
use crate::diag::Diagnostic;
use crate::lexer::Lexer;
use crate::span::Span;
use crate::token::{Keyword, Token, TokenKind};
use crate::types::{ElemTy, FloatTy, Type};

/// Parses a full KernelC translation unit.
///
/// This is the main entry point: `parse_program(src)` returns the untyped
/// [`Program`]; run [`crate::typeck::check_program`] afterwards to resolve
/// names and types.
pub fn parse_program(src: &str) -> Result<Program, Diagnostic> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let mut functions = Vec::new();
    while !p.at_eof() {
        functions.push(p.parse_function()?);
    }
    Ok(Program { functions })
}

/// Parses a single expression (useful in tests and custom error models).
pub fn parse_expr(src: &str) -> Result<Expr, Diagnostic> {
    let tokens = Lexer::new(src).tokenize()?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.parse_expr()?;
    p.expect_eof()?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn expect_eof(&self) -> Result<(), Diagnostic> {
        if self.at_eof() {
            Ok(())
        } else {
            Err(self.unexpected("end of input"))
        }
    }

    fn unexpected(&self, wanted: &str) -> Diagnostic {
        let t = self.peek();
        Diagnostic::error(
            format!("expected {wanted}, found {}", t.kind.describe()),
            t.span,
        )
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if &self.peek().kind == kind {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, wanted: &str) -> Result<Token, Diagnostic> {
        if self.peek().kind == kind {
            Ok(self.bump())
        } else {
            Err(self.unexpected(wanted))
        }
    }

    fn expect_ident(&mut self) -> Result<(Symbol, Span), Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::Ident(name) => {
                let span = self.bump().span;
                Ok((name, span))
            }
            _ => Err(self.unexpected("identifier")),
        }
    }

    /// `true` if the current token starts a type.
    fn at_type(&self) -> bool {
        matches!(
            self.peek().kind,
            TokenKind::Kw(
                Keyword::Half
                    | Keyword::Bfloat
                    | Keyword::Float
                    | Keyword::Double
                    | Keyword::Int
                    | Keyword::Bool
                    | Keyword::Void
            )
        )
    }

    fn parse_type(&mut self) -> Result<(Type, Span), Diagnostic> {
        let t = self.peek().clone();
        let ty = match t.kind {
            TokenKind::Kw(Keyword::Half) => Type::Float(FloatTy::F16),
            TokenKind::Kw(Keyword::Bfloat) => Type::Float(FloatTy::BF16),
            TokenKind::Kw(Keyword::Float) => Type::Float(FloatTy::F32),
            TokenKind::Kw(Keyword::Double) => Type::Float(FloatTy::F64),
            TokenKind::Kw(Keyword::Int) => Type::Int,
            TokenKind::Kw(Keyword::Bool) => Type::Bool,
            TokenKind::Kw(Keyword::Void) => Type::Void,
            _ => return Err(self.unexpected("type")),
        };
        self.bump();
        Ok((ty, t.span))
    }

    fn parse_function(&mut self) -> Result<Function, Diagnostic> {
        let (ret, start_span) = self.parse_type()?;
        let (name, _) = self.expect_ident()?;
        self.expect(TokenKind::LParen, "`(`")?;
        let mut params = Vec::new();
        if self.peek().kind != TokenKind::RParen {
            loop {
                params.push(self.parse_param()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.parse_block()?;
        let span = start_span.to(body.span);
        Ok(Function {
            name,
            params,
            ret,
            body,
            span,
            vars: Vec::new(),
        })
    }

    fn parse_param(&mut self) -> Result<Param, Diagnostic> {
        let (ty, tspan) = self.parse_type()?;
        let by_ref_scalar = self.eat(&TokenKind::Amp);
        let (name, nspan) = self.expect_ident()?;
        let mut span = tspan.to(nspan);
        let (ty, by_ref) = if self.eat(&TokenKind::LBracket) {
            let close = self.expect(TokenKind::RBracket, "`]`")?;
            span = span.to(close.span);
            if by_ref_scalar {
                return Err(Diagnostic::error(
                    "array parameters are implicitly by-reference; remove `&`",
                    span,
                ));
            }
            let elem = match ty {
                Type::Float(ft) => ElemTy::Float(ft),
                Type::Int => ElemTy::Int,
                other => {
                    return Err(Diagnostic::error(
                        format!("arrays of `{other}` are not supported"),
                        span,
                    ))
                }
            };
            (Type::Array(elem), true)
        } else {
            if ty == Type::Void {
                return Err(Diagnostic::error("parameter cannot have type `void`", span));
            }
            (ty, by_ref_scalar)
        };
        Ok(Param {
            name,
            id: None,
            ty,
            by_ref,
            span,
        })
    }

    fn parse_block(&mut self) -> Result<Block, Diagnostic> {
        let open = self.expect(TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek().kind != TokenKind::RBrace {
            if self.at_eof() {
                return Err(self.unexpected("`}`"));
            }
            stmts.push(self.parse_stmt()?);
        }
        let close = self.bump();
        Ok(Block {
            stmts,
            span: open.span.to(close.span),
        })
    }

    /// A statement or a single-statement body wrapped in a block
    /// (C allows `if (c) x = 1;`).
    fn parse_stmt_or_block(&mut self) -> Result<Block, Diagnostic> {
        if self.peek().kind == TokenKind::LBrace {
            self.parse_block()
        } else {
            let s = self.parse_stmt()?;
            let span = s.span;
            Ok(Block {
                stmts: vec![s],
                span,
            })
        }
    }

    fn parse_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        match self.peek().kind.clone() {
            TokenKind::Kw(Keyword::If) => self.parse_if(),
            TokenKind::Kw(Keyword::For) => self.parse_for(),
            TokenKind::Kw(Keyword::While) => self.parse_while(),
            TokenKind::Kw(Keyword::Return) => {
                let kw = self.bump();
                if self.eat(&TokenKind::Semi) {
                    return Ok(Stmt::new(StmtKind::Return(None), kw.span));
                }
                let e = self.parse_expr()?;
                let semi = self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt::new(StmtKind::Return(Some(e)), kw.span.to(semi.span)))
            }
            TokenKind::LBrace => {
                let b = self.parse_block()?;
                let span = b.span;
                Ok(Stmt::new(StmtKind::Block(b), span))
            }
            _ => {
                let s = self.parse_simple_stmt()?;
                let semi = self.expect(TokenKind::Semi, "`;`")?;
                Ok(Stmt {
                    span: s.span.to(semi.span),
                    ..s
                })
            }
        }
    }

    /// Declaration / assignment / expression statement, without the
    /// trailing semicolon (shared by statement position and `for` headers).
    fn parse_simple_stmt(&mut self) -> Result<Stmt, Diagnostic> {
        if self.at_type() {
            return self.parse_decl();
        }
        // Look ahead: IDENT followed by assignment-ish token => assignment.
        let start = self.pos;
        if let TokenKind::Ident(_) = self.peek().kind {
            // Try to parse an lvalue and see what follows.
            if let Ok(lv) = self.try_parse_lvalue() {
                match self.peek().kind {
                    TokenKind::Eq
                    | TokenKind::PlusEq
                    | TokenKind::MinusEq
                    | TokenKind::StarEq
                    | TokenKind::SlashEq => {
                        let op = match self.bump().kind {
                            TokenKind::Eq => AssignOp::Assign,
                            TokenKind::PlusEq => AssignOp::AddAssign,
                            TokenKind::MinusEq => AssignOp::SubAssign,
                            TokenKind::StarEq => AssignOp::MulAssign,
                            TokenKind::SlashEq => AssignOp::DivAssign,
                            _ => unreachable!(),
                        };
                        let rhs = self.parse_expr()?;
                        let span = lv.span().to(rhs.span);
                        return Ok(Stmt::new(StmtKind::Assign { lhs: lv, op, rhs }, span));
                    }
                    TokenKind::PlusPlus | TokenKind::MinusMinus => {
                        let t = self.bump();
                        let op = if t.kind == TokenKind::PlusPlus {
                            AssignOp::AddAssign
                        } else {
                            AssignOp::SubAssign
                        };
                        let span = lv.span().to(t.span);
                        let one = Expr::new(ExprKind::IntLit(1), t.span);
                        return Ok(Stmt::new(
                            StmtKind::Assign {
                                lhs: lv,
                                op,
                                rhs: one,
                            },
                            span,
                        ));
                    }
                    _ => {
                        // Not an assignment; rewind and parse as expression.
                        self.pos = start;
                    }
                }
            } else {
                self.pos = start;
            }
        }
        let e = self.parse_expr()?;
        let span = e.span;
        Ok(Stmt::new(StmtKind::ExprStmt(e), span))
    }

    fn try_parse_lvalue(&mut self) -> Result<LValue, Diagnostic> {
        let (name, span) = self.expect_ident()?;
        if self.peek().kind == TokenKind::LBracket {
            self.bump();
            let idx = self.parse_expr()?;
            self.expect(TokenKind::RBracket, "`]`")?;
            Ok(LValue::Index {
                base: VarRef::new(name, span),
                index: idx,
            })
        } else {
            Ok(LValue::Var(VarRef::new(name, span)))
        }
    }

    fn parse_decl(&mut self) -> Result<Stmt, Diagnostic> {
        let (ty, tspan) = self.parse_type()?;
        if ty == Type::Void {
            return Err(Diagnostic::error(
                "cannot declare a variable of type `void`",
                tspan,
            ));
        }
        let (name, nspan) = self.expect_ident()?;
        let mut span = tspan.to(nspan);
        let mut size = None;
        let mut decl_ty = ty;
        if self.eat(&TokenKind::LBracket) {
            let e = self.parse_expr()?;
            let close = self.expect(TokenKind::RBracket, "`]`")?;
            span = span.to(close.span);
            let elem = match ty {
                Type::Float(ft) => ElemTy::Float(ft),
                Type::Int => ElemTy::Int,
                other => {
                    return Err(Diagnostic::error(
                        format!("arrays of `{other}` are not supported"),
                        span,
                    ))
                }
            };
            decl_ty = Type::Array(elem);
            size = Some(e);
        }
        let init = if self.eat(&TokenKind::Eq) {
            if size.is_some() {
                return Err(Diagnostic::error(
                    "array declarations cannot have initializers",
                    span,
                ));
            }
            let e = self.parse_expr()?;
            span = span.to(e.span);
            Some(e)
        } else {
            None
        };
        Ok(Stmt::new(
            StmtKind::Decl {
                name,
                id: None,
                ty: decl_ty,
                size,
                init,
            },
            span,
        ))
    }

    fn parse_if(&mut self) -> Result<Stmt, Diagnostic> {
        let kw = self.bump();
        self.expect(TokenKind::LParen, "`(`")?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::RParen, "`)`")?;
        let then_branch = self.parse_stmt_or_block()?;
        let mut span = kw.span.to(then_branch.span);
        let else_branch = if self.eat(&TokenKind::Kw(Keyword::Else)) {
            let b = self.parse_stmt_or_block()?;
            span = span.to(b.span);
            Some(b)
        } else {
            None
        };
        Ok(Stmt::new(
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            },
            span,
        ))
    }

    fn parse_for(&mut self) -> Result<Stmt, Diagnostic> {
        let kw = self.bump();
        self.expect(TokenKind::LParen, "`(`")?;
        let init = if self.peek().kind == TokenKind::Semi {
            None
        } else {
            Some(Box::new(self.parse_simple_stmt()?))
        };
        self.expect(TokenKind::Semi, "`;`")?;
        let cond = if self.peek().kind == TokenKind::Semi {
            None
        } else {
            Some(self.parse_expr()?)
        };
        self.expect(TokenKind::Semi, "`;`")?;
        let step = if self.peek().kind == TokenKind::RParen {
            None
        } else {
            Some(Box::new(self.parse_simple_stmt()?))
        };
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.parse_stmt_or_block()?;
        let span = kw.span.to(body.span);
        Ok(Stmt::new(
            StmtKind::For {
                init,
                cond,
                step,
                body,
            },
            span,
        ))
    }

    fn parse_while(&mut self) -> Result<Stmt, Diagnostic> {
        let kw = self.bump();
        self.expect(TokenKind::LParen, "`(`")?;
        let cond = self.parse_expr()?;
        self.expect(TokenKind::RParen, "`)`")?;
        let body = self.parse_stmt_or_block()?;
        let span = kw.span.to(body.span);
        Ok(Stmt::new(StmtKind::While { cond, body }, span))
    }

    // ---- expressions: precedence climbing ----

    fn parse_expr(&mut self) -> Result<Expr, Diagnostic> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.parse_and()?;
        while self.peek().kind == TokenKind::PipePipe {
            self.bump();
            let rhs = self.parse_and()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::Or,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_and(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.parse_cmp()?;
        while self.peek().kind == TokenKind::AmpAmp {
            self.bump();
            let rhs = self.parse_cmp()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op: BinOp::And,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
        Ok(lhs)
    }

    fn parse_cmp(&mut self) -> Result<Expr, Diagnostic> {
        let lhs = self.parse_addsub()?;
        let op = match self.peek().kind {
            TokenKind::EqEq => BinOp::Eq,
            TokenKind::BangEq => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.parse_addsub()?;
        let span = lhs.span.to(rhs.span);
        Ok(Expr::new(
            ExprKind::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
            },
            span,
        ))
    }

    fn parse_addsub(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.parse_muldiv()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_muldiv()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn parse_muldiv(&mut self) -> Result<Expr, Diagnostic> {
        let mut lhs = self.parse_unary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Slash => BinOp::Div,
                TokenKind::Percent => BinOp::Rem,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.parse_unary()?;
            let span = lhs.span.to(rhs.span);
            lhs = Expr::new(
                ExprKind::Binary {
                    op,
                    lhs: Box::new(lhs),
                    rhs: Box::new(rhs),
                },
                span,
            );
        }
    }

    fn parse_unary(&mut self) -> Result<Expr, Diagnostic> {
        match self.peek().kind {
            TokenKind::Minus => {
                let t = self.bump();
                let e = self.parse_unary()?;
                let span = t.span.to(e.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Neg,
                        operand: Box::new(e),
                    },
                    span,
                ))
            }
            TokenKind::Bang => {
                let t = self.bump();
                let e = self.parse_unary()?;
                let span = t.span.to(e.span);
                Ok(Expr::new(
                    ExprKind::Unary {
                        op: UnOp::Not,
                        operand: Box::new(e),
                    },
                    span,
                ))
            }
            _ => self.parse_primary(),
        }
    }

    fn parse_primary(&mut self) -> Result<Expr, Diagnostic> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::FloatLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::FloatLit(v), t.span))
            }
            TokenKind::IntLit(v) => {
                self.bump();
                Ok(Expr::new(ExprKind::IntLit(v), t.span))
            }
            TokenKind::Kw(Keyword::True) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(true), t.span))
            }
            TokenKind::Kw(Keyword::False) => {
                self.bump();
                Ok(Expr::new(ExprKind::BoolLit(false), t.span))
            }
            TokenKind::LParen => {
                // Cast `(type) expr` or parenthesized expression.
                self.bump();
                if self.at_type() {
                    let (ty, _) = self.parse_type()?;
                    if ty == Type::Void {
                        return Err(Diagnostic::error("cannot cast to `void`", t.span));
                    }
                    self.expect(TokenKind::RParen, "`)`")?;
                    let e = self.parse_unary()?;
                    let span = t.span.to(e.span);
                    return Ok(Expr::new(
                        ExprKind::Cast {
                            ty,
                            expr: Box::new(e),
                        },
                        span,
                    ));
                }
                let e = self.parse_expr()?;
                let close = self.expect(TokenKind::RParen, "`)`")?;
                Ok(Expr {
                    span: t.span.to(close.span),
                    ..e
                })
            }
            TokenKind::Ident(name) => {
                self.bump();
                match self.peek().kind {
                    TokenKind::LParen => {
                        self.bump();
                        let mut args = Vec::new();
                        if self.peek().kind != TokenKind::RParen {
                            loop {
                                args.push(self.parse_expr()?);
                                if !self.eat(&TokenKind::Comma) {
                                    break;
                                }
                            }
                        }
                        let close = self.expect(TokenKind::RParen, "`)`")?;
                        let callee = match Intrinsic::from_name(&name) {
                            Some(i) => Callee::Intrinsic(i),
                            None => Callee::Func(name),
                        };
                        Ok(Expr::new(
                            ExprKind::Call { callee, args },
                            t.span.to(close.span),
                        ))
                    }
                    TokenKind::LBracket => {
                        self.bump();
                        let idx = self.parse_expr()?;
                        let close = self.expect(TokenKind::RBracket, "`]`")?;
                        Ok(Expr::new(
                            ExprKind::Index {
                                base: VarRef::new(name, t.span),
                                index: Box::new(idx),
                            },
                            t.span.to(close.span),
                        ))
                    }
                    _ => Ok(Expr::new(ExprKind::Var(VarRef::new(name, t.span)), t.span)),
                }
            }
            _ => Err(self.unexpected("expression")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_function() {
        let p = parse_program("float func(float x, float y) { float z; z = x + y; return z; }")
            .unwrap();
        assert_eq!(p.functions.len(), 1);
        let f = &p.functions[0];
        assert_eq!(f.name, "func");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.body.stmts.len(), 3);
    }

    #[test]
    fn parses_array_params_and_ref_params() {
        let p =
            parse_program("void g(double a[], int idx[], double &out) { out = a[0]; }").unwrap();
        let f = &p.functions[0];
        assert_eq!(f.params[0].ty, Type::Array(ElemTy::Float(FloatTy::F64)));
        assert!(f.params[0].by_ref);
        assert_eq!(f.params[1].ty, Type::Array(ElemTy::Int));
        assert_eq!(f.params[2].ty, Type::Float(FloatTy::F64));
        assert!(f.params[2].by_ref);
    }

    #[test]
    fn parses_for_loop_with_increment() {
        let p = parse_program(
            "double s(int n) { double acc = 0.0; for (int i = 0; i < n; i++) { acc += 1.0; } return acc; }",
        )
        .unwrap();
        let f = &p.functions[0];
        match &f.body.stmts[1].kind {
            StmtKind::For {
                init, cond, step, ..
            } => {
                assert!(init.is_some());
                assert!(cond.is_some());
                match &step.as_ref().unwrap().kind {
                    StmtKind::Assign { op, .. } => assert_eq!(*op, AssignOp::AddAssign),
                    other => panic!("unexpected step {other:?}"),
                }
            }
            other => panic!("expected for, got {other:?}"),
        }
    }

    #[test]
    fn parses_cast_expression() {
        let e = parse_expr("(float)x").unwrap();
        match e.kind {
            ExprKind::Cast { ty, .. } => assert_eq!(ty, Type::Float(FloatTy::F32)),
            other => panic!("expected cast, got {other:?}"),
        }
    }

    #[test]
    fn cast_binds_tighter_than_mul() {
        // (float)x * y  parses as ((float)x) * y
        let e = parse_expr("(float)x * y").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Mul,
                lhs,
                ..
            } => {
                assert!(matches!(lhs.kind, ExprKind::Cast { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn precedence_mul_over_add() {
        let e = parse_expr("a + b * c").unwrap();
        match e.kind {
            ExprKind::Binary {
                op: BinOp::Add,
                rhs,
                ..
            } => {
                assert!(matches!(rhs.kind, ExprKind::Binary { op: BinOp::Mul, .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parses_intrinsic_and_user_calls() {
        let e = parse_expr("sqrt(dx * dx + dy * dy)").unwrap();
        match e.kind {
            ExprKind::Call {
                callee: Callee::Intrinsic(Intrinsic::Sqrt),
                args,
            } => {
                assert_eq!(args.len(), 1)
            }
            other => panic!("unexpected {other:?}"),
        }
        let e = parse_expr("cndf(d1)").unwrap();
        assert!(matches!(
            e.kind,
            ExprKind::Call {
                callee: Callee::Func(_),
                ..
            }
        ));
    }

    #[test]
    fn parses_if_else_and_while() {
        let p = parse_program(
            "double f(double x) { if (x < 0.0) { x = -x; } else x = x * 2.0; while (x > 1.0) { x /= 2.0; } return x; }",
        )
        .unwrap();
        let f = &p.functions[0];
        assert!(matches!(f.body.stmts[0].kind, StmtKind::If { .. }));
        assert!(matches!(f.body.stmts[1].kind, StmtKind::While { .. }));
    }

    #[test]
    fn parses_local_array_decl() {
        let p = parse_program("void f(int n) { double r[n]; r[0] = 1.0; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Decl { ty, size, .. } => {
                assert_eq!(*ty, Type::Array(ElemTy::Float(FloatTy::F64)));
                assert!(size.is_some());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_void_variable() {
        assert!(parse_program("void f() { void x; }").is_err());
    }

    #[test]
    fn rejects_array_initializer() {
        assert!(parse_program("void f() { double a[3] = 1.0; }").is_err());
    }

    #[test]
    fn rejects_missing_semicolon() {
        assert!(parse_program("void f() { double x = 1.0 }").is_err());
    }

    #[test]
    fn parses_logical_operators() {
        let e = parse_expr("a < b && c > d || !e").unwrap();
        assert!(matches!(e.kind, ExprKind::Binary { op: BinOp::Or, .. }));
    }

    #[test]
    fn parses_compound_assignment_to_array_element() {
        let p = parse_program("void f(double a[], int i) { a[i] *= 2.0; }").unwrap();
        match &p.functions[0].body.stmts[0].kind {
            StmtKind::Assign {
                lhs: LValue::Index { .. },
                op: AssignOp::MulAssign,
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn expression_statement_call() {
        let p = parse_program("void f(double x) { sin(x); }").unwrap();
        assert!(matches!(
            p.functions[0].body.stmts[0].kind,
            StmtKind::ExprStmt(_)
        ));
    }
}
