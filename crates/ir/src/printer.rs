//! Pretty-printer: renders the AST back to KernelC source.
//!
//! Clad can dump generated derivative code as readable C++; this module is
//! the equivalent for KernelC, used to inspect the adjoint + error
//! estimation functions produced by the AD transformation. For
//! parser-produced ASTs the printer round-trips: `parse(print(ast)) == ast`
//! (modulo spans), a property checked in this crate's tests.
//!
//! Generated-only tape statements print as the pseudo-calls
//! `__tape_push(e);` and `__tape_pop(lv);`.

use crate::ast::*;
use crate::types::Type;
use std::fmt::Write;

/// Operator-precedence levels used to minimize parentheses.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Prec {
    Or = 1,
    And,
    Cmp,
    AddSub,
    MulDiv,
    Unary,
    Primary,
}

fn binop_prec(op: BinOp) -> Prec {
    match op {
        BinOp::Or => Prec::Or,
        BinOp::And => Prec::And,
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => Prec::Cmp,
        BinOp::Add | BinOp::Sub => Prec::AddSub,
        BinOp::Mul | BinOp::Div | BinOp::Rem => Prec::MulDiv,
    }
}

/// Prints a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&print_function(f));
    }
    out
}

/// Prints a single function definition.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let _ = write!(out, "{} {}(", type_str(f.ret), f.name);
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        match p.ty {
            Type::Array(elem) => {
                let _ = write!(out, "{elem} {}[]", p.name);
            }
            ty => {
                let amp = if p.by_ref { "&" } else { "" };
                let _ = write!(out, "{} {amp}{}", type_str(ty), p.name);
            }
        }
    }
    out.push_str(") ");
    print_block(&mut out, &f.body, 0);
    out.push('\n');
    out
}

/// Prints a single expression.
pub fn print_expr(e: &Expr) -> String {
    let mut s = String::new();
    expr(&mut s, e, Prec::Or);
    s
}

/// Prints a single statement at indentation level 0.
pub fn print_stmt(s: &Stmt) -> String {
    let mut out = String::new();
    stmt(&mut out, s, 0);
    out
}

fn type_str(t: Type) -> String {
    t.to_string()
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("    ");
    }
}

fn print_block(out: &mut String, b: &Block, level: usize) {
    out.push_str("{\n");
    for s in &b.stmts {
        stmt(out, s, level + 1);
    }
    indent(out, level);
    out.push('}');
}

fn lvalue(out: &mut String, lv: &LValue) {
    match lv {
        LValue::Var(v) => out.push_str(&v.name),
        LValue::Index { base, index } => {
            out.push_str(&base.name);
            out.push('[');
            expr(out, index, Prec::Or);
            out.push(']');
        }
    }
}

fn stmt(out: &mut String, s: &Stmt, level: usize) {
    indent(out, level);
    match &s.kind {
        StmtKind::Decl {
            name,
            ty,
            size,
            init,
            ..
        } => {
            match (ty, size) {
                (Type::Array(elem), Some(sz)) => {
                    let _ = write!(out, "{elem} {name}[");
                    expr(out, sz, Prec::Or);
                    out.push(']');
                }
                _ => {
                    let _ = write!(out, "{} {name}", type_str(*ty));
                }
            }
            if let Some(e) = init {
                out.push_str(" = ");
                expr(out, e, Prec::Or);
            }
            out.push_str(";\n");
        }
        StmtKind::Assign { lhs, op, rhs } => {
            lvalue(out, lhs);
            let _ = write!(out, " {} ", op.as_str());
            expr(out, rhs, Prec::Or);
            out.push_str(";\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            out.push_str("if (");
            expr(out, cond, Prec::Or);
            out.push_str(") ");
            print_block(out, then_branch, level);
            if let Some(eb) = else_branch {
                out.push_str(" else ");
                print_block(out, eb, level);
            }
            out.push('\n');
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            out.push_str("for (");
            if let Some(i) = init {
                inline_simple_stmt(out, i);
            }
            out.push_str("; ");
            if let Some(c) = cond {
                expr(out, c, Prec::Or);
            }
            out.push_str("; ");
            if let Some(st) = step {
                inline_simple_stmt(out, st);
            }
            out.push_str(") ");
            print_block(out, body, level);
            out.push('\n');
        }
        StmtKind::While { cond, body } => {
            out.push_str("while (");
            expr(out, cond, Prec::Or);
            out.push_str(") ");
            print_block(out, body, level);
            out.push('\n');
        }
        StmtKind::Return(e) => {
            out.push_str("return");
            if let Some(e) = e {
                out.push(' ');
                expr(out, e, Prec::Or);
            }
            out.push_str(";\n");
        }
        StmtKind::Block(b) => {
            print_block(out, b, level);
            out.push('\n');
        }
        StmtKind::ExprStmt(e) => {
            expr(out, e, Prec::Or);
            out.push_str(";\n");
        }
        StmtKind::TapePush(e) => {
            out.push_str("__tape_push(");
            expr(out, e, Prec::Or);
            out.push_str(");\n");
        }
        StmtKind::TapePop(lv) => {
            out.push_str("__tape_pop(");
            lvalue(out, lv);
            out.push_str(");\n");
        }
    }
}

/// Prints a `for`-header statement without the trailing `;\n`.
fn inline_simple_stmt(out: &mut String, s: &Stmt) {
    let mut tmp = String::new();
    stmt(&mut tmp, s, 0);
    let trimmed = tmp.trim_end();
    let trimmed = trimmed.strip_suffix(';').unwrap_or(trimmed);
    out.push_str(trimmed);
}

fn float_lit(out: &mut String, v: f64) {
    if v == f64::INFINITY {
        out.push_str("(1.0 / 0.0)");
    } else if v == f64::NEG_INFINITY {
        out.push_str("(-1.0 / 0.0)");
    } else if v.is_nan() {
        out.push_str("(0.0 / 0.0)");
    } else {
        // `{:?}` is Rust's shortest round-trip representation; it always
        // contains `.` or `e`, so it re-lexes as a float literal.
        let _ = write!(out, "{v:?}");
    }
}

fn expr(out: &mut String, e: &Expr, min_prec: Prec) {
    match &e.kind {
        ExprKind::FloatLit(v) => float_lit(out, *v),
        ExprKind::IntLit(v) => {
            if *v < 0 {
                let _ = write!(out, "({v})");
            } else {
                let _ = write!(out, "{v}");
            }
        }
        ExprKind::BoolLit(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::Var(v) => out.push_str(&v.name),
        ExprKind::Index { base, index } => {
            out.push_str(&base.name);
            out.push('[');
            expr(out, index, Prec::Or);
            out.push(']');
        }
        ExprKind::Unary { op, operand } => {
            let needs = Prec::Unary < min_prec;
            if needs {
                out.push('(');
            }
            out.push(match op {
                UnOp::Neg => '-',
                UnOp::Not => '!',
            });
            let mut inner = String::new();
            expr(&mut inner, operand, Prec::Unary);
            // `-` immediately followed by another `-` (nested negation or a
            // negative literal) would lex as the `--` decrement token:
            // parenthesize the operand.
            if *op == UnOp::Neg && inner.starts_with('-') {
                out.push('(');
                out.push_str(&inner);
                out.push(')');
            } else {
                out.push_str(&inner);
            }
            if needs {
                out.push(')');
            }
        }
        ExprKind::Binary { op, lhs, rhs } => {
            let prec = binop_prec(*op);
            let needs = prec < min_prec;
            if needs {
                out.push('(');
            }
            // Comparisons are non-associative: both children must bind
            // strictly tighter. Other operators are left-associative: only
            // the RHS must.
            let lhs_min = if prec == Prec::Cmp {
                Prec::AddSub
            } else {
                prec
            };
            expr(out, lhs, lhs_min);
            let _ = write!(out, " {} ", op.as_str());
            let rhs_min = if prec == Prec::Cmp {
                Prec::AddSub
            } else {
                bump(prec)
            };
            expr(out, rhs, rhs_min);
            if needs {
                out.push(')');
            }
        }
        ExprKind::Call { callee, args } => {
            out.push_str(callee.name());
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr(out, a, Prec::Or);
            }
            out.push(')');
        }
        ExprKind::Cast { ty, expr: inner } => {
            let needs = Prec::Unary < min_prec;
            if needs {
                out.push('(');
            }
            let _ = write!(out, "({})", type_str(*ty));
            expr(out, inner, Prec::Unary);
            if needs {
                out.push(')');
            }
        }
    }
}

/// The next-tighter precedence level (saturating at `Primary`).
fn bump(p: Prec) -> Prec {
    match p {
        Prec::Or => Prec::And,
        Prec::And => Prec::Cmp,
        Prec::Cmp => Prec::AddSub,
        Prec::AddSub => Prec::MulDiv,
        Prec::MulDiv => Prec::Unary,
        Prec::Unary | Prec::Primary => Prec::Primary,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn rt_expr(src: &str) -> String {
        print_expr(&parse_expr(src).unwrap())
    }

    #[test]
    fn prints_expressions_with_minimal_parens() {
        assert_eq!(rt_expr("a + b * c"), "a + b * c");
        assert_eq!(rt_expr("(a + b) * c"), "(a + b) * c");
        assert_eq!(rt_expr("a - (b - c)"), "a - (b - c)");
        assert_eq!(rt_expr("a - b - c"), "a - b - c");
        assert_eq!(rt_expr("-x * y"), "-x * y");
        assert_eq!(rt_expr("-(x * y)"), "-(x * y)");
    }

    #[test]
    fn prints_casts() {
        assert_eq!(rt_expr("(float)x * y"), "(float)x * y");
        assert_eq!(rt_expr("x - (float)x"), "x - (float)x");
    }

    #[test]
    fn prints_calls() {
        assert_eq!(
            rt_expr("sqrt(dx * dx + dy * dy)"),
            "sqrt(dx * dx + dy * dy)"
        );
        assert_eq!(rt_expr("pow(x, 2.0)"), "pow(x, 2.0)");
    }

    #[test]
    fn float_literals_round_trip() {
        assert_eq!(rt_expr("1.0"), "1.0");
        assert_eq!(rt_expr("0.1"), "0.1");
        assert_eq!(rt_expr("1e-10"), "1e-10");
    }

    #[test]
    fn function_print_reparses_identically() {
        let src = "double arclen(int n) {
    double h = 3.141592653589793 / n;
    double s1 = 0.0;
    double t1 = 0.0;
    for (int i = 1; i <= n; i++) {
        double t2 = i * h;
        double diff = t2 - t1;
        s1 += sqrt(h * h + diff * diff);
        t1 = t2;
    }
    return s1;
}";
        let p1 = parse_program(src).unwrap();
        let printed = print_program(&p1);
        let p2 = parse_program(&printed).unwrap();
        // Compare re-printed forms (spans differ, text should not).
        assert_eq!(printed, print_program(&p2));
    }

    #[test]
    fn comparison_children_parenthesized() {
        // Comparisons are non-associative: chained forms must not parse.
        assert!(parse_expr("a < b == true").is_err());
        // `(a < b) == (c < d)` must keep parens to re-parse.
        let e = parse_expr("(a < b) == (c < d)").unwrap();
        let printed = print_expr(&e);
        let e2 = parse_expr(&printed).unwrap();
        assert_eq!(print_expr(&e2), printed);
    }

    #[test]
    fn tape_ops_print_as_pseudocalls() {
        let s = Stmt::synth(StmtKind::TapePush(Expr::flit(1.5)));
        assert_eq!(print_stmt(&s), "__tape_push(1.5);\n");
    }
}
