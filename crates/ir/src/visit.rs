//! Read-only and mutating AST walkers.
//!
//! The analyses in `chef-ad` (activity, liveness, TBR) and the rewrites in
//! `chef-passes` share these traversal skeletons. Override the hooks you
//! care about and call the corresponding `walk_*` function to recurse.

use crate::ast::*;

/// Read-only visitor with default deep-walking behaviour.
pub trait Visitor {
    /// Visits an expression (default: recurse).
    fn visit_expr(&mut self, e: &Expr) {
        walk_expr(self, e);
    }
    /// Visits an lvalue (default: recurse into index expressions).
    fn visit_lvalue(&mut self, lv: &LValue) {
        walk_lvalue(self, lv);
    }
    /// Visits a statement (default: recurse).
    fn visit_stmt(&mut self, s: &Stmt) {
        walk_stmt(self, s);
    }
    /// Visits a block (default: visit each statement).
    fn visit_block(&mut self, b: &Block) {
        walk_block(self, b);
    }
}

/// Default recursion for expressions.
pub fn walk_expr<V: Visitor + ?Sized>(v: &mut V, e: &Expr) {
    match &e.kind {
        ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::Var(_) => {}
        ExprKind::Index { index, .. } => v.visit_expr(index),
        ExprKind::Unary { operand, .. } => v.visit_expr(operand),
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr(lhs);
            v.visit_expr(rhs);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr(a);
            }
        }
        ExprKind::Cast { expr, .. } => v.visit_expr(expr),
    }
}

/// Default recursion for lvalues.
pub fn walk_lvalue<V: Visitor + ?Sized>(v: &mut V, lv: &LValue) {
    if let LValue::Index { index, .. } = lv {
        v.visit_expr(index);
    }
}

/// Default recursion for statements.
pub fn walk_stmt<V: Visitor + ?Sized>(v: &mut V, s: &Stmt) {
    match &s.kind {
        StmtKind::Decl { size, init, .. } => {
            if let Some(e) = size {
                v.visit_expr(e);
            }
            if let Some(e) = init {
                v.visit_expr(e);
            }
        }
        StmtKind::Assign { lhs, rhs, .. } => {
            v.visit_lvalue(lhs);
            v.visit_expr(rhs);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit_expr(cond);
            v.visit_block(then_branch);
            if let Some(b) = else_branch {
                v.visit_block(b);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                v.visit_stmt(i);
            }
            if let Some(c) = cond {
                v.visit_expr(c);
            }
            if let Some(st) = step {
                v.visit_stmt(st);
            }
            v.visit_block(body);
        }
        StmtKind::While { cond, body } => {
            v.visit_expr(cond);
            v.visit_block(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr(e);
            }
        }
        StmtKind::Block(b) => v.visit_block(b),
        StmtKind::ExprStmt(e) => v.visit_expr(e),
        StmtKind::TapePush(e) => v.visit_expr(e),
        StmtKind::TapePop(lv) => v.visit_lvalue(lv),
    }
}

/// Default recursion for blocks.
pub fn walk_block<V: Visitor + ?Sized>(v: &mut V, b: &Block) {
    for s in &b.stmts {
        v.visit_stmt(s);
    }
}

/// Mutating visitor with default deep-walking behaviour.
pub trait MutVisitor {
    /// Visits an expression mutably (default: recurse).
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }
    /// Visits an lvalue mutably (default: recurse).
    fn visit_lvalue_mut(&mut self, lv: &mut LValue) {
        walk_lvalue_mut(self, lv);
    }
    /// Visits a statement mutably (default: recurse).
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
    }
    /// Visits a block mutably (default: visit each statement).
    fn visit_block_mut(&mut self, b: &mut Block) {
        walk_block_mut(self, b);
    }
}

/// Default mutable recursion for expressions.
pub fn walk_expr_mut<V: MutVisitor + ?Sized>(v: &mut V, e: &mut Expr) {
    match &mut e.kind {
        ExprKind::FloatLit(_) | ExprKind::IntLit(_) | ExprKind::BoolLit(_) | ExprKind::Var(_) => {}
        ExprKind::Index { index, .. } => v.visit_expr_mut(index),
        ExprKind::Unary { operand, .. } => v.visit_expr_mut(operand),
        ExprKind::Binary { lhs, rhs, .. } => {
            v.visit_expr_mut(lhs);
            v.visit_expr_mut(rhs);
        }
        ExprKind::Call { args, .. } => {
            for a in args {
                v.visit_expr_mut(a);
            }
        }
        ExprKind::Cast { expr, .. } => v.visit_expr_mut(expr),
    }
}

/// Default mutable recursion for lvalues.
pub fn walk_lvalue_mut<V: MutVisitor + ?Sized>(v: &mut V, lv: &mut LValue) {
    if let LValue::Index { index, .. } = lv {
        v.visit_expr_mut(index);
    }
}

/// Default mutable recursion for statements.
pub fn walk_stmt_mut<V: MutVisitor + ?Sized>(v: &mut V, s: &mut Stmt) {
    match &mut s.kind {
        StmtKind::Decl { size, init, .. } => {
            if let Some(e) = size {
                v.visit_expr_mut(e);
            }
            if let Some(e) = init {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Assign { lhs, rhs, .. } => {
            v.visit_lvalue_mut(lhs);
            v.visit_expr_mut(rhs);
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            v.visit_expr_mut(cond);
            v.visit_block_mut(then_branch);
            if let Some(b) = else_branch {
                v.visit_block_mut(b);
            }
        }
        StmtKind::For {
            init,
            cond,
            step,
            body,
        } => {
            if let Some(i) = init {
                v.visit_stmt_mut(i);
            }
            if let Some(c) = cond {
                v.visit_expr_mut(c);
            }
            if let Some(st) = step {
                v.visit_stmt_mut(st);
            }
            v.visit_block_mut(body);
        }
        StmtKind::While { cond, body } => {
            v.visit_expr_mut(cond);
            v.visit_block_mut(body);
        }
        StmtKind::Return(e) => {
            if let Some(e) = e {
                v.visit_expr_mut(e);
            }
        }
        StmtKind::Block(b) => v.visit_block_mut(b),
        StmtKind::ExprStmt(e) => v.visit_expr_mut(e),
        StmtKind::TapePush(e) => v.visit_expr_mut(e),
        StmtKind::TapePop(lv) => v.visit_lvalue_mut(lv),
    }
}

/// Default mutable recursion for blocks.
pub fn walk_block_mut<V: MutVisitor + ?Sized>(v: &mut V, b: &mut Block) {
    for s in &mut b.stmts {
        v.visit_stmt_mut(s);
    }
}

/// Collects the [`VarId`] of every variable *read* in an expression.
pub fn vars_read_in_expr(e: &Expr, out: &mut Vec<VarId>) {
    struct Reads<'a>(&'a mut Vec<VarId>);
    impl Visitor for Reads<'_> {
        fn visit_expr(&mut self, e: &Expr) {
            match &e.kind {
                ExprKind::Var(v) => {
                    if let Some(id) = v.id {
                        self.0.push(id);
                    }
                }
                ExprKind::Index { base, index } => {
                    if let Some(id) = base.id {
                        self.0.push(id);
                    }
                    self.visit_expr(index);
                }
                _ => walk_expr(self, e),
            }
        }
    }
    Reads(out).visit_expr(e);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::typeck::check_program;

    #[test]
    fn counts_nodes_via_visitor() {
        struct Count(usize);
        impl Visitor for Count {
            fn visit_expr(&mut self, e: &Expr) {
                self.0 += 1;
                walk_expr(self, e);
            }
        }
        let mut p = parse_program("double f(double x) { double y = x * x + 1.0; return sqrt(y); }")
            .unwrap();
        check_program(&mut p).unwrap();
        let mut c = Count(0);
        c.visit_block(&p.functions[0].body);
        // y-init: (x*x)+1.0 => x, x, x*x, 1.0, + = 5; return: y, sqrt(y) = 2.
        assert_eq!(c.0, 7);
    }

    #[test]
    fn mut_visitor_rewrites_literals() {
        struct Doubler;
        impl MutVisitor for Doubler {
            fn visit_expr_mut(&mut self, e: &mut Expr) {
                if let ExprKind::FloatLit(v) = &mut e.kind {
                    *v *= 2.0;
                }
                walk_expr_mut(self, e);
            }
        }
        let mut p = parse_program("double f() { return 1.5 + 2.0; }").unwrap();
        check_program(&mut p).unwrap();
        Doubler.visit_block_mut(&mut p.functions[0].body);
        let printed = crate::printer::print_function(&p.functions[0]);
        assert!(printed.contains("3.0 + 4.0"), "{printed}");
    }

    #[test]
    fn vars_read_collects_reads() {
        let mut p =
            parse_program("double f(double a[], int i, double x) { return a[i] + x; }").unwrap();
        check_program(&mut p).unwrap();
        let f = &p.functions[0];
        let ret = match &f.body.stmts[0].kind {
            StmtKind::Return(Some(e)) => e,
            other => panic!("unexpected {other:?}"),
        };
        let mut reads = Vec::new();
        vars_read_in_expr(ret, &mut reads);
        assert_eq!(reads.len(), 3); // a, i, x
    }
}
